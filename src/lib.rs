//! # origin-repro — a reproduction of *Origin* (DATE 2021)
//!
//! This facade crate re-exports the whole workspace behind one dependency:
//! the substrates (`types`, `trace`, `energy`, `sensors`, `nn`, `net`),
//! the observability layer (`telemetry`) and
//! the policy layer (`core`) that together reproduce *Origin: Enabling
//! On-Device Intelligence for Human Activity Recognition Using Energy
//! Harvesting Wireless Sensor Networks*.
//!
//! Start with [`core::Simulator`] (the system simulator),
//! [`core::ModelBank`] (the trained per-sensor classifiers),
//! [`core::experiments`] (drivers for every figure and table in the
//! paper) and [`bench::sweep`] (the parallel deterministic sweep engine
//! for multi-seed grids). The runnable binaries live in the
//! `origin-bench` crate and the `examples/` directory; see the
//! repository README for the experiment index.
//!
//! # Examples
//!
//! One simulation run (this snippet is kept in sync with the README's
//! "Library use" section):
//!
//! ```no_run
//! use origin_repro::core::{Deployment, ModelBank, PolicyKind, SimConfig, Simulator};
//! use origin_repro::sensors::DatasetSpec;
//!
//! # fn main() -> Result<(), origin_repro::core::CoreError> {
//! let models = ModelBank::<f64>::train(&DatasetSpec::mhealth_like(), 42)?;
//! let sim = Simulator::new(Deployment::builder().seed(42).build(), models);
//! let report = sim.run(&SimConfig::new(PolicyKind::Origin { cycle: 12 }))?;
//! println!("RR12 Origin: {:.2}% top-1", report.accuracy() * 100.0);
//! # Ok(())
//! # }
//! ```
//!
//! A multi-seed policy comparison on the sweep engine — trains once,
//! fans the grid out over worker threads, and yields the same bytes at
//! any thread count:
//!
//! ```no_run
//! use origin_repro::bench::sweep::{run_sweep, SweepGrid, SweepOptions, SweepPolicy};
//! use origin_repro::core::experiments::{Dataset, ExperimentContext};
//! use origin_repro::core::{BaselineKind, PolicyKind};
//!
//! # fn main() -> Result<(), origin_repro::core::CoreError> {
//! let ctx = ExperimentContext::<f64>::new(Dataset::Mhealth, 77)?;
//! let grid = SweepGrid::new(77, vec![
//!     SweepPolicy::Policy(PolicyKind::Origin { cycle: 12 }),
//!     SweepPolicy::Baseline(BaselineKind::Baseline2),
//! ])
//! .with_seeds(5);
//! let report = run_sweep(&ctx, &grid, &SweepOptions { threads: 0, ..SweepOptions::default() })?;
//! println!("Origin: {}", report.accuracy_aggregate(0).fmt_pct());
//! println!("win rate vs BL-2: {:.0}%", report.win_rate(0, 1) * 100.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use origin_bench as bench;
pub use origin_core as core;
pub use origin_energy as energy;
pub use origin_net as net;
pub use origin_nn as nn;
pub use origin_sensors as sensors;
pub use origin_telemetry as telemetry;
pub use origin_trace as trace;
pub use origin_types as types;
