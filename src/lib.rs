//! # origin-repro — a reproduction of *Origin* (DATE 2021)
//!
//! This facade crate re-exports the whole workspace behind one dependency:
//! the substrates (`types`, `trace`, `energy`, `sensors`, `nn`, `net`),
//! the observability layer (`telemetry`) and
//! the policy layer (`core`) that together reproduce *Origin: Enabling
//! On-Device Intelligence for Human Activity Recognition Using Energy
//! Harvesting Wireless Sensor Networks*.
//!
//! Start with [`core::Simulator`] (the system simulator),
//! [`core::ModelBank`] (the trained per-sensor classifiers) and
//! [`core::experiments`] (drivers for every figure and table in the
//! paper). The runnable binaries live in the `origin-bench` crate and the
//! `examples/` directory; see the repository README for the experiment
//! index.
//!
//! # Examples
//!
//! ```no_run
//! use origin_repro::core::{Deployment, ModelBank, PolicyKind, SimConfig, Simulator};
//! use origin_repro::sensors::DatasetSpec;
//!
//! # fn main() -> Result<(), origin_repro::core::CoreError> {
//! let models = ModelBank::train(&DatasetSpec::mhealth_like(), 42)?;
//! let sim = Simulator::new(Deployment::builder().seed(42).build(), models);
//! let report = sim.run(&SimConfig::new(PolicyKind::Origin { cycle: 12 }))?;
//! println!("RR12 Origin: {:.2}% top-1", report.accuracy() * 100.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use origin_core as core;
pub use origin_energy as energy;
pub use origin_net as net;
pub use origin_nn as nn;
pub use origin_sensors as sensors;
pub use origin_telemetry as telemetry;
pub use origin_trace as trace;
pub use origin_types as types;
