#!/usr/bin/env bash
# Repository-wide hygiene gate: formatting, lints, tests.
#
# Usage: scripts/check.sh
#
# Runs the checks CI expects, in fail-fast order (cheapest first):
#   1. cargo fmt --check      — formatting drift
#   2. cargo clippy -D warnings — lints across the whole workspace
#   3. origin-lint --json     — workspace determinism, hot-path,
#      call-graph, and API-surface rules (D1–D9, see DESIGN.md §10);
#      fails on any finding not waived in lint-allow.toml, prints the
#      per-rule counts, and hard-fails if the timed lint run (call-graph
#      construction included) exceeds 10 s — the analyzer must stay
#      cheap enough to run on every commit
#   4. cargo deny check       — dependency audit (skipped when the
#      cargo-deny binary is not installed; config in deny.toml)
#   5. cargo doc -D warnings  — rustdoc builds clean (broken intra-doc
#      links, missing docs on public items)
#   6. cargo bench --no-run   — benchmark targets compile (they are not
#      covered by cargo test and rot silently otherwise)
#   7. cargo build --release -p origin-bench — the experiment binaries
#      (reproduce_all, bench_report, fig*/table*) build in release
#   8. cargo test -q          — the full test suite, including the sweep
#      determinism test (1 vs 8 threads, byte-identical manifests) and
#      the zero-allocation / kernel-parity tests
#   9. f32 compute path       — the precision-parity proptests and the
#      per-dtype zero-allocation pins (crates/nn), then an f32 smoke of
#      the sweep binary; the f64 goldens stay the determinism anchor,
#      this step keeps the narrow path honest (DESIGN.md 3.2)
#  10. kernel-path A/B        — the same sweep under --kernel-path scalar
#      and unrolled, at both dtypes, byte-compared (the end-to-end
#      mirror of the kernel-level parity proptests, DESIGN.md 3.3)
#  11. population smoke       — a 10k-user fleet sweep under a 2 GB
#      address-space cap, asserting the manifest reports every cell
#      complete (pins the O(1)-memory streaming path, DESIGN.md §11)
#  12. bench_report --quick --check — a warn-only perf smoke against the
#      committed BENCH_sweep.json (f64 kernel rows only, generous +50%
#      threshold; scripts/bench.sh runs the full hard-fail gate)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> origin-lint (determinism, hot-path, call-graph & API rules, lint-allow.toml)"
# Build first so the timed run below measures the analyzer, not rustc.
cargo build -q -p origin-lint
lint_json="$(mktemp /tmp/origin_lint.XXXXXX.json)"
lint_t0="$(date +%s%N)"
if ! ./target/debug/origin-lint --json >"$lint_json"; then
    # Re-run in human mode so the failure is readable in the log.
    ./target/debug/origin-lint || true
    rm -f "$lint_json"
    exit 1
fi
lint_t1="$(date +%s%N)"
lint_ms=$(( (lint_t1 - lint_t0) / 1000000 ))
# Surface the per-rule counts and the human summary line for the log.
./target/debug/origin-lint | tail -1
echo "    lint wall-clock: ${lint_ms} ms"
if (( lint_ms > 10000 )); then
    echo "ERROR: origin-lint took ${lint_ms} ms (> 10 s); the analyzer must stay fast enough for every commit" >&2
    rm -f "$lint_json"
    exit 1
fi
grep -q '"by_rule"' "$lint_json"
rm -f "$lint_json"

if command -v cargo-deny >/dev/null 2>&1; then
    echo "==> cargo deny check"
    cargo deny check
else
    echo "==> cargo-deny not installed; skipping dependency audit (deny.toml)"
fi

echo "==> cargo doc --workspace --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo bench --no-run (benchmarks compile)"
cargo bench --workspace --no-run --quiet

echo "==> cargo build --release -p origin-bench (experiment binaries)"
cargo build --release -p origin-bench --quiet

echo "==> cargo test -q"
cargo test -q

echo "==> f32 compute path (parity proptests, per-dtype alloc pins, sweep smoke)"
cargo test -q -p origin-nn --test precision_parity
cargo test -q -p origin-nn --test alloc_count
cargo run -q --release -p origin-bench --bin sweep -- \
    --precision f32 --seeds 1 --horizon 600 >/dev/null

echo "==> kernel-path A/B (scalar vs unrolled sweep reports, byte-identical)"
# The unrolled kernels must be bitwise twins of the scalar reference all
# the way up the stack: the same sweep under both paths (and at both
# dtypes) has to produce identical stdout reports, not just close ones.
kp_a="$(mktemp /tmp/origin_kernel_path.XXXXXX.a)"
kp_b="$(mktemp /tmp/origin_kernel_path.XXXXXX.b)"
for prec in f64 f32; do
    ./target/release/sweep --precision "$prec" --seeds 1 --horizon 600 \
        --kernel-path unrolled >"$kp_a"
    ./target/release/sweep --precision "$prec" --seeds 1 --horizon 600 \
        --kernel-path scalar >"$kp_b"
    cmp "$kp_a" "$kp_b"
done
rm -f "$kp_a" "$kp_b"

echo "==> population smoke (10k sampled users, streaming fleet engine, 2 GB cap)"
pop_json="$(mktemp /tmp/origin_population_smoke.XXXXXX.json)"
# ulimit -v caps the address space: the fleet engine streams cells
# through O(1) accumulators, so 20k cells must fit comfortably in 2 GB.
(
    ulimit -v 2097152
    ./target/release/sweep --population 10000 --policies origin12,rr12 \
        --horizon 15 --shard-size 512 --threads 8 --json "$pop_json" >/dev/null 2>&1
)
grep -q '"cells_total": "20000"' "$pop_json"
grep -q '"cells_completed": "20000"' "$pop_json"
rm -f "$pop_json"

if [[ -f BENCH_sweep.json ]]; then
    echo "==> bench_report --quick --check (perf smoke vs BENCH_sweep.json, warn-only)"
    cargo run -q --release -p origin-bench --bin bench_report -- \
        --quick --baseline BENCH_sweep.json --check --threshold 50 ||
        echo "WARNING: quick perf smoke regressed (not blocking; scripts/bench.sh is the hard gate)"
else
    echo "==> no BENCH_sweep.json snapshot; skipping perf smoke"
fi

echo "==> all checks passed"
