#!/usr/bin/env bash
# Repository-wide hygiene gate: formatting, lints, tests.
#
# Usage: scripts/check.sh
#
# Runs the checks CI expects, in fail-fast order (cheapest first):
#   1. cargo fmt --check      — formatting drift
#   2. cargo clippy -D warnings — lints across the whole workspace
#   3. cargo doc -D warnings  — rustdoc builds clean (broken intra-doc
#      links, missing docs on public items)
#   4. cargo bench --no-run   — benchmark targets compile (they are not
#      covered by cargo test and rot silently otherwise)
#   5. cargo build --release -p origin-bench — the experiment binaries
#      (reproduce_all, bench_report, fig*/table*) build in release
#   6. cargo test -q          — the full test suite, including the sweep
#      determinism test (1 vs 8 threads, byte-identical manifests) and
#      the zero-allocation / kernel-parity tests
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --workspace --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo bench --no-run (benchmarks compile)"
cargo bench --workspace --no-run --quiet

echo "==> cargo build --release -p origin-bench (experiment binaries)"
cargo build --release -p origin-bench --quiet

echo "==> cargo test -q"
cargo test -q

echo "==> all checks passed"
