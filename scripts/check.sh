#!/usr/bin/env bash
# Repository-wide hygiene gate: formatting, lints, tests.
#
# Usage: scripts/check.sh
#
# Runs the three checks CI expects, in fail-fast order (cheapest first):
#   1. cargo fmt --check      — formatting drift
#   2. cargo clippy -D warnings — lints across the whole workspace
#   3. cargo test -q          — the full test suite
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> all checks passed"
