#!/usr/bin/env bash
# Benchmark entry point: criterion micro-benchmarks plus one pinned
# machine-readable snapshot.
#
# Usage: scripts/bench.sh [filter]
#
# Two stages:
#   1. cargo bench -p origin-bench   — the criterion suites (kernels,
#      inference, simulation, ensemble, substrate, telemetry, sweep);
#      an optional [filter] argument narrows which benchmarks run.
#   2. bench_report                  — a self-contained median-of-samples
#      harness that writes BENCH_sweep.json at the repo root (median ns,
#      derived throughput, git revision) so each revision carries one
#      comparable snapshot that needs no criterion output parsing. The
#      kernel rows are emitted at both precisions: f64 rows keep their
#      historical names (comparable across revisions), the f32 twins
#      carry an `_f32` suffix (e.g. `mlp_forward_pruned70_f32`). The
#      unsuffixed rows measure the default unrolled kernel path; the
#      `_scalar` twins time the scalar reference, and a `machine` object
#      records the CPU and compile-time target features.
#
# When a previous BENCH_sweep.json exists it becomes the baseline for the
# regression gate: any row that slowed by more than 25% fails this script
# (the baseline is read before the new snapshot overwrites it). Every run
# also appends one line to BENCH_history.jsonl.
#
# After a deliberate kernel change shifts the performance floor (e.g. the
# PR introducing the unrolled kernel path), run this script once on the
# reference machine and commit the refreshed BENCH_sweep.json so the
# gate's baseline reflects the new kernels rather than the old ones.
set -euo pipefail
cd "$(dirname "$0")/.."

filter="${1:-}"

echo "==> cargo bench -p origin-bench ${filter:+-- $filter}"
if [[ -n "$filter" ]]; then
    cargo bench -p origin-bench -- "$filter"
else
    cargo bench -p origin-bench
fi

if [[ -f BENCH_sweep.json ]]; then
    echo "==> bench_report -> BENCH_sweep.json (gated against previous snapshot, threshold +25%)"
    cargo run --release -p origin-bench --bin bench_report -- \
        BENCH_sweep.json --baseline BENCH_sweep.json --check --threshold 25
else
    echo "==> bench_report -> BENCH_sweep.json (no previous snapshot; gate skipped)"
    cargo run --release -p origin-bench --bin bench_report -- BENCH_sweep.json
fi

echo "==> wrote BENCH_sweep.json ($(git rev-parse --short HEAD))"
