//! Robustness studies from the paper's Discussion section: sensor
//! failure, lossy radio links, hybrid power, and the volatile-CPU
//! counterfactual.

use origin_repro::core::{Deployment, ModelBank, PolicyKind, SimConfig, Simulator};
use origin_repro::net::LinkModel;
use origin_repro::sensors::DatasetSpec;
use origin_repro::types::{NodeId, Power, SimDuration};

fn small_models(seed: u64) -> ModelBank {
    let spec = DatasetSpec::mhealth_like().with_windows(10, 6);
    ModelBank::train(&spec, seed).expect("training succeeds")
}

fn short(policy: PolicyKind, seed: u64) -> SimConfig {
    SimConfig::new(policy)
        .with_horizon(SimDuration::from_secs(900))
        .with_seed(seed)
}

#[test]
fn origin_degrades_gracefully_when_a_sensor_fails() {
    // "it uses multiple sensors effectively and hence poses minimum risk
    // if one of the sensors fails" (Section IV-C Discussion).
    let models = small_models(21);
    let sim = Simulator::new(Deployment::builder().seed(21).build(), models);
    let healthy = sim
        .run(&short(PolicyKind::Origin { cycle: 12 }, 2))
        .unwrap();
    // Kill the wrist (the weakest sensor).
    let degraded = sim
        .run(&short(PolicyKind::Origin { cycle: 12 }, 2).with_disabled_nodes([NodeId::new(2)]))
        .unwrap();
    assert!(
        degraded.accuracy() > healthy.accuracy() - 0.15,
        "one dead sensor collapsed accuracy: {} -> {}",
        healthy.accuracy(),
        degraded.accuracy()
    );
    // The system still produces output nearly every window.
    assert!(degraded.no_output_windows < degraded.windows / 10);
}

#[test]
fn all_sensors_failing_yields_no_output() {
    let models = small_models(23);
    let sim = Simulator::new(Deployment::builder().seed(23).build(), models);
    let report = sim
        .run(
            &short(PolicyKind::Origin { cycle: 12 }, 3).with_disabled_nodes([
                NodeId::new(0),
                NodeId::new(1),
                NodeId::new(2),
            ]),
        )
        .unwrap();
    assert_eq!(report.completions, 0);
    assert_eq!(report.no_output_windows, report.windows);
    assert_eq!(report.accuracy(), 0.0);
}

#[test]
fn lossy_link_costs_little_accuracy() {
    // The paper assumes negligible communication; with an explicit radio
    // model we can check a 2%-loss BLE link barely moves the needle.
    let models = small_models(25);
    let reliable = Simulator::new(Deployment::builder().seed(25).build(), models.clone());
    let lossy = Simulator::new(
        Deployment::builder()
            .seed(25)
            .link(LinkModel::lossy_ble())
            .build(),
        models,
    );
    let config = short(PolicyKind::Origin { cycle: 12 }, 4);
    let a = reliable.run(&config).unwrap();
    let b = lossy.run(&config).unwrap();
    assert!(b.messages_dropped > 0, "lossy link must drop something");
    assert!(
        b.accuracy() > a.accuracy() - 0.08,
        "2% loss cost too much: {} -> {}",
        a.accuracy(),
        b.accuracy()
    );
}

#[test]
fn hybrid_battery_trickle_raises_completion() {
    // Discussion: Origin "can also be used with battery-powered or hybrid
    // systems".
    let models = small_models(27);
    let eh_only = Simulator::new(Deployment::builder().seed(27).build(), models.clone());
    let hybrid = Simulator::new(
        Deployment::builder()
            .seed(27)
            .hybrid(Power::from_microwatts(60.0))
            .build(),
        models,
    );
    let config = short(PolicyKind::RoundRobin { cycle: 6 }, 5);
    let a = eh_only.run(&config).unwrap();
    let b = hybrid.run(&config).unwrap();
    assert!(
        b.completion_rate() > a.completion_rate() + 0.1,
        "trickle should lift completion: {} -> {}",
        a.completion_rate(),
        b.completion_rate()
    );
    assert!(b.accuracy() >= a.accuracy() - 0.02);
}

#[test]
fn nvp_beats_volatile_cpu_under_naive_scheduling() {
    let models = small_models(29);
    let nvp = Simulator::new(Deployment::builder().seed(29).build(), models.clone());
    let volatile = Simulator::new(
        Deployment::builder().seed(29).volatile_cpu().build(),
        models,
    );
    let config = short(PolicyKind::NaiveAllOn, 6);
    let a = nvp.run(&config).unwrap();
    let b = volatile.run(&config).unwrap();
    assert!(
        a.completion_rate() >= b.completion_rate(),
        "NVP {} vs volatile {}",
        a.completion_rate(),
        b.completion_rate()
    );
    // The volatile processor wastes partial investments.
    let lost: u64 = b.node_counters.iter().map(|c| c.lost).sum();
    assert!(lost > 0, "volatile CPU must record lost progress");
}

#[test]
fn diurnal_trace_survives_the_night() {
    // A day/night harvest envelope: Origin keeps producing output through
    // a lean "night" by banking energy and leaning on recall.
    use origin_repro::trace::{DiurnalProfile, WifiOfficeModel};

    let models = small_models(31);
    let diurnal = WifiOfficeModel::default().with_diurnal(DiurnalProfile {
        period: SimDuration::from_secs(600),
        day_fraction: 0.6,
        night_scale: 0.15,
    });
    let sim = Simulator::new(
        Deployment::builder().seed(31).wifi_model(diurnal).build(),
        models,
    );
    let report = sim
        .run(
            &SimConfig::new(PolicyKind::Origin { cycle: 12 })
                .with_horizon(SimDuration::from_secs(1_800))
                .with_seed(7),
        )
        .unwrap();
    // Less energy means fewer completions than the flat trace, but the
    // recall-based output keeps coverage near-total.
    assert!(
        report.completion_rate() > 0.3,
        "completion {}",
        report.completion_rate()
    );
    assert!(report.no_output_windows < report.windows / 10);
    assert!(report.accuracy() > 0.5, "accuracy {}", report.accuracy());
}
