//! The faithful raw-window pipeline: a 1-D CNN (the paper's DNN family)
//! trained directly on synthetic IMU windows, end to end across the
//! sensors and nn crates.

use origin_repro::nn::Cnn1d;
use origin_repro::sensors::{sample_window, DatasetSpec, UserProfile};
use origin_repro::types::{ActivityClass, SensorLocation, UserId};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn cnn_learns_activities_from_raw_imu_windows() {
    let spec = DatasetSpec::mhealth_like();
    let user = UserProfile::nominal(UserId::new(0));
    let location = SensorLocation::LeftAnkle;
    // Three well-separated activities at the ankle.
    let classes = [
        ActivityClass::Cycling,
        ActivityClass::Running,
        ActivityClass::Jumping,
    ];

    let mut cnn = Cnn1d::new(6, 8, 5, classes.len(), 42).expect("valid architecture");
    let mut rng = StdRng::seed_from_u64(7);

    // Train on freshly synthesized windows.
    for _epoch in 0..25 {
        for (label, &activity) in classes.iter().enumerate() {
            for _ in 0..6 {
                let window = sample_window(&spec, activity, location, &user, &mut rng);
                let channels = window.channel_matrix();
                cnn.train_step(&channels, label, 0.01).expect("valid input");
            }
        }
    }

    // Evaluate on held-out windows.
    let mut correct = 0;
    let trials = 30;
    for i in 0..trials {
        let label = i % classes.len();
        let window = sample_window(&spec, classes[label], location, &user, &mut rng);
        let (predicted, proba) = cnn.predict(&window.channel_matrix()).expect("valid input");
        assert!((proba.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        if predicted == label {
            correct += 1;
        }
    }
    // Clearly better than the 33% chance level.
    assert!(
        correct * 2 >= trials,
        "raw-window CNN accuracy {correct}/{trials}"
    );
}

#[test]
fn channel_matrix_matches_window_layout() {
    let spec = DatasetSpec::mhealth_like();
    let user = UserProfile::nominal(UserId::new(0));
    let mut rng = StdRng::seed_from_u64(1);
    let window = sample_window(
        &spec,
        ActivityClass::Walking,
        SensorLocation::Chest,
        &user,
        &mut rng,
    );
    let m = window.channel_matrix();
    assert_eq!(m.len(), 6);
    assert!(m.iter().all(|ch| ch.len() == window.len()));
    // Spot-check correspondence.
    assert_eq!(m[0][3], window.samples()[3].accel[0]);
    assert_eq!(m[5][7], window.samples()[7].gyro[2]);
}
