//! Cross-crate integration: the full train → deploy → simulate → score
//! pipeline through the public facade, at a scale suitable for debug
//! builds.

use origin_repro::core::{
    run_baseline, BaselineKind, Deployment, ModelBank, ModelVariant, PolicyKind, SimConfig,
    Simulator,
};
use origin_repro::sensors::DatasetSpec;
use origin_repro::types::{SensorLocation, SimDuration};

fn small_models(seed: u64) -> ModelBank {
    let spec = DatasetSpec::mhealth_like().with_windows(10, 6);
    ModelBank::train(&spec, seed).expect("training succeeds")
}

fn short(policy: PolicyKind, seed: u64) -> SimConfig {
    SimConfig::new(policy)
        .with_horizon(SimDuration::from_secs(600))
        .with_seed(seed)
}

#[test]
fn full_policy_ladder_is_ordered() {
    let models = small_models(3);
    let sim = Simulator::new(Deployment::builder().seed(3).build(), models);

    let rr = sim
        .run(&short(PolicyKind::RoundRobin { cycle: 12 }, 4))
        .unwrap();
    let aasr = sim.run(&short(PolicyKind::Aasr { cycle: 12 }, 4)).unwrap();
    let origin = sim
        .run(&short(PolicyKind::Origin { cycle: 12 }, 4))
        .unwrap();

    // The mechanisms stack (generous tolerance at this short horizon).
    assert!(
        aasr.accuracy() > rr.accuracy() - 0.05,
        "AASR {} vs RR {}",
        aasr.accuracy(),
        rr.accuracy()
    );
    assert!(
        origin.accuracy() > aasr.accuracy() - 0.05,
        "Origin {} vs AASR {}",
        origin.accuracy(),
        aasr.accuracy()
    );
    // Origin on harvested energy is competitive with a fully-powered
    // pruned baseline.
    let bl2 = run_baseline(
        BaselineKind::Baseline2,
        sim.models(),
        &short(PolicyKind::NaiveAllOn, 4),
    )
    .unwrap();
    assert!(
        origin.accuracy() > bl2.report.accuracy() - 0.08,
        "Origin {} vs BL-2 {}",
        origin.accuracy(),
        bl2.report.accuracy()
    );
}

#[test]
fn simulation_is_bit_deterministic_across_runs() {
    let models = small_models(5);
    let sim = Simulator::new(Deployment::builder().seed(5).build(), models);
    let config = short(PolicyKind::Origin { cycle: 6 }, 6);
    let a = sim.run(&config).unwrap();
    let b = sim.run(&config).unwrap();
    assert_eq!(a.accuracy(), b.accuracy());
    assert_eq!(a.completions, b.completions);
    assert_eq!(a.messages_sent, b.messages_sent);
    assert_eq!(
        a.final_confidence.update_count(),
        b.final_confidence.update_count()
    );
}

#[test]
fn pruned_models_fit_the_budget_and_power_the_policies() {
    let models = small_models(7);
    for loc in SensorLocation::ALL {
        let lean = models.inference_energy(ModelVariant::Pruned, loc);
        let full = models.inference_energy(ModelVariant::Unpruned, loc);
        assert!(lean <= models.budget(), "{loc} over budget: {lean}");
        assert!(lean < full, "{loc}: pruning must reduce energy");
    }
}

#[test]
fn energy_accounting_is_conserved() {
    let models = small_models(9);
    let sim = Simulator::new(Deployment::builder().seed(9).build(), models);
    let report = sim.run(&short(PolicyKind::NaiveAllOn, 9)).unwrap();
    // Every attempt either completed, suspended, was lost, or never
    // started; completions can never exceed attempts.
    assert!(report.completions <= report.attempts);
    let counted: u64 = report
        .node_counters
        .iter()
        .map(|c| c.completed + c.suspended + c.lost)
        .sum();
    assert!(counted >= report.completions);
    // Naive schedules all three nodes every window.
    assert_eq!(report.attempts, report.windows * 3);
}

#[test]
fn report_windows_are_fully_accounted() {
    let models = small_models(11);
    let sim = Simulator::new(Deployment::builder().seed(11).build(), models);
    for policy in [
        PolicyKind::RoundRobin { cycle: 3 },
        PolicyKind::Aas { cycle: 9 },
        PolicyKind::Origin { cycle: 12 },
    ] {
        let report = sim.run(&short(policy, 12)).unwrap();
        assert_eq!(
            report.confusion.total() + report.no_output_windows,
            report.windows,
            "{policy}: window accounting broken"
        );
        let breakdown = report.completion_breakdown();
        assert!((breakdown.0 + breakdown.1 + breakdown.2 - 1.0).abs() < 1e-9);
    }
}
