//! The facade crate re-exports every subsystem coherently.

use origin_repro::energy::{Capacitor, EnergyCostTable};
use origin_repro::net::{LinkModel, Message};
use origin_repro::nn::{softmax_variance, Mlp};
use origin_repro::sensors::{DatasetSpec, SignatureTable};
use origin_repro::trace::{ConstantPower, PowerSource, WifiOfficeModel};
use origin_repro::types::{
    ActivityClass, Energy, NodeId, Power, SensorLocation, SimDuration, SimTime,
};

#[test]
fn types_flow_across_crate_boundaries() {
    // types → trace
    let source = ConstantPower::new(Power::from_microwatts(40.0));
    let harvested = source.energy_between(SimTime::ZERO, SimTime::from_secs(1));
    // trace → energy
    let mut cap = Capacitor::new(Energy::from_microjoules(100.0));
    cap.charge(harvested);
    assert!(cap.stored() > Energy::ZERO);
    // energy costs → net message sizing
    let costs = EnergyCostTable::default();
    let frame = Message::ClassificationReport {
        node: NodeId::new(0),
        activity: ActivityClass::Walking,
        confidence: 0.1,
    };
    let tx = costs.tx_cost(frame.wire_size());
    assert!(tx > Energy::ZERO && tx < Energy::from_microjoules(10.0));
    let _ = LinkModel::reliable();
}

#[test]
fn sensor_and_nn_stacks_interoperate() {
    let spec = DatasetSpec::mhealth_like();
    assert_eq!(spec.activities.len(), ActivityClass::COUNT);
    let _ = SignatureTable::calibrated().signature(ActivityClass::Cycling, SensorLocation::Chest);
    let mlp = Mlp::new(&[4, 3], 0).expect("valid dims");
    let (label, probs) = mlp.predict(&[0.0; 4]);
    assert!(label < 3);
    assert!(softmax_variance(&probs) >= 0.0);
}

#[test]
fn wifi_model_feeds_the_whole_stack() {
    let trace = WifiOfficeModel::default().generate(1, SimDuration::from_secs(30));
    assert!(trace.mean_power() > Power::ZERO);
    assert_eq!(trace.interval(), SimDuration::from_millis(100));
}
