//! Explore the scheduling design space: sweep ER-r depths and policies on
//! harvested energy and print the accuracy/completion frontier, plus the
//! Fig. 3 slot layouts.
//!
//! Run with: `cargo run --example schedule_explorer --release [seed]`

use origin_repro::core::{
    CoreError, Deployment, ModelBank, PolicyKind, SimConfig, Simulator, SlotKind, Slots,
};
use origin_repro::sensors::DatasetSpec;

fn main() -> Result<(), CoreError> {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    // The Fig. 3 slot structures.
    println!("# extended round-robin layouts (Fig. 3)");
    for cycle in [3u8, 6, 9, 12] {
        let slots = Slots::paper(cycle);
        let layout: String = slots
            .layout()
            .iter()
            .map(|k| match k {
                SlotKind::Sensor { ordinal } => format!("[S{ordinal}]"),
                SlotKind::NoOp => "[--]".to_owned(),
            })
            .collect();
        println!(
            "RR{cycle:<3} duty {:>5.1}%  {layout}",
            slots.duty_fraction() * 100.0
        );
    }

    println!("\ntraining models (seed {seed})...");
    let models = ModelBank::<f64>::train(&DatasetSpec::mhealth_like(), seed)?;
    let sim = Simulator::new(Deployment::builder().seed(seed).build(), models);

    println!("\n# policy frontier on harvested energy (1 simulated hour)");
    println!(
        "{:<14} {:>10} {:>12} {:>10}",
        "policy", "accuracy", "completion", "messages"
    );
    for cycle in [3u8, 6, 9, 12] {
        for policy in [
            PolicyKind::RoundRobin { cycle },
            PolicyKind::Aas { cycle },
            PolicyKind::Aasr { cycle },
            PolicyKind::Origin { cycle },
        ] {
            let report = sim.run(&SimConfig::new(policy).with_seed(seed))?;
            println!(
                "{:<14} {:>9.2}% {:>11.1}% {:>10}",
                policy.label(),
                report.accuracy() * 100.0,
                report.completion_rate() * 100.0,
                report.messages_sent
            );
        }
    }
    println!("\nDeeper cycles harvest longer per attempt; Origin's ensemble");
    println!("turns those sparse attempts into dense, accurate output.");
    Ok(())
}
