//! Quickstart: train the per-sensor classifiers, build the EH deployment,
//! compare the full Origin policy against both fully-powered baselines on
//! one simulated hour of activity, then replicate that comparison over
//! five seeds with the parallel sweep engine.
//!
//! Run with: `cargo run --example quickstart --release`

use origin_repro::bench::sweep::{run_sweep, SweepGrid, SweepOptions, SweepPolicy};
use origin_repro::core::experiments::{Dataset, ExperimentContext};
use origin_repro::core::{
    run_baseline, BaselineKind, CoreError, Deployment, ModelBank, PolicyKind, SimConfig,
};
use origin_repro::sensors::DatasetSpec;
use origin_repro::types::SensorLocation;

fn main() -> Result<(), CoreError> {
    // The workspace's documented default experiment seed.
    let seed = 77;
    println!("training per-sensor classifiers (MHEALTH-like, seed {seed})...");
    let models = ModelBank::<f64>::train(&DatasetSpec::mhealth_like(), seed)?;
    for loc in SensorLocation::ALL {
        let cm = models.validation_confusion(origin_repro::core::ModelVariant::Pruned, loc);
        println!(
            "  {loc:<12} pruned model: {:.1}% validation accuracy, {} per inference",
            cm.accuracy().unwrap_or(0.0) * 100.0,
            models.inference_energy(origin_repro::core::ModelVariant::Pruned, loc),
        );
    }

    let deployment = Deployment::builder().seed(seed).build();
    println!(
        "deployment: WiFi office harvest, mean incident power {}",
        deployment.mean_incident_power()
    );

    let ctx = ExperimentContext::from_parts(Dataset::Mhealth, models.clone(), deployment, seed);
    let sim = ctx.simulator();
    let config = SimConfig::new(PolicyKind::Origin { cycle: 12 }).with_seed(seed);

    println!("\nrunning RR12 Origin on harvested energy...");
    let origin = sim.run(&config)?;
    println!(
        "  RR12 Origin: {:.2}% top-1, {:.1}% of attempts completed",
        origin.accuracy() * 100.0,
        origin.completion_rate() * 100.0
    );

    println!("running the fully-powered baselines...");
    let mut bl2_accuracy = 0.0;
    for kind in [BaselineKind::Baseline2, BaselineKind::Baseline1] {
        let b = run_baseline(kind, &models, &config)?;
        if kind == BaselineKind::Baseline2 {
            bl2_accuracy = b.report.accuracy();
        }
        println!(
            "  {}: {:.2}% top-1 (steady power)",
            kind.label(),
            b.report.accuracy() * 100.0
        );
    }

    let delta = (origin.accuracy() - bl2_accuracy) * 100.0;
    println!(
        "\nOrigin runs entirely on harvested energy and scores {delta:+.2} pp vs the \
         fully-powered BL-2 at this seed."
    );

    // One seed is an anecdote; the sweep engine turns it into a
    // statistic. Training is shared through the context, the grid fans
    // out over all cores, and the report is bitwise identical at any
    // thread count.
    println!("\nreplicating over 5 seeds on the sweep engine...");
    let grid = SweepGrid::new(
        seed,
        vec![
            SweepPolicy::Policy(PolicyKind::Origin { cycle: 12 }),
            SweepPolicy::Baseline(BaselineKind::Baseline2),
        ],
    )
    .with_seeds(5);
    let sweep = run_sweep(
        &ctx,
        &grid,
        &SweepOptions {
            threads: 0, // auto: one worker per core
            ..SweepOptions::default()
        },
    )?;
    println!(
        "  Origin {} vs BL-2 {} (mean ± 95% CI); Origin wins {:.0}% of paired runs \
         (see EXPERIMENTS.md)",
        sweep.accuracy_aggregate(0).fmt_pct(),
        sweep.accuracy_aggregate(1).fmt_pct(),
        sweep.win_rate(0, 1) * 100.0
    );
    Ok(())
}
