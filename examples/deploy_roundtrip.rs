//! The deployment workflow: train → energy-aware prune → quantize →
//! persist → reload → verify the artifact classifies identically. This is
//! what flashing a sensor node with its personalized classifier looks
//! like.
//!
//! Run with: `cargo run --example deploy_roundtrip --release`

use origin_repro::nn::{
    load_classifier, prune_to_energy, quantize_weights, save_classifier, InferenceEnergyModel,
    NnError, SensorClassifier, Trainer,
};
use origin_repro::sensors::{DatasetSpec, HarDataset};
use origin_repro::types::{Energy, SensorLocation};

fn main() -> Result<(), NnError> {
    let spec = DatasetSpec::mhealth_like();
    let location = SensorLocation::Chest;
    let seed = 11;

    // Train.
    let dataset = HarDataset::generate(&spec, seed);
    let train: Vec<(Vec<f64>, usize)> = dataset
        .sensor(location)
        .train
        .iter()
        .map(|s| (s.features.clone(), s.dense_label))
        .collect();
    let test: Vec<(Vec<f64>, usize)> = dataset
        .sensor(location)
        .test
        .iter()
        .map(|s| (s.features.clone(), s.dense_label))
        .collect();
    let trainer = Trainer::new().with_epochs(140).with_label_smoothing(0.1)?;
    let mut clf =
        SensorClassifier::<f64>::train(&[18], &train, spec.activities.clone(), &trainer, seed)?;
    let em = InferenceEnergyModel::default();
    println!(
        "trained:   {:.1}% accuracy, {} per inference",
        clf.evaluate(&test)?.accuracy().unwrap_or(0.0) * 100.0,
        clf.inference_energy(&em)
    );

    // Prune to the harvest budget.
    let norm_train = clf.normalize_data(&train);
    prune_to_energy(
        clf.mlp_mut(),
        &em,
        Energy::from_microjoules(80.0),
        &norm_train,
        &trainer,
        0.15,
        2,
    )?;
    println!(
        "pruned:    {:.1}% accuracy, {} per inference, {:.0}% sparse",
        clf.evaluate(&test)?.accuracy().unwrap_or(0.0) * 100.0,
        clf.inference_energy(&em),
        clf.mlp().sparsity() * 100.0
    );

    // Quantize for the fixed-point NPU.
    let q = quantize_weights(clf.mlp_mut(), 8)?;
    println!(
        "quantized: {:.1}% accuracy at {} bits (rms weight error {:.5})",
        clf.evaluate(&test)?.accuracy().unwrap_or(0.0) * 100.0,
        q.bits,
        q.rms_error
    );

    // Persist and reload — the flashable artifact.
    let mut artifact = Vec::new();
    save_classifier(&clf, &mut artifact)?;
    println!("persisted: {} bytes of flashable model", artifact.len());
    let reloaded = load_classifier(artifact.as_slice())?;
    assert_eq!(clf, reloaded, "round-trip must be bit-exact");

    // Verify behavioural identity on held-out data.
    for (x, _) in test.iter().take(50) {
        assert_eq!(clf.classify(x)?, reloaded.classify(x)?);
    }
    println!("verified:  reloaded model classifies identically on held-out data");
    Ok(())
}
