//! The full on-device HAR pipeline, stage by stage: synthesize IMU
//! windows, extract features, train a classifier, apply energy-aware
//! pruning, and inspect the softmax-variance confidence Origin's ensemble
//! weights by.
//!
//! Run with: `cargo run --example har_pipeline --release`

use origin_repro::nn::{prune_to_energy, InferenceEnergyModel, NnError, SensorClassifier, Trainer};
use origin_repro::sensors::{
    sample_window, window_features, DatasetSpec, HarDataset, UserProfile, FEATURE_DIM,
};
use origin_repro::types::{ActivityClass, Energy, SensorLocation, UserId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), NnError> {
    let spec = DatasetSpec::mhealth_like();
    let location = SensorLocation::LeftAnkle;
    let seed = 7;

    // Stage 1: raw sensing. One window of synthetic ankle IMU data.
    let user = UserProfile::sampled(UserId::new(3), 0.08, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let window = sample_window(&spec, ActivityClass::Running, location, &user, &mut rng);
    println!(
        "stage 1 — sensed {} samples at {} Hz while running",
        window.len(),
        window.sample_rate_hz()
    );

    // Stage 2: feature extraction.
    let features = window_features(&window);
    println!("stage 2 — extracted {FEATURE_DIM} features (means/stds/rhythm per channel)");

    // Stage 3: train the ankle classifier on a generated dataset.
    let dataset = HarDataset::generate(&spec, seed);
    let train: Vec<(Vec<f64>, usize)> = dataset
        .sensor(location)
        .train
        .iter()
        .map(|s| (s.features.clone(), s.dense_label))
        .collect();
    let test: Vec<(Vec<f64>, usize)> = dataset
        .sensor(location)
        .test
        .iter()
        .map(|s| (s.features.clone(), s.dense_label))
        .collect();
    let trainer = Trainer::new().with_epochs(140).with_label_smoothing(0.1)?;
    let mut clf =
        SensorClassifier::<f64>::train(&[24], &train, spec.activities.clone(), &trainer, seed)?;
    let cm = clf.evaluate(&test)?;
    println!(
        "stage 3 — trained {:?} MLP: {:.1}% held-out accuracy",
        clf.mlp().dims(),
        cm.accuracy().unwrap_or(0.0) * 100.0
    );

    // Stage 4: energy-aware pruning to a harvest budget.
    let em = InferenceEnergyModel::default();
    let before = clf.inference_energy(&em);
    let budget = Energy::from_microjoules(80.0);
    let norm_train = clf.normalize_data(&train);
    let report = prune_to_energy(clf.mlp_mut(), &em, budget, &norm_train, &trainer, 0.15, 2)?;
    let cm = clf.evaluate(&test)?;
    println!(
        "stage 4 — pruned {before} -> {} ({:.0}% sparsity, {} rounds): {:.1}% accuracy",
        report.energy_after,
        report.sparsity * 100.0,
        report.iterations,
        cm.accuracy().unwrap_or(0.0) * 100.0
    );

    // Stage 5: classify the stage-1 window and inspect the confidence.
    let result = clf.classify(&features)?;
    println!(
        "stage 5 — classified as {} with softmax-variance confidence {:.4}",
        result.activity, result.confidence
    );
    println!(
        "           softmax: {:?}",
        result
            .probabilities
            .iter()
            .map(|p| (p * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    Ok(())
}
