//! Personalization in action: deploy the stock confidence matrix to a
//! previously-unseen user under 20 dB sensor noise and watch the adaptive
//! ensemble learn their gait (the Fig. 6 scenario, condensed).
//!
//! Run with: `cargo run --example adaptive_user --release`

use origin_repro::core::experiments::{run_fig6, Dataset, ExperimentContext};
use origin_repro::core::CoreError;

fn main() -> Result<(), CoreError> {
    let ctx = ExperimentContext::<f64>::new(Dataset::Mhealth, 42)?;
    println!("training done; adapting to 3 unseen users (20 dB SNR noise)...\n");

    let result = run_fig6(&ctx, 3, 200, 10, 20.0)?;
    println!(
        "base model on clean data: {:.1}% — the reference line",
        result.base_accuracy * 100.0
    );
    println!(
        "\n{:<10} {:>10} {:>12} {:>12}",
        "user", "iters 1-10", "iters 50-100", "iters 150-200"
    );
    for user in &result.users {
        println!(
            "{:<10} {:>9.1}% {:>11.1}% {:>11.1}%",
            user.user.to_string(),
            user.mean_accuracy(0, 10) * 100.0,
            user.mean_accuracy(50, 100) * 100.0,
            user.mean_accuracy(150, 200) * 100.0,
        );
    }
    println!(
        "\nOnly the confidence matrix changes across iterations — no DNN \
         retraining, exactly the paper's constraint for EH nodes."
    );
    Ok(())
}
