//! Pins the zero-allocation guarantee of the steady-state kernels.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after a
//! warm-up call has sized the workspace and compiled the sparse form,
//! repeated inference must perform *zero* heap allocations, and the
//! trainer's per-epoch loop must allocate nothing beyond its fixed
//! per-`fit` setup. The assertions are exact counts, not bounds: one
//! stray `Vec` in the hot path fails the test.
//!
//! The whole suite runs once per kernel scalar (`f64` and `f32`) and
//! once per kernel path (scalar and unrolled): neither the
//! precision-generic refactor nor the block-unrolled kernels may cost
//! any path its guarantee.
//!
//! The counter is a thread-local, not a process-global: the libtest
//! harness's own threads allocate at unpredictable times (event
//! channels, output capture), and a global count intermittently blames
//! those on whatever kernel happens to be inside a measured region.
//! Only allocations made *by the measuring thread* can be the kernel's.

use origin_nn::{KernelPath, Mlp, Scalar, Trainer, Workspace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAllocator;

thread_local! {
    static ALLOCATIONS: Cell<usize> = const { Cell::new(0) };
}

/// Count one allocation against the current thread. `try_with` because
/// the allocator can be re-entered during TLS teardown, when the slot
/// is already destroyed — those late allocations are unmeasurable and
/// irrelevant.
fn count_one() {
    let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Allocation count of `f` on this thread, exact.
fn allocations_in(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.with(|c| c.get());
    f();
    ALLOCATIONS.with(|c| c.get()) - before
}

const DIMS: &[usize] = &[28, 20, 6];

fn pruned_mlp<S: Scalar>(seed: u64) -> Mlp<S> {
    let mut model = Mlp::new(DIMS, seed).expect("valid dims");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC5);
    for layer in model.layers_mut() {
        let mask: Vec<bool> = (0..layer.total_weights())
            .map(|_| rng.gen::<f64>() >= 0.7)
            .collect();
        layer.set_mask(mask);
    }
    model
}

/// The full steady-state battery at one kernel precision and path.
fn assert_steady_state_is_allocation_free<S: Scalar>(path: KernelPath) {
    let mut rng = StdRng::seed_from_u64(3);
    let x: Vec<S> = (0..DIMS[0])
        .map(|_| S::from_f64(rng.gen::<f64>() * 2.0 - 1.0))
        .collect();
    let dense: Mlp<S> = Mlp::new(DIMS, 9).expect("valid dims");
    let pruned: Mlp<S> = pruned_mlp(9);

    // --- Inference: zero allocations after warm-up, independent of the
    // iteration count.
    for (name, model) in [("dense", &dense), ("pruned", &pruned)] {
        let mut ws = Workspace::with_kernel_path(path);
        // Warm-up sizes the workspace and (for the pruned model) builds
        // the compiled sparse form.
        let _ = model.forward_with(&mut ws, &x).expect("width matches");
        let _ = model
            .predict_proba_with(&mut ws, &x)
            .expect("width matches");
        for iterations in [1usize, 100] {
            let count = allocations_in(|| {
                for _ in 0..iterations {
                    let _ = model.forward_with(&mut ws, &x).expect("width matches");
                    let _ = model
                        .predict_proba_with(&mut ws, &x)
                        .expect("width matches");
                }
            });
            assert_eq!(
                count,
                0,
                "{name} {} {} inference allocated {count} times over {iterations} iterations",
                S::DTYPE,
                path.label()
            );
        }
    }

    // --- Batched inference: same guarantee through the batch kernel.
    {
        let xs: Vec<S> = (0..DIMS[0] * 32)
            .map(|_| S::from_f64(rng.gen::<f64>() * 2.0 - 1.0))
            .collect();
        let mut ws = Workspace::with_kernel_path(path);
        let _ = pruned
            .forward_batch_with(&mut ws, &xs)
            .expect("width matches");
        let count = allocations_in(|| {
            for _ in 0..50 {
                let _ = pruned
                    .forward_batch_with(&mut ws, &xs)
                    .expect("width matches");
            }
        });
        assert_eq!(
            count,
            0,
            "batched {} {} inference allocated {count} times",
            S::DTYPE,
            path.label()
        );
    }

    // --- Training: `fit` pays a fixed setup cost (velocities, shuffle
    // order, workspace) but the epoch loop itself must be allocation
    // free, so the total count cannot depend on the epoch count.
    {
        let data: Vec<(Vec<S>, usize)> = (0..48)
            .map(|i| {
                let features: Vec<S> = (0..DIMS[0])
                    .map(|_| S::from_f64(rng.gen::<f64>() * 2.0 - 1.0))
                    .collect();
                (features, i % DIMS[DIMS.len() - 1])
            })
            .collect();
        let counts: Vec<usize> = [1usize, 9]
            .iter()
            .map(|&epochs| {
                let trainer = Trainer::new()
                    .with_epochs(epochs)
                    .with_seed(7)
                    .with_kernel_path(path);
                let mut model: Mlp<S> = Mlp::new(DIMS, 11).expect("valid dims");
                allocations_in(|| {
                    let _ = trainer.fit(&mut model, &data).expect("fits");
                })
            })
            .collect();
        assert_eq!(
            counts[0],
            counts[1],
            "per-epoch {} {} allocations detected: 1 epoch = {} allocs, 9 epochs = {} allocs",
            S::DTYPE,
            path.label(),
            counts[0],
            counts[1]
        );
    }
}

#[test]
fn steady_state_kernels_do_not_allocate() {
    for path in [KernelPath::Scalar, KernelPath::Unrolled] {
        assert_steady_state_is_allocation_free::<f64>(path);
        assert_steady_state_is_allocation_free::<f32>(path);
    }
}
