//! Pins the zero-allocation guarantee of the steady-state kernels.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after a
//! warm-up call has sized the workspace and compiled the sparse form,
//! repeated inference must perform *zero* heap allocations, and the
//! trainer's per-epoch loop must allocate nothing beyond its fixed
//! per-`fit` setup. The assertions are exact counts, not bounds: one
//! stray `Vec` in the hot path fails the test.
//!
//! Everything runs inside a single `#[test]` — the harness runs tests
//! on separate threads, and the counter is process-global.

use origin_nn::{Mlp, Trainer, Workspace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Allocation count of `f`, exact.
fn allocations_in(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

const DIMS: &[usize] = &[28, 20, 6];

fn pruned_mlp(seed: u64) -> Mlp {
    let mut model = Mlp::new(DIMS, seed).expect("valid dims");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC5);
    for layer in model.layers_mut() {
        let mask: Vec<bool> = (0..layer.total_weights())
            .map(|_| rng.gen::<f64>() >= 0.7)
            .collect();
        layer.set_mask(mask);
    }
    model
}

#[test]
fn steady_state_kernels_do_not_allocate() {
    let mut rng = StdRng::seed_from_u64(3);
    let x: Vec<f64> = (0..DIMS[0]).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
    let dense = Mlp::new(DIMS, 9).expect("valid dims");
    let pruned = pruned_mlp(9);

    // --- Inference: zero allocations after warm-up, independent of the
    // iteration count.
    for (name, model) in [("dense", &dense), ("pruned", &pruned)] {
        let mut ws = Workspace::new();
        // Warm-up sizes the workspace and (for the pruned model) builds
        // the compiled sparse form.
        let _ = model.forward_with(&mut ws, &x).expect("width matches");
        let _ = model
            .predict_proba_with(&mut ws, &x)
            .expect("width matches");
        for iterations in [1usize, 100] {
            let count = allocations_in(|| {
                for _ in 0..iterations {
                    let _ = model.forward_with(&mut ws, &x).expect("width matches");
                    let _ = model
                        .predict_proba_with(&mut ws, &x)
                        .expect("width matches");
                }
            });
            assert_eq!(
                count, 0,
                "{name} inference allocated {count} times over {iterations} iterations"
            );
        }
    }

    // --- Batched inference: same guarantee through the batch kernel.
    {
        let xs: Vec<f64> = (0..DIMS[0] * 32)
            .map(|_| rng.gen::<f64>() * 2.0 - 1.0)
            .collect();
        let mut ws = Workspace::new();
        let _ = pruned
            .forward_batch_with(&mut ws, &xs)
            .expect("width matches");
        let count = allocations_in(|| {
            for _ in 0..50 {
                let _ = pruned
                    .forward_batch_with(&mut ws, &xs)
                    .expect("width matches");
            }
        });
        assert_eq!(count, 0, "batched inference allocated {count} times");
    }

    // --- Training: `fit` pays a fixed setup cost (velocities, shuffle
    // order, workspace) but the epoch loop itself must be allocation
    // free, so the total count cannot depend on the epoch count.
    {
        let data: Vec<(Vec<f64>, usize)> = (0..48)
            .map(|i| {
                let features: Vec<f64> =
                    (0..DIMS[0]).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
                (features, i % DIMS[DIMS.len() - 1])
            })
            .collect();
        let counts: Vec<usize> = [1usize, 9]
            .iter()
            .map(|&epochs| {
                let trainer = Trainer::new().with_epochs(epochs).with_seed(7);
                let mut model = Mlp::new(DIMS, 11).expect("valid dims");
                allocations_in(|| {
                    let _ = trainer.fit(&mut model, &data).expect("fits");
                })
            })
            .collect();
        assert_eq!(
            counts[0], counts[1],
            "per-epoch allocations detected: 1 epoch = {} allocs, 9 epochs = {} allocs",
            counts[0], counts[1]
        );
    }
}
