//! Property tests pinning the sparse/batched kernels to the dense path.
//!
//! The compiled sparse (CSR-style) form and the batched forward kernel
//! are pure layout optimizations: for every mask, shape and input they
//! must reproduce the dense masked arithmetic *bitwise*, not just
//! approximately — the repository's golden results depend on it.

use origin_nn::{Mlp, Workspace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small random MLP with every layer masked by `keep_prob`.
fn masked_mlp(dims: &[usize], seed: u64, keep_prob: f64) -> Mlp {
    let mut model = Mlp::new(dims, seed).expect("valid dims");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x51C);
    for layer in model.layers_mut() {
        let mask: Vec<bool> = (0..layer.total_weights())
            .map(|_| rng.gen::<f64>() < keep_prob)
            .collect();
        layer.set_mask(mask);
    }
    model
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    /// Pruned forward (compiled sparse form) == dense masked forward,
    /// bitwise, for arbitrary shapes, masks and inputs.
    #[test]
    fn pruned_csr_forward_matches_dense_masked_bitwise(
        ins in 1usize..12,
        hidden in 1usize..10,
        outs in 2usize..6,
        seed in 0u64..500,
        keep_prob in 0.0f64..1.0,
        input_seed in 0u64..500,
    ) {
        let model = masked_mlp(&[ins, hidden, outs], seed, keep_prob);
        let mut rng = StdRng::seed_from_u64(input_seed);
        let x: Vec<f64> = (0..ins).map(|_| rng.gen::<f64>() * 4.0 - 2.0).collect();

        // Dense-masked reference: the plain matvec over the mask-zeroed
        // weight matrix (the layer's own kernel never consulted), with
        // ReLU on all but the last layer, matching `Mlp::forward`.
        let mut reference = x.clone();
        let last = model.layers().len() - 1;
        for (i, layer) in model.layers().iter().enumerate() {
            let mut y = layer.weights().matvec(&reference);
            for (yi, bi) in y.iter_mut().zip(layer.bias()) {
                *yi += bi;
            }
            if i < last {
                for v in &mut y {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
            }
            reference = y;
        }

        let sparse = model.forward(&x).expect("width matches");
        prop_assert_eq!(bits(&sparse), bits(&reference));

        // And through the reusable-workspace entry point.
        let mut ws = Workspace::new();
        let with_ws = model.forward_with(&mut ws, &x).expect("width matches");
        prop_assert_eq!(bits(with_ws), bits(&reference));
    }

    /// Batched forward == per-example forward, bitwise, including on
    /// pruned models (the batched kernel reuses the sparse form).
    #[test]
    fn batched_forward_matches_single_bitwise(
        ins in 1usize..10,
        outs in 2usize..6,
        batch in 1usize..9,
        seed in 0u64..500,
        keep_prob in 0.0f64..1.0,
        input_seed in 0u64..500,
    ) {
        let model = masked_mlp(&[ins, ins + 2, outs], seed, keep_prob);
        let mut rng = StdRng::seed_from_u64(input_seed);
        let xs: Vec<f64> = (0..ins * batch).map(|_| rng.gen::<f64>() * 4.0 - 2.0).collect();

        let mut ws = Workspace::new();
        let batched = model
            .forward_batch_with(&mut ws, &xs)
            .expect("width matches")
            .to_vec();
        prop_assert_eq!(batched.len(), batch * outs);

        let mut ws1 = Workspace::new();
        for e in 0..batch {
            let single = model
                .forward_with(&mut ws1, &xs[e * ins..(e + 1) * ins])
                .expect("width matches");
            prop_assert_eq!(bits(single), bits(&batched[e * outs..(e + 1) * outs]));
        }
    }

    /// `set_mask_preserving_weights` never changes what forward computes
    /// when the stored weights already satisfy the mask.
    #[test]
    fn mask_preserving_install_keeps_forward_bitwise(
        ins in 1usize..10,
        outs in 2usize..6,
        seed in 0u64..500,
        keep_prob in 0.0f64..1.0,
        input_seed in 0u64..500,
    ) {
        let mut model = masked_mlp(&[ins, outs], seed, keep_prob);
        let mut rng = StdRng::seed_from_u64(input_seed);
        let x: Vec<f64> = (0..ins).map(|_| rng.gen::<f64>() * 4.0 - 2.0).collect();
        let before = model.forward(&x).expect("width matches");

        // Reinstall each layer's own mask via the persistence path.
        for layer in model.layers_mut() {
            let mask = layer.mask().expect("masked").to_vec();
            layer.set_mask_preserving_weights(mask);
        }
        let after = model.forward(&x).expect("width matches");
        prop_assert_eq!(bits(&before), bits(&after));
    }
}
