//! Property tests pinning the sparse/batched kernels to the dense path.
//!
//! The compiled sparse (CSR-style) form and the batched forward kernel
//! are pure layout optimizations: for every mask, shape and input they
//! must reproduce the dense masked arithmetic *bitwise*, not just
//! approximately — the repository's golden results depend on it.

use origin_nn::{KernelPath, Mlp, Trainer, Workspace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small random MLP with every layer masked by `keep_prob`.
fn masked_mlp(dims: &[usize], seed: u64, keep_prob: f64) -> Mlp {
    let mut model = Mlp::new(dims, seed).expect("valid dims");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x51C);
    for layer in model.layers_mut() {
        let mask: Vec<bool> = (0..layer.total_weights())
            .map(|_| rng.gen::<f64>() < keep_prob)
            .collect();
        layer.set_mask(mask);
    }
    model
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    /// Pruned forward (compiled sparse form) == dense masked forward,
    /// bitwise, for arbitrary shapes, masks and inputs.
    #[test]
    fn pruned_csr_forward_matches_dense_masked_bitwise(
        ins in 1usize..12,
        hidden in 1usize..10,
        outs in 2usize..6,
        seed in 0u64..500,
        keep_prob in 0.0f64..1.0,
        input_seed in 0u64..500,
    ) {
        let model = masked_mlp(&[ins, hidden, outs], seed, keep_prob);
        let mut rng = StdRng::seed_from_u64(input_seed);
        let x: Vec<f64> = (0..ins).map(|_| rng.gen::<f64>() * 4.0 - 2.0).collect();

        // Dense-masked reference: the plain matvec over the mask-zeroed
        // weight matrix (the layer's own kernel never consulted), with
        // ReLU on all but the last layer, matching `Mlp::forward`.
        let mut reference = x.clone();
        let last = model.layers().len() - 1;
        for (i, layer) in model.layers().iter().enumerate() {
            let mut y = layer.weights().matvec(&reference);
            for (yi, bi) in y.iter_mut().zip(layer.bias()) {
                *yi += bi;
            }
            if i < last {
                for v in &mut y {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
            }
            reference = y;
        }

        let sparse = model.forward(&x).expect("width matches");
        prop_assert_eq!(bits(&sparse), bits(&reference));

        // And through the reusable-workspace entry point.
        let mut ws = Workspace::new();
        let with_ws = model.forward_with(&mut ws, &x).expect("width matches");
        prop_assert_eq!(bits(with_ws), bits(&reference));
    }

    /// Batched forward == per-example forward, bitwise, including on
    /// pruned models (the batched kernel reuses the sparse form).
    #[test]
    fn batched_forward_matches_single_bitwise(
        ins in 1usize..10,
        outs in 2usize..6,
        batch in 1usize..9,
        seed in 0u64..500,
        keep_prob in 0.0f64..1.0,
        input_seed in 0u64..500,
    ) {
        let model = masked_mlp(&[ins, ins + 2, outs], seed, keep_prob);
        let mut rng = StdRng::seed_from_u64(input_seed);
        let xs: Vec<f64> = (0..ins * batch).map(|_| rng.gen::<f64>() * 4.0 - 2.0).collect();

        let mut ws = Workspace::new();
        let batched = model
            .forward_batch_with(&mut ws, &xs)
            .expect("width matches")
            .to_vec();
        prop_assert_eq!(batched.len(), batch * outs);

        let mut ws1 = Workspace::new();
        for e in 0..batch {
            let single = model
                .forward_with(&mut ws1, &xs[e * ins..(e + 1) * ins])
                .expect("width matches");
            prop_assert_eq!(bits(single), bits(&batched[e * outs..(e + 1) * outs]));
        }
    }

    /// The unrolled kernel path == the scalar reference, bitwise, for
    /// arbitrary shapes (including remainder tails where rows % LANES
    /// != 0), masks and inputs, through the forward, batched-forward
    /// and dense-matvec entry points.
    #[test]
    fn unrolled_path_matches_scalar_bitwise(
        ins in 1usize..24,
        hidden in 1usize..20,
        outs in 2usize..11,
        batch in 1usize..10,
        seed in 0u64..500,
        keep_prob in 0.0f64..1.0,
        input_seed in 0u64..500,
    ) {
        let model = masked_mlp(&[ins, hidden, outs], seed, keep_prob);
        let mut rng = StdRng::seed_from_u64(input_seed);
        let xs: Vec<f64> = (0..ins * batch).map(|_| rng.gen::<f64>() * 4.0 - 2.0).collect();

        // Single-example forward, both paths.
        let mut ws_s = Workspace::with_kernel_path(KernelPath::Scalar);
        let mut ws_u = Workspace::with_kernel_path(KernelPath::Unrolled);
        let scalar = model.forward_with(&mut ws_s, &xs[..ins]).expect("width matches").to_vec();
        let unrolled = model.forward_with(&mut ws_u, &xs[..ins]).expect("width matches");
        prop_assert_eq!(bits(&scalar), bits(unrolled));

        // Batched forward, both paths.
        let scalar_b = model.forward_batch_with(&mut ws_s, &xs).expect("width matches").to_vec();
        let unrolled_b = model.forward_batch_with(&mut ws_u, &xs).expect("width matches");
        prop_assert_eq!(bits(&scalar_b), bits(unrolled_b));

        // Raw dense kernels (unmasked weights; covers transposed too).
        let layer0 = &model.layers()[0];
        let mut out_s = vec![0.0; hidden];
        let mut out_u = vec![0.0; hidden];
        layer0.weights().matvec_into_path(&xs[..ins], &mut out_s, KernelPath::Scalar);
        layer0.weights().matvec_into_path(&xs[..ins], &mut out_u, KernelPath::Unrolled);
        prop_assert_eq!(bits(&out_s), bits(&out_u));
        let dy: Vec<f64> = (0..hidden).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
        let mut dx_s = vec![0.0; ins];
        let mut dx_u = vec![0.0; ins];
        layer0.weights().matvec_transposed_into_path(&dy, &mut dx_s, KernelPath::Scalar);
        layer0.weights().matvec_transposed_into_path(&dy, &mut dx_u, KernelPath::Unrolled);
        prop_assert_eq!(bits(&dx_s), bits(&dx_u));
    }

    /// A whole training run on the unrolled path == the scalar path,
    /// bitwise: identical final loss and identical final models.
    #[test]
    fn training_paths_match_bitwise(
        ins in 1usize..10,
        outs in 2usize..6,
        n in 4usize..20,
        seed in 0u64..200,
        keep_prob in 0.0f64..1.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7A1);
        let data: Vec<(Vec<f64>, usize)> = (0..n)
            .map(|i| ((0..ins).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect(), i % outs))
            .collect();
        let mut scalar = masked_mlp(&[ins, ins + 3, outs], seed, keep_prob);
        let mut unrolled = scalar.clone();
        let loss_s = Trainer::new()
            .with_epochs(3)
            .with_seed(seed)
            .with_kernel_path(KernelPath::Scalar)
            .fit(&mut scalar, &data)
            .expect("fits");
        let loss_u = Trainer::new()
            .with_epochs(3)
            .with_seed(seed)
            .with_kernel_path(KernelPath::Unrolled)
            .fit(&mut unrolled, &data)
            .expect("fits");
        prop_assert_eq!(loss_s.to_bits(), loss_u.to_bits());
        let x: Vec<f64> = (0..ins).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
        let out_s = scalar.forward(&x).expect("width matches");
        let out_u = unrolled.forward(&x).expect("width matches");
        prop_assert_eq!(bits(&out_s), bits(&out_u));
    }

    /// `set_mask_preserving_weights` never changes what forward computes
    /// when the stored weights already satisfy the mask.
    #[test]
    fn mask_preserving_install_keeps_forward_bitwise(
        ins in 1usize..10,
        outs in 2usize..6,
        seed in 0u64..500,
        keep_prob in 0.0f64..1.0,
        input_seed in 0u64..500,
    ) {
        let mut model = masked_mlp(&[ins, outs], seed, keep_prob);
        let mut rng = StdRng::seed_from_u64(input_seed);
        let x: Vec<f64> = (0..ins).map(|_| rng.gen::<f64>() * 4.0 - 2.0).collect();
        let before = model.forward(&x).expect("width matches");

        // Reinstall each layer's own mask via the persistence path.
        for layer in model.layers_mut() {
            let mask = layer.mask().expect("masked").to_vec();
            layer.set_mask_preserving_weights(mask);
        }
        let after = model.forward(&x).expect("width matches");
        prop_assert_eq!(bits(&before), bits(&after));
    }
}
