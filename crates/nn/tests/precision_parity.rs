//! Property tests pinning the `f32` compute path to the `f64` reference.
//!
//! The `Scalar` abstraction promises that `f32` is the *same algorithm*
//! at a narrower width: identical reduction order, identical RNG draws
//! (always taken at `f64` and narrowed), identical sparsity layout. These
//! tests quantify what that buys: forward logits and softmax outputs stay
//! within a small tolerance of the `f64` reference, predictions agree
//! whenever the `f64` margin is not razor-thin, and the `f32` CSR kernel
//! reproduces the dense masked arithmetic bitwise (the same invariant the
//! `f64` goldens rely on).

use origin_nn::{KernelPath, Mlp, Scalar, Trainer, Workspace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small random MLP at precision `S` with every layer masked by
/// `keep_prob`; one seed produces structurally identical models at every
/// precision (same draws, same masks).
fn masked_mlp<S: Scalar>(dims: &[usize], seed: u64, keep_prob: f64) -> Mlp<S> {
    let mut model = Mlp::<S>::new(dims, seed).expect("valid dims");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x51C);
    for layer in model.layers_mut() {
        let mask: Vec<bool> = (0..layer.total_weights())
            .map(|_| rng.gen::<f64>() < keep_prob)
            .collect();
        layer.set_mask(mask);
    }
    model
}

/// The shared random input, materialized at both precisions from the
/// same `f64` draws.
fn paired_input(n: usize, seed: u64) -> (Vec<f64>, Vec<f32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let wide: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 4.0 - 2.0).collect();
    let narrow: Vec<f32> = wide.iter().map(|&v| v as f32).collect();
    (wide, narrow)
}

fn bits32(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|v| v.to_bits()).collect()
}

/// Index of the largest element (ties to the first, both precisions).
fn argmax<S: Scalar>(xs: &[S]) -> usize {
    let mut best = 0;
    for (i, v) in xs.iter().enumerate() {
        if *v > xs[best] {
            best = i;
        }
    }
    best
}

proptest! {
    /// `f32` forward logits track the `f64` reference within a narrow
    /// absolute tolerance, and the predicted class agrees whenever the
    /// `f64` top-two margin is not inside that tolerance band.
    #[test]
    fn f32_forward_tracks_f64_reference(
        ins in 1usize..10,
        hidden in 1usize..8,
        outs in 2usize..6,
        seed in 0u64..500,
        keep_prob in 0.0f64..1.0,
        input_seed in 0u64..500,
    ) {
        let wide = masked_mlp::<f64>(&[ins, hidden, outs], seed, keep_prob);
        let narrow = masked_mlp::<f32>(&[ins, hidden, outs], seed, keep_prob);
        let (x64, x32) = paired_input(ins, input_seed);

        let y64 = wide.forward(&x64).expect("width matches");
        let y32 = narrow.forward(&x32).expect("width matches");
        prop_assert_eq!(y64.len(), y32.len());

        const TOL: f64 = 1e-3;
        for (a, b) in y64.iter().zip(&y32) {
            prop_assert!(
                (a - f64::from(*b)).abs() < TOL,
                "logit diverged: f64 {a} vs f32 {b}"
            );
        }

        let top = argmax(&y64);
        let margin = y64
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != top)
            .map(|(_, v)| y64[top] - v)
            .fold(f64::INFINITY, f64::min);
        if margin > 2.0 * TOL {
            prop_assert_eq!(
                top,
                argmax(&y32),
                "classification flipped outside the tie band (margin {})",
                margin
            );
        }
    }

    /// Softmax probabilities diverge by at most a small L1 distance — the
    /// confidence scores the ensemble consumes are precision-stable.
    #[test]
    fn f32_softmax_divergence_is_bounded(
        ins in 1usize..10,
        outs in 2usize..6,
        seed in 0u64..500,
        keep_prob in 0.0f64..1.0,
        input_seed in 0u64..500,
    ) {
        let wide = masked_mlp::<f64>(&[ins, ins + 2, outs], seed, keep_prob);
        let narrow = masked_mlp::<f32>(&[ins, ins + 2, outs], seed, keep_prob);
        let (x64, x32) = paired_input(ins, input_seed);

        let p64 = wide.predict_proba(&x64).expect("width matches");
        let p32 = narrow.predict_proba(&x32).expect("width matches");
        let l1: f64 = p64
            .iter()
            .zip(&p32)
            .map(|(a, b)| (a - f64::from(*b)).abs())
            .sum();
        prop_assert!(l1 < 1e-3, "softmax L1 divergence {l1}");
        let sum: f32 = p32.iter().sum();
        prop_assert!((f64::from(sum) - 1.0).abs() < 1e-5, "f32 sum {sum}");
    }

    /// The `f32` CSR kernel is bitwise against the dense masked reference
    /// — layout optimizations stay exact at every precision, not just on
    /// the `f64` golden path.
    #[test]
    fn f32_pruned_csr_matches_dense_masked_bitwise(
        ins in 1usize..12,
        hidden in 1usize..10,
        outs in 2usize..6,
        seed in 0u64..500,
        keep_prob in 0.0f64..1.0,
        input_seed in 0u64..500,
    ) {
        let model = masked_mlp::<f32>(&[ins, hidden, outs], seed, keep_prob);
        let (_, x) = paired_input(ins, input_seed);

        // Dense-masked reference: the plain matvec over the mask-zeroed
        // weight matrix, ReLU on all but the last layer, exactly as in
        // the f64 golden-parity suite.
        let mut reference = x.clone();
        let last = model.layers().len() - 1;
        for (i, layer) in model.layers().iter().enumerate() {
            let mut y = layer.weights().matvec(&reference);
            for (yi, bi) in y.iter_mut().zip(layer.bias()) {
                *yi += bi;
            }
            if i < last {
                for v in &mut y {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
            }
            reference = y;
        }

        let sparse = model.forward(&x).expect("width matches");
        prop_assert_eq!(bits32(&sparse), bits32(&reference));

        let mut ws = Workspace::new();
        let with_ws = model.forward_with(&mut ws, &x).expect("width matches");
        prop_assert_eq!(bits32(with_ws), bits32(&reference));
    }

    /// The `f32` unrolled kernel path (8-wide row blocks) == the `f32`
    /// scalar reference, bitwise, for arbitrary shapes — including
    /// remainder tails where rows % 8 != 0 — masks, batch sizes and a
    /// short training run. The same invariant the `f64` suite pins at
    /// its 4-wide width.
    #[test]
    fn f32_unrolled_path_matches_scalar_bitwise(
        ins in 1usize..24,
        hidden in 1usize..20,
        outs in 2usize..11,
        batch in 1usize..10,
        seed in 0u64..500,
        keep_prob in 0.0f64..1.0,
        input_seed in 0u64..500,
    ) {
        let model = masked_mlp::<f32>(&[ins, hidden, outs], seed, keep_prob);
        let (_, xs) = paired_input(ins * batch, input_seed);

        let mut ws_s = Workspace::with_kernel_path(KernelPath::Scalar);
        let mut ws_u = Workspace::with_kernel_path(KernelPath::Unrolled);
        let scalar = model.forward_with(&mut ws_s, &xs[..ins]).expect("width matches").to_vec();
        let unrolled = model.forward_with(&mut ws_u, &xs[..ins]).expect("width matches");
        prop_assert_eq!(bits32(&scalar), bits32(unrolled));

        let scalar_b = model.forward_batch_with(&mut ws_s, &xs).expect("width matches").to_vec();
        let unrolled_b = model.forward_batch_with(&mut ws_u, &xs).expect("width matches");
        prop_assert_eq!(bits32(&scalar_b), bits32(unrolled_b));

        let mut rng = StdRng::seed_from_u64(input_seed ^ 0xB7);
        let data: Vec<(Vec<f32>, usize)> = (0..8)
            .map(|i| {
                let x: Vec<f32> = (0..ins).map(|_| (rng.gen::<f64>() * 2.0 - 1.0) as f32).collect();
                (x, i % outs)
            })
            .collect();
        let mut m_s = model.clone();
        let mut m_u = model.clone();
        let loss_s = Trainer::new()
            .with_epochs(2)
            .with_seed(seed)
            .with_kernel_path(KernelPath::Scalar)
            .fit(&mut m_s, &data)
            .expect("fits");
        let loss_u = Trainer::new()
            .with_epochs(2)
            .with_seed(seed)
            .with_kernel_path(KernelPath::Unrolled)
            .fit(&mut m_u, &data)
            .expect("fits");
        prop_assert_eq!(loss_s.to_bits(), loss_u.to_bits());
        let out_s = m_s.forward(&xs[..ins]).expect("width matches");
        let out_u = m_u.forward(&xs[..ins]).expect("width matches");
        prop_assert_eq!(bits32(&out_s), bits32(&out_u));
    }

    /// Training at `f32` stays in lockstep with `f64` on an easy problem:
    /// after a few epochs both precisions classify the separable training
    /// points identically.
    #[test]
    fn f32_training_agrees_on_separable_data(
        seed in 0u64..100,
        spread in 1.0f64..3.0,
    ) {
        let data64: Vec<(Vec<f64>, usize)> = (0..24)
            .map(|i| {
                let label = i % 2;
                let x = (label as f64 * 2.0 - 1.0) * spread + (i as f64) * 0.01;
                (vec![x], label)
            })
            .collect();
        let data32: Vec<(Vec<f32>, usize)> = data64
            .iter()
            .map(|(x, l)| (x.iter().map(|&v| v as f32).collect(), *l))
            .collect();

        let trainer = Trainer::new().with_epochs(120).with_seed(seed);
        let mut wide = Mlp::<f64>::new(&[1, 4, 2], seed).expect("valid dims");
        let mut narrow = Mlp::<f32>::new(&[1, 4, 2], seed).expect("valid dims");
        trainer.fit(&mut wide, &data64).expect("valid data");
        trainer.fit(&mut narrow, &data32).expect("valid data");

        for ((x64, label), (x32, _)) in data64.iter().zip(&data32) {
            let p64 = wide.predict_proba(x64).expect("width matches");
            let p32 = narrow.predict_proba(x32).expect("width matches");
            prop_assert_eq!(argmax(&p64), *label);
            prop_assert_eq!(argmax(&p32), *label);
        }
    }
}
