//! Property tests for the NN engine.

use origin_nn::{softmax_variance, ConfusionMatrix, Matrix, Mlp, Normalizer};
use proptest::prelude::*;

proptest! {
    #[test]
    fn predict_proba_is_a_distribution(
        dims_seed in 0u64..1_000,
        input in proptest::collection::vec(-100.0f64..100.0, 5),
    ) {
        let mlp = Mlp::new(&[5, 7, 4], dims_seed).expect("valid dims");
        let proba = mlp.predict_proba(&input).expect("width matches");
        prop_assert_eq!(proba.len(), 4);
        let sum: f64 = proba.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
        prop_assert!(proba.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn softmax_variance_is_bounded(
        probs in proptest::collection::vec(0.0f64..1.0, 2..10),
    ) {
        // Normalize into a distribution first.
        let sum: f64 = probs.iter().sum();
        prop_assume!(sum > 1e-9);
        let probs: Vec<f64> = probs.iter().map(|p| p / sum).collect();
        let v = softmax_variance(&probs);
        let k = probs.len() as f64;
        // Maximum variance is achieved by a one-hot vector.
        let max_var = (1.0 - 1.0 / k).powi(2) / k + (k - 1.0) * (1.0 / k).powi(2) / k;
        prop_assert!(v >= 0.0);
        prop_assert!(v <= max_var + 1e-9, "v = {v} > {max_var}");
    }

    #[test]
    fn matvec_is_linear(
        rows in 1usize..6,
        cols in 1usize..6,
        scale in -3.0f64..3.0,
        seed in 0u64..1_000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..rows * cols).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let x: Vec<f64> = (0..cols).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let m = Matrix::from_vec(rows, cols, data);
        let y = m.matvec(&x);
        let x_scaled: Vec<f64> = x.iter().map(|v| v * scale).collect();
        let y_scaled = m.matvec(&x_scaled);
        for (a, b) in y.iter().zip(&y_scaled) {
            prop_assert!((a * scale - b).abs() < 1e-9);
        }
    }

    #[test]
    fn normalizer_output_is_standardized(
        samples in proptest::collection::vec(
            proptest::collection::vec(-1e3f64..1e3, 3),
            2..40,
        ),
    ) {
        let norm = Normalizer::fit(samples.iter().map(Vec::as_slice)).expect("non-empty");
        let transformed: Vec<Vec<f64>> = samples.iter().map(|s| norm.transform(s)).collect();
        let n = transformed.len() as f64;
        for dim in 0..3 {
            let mean: f64 = transformed.iter().map(|t| t[dim]).sum::<f64>() / n;
            prop_assert!(mean.abs() < 1e-6, "dim {dim} mean {mean}");
            let var: f64 = transformed.iter().map(|t| (t[dim] - mean).powi(2)).sum::<f64>() / n;
            // Either standardized to unit variance or constant (passed through).
            prop_assert!(var < 1.0 + 1e-6, "dim {dim} var {var}");
        }
    }

    #[test]
    fn confusion_accuracy_is_bounded(
        observations in proptest::collection::vec((0usize..4, 0usize..4), 1..100),
    ) {
        let mut cm = ConfusionMatrix::new(4);
        for (truth, pred) in &observations {
            cm.record(*truth, *pred);
        }
        let acc = cm.accuracy().expect("non-empty");
        prop_assert!((0.0..=1.0).contains(&acc));
        prop_assert_eq!(cm.total() as usize, observations.len());
        // Merging with itself doubles everything and keeps accuracy.
        let mut doubled = cm.clone();
        doubled.merge(&cm);
        prop_assert_eq!(doubled.total(), cm.total() * 2);
        prop_assert!((doubled.accuracy().unwrap() - acc).abs() < 1e-12);
    }

    #[test]
    fn masks_only_shrink_active_weights(
        seed in 0u64..1_000,
        mask_bits in proptest::collection::vec(proptest::bool::ANY, 12),
    ) {
        let mut mlp = Mlp::<f64>::new(&[3, 4], seed).expect("valid dims");
        let before = mlp.active_weights();
        mlp.layers_mut()[0].set_mask(mask_bits.clone());
        let after = mlp.active_weights();
        prop_assert!(after <= before);
        prop_assert_eq!(after, mask_bits.iter().filter(|&&b| b).count());
        let sparsity = mlp.sparsity();
        prop_assert!((0.0..=1.0).contains(&sparsity));
    }
}
