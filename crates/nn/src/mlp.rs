//! Multi-layer perceptron with ReLU hidden activations and softmax output.

use crate::error::NnError;
use crate::layer::{relu, softmax, Dense};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A feed-forward classifier network.
///
/// Hidden layers use ReLU; the output layer produces logits which
/// [`Mlp::predict_proba`] turns into a softmax distribution. Architectures
/// are given as layer widths, e.g. `[28, 20, 6]` = 28 features → 20 hidden
/// units → 6 classes.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<Dense>,
    dims: Vec<usize>,
}

impl Mlp {
    /// A randomly initialized network with the given layer widths.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadArchitecture`] when fewer than two widths are
    /// given or any width is zero.
    pub fn new(dims: &[usize], seed: u64) -> Result<Self, NnError> {
        if dims.len() < 2 || dims.contains(&0) {
            return Err(NnError::BadArchitecture(dims.to_vec()));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = dims
            .windows(2)
            .map(|w| Dense::init(w[0], w[1], &mut rng))
            .collect();
        Ok(Self {
            layers,
            dims: dims.to_vec(),
        })
    }

    /// Layer widths, input first.
    #[must_use]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Input feature width.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.dims[0]
    }

    /// Number of output classes.
    #[must_use]
    pub fn output_dim(&self) -> usize {
        *self.dims.last().expect("dims has >= 2 entries")
    }

    /// The layers, input-side first.
    #[must_use]
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Mutable layer access (used by the pruner and trainer).
    pub fn layers_mut(&mut self) -> &mut [Dense] {
        &mut self.layers
    }

    /// Total number of active (unpruned) weights across all layers.
    #[must_use]
    pub fn active_weights(&self) -> usize {
        self.layers.iter().map(Dense::active_weights).sum()
    }

    /// Total dense weight count.
    #[must_use]
    pub fn total_weights(&self) -> usize {
        self.layers.iter().map(Dense::total_weights).sum()
    }

    /// Multiply-accumulate operations per inference, counting only active
    /// weights — the quantity the energy model charges for.
    #[must_use]
    pub fn macs(&self) -> usize {
        self.active_weights()
    }

    /// Forward pass returning raw logits.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::DimensionMismatch`] when `x` has the wrong width.
    pub fn forward(&self, x: &[f64]) -> Result<Vec<f64>, NnError> {
        if x.len() != self.input_dim() {
            return Err(NnError::DimensionMismatch {
                expected: self.input_dim(),
                actual: x.len(),
            });
        }
        let mut activation = x.to_vec();
        for (i, layer) in self.layers.iter().enumerate() {
            activation = layer.forward(&activation);
            if i + 1 < self.layers.len() {
                relu(&mut activation);
            }
        }
        Ok(activation)
    }

    /// Forward pass caching every layer's pre-activation and activation —
    /// the trainer's workhorse. Returns `(pre_activations, activations)`
    /// where `activations[0]` is the input itself.
    pub(crate) fn forward_cached(&self, x: &[f64]) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let mut pre = Vec::with_capacity(self.layers.len());
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(x.to_vec());
        for (i, layer) in self.layers.iter().enumerate() {
            let z = layer.forward(acts.last().expect("non-empty"));
            pre.push(z.clone());
            let mut a = z;
            if i + 1 < self.layers.len() {
                relu(&mut a);
            }
            acts.push(a);
        }
        (pre, acts)
    }

    /// Softmax class distribution for `x`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::DimensionMismatch`] when `x` has the wrong width.
    pub fn predict_proba(&self, x: &[f64]) -> Result<Vec<f64>, NnError> {
        Ok(softmax(&self.forward(x)?))
    }

    /// Predicted class and its softmax distribution.
    ///
    /// # Panics
    ///
    /// Panics when `x` has the wrong width (use [`Mlp::predict_proba`] for
    /// a fallible variant).
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> (usize, Vec<f64>) {
        let proba = self
            .predict_proba(x)
            .expect("input width matches model input dimension");
        let argmax = proba
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("probabilities are finite"))
            .map(|(i, _)| i)
            .expect("output dim >= 1");
        (argmax, proba)
    }

    /// Fraction of weights pruned away, in `[0, 1]`.
    #[must_use]
    pub fn sparsity(&self) -> f64 {
        1.0 - self.active_weights() as f64 / self.total_weights() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_architecture() {
        assert!(matches!(
            Mlp::new(&[4], 0),
            Err(NnError::BadArchitecture(_))
        ));
        assert!(matches!(
            Mlp::new(&[4, 0, 2], 0),
            Err(NnError::BadArchitecture(_))
        ));
        let m = Mlp::new(&[4, 8, 3], 0).unwrap();
        assert_eq!(m.input_dim(), 4);
        assert_eq!(m.output_dim(), 3);
        assert_eq!(m.layers().len(), 2);
        assert_eq!(m.total_weights(), 4 * 8 + 8 * 3);
        assert_eq!(m.macs(), m.total_weights());
        assert_eq!(m.sparsity(), 0.0);
    }

    #[test]
    fn forward_checks_width() {
        let m = Mlp::new(&[4, 3], 0).unwrap();
        assert!(matches!(
            m.forward(&[1.0, 2.0]),
            Err(NnError::DimensionMismatch {
                expected: 4,
                actual: 2
            })
        ));
        assert_eq!(m.forward(&[0.0; 4]).unwrap().len(), 3);
    }

    #[test]
    fn predict_returns_distribution() {
        let m = Mlp::new(&[4, 6, 3], 7).unwrap();
        let (class, proba) = m.predict(&[0.5, -0.3, 1.0, 0.0]);
        assert!(class < 3);
        assert!((proba.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn seeding_is_deterministic() {
        let a = Mlp::new(&[4, 8, 3], 5).unwrap();
        let b = Mlp::new(&[4, 8, 3], 5).unwrap();
        assert_eq!(a, b);
        let c = Mlp::new(&[4, 8, 3], 6).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn cached_forward_matches_plain_forward() {
        let m = Mlp::new(&[3, 5, 2], 9).unwrap();
        let x = [0.2, -0.4, 0.9];
        let (pre, acts) = m.forward_cached(&x);
        assert_eq!(pre.len(), 2);
        assert_eq!(acts.len(), 3);
        assert_eq!(acts[0], x.to_vec());
        assert_eq!(pre[1], m.forward(&x).unwrap());
    }

    #[test]
    fn sparsity_reflects_masks() {
        let mut m = Mlp::new(&[2, 2], 0).unwrap();
        m.layers_mut()[0].set_mask(vec![true, false, true, false]);
        assert!((m.sparsity() - 0.5).abs() < 1e-12);
        assert_eq!(m.macs(), 2);
    }
}
