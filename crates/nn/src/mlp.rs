//! Multi-layer perceptron with ReLU hidden activations and softmax output.

use crate::error::NnError;
use crate::layer::{relu, softmax, softmax_into, Dense};
use crate::scalar::Scalar;
use crate::workspace::Workspace;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Index of the maximal entry, breaking ties toward the *last* maximum —
/// the `Iterator::max_by` convention every prediction path shares.
///
/// Inputs are softmax outputs, finite by construction; `>=` reproduces
/// `max_by`'s last-maximum tie-break exactly for finite values, without a
/// panicking comparator in the per-prediction hot path. An empty slice
/// (impossible: output width is >= 1 by construction) yields index 0.
pub(crate) fn argmax<S: Scalar>(proba: &[S]) -> usize {
    let mut best = 0usize;
    for i in 1..proba.len() {
        if proba[i] >= proba[best] {
            best = i;
        }
    }
    best
}

/// A feed-forward classifier network, generic over the kernel
/// [`Scalar`] (`f64` by default).
///
/// Hidden layers use ReLU; the output layer produces logits which
/// [`Mlp::predict_proba`] turns into a softmax distribution. Architectures
/// are given as layer widths, e.g. `[28, 20, 6]` = 28 features → 20 hidden
/// units → 6 classes.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp<S: Scalar = f64> {
    layers: Vec<Dense<S>>,
    dims: Vec<usize>,
}

impl<S: Scalar> Mlp<S> {
    /// A randomly initialized network with the given layer widths.
    ///
    /// The seeded initialization draws in `f64` regardless of `S`, so
    /// every precision consumes the identical RNG stream (see
    /// [`Dense::init`]).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadArchitecture`] when fewer than two widths are
    /// given or any width is zero.
    pub fn new(dims: &[usize], seed: u64) -> Result<Self, NnError> {
        if dims.len() < 2 || dims.contains(&0) {
            return Err(NnError::BadArchitecture(dims.to_vec()));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = dims
            .windows(2)
            .map(|w| Dense::init(w[0], w[1], &mut rng))
            .collect();
        Ok(Self {
            layers,
            dims: dims.to_vec(),
        })
    }

    /// Layer widths, input first.
    #[must_use]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Input feature width.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.dims[0]
    }

    /// Number of output classes.
    #[must_use]
    pub fn output_dim(&self) -> usize {
        // The constructor rejects architectures with fewer than two dims.
        self.dims[self.dims.len() - 1]
    }

    /// The layers, input-side first.
    #[must_use]
    pub fn layers(&self) -> &[Dense<S>] {
        &self.layers
    }

    /// Mutable layer access (used by the pruner and trainer).
    pub fn layers_mut(&mut self) -> &mut [Dense<S>] {
        &mut self.layers
    }

    /// Total number of active (unpruned) weights across all layers.
    #[must_use]
    pub fn active_weights(&self) -> usize {
        self.layers.iter().map(Dense::active_weights).sum()
    }

    /// Total dense weight count.
    #[must_use]
    pub fn total_weights(&self) -> usize {
        self.layers.iter().map(Dense::total_weights).sum()
    }

    /// Multiply-accumulate operations per inference, counting only active
    /// weights — the quantity the energy model charges for.
    #[must_use]
    pub fn macs(&self) -> usize {
        self.active_weights()
    }

    /// Forward pass returning raw logits.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::DimensionMismatch`] when `x` has the wrong width.
    pub fn forward(&self, x: &[S]) -> Result<Vec<S>, NnError> {
        if x.len() != self.input_dim() {
            return Err(NnError::DimensionMismatch {
                expected: self.input_dim(),
                actual: x.len(),
            });
        }
        let mut activation = x.to_vec();
        for (i, layer) in self.layers.iter().enumerate() {
            activation = layer.forward(&activation);
            if i + 1 < self.layers.len() {
                relu(&mut activation);
            }
        }
        Ok(activation)
    }

    /// Forward pass caching every layer's pre-activation and activation.
    /// Was the trainer's workhorse; the workspace path replaced it, and it
    /// survives as the golden reference the parity tests compare against.
    /// Returns `(pre_activations, activations)` where `activations[0]` is
    /// the input itself.
    #[cfg(test)]
    pub(crate) fn forward_cached(&self, x: &[S]) -> (Vec<Vec<S>>, Vec<Vec<S>>) {
        let mut pre = Vec::with_capacity(self.layers.len());
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(x.to_vec());
        for (i, layer) in self.layers.iter().enumerate() {
            let z = layer.forward(acts.last().expect("non-empty"));
            pre.push(z.clone());
            let mut a = z;
            if i + 1 < self.layers.len() {
                relu(&mut a);
            }
            acts.push(a);
        }
        (pre, acts)
    }

    /// Allocation-free forward pass: runs the network inside `ws` and
    /// returns the logits slice (valid until the workspace is reused).
    ///
    /// Bitwise identical to [`Mlp::forward`]; pruned layers use their
    /// compiled sparse form on both paths.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::DimensionMismatch`] when `x` has the wrong width.
    pub fn forward_with<'w>(&self, ws: &'w mut Workspace<S>, x: &[S]) -> Result<&'w [S], NnError> {
        self.run_forward(ws, x)?;
        Ok(&ws.acts[self.layers.len()])
    }

    /// Allocation-free [`Mlp::predict_proba`]: the softmax distribution
    /// lands in the workspace and is returned as a slice.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::DimensionMismatch`] when `x` has the wrong width.
    pub fn predict_proba_with<'w>(
        &self,
        ws: &'w mut Workspace<S>,
        x: &[S],
    ) -> Result<&'w [S], NnError> {
        self.run_forward(ws, x)?;
        softmax_into(&ws.acts[self.layers.len()], &mut ws.proba);
        Ok(&ws.proba)
    }

    /// Shared allocation-free forward: leaves the logits in
    /// `ws.acts[layer_count]`.
    fn run_forward(&self, ws: &mut Workspace<S>, x: &[S]) -> Result<(), NnError> {
        if x.len() != self.input_dim() {
            return Err(NnError::DimensionMismatch {
                expected: self.input_dim(),
                actual: x.len(),
            });
        }
        ws.prepare(&self.dims);
        let path = ws.path;
        ws.acts[0].copy_from_slice(x);
        for (i, layer) in self.layers.iter().enumerate() {
            let (head, tail) = ws.acts.split_at_mut(i + 1);
            layer.forward_into_path(&head[i], &mut tail[0], path);
            if i + 1 < self.layers.len() {
                relu(&mut tail[0]);
            }
        }
        Ok(())
    }

    /// Batched allocation-free forward pass: `xs` holds any number of
    /// row-major input vectors; returns the row-major logits for all of
    /// them. Each example's logits are bitwise identical to a
    /// single-example [`Mlp::forward`] — the batched kernel iterates
    /// `(row, example)` purely for cache locality.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::DimensionMismatch`] when `xs.len()` is not a
    /// multiple of the input width.
    pub fn forward_batch_with<'w>(
        &self,
        ws: &'w mut Workspace<S>,
        xs: &[S],
    ) -> Result<&'w [S], NnError> {
        if !xs.len().is_multiple_of(self.input_dim()) {
            return Err(NnError::DimensionMismatch {
                expected: self.input_dim(),
                actual: xs.len(),
            });
        }
        let batch = xs.len() / self.input_dim();
        ws.prepare_batch(&self.dims, batch);
        let path = ws.path;
        ws.batch[0][..xs.len()].copy_from_slice(xs);
        let mut flip = false;
        for (i, layer) in self.layers.iter().enumerate() {
            let (lo, hi) = ws.batch.split_at_mut(1);
            let (src, dst) = if flip {
                (&hi[0], &mut lo[0])
            } else {
                (&lo[0], &mut hi[0])
            };
            let out = &mut dst[..batch * self.dims[i + 1]];
            layer.forward_batch_into_path(&src[..batch * self.dims[i]], batch, out, path);
            if i + 1 < self.layers.len() {
                relu(out);
            }
            flip = !flip;
        }
        let out = &ws.batch[usize::from(flip)];
        Ok(&out[..batch * self.output_dim()])
    }

    /// Softmax class distribution for `x`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::DimensionMismatch`] when `x` has the wrong width.
    pub fn predict_proba(&self, x: &[S]) -> Result<Vec<S>, NnError> {
        Ok(softmax(&self.forward(x)?))
    }

    /// Predicted class and its softmax distribution.
    ///
    /// # Panics
    ///
    /// Panics when `x` has the wrong width (use [`Mlp::predict_proba`] for
    /// a fallible variant).
    #[must_use]
    pub fn predict(&self, x: &[S]) -> (usize, Vec<S>) {
        let proba = self
            .predict_proba(x)
            .expect("input width matches model input dimension");
        let class = argmax(&proba);
        (class, proba)
    }

    /// Fraction of weights pruned away, in `[0, 1]`.
    #[must_use]
    pub fn sparsity(&self) -> f64 {
        1.0 - self.active_weights() as f64 / self.total_weights() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_architecture() {
        assert!(matches!(
            Mlp::<f64>::new(&[4], 0),
            Err(NnError::BadArchitecture(_))
        ));
        assert!(matches!(
            Mlp::<f64>::new(&[4, 0, 2], 0),
            Err(NnError::BadArchitecture(_))
        ));
        let m = Mlp::<f64>::new(&[4, 8, 3], 0).unwrap();
        assert_eq!(m.input_dim(), 4);
        assert_eq!(m.output_dim(), 3);
        assert_eq!(m.layers().len(), 2);
        assert_eq!(m.total_weights(), 4 * 8 + 8 * 3);
        assert_eq!(m.macs(), m.total_weights());
        assert_eq!(m.sparsity(), 0.0);
    }

    #[test]
    fn forward_checks_width() {
        let m = Mlp::new(&[4, 3], 0).unwrap();
        assert!(matches!(
            m.forward(&[1.0, 2.0]),
            Err(NnError::DimensionMismatch {
                expected: 4,
                actual: 2
            })
        ));
        assert_eq!(m.forward(&[0.0; 4]).unwrap().len(), 3);
    }

    #[test]
    fn predict_returns_distribution() {
        let m = Mlp::new(&[4, 6, 3], 7).unwrap();
        let (class, proba) = m.predict(&[0.5, -0.3, 1.0, 0.0]);
        assert!(class < 3);
        assert!((proba.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn seeding_is_deterministic() {
        let a = Mlp::<f64>::new(&[4, 8, 3], 5).unwrap();
        let b = Mlp::<f64>::new(&[4, 8, 3], 5).unwrap();
        assert_eq!(a, b);
        let c = Mlp::<f64>::new(&[4, 8, 3], 6).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn f32_model_mirrors_f64_initialization() {
        let wide = Mlp::<f64>::new(&[4, 8, 3], 5).unwrap();
        let narrow = Mlp::<f32>::new(&[4, 8, 3], 5).unwrap();
        for (l64, l32) in wide.layers().iter().zip(narrow.layers()) {
            for (&a, &b) in l64
                .weights()
                .as_slice()
                .iter()
                .zip(l32.weights().as_slice())
            {
                assert_eq!(b, a as f32);
            }
        }
    }

    #[test]
    fn cached_forward_matches_plain_forward() {
        let m = Mlp::new(&[3, 5, 2], 9).unwrap();
        let x = [0.2, -0.4, 0.9];
        let (pre, acts) = m.forward_cached(&x);
        assert_eq!(pre.len(), 2);
        assert_eq!(acts.len(), 3);
        assert_eq!(acts[0], x.to_vec());
        assert_eq!(pre[1], m.forward(&x).unwrap());
    }

    #[test]
    fn workspace_forward_matches_allocating_forward_bitwise() {
        let mut m = Mlp::new(&[5, 7, 4], 11).unwrap();
        m.layers_mut()[0].set_mask((0..35).map(|i| i % 3 != 0).collect());
        let mut ws = Workspace::new();
        for k in 0..4 {
            let x: Vec<f64> = (0..5).map(|i| (i as f64 - k as f64) * 0.37).collect();
            let expect = m.forward(&x).unwrap();
            let got = m.forward_with(&mut ws, &x).unwrap();
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                expect.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
            let expect_p = m.predict_proba(&x).unwrap();
            let got_p = m.predict_proba_with(&mut ws, &x).unwrap();
            assert_eq!(
                got_p.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                expect_p.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn batched_forward_matches_single_examples_bitwise() {
        let mut m = Mlp::new(&[4, 9, 3], 13).unwrap();
        m.layers_mut()[1].set_mask((0..27).map(|i| i % 4 != 1).collect());
        let batch = 6;
        let xs: Vec<f64> = (0..batch * 4).map(|i| (i as f64 * 0.61).sin()).collect();
        let mut ws = Workspace::new();
        let logits = m.forward_batch_with(&mut ws, &xs).unwrap().to_vec();
        for e in 0..batch {
            let single = m.forward(&xs[e * 4..(e + 1) * 4]).unwrap();
            assert_eq!(
                logits[e * 3..(e + 1) * 3]
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                single.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
        assert!(matches!(
            m.forward_batch_with(&mut ws, &xs[..5]),
            Err(NnError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn sparsity_reflects_masks() {
        let mut m = Mlp::<f64>::new(&[2, 2], 0).unwrap();
        m.layers_mut()[0].set_mask(vec![true, false, true, false]);
        assert!((m.sparsity() - 0.5).abs() < 1e-12);
        assert_eq!(m.macs(), 2);
    }
}
