//! Unrolled (vectorized) implementations of the NN hot kernels.
//!
//! # The reduction-order invariant
//!
//! Every kernel in this module is **bitwise identical** to its scalar
//! reference in [`crate::tensor`] / [`crate::layer`]. The scalar kernels
//! fix a per-output reduction order (ascending column / CSR-entry index),
//! and floating-point addition is not associative, so the only legal way
//! to go faster is to exploit parallelism *across independent outputs*:
//! rows of the weight matrix, examples of a batch, elements of the
//! backward input-gradient. Each kernel here blocks one of those
//! independent dimensions into several accumulator chains while leaving
//! every individual chain's operation sequence untouched — all in safe
//! Rust (the crate root is `#![forbid(unsafe_code)]`, lint rule D5).
//!
//! The block *shapes* are chosen by measurement per kernel, not by a
//! single LANES constant, because the kernels are bound by different
//! resources. The dense forward matvecs interleave [`Scalar::LANES`]
//! rows (8 at `f32`, 4 at `f64`): the scalar fold is a *latency*-bound
//! dependent add chain, and LANES independent chains turn it
//! *throughput*-bound. The transposed matvec uses 4-row blocks at both
//! dtypes, fusing four accumulator load/stores into one; the CSR
//! gather blocks 4 rows at `f64` but keeps the streaming scalar shape
//! at `f32`, where blocking measured slower (the sparse gather is a
//! scalar load no matter the width). The SGD update keeps the scalar
//! shape outright:
//! an element-wise stream the autovectorizer already handles, where
//! row-blocking measurably hurt. Each kernel's doc comment records its
//! own rationale.
//!
//! Remainder rows/examples (tails that do not fill a block) run the
//! exact scalar reference loop, so shapes that do not divide evenly are
//! still bitwise-pinned (covered by the parity proptests).
//!
//! # Dispatch policy
//!
//! Selection is an explicit, deterministic API: a [`KernelPath`] chosen
//! once at [`Workspace`](crate::Workspace) construction (or on
//! [`Trainer`](crate::Trainer) / `SimConfig` builders) and recorded in
//! run manifests when it differs from the default. There is **no**
//! ambient CPU-feature or environment probing inside the deterministic
//! crates (lint rule D1): the same binary given the same flags runs the
//! same code on every machine, and because both paths are bitwise-equal,
//! even flipping the path cannot perturb a result — only its speed.

use crate::scalar::Scalar;

/// Which implementation of the hot kernels a [`Workspace`](crate::Workspace)
/// (and everything threaded through it) executes.
///
/// Both paths produce bitwise-identical results (pinned by the parity
/// proptests); they differ only in speed. `Unrolled` is the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelPath {
    /// The original scalar kernels: one dependent accumulator chain per
    /// output. Kept as the executable reference for A/B benching and for
    /// bisecting any suspected kernel regression.
    Scalar,
    /// Row/batch-blocked kernels: several independent accumulator
    /// chains per block (the module docs record each kernel's measured
    /// shape), shaped for the autovectorizer. Bitwise-equal to `Scalar`.
    #[default]
    Unrolled,
}

impl KernelPath {
    /// Stable label recorded in manifests and bench metadata:
    /// `"scalar"` or `"unrolled"`.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Scalar => "scalar",
            Self::Unrolled => "unrolled",
        }
    }

    /// Parses a [`KernelPath::label`] back; `None` for anything else.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "scalar" => Some(Self::Scalar),
            "unrolled" => Some(Self::Unrolled),
            _ => None,
        }
    }
}

/// Splits a `B * cols` block into `B` row slices of exactly `cols`.
#[inline]
fn rows<S, const B: usize>(block: &[S], cols: usize) -> [&[S]; B] {
    let mut out: [&[S]; B] = [&[]; B];
    let mut rest = block;
    for slot in &mut out {
        let (head, tail) = rest.split_at(cols);
        *slot = head;
        rest = tail;
    }
    out
}

/// Unrolled dense matrix–vector product: `out = data * x` where `data`
/// is row-major with `out.len()` rows of `cols` elements.
///
/// Blocks of [`Scalar::LANES`] rows run LANES interleaved accumulator
/// chains; remainder rows run the scalar fold. Each row's chain visits
/// columns in ascending order — bitwise-equal to
/// [`Matrix::matvec_into`](crate::Matrix::matvec_into).
#[inline]
pub(crate) fn matvec_unrolled<S: Scalar>(data: &[S], cols: usize, x: &[S], out: &mut [S]) {
    match S::LANES {
        8 => matvec_block::<S, 8>(data, cols, x, out),
        _ => matvec_block::<S, 4>(data, cols, x, out),
    }
}

fn matvec_block<S: Scalar, const B: usize>(data: &[S], cols: usize, x: &[S], out: &mut [S]) {
    debug_assert_eq!(data.len(), out.len() * cols);
    debug_assert_eq!(x.len(), cols);
    let mut blocks = data.chunks_exact(B * cols);
    let mut outs = out.chunks_exact_mut(B);
    for (block, out_b) in (&mut blocks).zip(&mut outs) {
        let row: [&[S]; B] = rows(block, cols);
        let mut acc = [S::ZERO; B];
        for (c, &xc) in x.iter().enumerate() {
            for (l, a) in acc.iter_mut().enumerate() {
                *a += row[l][c] * xc;
            }
        }
        out_b.copy_from_slice(&acc);
    }
    for (row, out_r) in blocks
        .remainder()
        .chunks_exact(cols)
        .zip(outs.into_remainder())
    {
        *out_r = row
            .iter()
            .zip(x)
            .fold(S::ZERO, |acc, (&w, &xi)| acc + w * xi);
    }
}

/// Unrolled batched matvec: `xs` holds `batch` inputs of width `cols`,
/// `out` receives `batch` outputs of width `rows` at `out[e * rows + r]`.
///
/// Rows are blocked (not examples) so the kernel still wins at
/// `batch == 1`; per-`(row, example)` reduction order is unchanged from
/// [`Matrix::matvec_batch_into`](crate::Matrix::matvec_batch_into).
#[inline]
pub(crate) fn matvec_batch_unrolled<S: Scalar>(
    data: &[S],
    rows: usize,
    cols: usize,
    xs: &[S],
    batch: usize,
    out: &mut [S],
) {
    match S::LANES {
        8 => matvec_batch_block::<S, 8>(data, rows, cols, xs, batch, out),
        _ => matvec_batch_block::<S, 4>(data, rows, cols, xs, batch, out),
    }
}

fn matvec_batch_block<S: Scalar, const B: usize>(
    data: &[S],
    n_rows: usize,
    cols: usize,
    xs: &[S],
    batch: usize,
    out: &mut [S],
) {
    debug_assert_eq!(data.len(), n_rows * cols);
    debug_assert_eq!(xs.len(), batch * cols);
    debug_assert_eq!(out.len(), batch * n_rows);
    let mut blocks = data.chunks_exact(B * cols);
    let mut r0 = 0;
    for block in &mut blocks {
        let row: [&[S]; B] = rows(block, cols);
        for e in 0..batch {
            let x = &xs[e * cols..(e + 1) * cols];
            let mut acc = [S::ZERO; B];
            for (c, &xc) in x.iter().enumerate() {
                for (l, a) in acc.iter_mut().enumerate() {
                    *a += row[l][c] * xc;
                }
            }
            for (l, &a) in acc.iter().enumerate() {
                out[e * n_rows + r0 + l] = a;
            }
        }
        r0 += B;
    }
    for row in blocks.remainder().chunks_exact(cols) {
        for e in 0..batch {
            let x = &xs[e * cols..(e + 1) * cols];
            out[e * n_rows + r0] = row
                .iter()
                .zip(x)
                .fold(S::ZERO, |acc, (&w, &xi)| acc + w * xi);
        }
        r0 += 1;
    }
}

/// Unrolled transposed matvec: `out = dataᵀ * x`, `data` row-major with
/// `x.len()` rows of `cols` elements.
///
/// The scalar reference accumulates `out[c] += data[r][c] * x[r]` with
/// `r` outermost; blocking four rows fuses four updates of each
/// `out[c]` into one pass (one load/store of the accumulator instead of
/// four) while keeping the per-element add order (`r` ascending) —
/// bitwise-equal to
/// [`Matrix::matvec_transposed_into`](crate::Matrix::matvec_transposed_into).
/// The four row slices walk in lockstep via a fused `zip`, so the `c`
/// loop is a bounds-check-free element-wise stream the autovectorizer
/// handles directly; 4 is a measured choice at both dtypes.
#[inline]
pub(crate) fn matvec_transposed_unrolled<S: Scalar>(
    data: &[S],
    cols: usize,
    x: &[S],
    out: &mut [S],
) {
    debug_assert_eq!(data.len(), x.len() * cols);
    debug_assert_eq!(out.len(), cols);
    out.fill(S::ZERO);
    let mut wblocks = data.chunks_exact(4 * cols);
    let mut xblocks = x.chunks_exact(4);
    for (wb, xb) in (&mut wblocks).zip(&mut xblocks) {
        let [r0, r1, r2, r3]: [&[S]; 4] = rows(wb, cols);
        let (x0, x1, x2, x3) = (xb[0], xb[1], xb[2], xb[3]);
        for ((((out_c, &w0), &w1), &w2), &w3) in out.iter_mut().zip(r0).zip(r1).zip(r2).zip(r3) {
            let mut v = *out_c;
            v += w0 * x0;
            v += w1 * x1;
            v += w2 * x2;
            v += w3 * x3;
            *out_c = v;
        }
    }
    for (row, &xr) in wblocks
        .remainder()
        .chunks_exact(cols)
        .zip(xblocks.remainder())
    {
        for (out_c, &w) in out.iter_mut().zip(row) {
            *out_c += w * xr;
        }
    }
}

/// Unrolled CSR forward gather: `out[r] = bias[r] + Σ vals[k] *
/// x[cols[k]]` over row `r`'s span of the compiled sparse form. The
/// bias add is fused into the gather (saving a second pass over `out`),
/// and is still the last operation applied to each output after its
/// fold — the exact per-element order of the unfused
/// gather-then-bias-loop form, so fusing changes no bits.
///
/// Like every kernel here the gather *streams* the column/value arrays
/// with a running `split_at` instead of re-slicing per-row spans out of
/// `row_ptr` (the scalar reference already does; see
/// [`Dense::forward_into`](crate::Dense::forward_into)) — the per-entry
/// gather is a scalar load no matter the block width, so the only
/// levers are bookkeeping and accumulator traffic. Measurement split
/// the verdict by dtype: at `f64`, four-row blocks with an accumulator
/// array win (~1.2×) by batching the output stores and keeping four
/// short fold chains in flight; at `f32` the same blocking *lost*
/// consistently to the plain streaming loop (half-width entries pack
/// rows denser per cache line, and the block's extra `row_ptr`
/// arithmetic outweighs any overlap), so the `f32` arm runs
/// [`csr_matvec_stream`] — the same function the scalar path calls.
/// Every row's fold visits its CSR entries in ascending order on both
/// arms — bitwise-equal to the scalar loop.
#[inline]
pub(crate) fn csr_matvec_unrolled<S: Scalar>(
    row_ptr: &[u32],
    cols: &[u32],
    vals: &[S],
    bias: &[S],
    x: &[S],
    out: &mut [S],
) {
    match S::LANES {
        8 => csr_matvec_stream(row_ptr, cols, vals, bias, x, out),
        _ => csr_matvec_block::<S, 4>(row_ptr, cols, vals, bias, x, out),
    }
}

/// The streaming per-row gather (scalar shape, with the previous row
/// pointer carried in a register instead of re-loaded): optimal at
/// `f32`. This is also the scalar reference itself —
/// [`Dense::forward_into`](crate::Dense::forward_into) calls this very
/// function, so at `f32` both kernel paths execute the *same* copy of
/// the loop and the A/B bench rows cannot drift apart through code
/// layout (two identical twins in one binary measured up to 1.4× apart
/// depending on which one the linker placed well).
#[inline(never)]
pub(crate) fn csr_matvec_stream<S: Scalar>(
    row_ptr: &[u32],
    cols: &[u32],
    vals: &[S],
    bias: &[S],
    x: &[S],
    out: &mut [S],
) {
    debug_assert_eq!(row_ptr.len(), out.len() + 1);
    debug_assert_eq!(bias.len(), out.len());
    let mut prev = row_ptr[0];
    let start = prev as usize;
    let (mut c_rest, mut v_rest) = (&cols[start..], &vals[start..]);
    for ((out_r, &b), &ptr) in out.iter_mut().zip(bias).zip(&row_ptr[1..]) {
        let len = (ptr - prev) as usize;
        prev = ptr;
        let (row_c, tail_c) = c_rest.split_at(len);
        let (row_v, tail_v) = v_rest.split_at(len);
        c_rest = tail_c;
        v_rest = tail_v;
        *out_r = row_c
            .iter()
            .zip(row_v)
            .fold(S::ZERO, |acc, (&c, &w)| acc + w * x[c as usize])
            + b;
    }
}

#[inline(never)]
fn csr_matvec_block<S: Scalar, const B: usize>(
    row_ptr: &[u32],
    cols: &[u32],
    vals: &[S],
    bias: &[S],
    x: &[S],
    out: &mut [S],
) {
    let n_rows = out.len();
    debug_assert_eq!(row_ptr.len(), n_rows + 1);
    debug_assert_eq!(bias.len(), n_rows);
    let start = row_ptr[0] as usize;
    let (mut c_rest, mut v_rest) = (&cols[start..], &vals[start..]);
    let mut r0 = 0;
    while r0 + B <= n_rows {
        let mut acc = [S::ZERO; B];
        for (l, a) in acc.iter_mut().enumerate() {
            let len = (row_ptr[r0 + l + 1] - row_ptr[r0 + l]) as usize;
            let (row_c, tail_c) = c_rest.split_at(len);
            let (row_v, tail_v) = v_rest.split_at(len);
            c_rest = tail_c;
            v_rest = tail_v;
            *a = row_c
                .iter()
                .zip(row_v)
                .fold(S::ZERO, |acc, (&c, &w)| acc + w * x[c as usize])
                + bias[r0 + l];
        }
        out[r0..r0 + B].copy_from_slice(&acc);
        r0 += B;
    }
    for ((r, out_r), &b) in out.iter_mut().enumerate().skip(r0).zip(&bias[r0..]) {
        let len = (row_ptr[r + 1] - row_ptr[r]) as usize;
        let (row_c, tail_c) = c_rest.split_at(len);
        let (row_v, tail_v) = v_rest.split_at(len);
        c_rest = tail_c;
        v_rest = tail_v;
        *out_r = row_c
            .iter()
            .zip(row_v)
            .fold(S::ZERO, |acc, (&c, &w)| acc + w * x[c as usize])
            + b;
    }
}

/// Unrolled batched CSR forward: for each weight row `r`, LANES examples
/// share the row's column/value stream; writes `out[e * n_rows + r] =
/// Σ + bias[r]` exactly as the scalar batch kernel does.
///
/// Here the *batch* dimension is blocked (the row's entries are reloaded
/// per block anyway, and examples are perfectly uniform lanes); per-
/// `(row, example)` reduction order is unchanged from
/// [`Dense::forward_batch_into`](crate::Dense::forward_batch_into).
#[inline]
#[allow(clippy::too_many_arguments)] // flattened CSR spans + batch geometry
pub(crate) fn csr_matvec_batch_unrolled<S: Scalar>(
    row_ptr: &[u32],
    cols: &[u32],
    vals: &[S],
    bias: &[S],
    xs: &[S],
    ins: usize,
    batch: usize,
    out: &mut [S],
) {
    match S::LANES {
        8 => csr_matvec_batch_block::<S, 8>(row_ptr, cols, vals, bias, xs, ins, batch, out),
        _ => csr_matvec_batch_block::<S, 4>(row_ptr, cols, vals, bias, xs, ins, batch, out),
    }
}

#[allow(clippy::too_many_arguments)] // flattened CSR spans + batch geometry
fn csr_matvec_batch_block<S: Scalar, const B: usize>(
    row_ptr: &[u32],
    cols: &[u32],
    vals: &[S],
    bias: &[S],
    xs: &[S],
    ins: usize,
    batch: usize,
    out: &mut [S],
) {
    let n_rows = bias.len();
    debug_assert_eq!(row_ptr.len(), n_rows + 1);
    debug_assert_eq!(xs.len(), batch * ins);
    debug_assert_eq!(out.len(), batch * n_rows);
    for r in 0..n_rows {
        let lo = row_ptr[r] as usize;
        let hi = row_ptr[r + 1] as usize;
        let (row_c, row_v) = (&cols[lo..hi], &vals[lo..hi]);
        let br = bias[r];
        let mut e0 = 0;
        while e0 + B <= batch {
            let xe: [&[S]; B] = rows(&xs[e0 * ins..(e0 + B) * ins], ins);
            let mut acc = [S::ZERO; B];
            for (&c, &w) in row_c.iter().zip(row_v) {
                let c = c as usize;
                for (l, a) in acc.iter_mut().enumerate() {
                    *a += w * xe[l][c];
                }
            }
            for (l, &a) in acc.iter().enumerate() {
                out[(e0 + l) * n_rows + r] = a + br;
            }
            e0 += B;
        }
        for e in e0..batch {
            let x = &xs[e * ins..(e + 1) * ins];
            let sum = row_c
                .iter()
                .zip(row_v)
                .fold(S::ZERO, |acc, (&c, &w)| acc + w * x[c as usize]);
            out[e * n_rows + r] = sum + br;
        }
    }
}

/// SGD-with-momentum weight update for the unrolled path: for every
/// `(r, c)`, `v[r][c] = momentum * v[r][c] - lr * (dy[r] * x[c]);
/// w[r][c] += v[r][c]`.
///
/// Every element is touched exactly once with a fixed operation
/// sequence, so any traversal order is bitwise-equal to the scalar
/// row-major loop in [`Dense::backward_into`](crate::Dense::backward_into).
/// This one deliberately keeps the scalar shape: the update is already a
/// pure element-wise stream over the row-major weight/velocity planes —
/// independent across every element, no reduction — so the
/// autovectorizer maps it onto vector registers as-is, and row-blocking
/// it (measured) only *added* index arithmetic and lane bookkeeping.
/// The fused `zip` over the three planes is the whole optimization:
/// it drops the bounds checks the indexed scalar loop pays. Kept as a
/// distinct entry point so the dispatch surface stays uniform and a
/// future layout change can re-specialize it.
#[inline]
pub(crate) fn sgd_update_unrolled<S: Scalar>(
    weights: &mut [S],
    velocity: &mut [S],
    cols: usize,
    x: &[S],
    dy: &[S],
    lr: S,
    momentum: S,
) {
    debug_assert_eq!(weights.len(), dy.len() * cols);
    debug_assert_eq!(velocity.len(), weights.len());
    debug_assert_eq!(x.len(), cols);
    for ((wrow, vrow), &dyr) in weights
        .chunks_exact_mut(cols)
        .zip(velocity.chunks_exact_mut(cols))
        .zip(dy)
    {
        for ((w, v), &xc) in wrow.iter_mut().zip(vrow).zip(x) {
            let grad = dyr * xc;
            *v = momentum * *v - lr * grad;
            *w += *v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_path_labels_round_trip() {
        assert_eq!(KernelPath::default(), KernelPath::Unrolled);
        for p in [KernelPath::Scalar, KernelPath::Unrolled] {
            assert_eq!(KernelPath::parse(p.label()), Some(p));
        }
        assert_eq!(KernelPath::parse("avx512"), None);
    }

    /// Deterministic pseudo-random fill — the tests must not depend on an
    /// RNG crate so they run everywhere the kernels do.
    fn fill<S: Scalar>(seed: u64, n: usize) -> Vec<S> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                S::from_f64((state % 2000) as f64 / 500.0 - 2.0)
            })
            .collect()
    }

    fn scalar_matvec<S: Scalar>(data: &[S], cols: usize, x: &[S], out: &mut [S]) {
        for (r, out_r) in out.iter_mut().enumerate() {
            *out_r = data[r * cols..(r + 1) * cols]
                .iter()
                .zip(x)
                .fold(S::ZERO, |acc, (&w, &xi)| acc + w * xi);
        }
    }

    fn probe_shapes() -> Vec<(usize, usize)> {
        // Rows chosen to exercise 0, partial and full blocks at both
        // LANES = 4 and LANES = 8, including % 8 != 0 tails.
        vec![
            (1, 1),
            (3, 5),
            (4, 7),
            (7, 3),
            (8, 28),
            (13, 9),
            (20, 28),
            (24, 1),
        ]
    }

    #[test]
    fn matvec_block_matches_scalar_bitwise() {
        fn probe<S: Scalar>() {
            for (rows, cols) in probe_shapes() {
                let data = fill::<S>(rows as u64 * 31 + cols as u64, rows * cols);
                let x = fill::<S>(cols as u64 + 7, cols);
                let mut want = vec![S::ZERO; rows];
                let mut got = vec![S::ZERO; rows];
                scalar_matvec(&data, cols, &x, &mut want);
                matvec_unrolled(&data, cols, &x, &mut got);
                assert_eq!(
                    got.iter().map(|v| v.to_bits_u64()).collect::<Vec<_>>(),
                    want.iter().map(|v| v.to_bits_u64()).collect::<Vec<_>>(),
                    "matvec {rows}x{cols} {}",
                    S::DTYPE
                );
            }
        }
        probe::<f64>();
        probe::<f32>();
    }

    #[test]
    fn matvec_batch_block_matches_scalar_bitwise() {
        fn probe<S: Scalar>() {
            for (rows, cols) in probe_shapes() {
                for batch in [1usize, 2, 8] {
                    let data = fill::<S>(rows as u64 * 17 + cols as u64, rows * cols);
                    let xs = fill::<S>(batch as u64 * 13, batch * cols);
                    let mut want = vec![S::ZERO; batch * rows];
                    let mut got = vec![S::ZERO; batch * rows];
                    for e in 0..batch {
                        let mut y = vec![S::ZERO; rows];
                        scalar_matvec(&data, cols, &xs[e * cols..(e + 1) * cols], &mut y);
                        for (r, &v) in y.iter().enumerate() {
                            want[e * rows + r] = v;
                        }
                    }
                    matvec_batch_unrolled(&data, rows, cols, &xs, batch, &mut got);
                    assert_eq!(
                        got.iter().map(|v| v.to_bits_u64()).collect::<Vec<_>>(),
                        want.iter().map(|v| v.to_bits_u64()).collect::<Vec<_>>(),
                        "batch matvec {rows}x{cols} n={batch} {}",
                        S::DTYPE
                    );
                }
            }
        }
        probe::<f64>();
        probe::<f32>();
    }

    #[test]
    fn matvec_transposed_block_matches_scalar_bitwise() {
        fn probe<S: Scalar>() {
            for (rows, cols) in probe_shapes() {
                let data = fill::<S>(rows as u64 * 11 + cols as u64, rows * cols);
                let x = fill::<S>(rows as u64 + 3, rows);
                let mut want = vec![S::ZERO; cols];
                for (r, &xr) in x.iter().enumerate() {
                    for (c, w) in want.iter_mut().enumerate() {
                        *w += data[r * cols + c] * xr;
                    }
                }
                let mut got = vec![S::ZERO; cols];
                matvec_transposed_unrolled(&data, cols, &x, &mut got);
                assert_eq!(
                    got.iter().map(|v| v.to_bits_u64()).collect::<Vec<_>>(),
                    want.iter().map(|v| v.to_bits_u64()).collect::<Vec<_>>(),
                    "matvec_t {rows}x{cols} {}",
                    S::DTYPE
                );
            }
        }
        probe::<f64>();
        probe::<f32>();
    }

    /// Builds a CSR form with deliberately ragged row lengths (including
    /// empty rows) to stress the common-prefix/tail split.
    fn ragged_csr<S: Scalar>(rows: usize, cols: usize, seed: u64) -> (Vec<u32>, Vec<u32>, Vec<S>) {
        let dense = fill::<S>(seed, rows * cols);
        let mut row_ptr = vec![0u32];
        let (mut c_idx, mut vals) = (Vec::new(), Vec::new());
        for r in 0..rows {
            for c in 0..cols {
                // Keep-pattern varies per row so lengths are ragged.
                if (r * 7 + c * 3 + (seed as usize)).is_multiple_of(r % 5 + 2) {
                    c_idx.push(c as u32);
                    vals.push(dense[r * cols + c]);
                }
            }
            row_ptr.push(c_idx.len() as u32);
        }
        (row_ptr, c_idx, vals)
    }

    #[test]
    fn csr_block_matches_scalar_bitwise() {
        fn probe<S: Scalar>() {
            for (rows, cols) in probe_shapes() {
                let (row_ptr, c_idx, vals) = ragged_csr::<S>(rows, cols, 5);
                let x = fill::<S>(99, cols);
                let bias1 = fill::<S>(11, rows);
                let mut want = vec![S::ZERO; rows];
                for r in 0..rows {
                    let (lo, hi) = (row_ptr[r] as usize, row_ptr[r + 1] as usize);
                    want[r] = c_idx[lo..hi]
                        .iter()
                        .zip(&vals[lo..hi])
                        .fold(S::ZERO, |acc, (&c, &w)| acc + w * x[c as usize])
                        + bias1[r];
                }
                // Both single-vector variants must match the reference
                // bitwise, regardless of which one the dtype dispatch
                // would pick.
                for variant in 0..2 {
                    let mut got = vec![S::ZERO; rows];
                    if variant == 0 {
                        csr_matvec_stream(&row_ptr, &c_idx, &vals, &bias1, &x, &mut got);
                    } else {
                        csr_matvec_block::<S, 4>(&row_ptr, &c_idx, &vals, &bias1, &x, &mut got);
                    }
                    assert_eq!(
                        got.iter().map(|v| v.to_bits_u64()).collect::<Vec<_>>(),
                        want.iter().map(|v| v.to_bits_u64()).collect::<Vec<_>>(),
                        "csr {rows}x{cols} {} variant {variant}",
                        S::DTYPE
                    );
                }

                for batch in [1usize, 3, 8, 9] {
                    let bias = fill::<S>(7, rows);
                    let xs = fill::<S>(batch as u64, batch * cols);
                    let mut want_b = vec![S::ZERO; batch * rows];
                    for e in 0..batch {
                        let xe = &xs[e * cols..(e + 1) * cols];
                        for r in 0..rows {
                            let (lo, hi) = (row_ptr[r] as usize, row_ptr[r + 1] as usize);
                            let sum = c_idx[lo..hi]
                                .iter()
                                .zip(&vals[lo..hi])
                                .fold(S::ZERO, |acc, (&c, &w)| acc + w * xe[c as usize]);
                            want_b[e * rows + r] = sum + bias[r];
                        }
                    }
                    let mut got_b = vec![S::ZERO; batch * rows];
                    csr_matvec_batch_unrolled(
                        &row_ptr, &c_idx, &vals, &bias, &xs, cols, batch, &mut got_b,
                    );
                    assert_eq!(
                        got_b.iter().map(|v| v.to_bits_u64()).collect::<Vec<_>>(),
                        want_b.iter().map(|v| v.to_bits_u64()).collect::<Vec<_>>(),
                        "csr batch {rows}x{cols} n={batch} {}",
                        S::DTYPE
                    );
                }
            }
        }
        probe::<f64>();
        probe::<f32>();
    }

    #[test]
    fn sgd_update_block_matches_scalar_bitwise() {
        fn probe<S: Scalar>() {
            for (rows, cols) in probe_shapes() {
                let (lr, momentum) = (S::from_f64(0.05), S::from_f64(0.9));
                let x = fill::<S>(1, cols);
                let dy = fill::<S>(2, rows);
                let mut w_want = fill::<S>(3, rows * cols);
                let mut v_want = fill::<S>(4, rows * cols);
                let mut w_got = w_want.clone();
                let mut v_got = v_want.clone();
                for (r, &dyr) in dy.iter().enumerate() {
                    for (c, &xc) in x.iter().enumerate() {
                        let i = r * cols + c;
                        let grad = dyr * xc;
                        v_want[i] = momentum * v_want[i] - lr * grad;
                        w_want[i] += v_want[i];
                    }
                }
                sgd_update_unrolled(&mut w_got, &mut v_got, cols, &x, &dy, lr, momentum);
                assert_eq!(
                    w_got.iter().map(|v| v.to_bits_u64()).collect::<Vec<_>>(),
                    w_want.iter().map(|v| v.to_bits_u64()).collect::<Vec<_>>(),
                    "sgd weights {rows}x{cols} {}",
                    S::DTYPE
                );
                assert_eq!(
                    v_got.iter().map(|v| v.to_bits_u64()).collect::<Vec<_>>(),
                    v_want.iter().map(|v| v.to_bits_u64()).collect::<Vec<_>>(),
                    "sgd velocity {rows}x{cols} {}",
                    S::DTYPE
                );
            }
        }
        probe::<f64>();
        probe::<f32>();
    }
}
