//! Reusable scratch buffers for the allocation-free kernel paths.

use crate::kernels::KernelPath;
use crate::scalar::Scalar;

/// Preallocated scratch space threaded through [`Mlp`](crate::Mlp),
/// [`Trainer`](crate::Trainer) and
/// [`SensorClassifier`](crate::SensorClassifier) hot paths, generic over
/// the kernel [`Scalar`] (`f64` by default).
///
/// Buffers only ever grow, so a `Workspace` reused across a steady-state
/// train/infer loop performs zero heap allocations after the first call
/// for a given model shape — at either precision. Creating one is cheap
/// (all buffers start empty); keep one per thread and per long-running
/// loop.
#[derive(Debug, Clone, Default)]
pub struct Workspace<S: Scalar = f64> {
    /// Normalized-feature staging buffer (classifier input width).
    pub(crate) features: Vec<S>,
    /// Per-layer pre-activations `z = W a + b`; widths `dims[1..]`.
    pub(crate) pre: Vec<Vec<S>>,
    /// Per-layer activations; `acts[0]` is the input, widths = `dims`.
    pub(crate) acts: Vec<Vec<S>>,
    /// Softmax output buffer, output width.
    pub(crate) proba: Vec<S>,
    /// Gradient ping-pong buffers, max layer width each.
    pub(crate) grad: Vec<S>,
    /// Second gradient buffer (input gradient of the current layer).
    pub(crate) dgrad: Vec<S>,
    /// Batched activation ping-pong buffers, `batch × max width` each.
    pub(crate) batch: [Vec<S>; 2],
    /// Which kernel implementations every pass through this workspace
    /// executes. Chosen once at construction (deterministic dispatch —
    /// no ambient probing); both paths are bitwise identical.
    pub(crate) path: KernelPath,
}

impl<S: Scalar> Workspace<S> {
    /// An empty workspace; buffers grow on first use. Runs the default
    /// [`KernelPath::Unrolled`] kernels.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty workspace pinned to an explicit [`KernelPath`].
    #[must_use]
    pub fn with_kernel_path(path: KernelPath) -> Self {
        Self {
            path,
            ..Self::default()
        }
    }

    /// The kernel path this workspace dispatches to.
    #[must_use]
    pub fn kernel_path(&self) -> KernelPath {
        self.path
    }

    /// Grows the single-example buffers to fit a network with layer
    /// widths `dims` (input first).
    pub(crate) fn prepare(&mut self, dims: &[usize]) {
        let max = dims.iter().copied().max().unwrap_or(0);
        if self.acts.len() < dims.len() {
            self.acts.resize_with(dims.len(), Vec::new);
        }
        for (a, &w) in self.acts.iter_mut().zip(dims) {
            a.resize(w, S::ZERO);
        }
        if self.pre.len() < dims.len() - 1 {
            self.pre.resize_with(dims.len() - 1, Vec::new);
        }
        for (p, &w) in self.pre.iter_mut().zip(&dims[1..]) {
            p.resize(w, S::ZERO);
        }
        self.proba.resize(dims[dims.len() - 1], S::ZERO);
        if self.grad.len() < max {
            self.grad.resize(max, S::ZERO);
        }
        if self.dgrad.len() < max {
            self.dgrad.resize(max, S::ZERO);
        }
    }

    /// Grows the batched ping-pong buffers for `batch` examples of a
    /// network with layer widths `dims`.
    pub(crate) fn prepare_batch(&mut self, dims: &[usize], batch: usize) {
        let max = dims.iter().copied().max().unwrap_or(0);
        for b in &mut self.batch {
            if b.len() < batch * max {
                b.resize(batch * max, S::ZERO);
            }
        }
        self.proba.resize(dims[dims.len() - 1], S::ZERO);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_sizes_buffers() {
        let mut ws = Workspace::<f64>::new();
        ws.prepare(&[4, 8, 3]);
        assert_eq!(ws.acts.len(), 3);
        assert_eq!(ws.acts[0].len(), 4);
        assert_eq!(ws.acts[2].len(), 3);
        assert_eq!(ws.pre.len(), 2);
        assert_eq!(ws.pre[1].len(), 3);
        assert_eq!(ws.proba.len(), 3);
        assert!(ws.grad.len() >= 8 && ws.dgrad.len() >= 8);
    }

    #[test]
    fn kernel_path_is_pinned_at_construction() {
        assert_eq!(Workspace::<f64>::new().kernel_path(), KernelPath::Unrolled);
        let ws = Workspace::<f32>::with_kernel_path(KernelPath::Scalar);
        assert_eq!(ws.kernel_path(), KernelPath::Scalar);
    }

    #[test]
    fn buffers_only_grow() {
        let mut ws = Workspace::<f32>::new();
        ws.prepare(&[10, 20, 5]);
        let cap = ws.grad.capacity();
        ws.prepare(&[4, 3]);
        ws.prepare(&[10, 20, 5]);
        assert!(ws.grad.capacity() >= cap);
        ws.prepare_batch(&[10, 20, 5], 7);
        assert!(ws.batch[0].len() >= 7 * 20);
    }
}
