//! Reusable scratch buffers for the allocation-free kernel paths.

/// Preallocated scratch space threaded through [`Mlp`](crate::Mlp),
/// [`Trainer`](crate::Trainer) and
/// [`SensorClassifier`](crate::SensorClassifier) hot paths.
///
/// Buffers only ever grow, so a `Workspace` reused across a steady-state
/// train/infer loop performs zero heap allocations after the first call
/// for a given model shape. Creating one is cheap (all buffers start
/// empty); keep one per thread and per long-running loop.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    /// Normalized-feature staging buffer (classifier input width).
    pub(crate) features: Vec<f64>,
    /// Per-layer pre-activations `z = W a + b`; widths `dims[1..]`.
    pub(crate) pre: Vec<Vec<f64>>,
    /// Per-layer activations; `acts[0]` is the input, widths = `dims`.
    pub(crate) acts: Vec<Vec<f64>>,
    /// Softmax output buffer, output width.
    pub(crate) proba: Vec<f64>,
    /// Gradient ping-pong buffers, max layer width each.
    pub(crate) grad: Vec<f64>,
    /// Second gradient buffer (input gradient of the current layer).
    pub(crate) dgrad: Vec<f64>,
    /// Batched activation ping-pong buffers, `batch × max width` each.
    pub(crate) batch: [Vec<f64>; 2],
}

impl Workspace {
    /// An empty workspace; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows the single-example buffers to fit a network with layer
    /// widths `dims` (input first).
    pub(crate) fn prepare(&mut self, dims: &[usize]) {
        let max = dims.iter().copied().max().unwrap_or(0);
        if self.acts.len() < dims.len() {
            self.acts.resize_with(dims.len(), Vec::new);
        }
        for (a, &w) in self.acts.iter_mut().zip(dims) {
            a.resize(w, 0.0);
        }
        if self.pre.len() < dims.len() - 1 {
            self.pre.resize_with(dims.len() - 1, Vec::new);
        }
        for (p, &w) in self.pre.iter_mut().zip(&dims[1..]) {
            p.resize(w, 0.0);
        }
        self.proba.resize(dims[dims.len() - 1], 0.0);
        if self.grad.len() < max {
            self.grad.resize(max, 0.0);
        }
        if self.dgrad.len() < max {
            self.dgrad.resize(max, 0.0);
        }
    }

    /// Grows the batched ping-pong buffers for `batch` examples of a
    /// network with layer widths `dims`.
    pub(crate) fn prepare_batch(&mut self, dims: &[usize], batch: usize) {
        let max = dims.iter().copied().max().unwrap_or(0);
        for b in &mut self.batch {
            if b.len() < batch * max {
                b.resize(batch * max, 0.0);
            }
        }
        self.proba.resize(dims[dims.len() - 1], 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_sizes_buffers() {
        let mut ws = Workspace::new();
        ws.prepare(&[4, 8, 3]);
        assert_eq!(ws.acts.len(), 3);
        assert_eq!(ws.acts[0].len(), 4);
        assert_eq!(ws.acts[2].len(), 3);
        assert_eq!(ws.pre.len(), 2);
        assert_eq!(ws.pre[1].len(), 3);
        assert_eq!(ws.proba.len(), 3);
        assert!(ws.grad.len() >= 8 && ws.dgrad.len() >= 8);
    }

    #[test]
    fn buffers_only_grow() {
        let mut ws = Workspace::new();
        ws.prepare(&[10, 20, 5]);
        let cap = ws.grad.capacity();
        ws.prepare(&[4, 3]);
        ws.prepare(&[10, 20, 5]);
        assert!(ws.grad.capacity() >= cap);
        ws.prepare_batch(&[10, 20, 5], 7);
        assert!(ws.batch[0].len() >= 7 * 20);
    }
}
