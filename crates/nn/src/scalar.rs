//! The sealed floating-point scalar abstraction behind the NN stack.
//!
//! Every kernel in this crate — dense and CSR matrix–vector products,
//! softmax, SGD, pruning, quantization, persistence — is generic over a
//! [`Scalar`], with `f64` as the default (and the repository's
//! determinism anchor: all golden results are produced at `f64`). `f32`
//! is the opt-in reduced-precision path for embedded-class targets where
//! memory traffic, not FLOPs, bounds inference cost; it halves weight
//! and activation storage while running the *same* kernels with the
//! *same* fixed reduction order.
//!
//! The trait is sealed: exactly `f64` and `f32` implement it. Future
//! dtypes (fixed-point, bf16) would be added here, next to the two
//! existing impls, so the kernel code never needs to change again.

use core::fmt::{Debug, Display};
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

mod sealed {
    /// Prevents downstream impls so kernel behaviour stays auditable.
    pub trait Sealed {}
    impl Sealed for f64 {}
    impl Sealed for f32 {}
}

/// A floating-point element type the NN kernels can run on.
///
/// Implemented for `f64` (default, determinism anchor) and `f32`
/// (reduced-precision variant). The trait is sealed — no other types can
/// implement it.
///
/// Conversions from `f64` round to nearest; every seeded random draw in
/// the stack is made in `f64` first and converted, so the `f32` path
/// consumes exactly the same RNG stream as the `f64` path.
pub trait Scalar:
    sealed::Sealed
    + Copy
    + PartialOrd
    + PartialEq
    + Default
    + Debug
    + Display
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Negative infinity (softmax max-shift seed).
    const NEG_INFINITY: Self;
    /// Stable dtype tag recorded in manifests, serialized models and
    /// golden-file directories: `"f64"` or `"f32"`.
    const DTYPE: &'static str;
    /// Hex digits of one serialized value (`to_bits` width): 16 or 8.
    const HEX_WIDTH: usize;
    /// Row-block width of the unrolled dense matvec kernels (see
    /// [`crate::kernels`]): 8 at `f32`, 4 at `f64` — one 256-bit vector
    /// register of independent accumulators either way. The sparse and
    /// transposed kernels pick their own measured block shapes.
    const LANES: usize;

    /// Nearest representable value to `v`.
    fn from_f64(v: f64) -> Self;
    /// Widens to `f64` (exact for both impls).
    fn to_f64(self) -> f64;
    /// `e^self`.
    fn exp(self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// IEEE maximum (NaN-ignoring, like `f64::max`).
    fn max(self, other: Self) -> Self;
    /// Rounds half away from zero, like `f64::round`.
    fn round(self) -> Self;
    /// Neither infinite nor NaN.
    fn is_finite(self) -> bool;
    /// Raw IEEE bits, zero-extended to 64 (persistence format).
    fn to_bits_u64(self) -> u64;
    /// Rebuilds a value from [`Scalar::to_bits_u64`] output; `None` when
    /// `bits` does not fit this dtype's width.
    fn checked_from_bits(bits: u64) -> Option<Self>;
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const NEG_INFINITY: Self = f64::NEG_INFINITY;
    const DTYPE: &'static str = "f64";
    const HEX_WIDTH: usize = 16;
    const LANES: usize = 4;

    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn exp(self) -> Self {
        f64::exp(self)
    }
    #[inline]
    fn ln(self) -> Self {
        f64::ln(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline]
    fn max(self, other: Self) -> Self {
        f64::max(self, other)
    }
    #[inline]
    fn round(self) -> Self {
        f64::round(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    #[inline]
    fn to_bits_u64(self) -> u64 {
        self.to_bits()
    }
    #[inline]
    fn checked_from_bits(bits: u64) -> Option<Self> {
        Some(f64::from_bits(bits))
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const NEG_INFINITY: Self = f32::NEG_INFINITY;
    const DTYPE: &'static str = "f32";
    const HEX_WIDTH: usize = 8;
    const LANES: usize = 8;

    #[inline]
    #[allow(clippy::cast_possible_truncation)] // rounding is the point
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
    #[inline]
    fn exp(self) -> Self {
        f32::exp(self)
    }
    #[inline]
    fn ln(self) -> Self {
        f32::ln(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline]
    fn max(self, other: Self) -> Self {
        f32::max(self, other)
    }
    #[inline]
    fn round(self) -> Self {
        f32::round(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
    #[inline]
    fn to_bits_u64(self) -> u64 {
        u64::from(self.to_bits())
    }
    #[inline]
    fn checked_from_bits(bits: u64) -> Option<Self> {
        u32::try_from(bits).ok().map(f32::from_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_tags_are_stable() {
        assert_eq!(<f64 as Scalar>::DTYPE, "f64");
        assert_eq!(<f32 as Scalar>::DTYPE, "f32");
        assert_eq!(<f64 as Scalar>::HEX_WIDTH, 16);
        assert_eq!(<f32 as Scalar>::HEX_WIDTH, 8);
        assert_eq!(<f64 as Scalar>::LANES, 4);
        assert_eq!(<f32 as Scalar>::LANES, 8);
    }

    #[test]
    fn f64_path_is_identity() {
        for v in [0.0, -1.5, 1e300, f64::MIN_POSITIVE] {
            assert_eq!(<f64 as Scalar>::from_f64(v).to_bits(), v.to_bits());
            assert_eq!(Scalar::to_f64(v).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn f32_roundtrips_through_bits() {
        for v in [0.0f32, -1.5, core::f32::consts::PI, f32::MIN_POSITIVE] {
            let bits = v.to_bits_u64();
            assert!(bits <= u64::from(u32::MAX));
            assert_eq!(<f32 as Scalar>::checked_from_bits(bits), Some(v));
        }
        // Bits wider than an f32 are rejected, not truncated.
        assert_eq!(<f32 as Scalar>::checked_from_bits(1 << 40), None);
        assert_eq!(
            <f64 as Scalar>::checked_from_bits(1 << 40),
            Some(f64::from_bits(1 << 40))
        );
    }

    #[test]
    fn conversion_rounds_to_nearest() {
        let v = 0.1f64;
        let narrowed = <f32 as Scalar>::from_f64(v);
        assert!((narrowed.to_f64() - v).abs() < 1e-8);
    }

    #[test]
    fn arithmetic_identities_hold() {
        fn probe<S: Scalar>() {
            assert_eq!(S::ZERO + S::ONE, S::ONE);
            assert_eq!(S::ONE * S::ONE, S::ONE);
            assert!(S::NEG_INFINITY < S::ZERO);
            assert!(!S::NEG_INFINITY.is_finite());
            assert_eq!(S::from_f64(-2.0).abs(), S::from_f64(2.0));
            assert_eq!(S::from_f64(2.25).sqrt(), S::from_f64(1.5));
            assert_eq!(S::from_f64(2.5).round(), S::from_f64(3.0));
            assert_eq!(S::ZERO.max(S::ONE), S::ONE);
        }
        probe::<f64>();
        probe::<f32>();
    }
}
