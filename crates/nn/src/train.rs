//! Seeded mini-batch SGD training on cross-entropy.

use crate::error::NnError;
use crate::kernels::KernelPath;
use crate::layer::{relu, relu_backward, softmax_into, LayerVelocity};
use crate::mlp::Mlp;
use crate::scalar::Scalar;
use crate::workspace::Workspace;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Mini-batch SGD-with-momentum trainer.
///
/// Deterministic given its seed: shuffling is the only stochastic step.
/// Hyper-parameters are stored in `f64` and converted to the model's
/// [`Scalar`] once per [`Trainer::fit`] call, so the `f64` path is
/// bitwise unchanged and the `f32` path sees correctly-rounded constants.
///
/// ```
/// use origin_nn::{Mlp, Trainer};
/// let mut model = Mlp::new(&[2, 6, 2], 0)?;
/// // XOR-ish separable toy data.
/// let data = vec![
///     (vec![0.0, 0.0], 0),
///     (vec![1.0, 1.0], 0),
///     (vec![1.0, 0.0], 1),
///     (vec![0.0, 1.0], 1),
/// ];
/// let loss = Trainer::new().with_epochs(400).with_lr(0.2)?.fit(&mut model, &data)?;
/// assert!(loss < 0.2);
/// # Ok::<(), origin_nn::NnError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Trainer {
    epochs: usize,
    lr: f64,
    momentum: f64,
    batch_size: usize,
    seed: u64,
    label_smoothing: f64,
    kernel_path: KernelPath,
}

impl Default for Trainer {
    fn default() -> Self {
        Self {
            epochs: 60,
            lr: 0.05,
            momentum: 0.9,
            batch_size: 16,
            seed: 0x0816_1214,
            label_smoothing: 0.0,
            kernel_path: KernelPath::default(),
        }
    }
}

impl Trainer {
    /// A trainer with the default hyper-parameters (60 epochs, lr 0.05,
    /// momentum 0.9, batch 16).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the epoch count. Builder-style.
    #[must_use]
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Sets the learning rate. Builder-style.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidHyperparameter`] when `lr` is not
    /// positive and finite.
    pub fn with_lr(mut self, lr: f64) -> Result<Self, NnError> {
        if !(lr.is_finite() && lr > 0.0) {
            return Err(NnError::InvalidHyperparameter {
                name: "learning rate",
                value: lr,
            });
        }
        self.lr = lr;
        Ok(self)
    }

    /// Sets the momentum coefficient. Builder-style.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidHyperparameter`] when `momentum` ∉ `[0, 1)`.
    pub fn with_momentum(mut self, momentum: f64) -> Result<Self, NnError> {
        if !(0.0..1.0).contains(&momentum) {
            return Err(NnError::InvalidHyperparameter {
                name: "momentum",
                value: momentum,
            });
        }
        self.momentum = momentum;
        Ok(self)
    }

    /// Sets the mini-batch size. Builder-style.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidHyperparameter`] when `batch_size` is zero.
    pub fn with_batch_size(mut self, batch_size: usize) -> Result<Self, NnError> {
        if batch_size == 0 {
            return Err(NnError::InvalidHyperparameter {
                name: "batch size",
                value: 0.0,
            });
        }
        self.batch_size = batch_size;
        Ok(self)
    }

    /// Sets the shuffle seed. Builder-style.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Pins the [`KernelPath`] the fit loop executes (default
    /// [`KernelPath::Unrolled`]). Both paths produce bitwise-identical
    /// weights; this exists for A/B benching and regression bisection.
    /// Builder-style.
    #[must_use]
    pub fn with_kernel_path(mut self, path: KernelPath) -> Self {
        self.kernel_path = path;
        self
    }

    /// Enables label smoothing: the one-hot target becomes `1 - eps` on
    /// the true class and `eps / (K - 1)` elsewhere. Builder-style.
    ///
    /// Smoothing keeps the softmax from saturating, which is what makes
    /// the *variance* of the output vector an informative confidence
    /// signal for Origin's ensemble (an uncalibrated net is near-one-hot
    /// even when it is wrong).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidHyperparameter`] when `eps` ∉ `[0, 1)`.
    pub fn with_label_smoothing(mut self, eps: f64) -> Result<Self, NnError> {
        if !(0.0..1.0).contains(&eps) {
            return Err(NnError::InvalidHyperparameter {
                name: "label smoothing",
                value: eps,
            });
        }
        self.label_smoothing = eps;
        Ok(self)
    }

    /// Trains `model` on `(features, label)` pairs; returns the final
    /// epoch's mean cross-entropy loss.
    ///
    /// The shuffle RNG draws the same stream regardless of `S`, and the
    /// epoch loop is strictly sequential, so a given `(model, data, seed)`
    /// produces bitwise-identical weights on every run — which is what
    /// lets callers train the per-location models of a bank in parallel
    /// without perturbing any result.
    ///
    /// # Errors
    ///
    /// * [`NnError::EmptyTrainingSet`] on empty data.
    /// * [`NnError::DimensionMismatch`] when a feature vector has the wrong
    ///   width.
    /// * [`NnError::LabelOutOfRange`] when a label ≥ the output width.
    pub fn fit<S: Scalar>(
        &self,
        model: &mut Mlp<S>,
        data: &[(Vec<S>, usize)],
    ) -> Result<f64, NnError> {
        if data.is_empty() {
            return Err(NnError::EmptyTrainingSet);
        }
        for (x, label) in data {
            if x.len() != model.input_dim() {
                return Err(NnError::DimensionMismatch {
                    expected: model.input_dim(),
                    actual: x.len(),
                });
            }
            if *label >= model.output_dim() {
                return Err(NnError::LabelOutOfRange {
                    label: *label,
                    classes: model.output_dim(),
                });
            }
        }

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut velocities: Vec<LayerVelocity<S>> = model
            .layers()
            .iter()
            .map(LayerVelocity::zeros_like)
            .collect();
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut final_loss = f64::INFINITY;
        let mut ws = Workspace::with_kernel_path(self.kernel_path);
        ws.prepare(model.dims());

        let hp = StepConstants::for_model(self, model.output_dim());
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = S::ZERO;
            for chunk in order.chunks(self.batch_size) {
                // Per-sample SGD within the batch (batch size scales the
                // effective step through the lr / batch normalization).
                let scale = S::from_f64(1.0 / chunk.len() as f64);
                for &idx in chunk {
                    let (x, label) = &data[idx];
                    epoch_loss +=
                        Self::step(model, &hp, &mut velocities, &mut ws, x, *label, scale);
                }
            }
            final_loss = (epoch_loss / S::from_f64(data.len() as f64)).to_f64();
        }
        Ok(final_loss)
    }

    /// One sample's forward + backward pass; returns its cross-entropy.
    ///
    /// Allocation-free: every intermediate lives in `ws`. The arithmetic
    /// — reduction orders included — replicates the original allocating
    /// implementation exactly (pinned bitwise by
    /// `fit_matches_reference_bitwise`), and the forward pass uses the
    /// dense kernels only: backward invalidates the compiled sparse form
    /// every step, so compiling it mid-fit would thrash.
    fn step<S: Scalar>(
        model: &mut Mlp<S>,
        hp: &StepConstants<S>,
        velocities: &mut [LayerVelocity<S>],
        ws: &mut Workspace<S>,
        x: &[S],
        label: usize,
        scale: S,
    ) -> S {
        let layer_count = model.layers().len();
        let path = ws.path;
        ws.acts[0].copy_from_slice(x);
        for i in 0..layer_count {
            let layer = &model.layers()[i];
            let (head, tail) = ws.acts.split_at_mut(i + 1);
            layer.forward_dense_into_path(&head[i], &mut ws.pre[i], path);
            tail[0].copy_from_slice(&ws.pre[i]);
            if i + 1 < layer_count {
                relu(&mut tail[0]);
            }
        }
        softmax_into(&ws.pre[layer_count - 1], &mut ws.proba);
        let loss = -ws.proba[label].max(hp.loss_floor).ln();

        // dL/dlogits for softmax + cross-entropy against the (optionally
        // smoothed) target distribution.
        let classes = ws.proba.len();
        let grad = &mut ws.grad[..classes];
        grad.copy_from_slice(&ws.proba);
        for (c, g) in grad.iter_mut().enumerate() {
            let target = if c == label {
                hp.on_target
            } else {
                hp.off_target
            };
            *g = (*g - target) * scale;
        }

        for i in (0..layer_count).rev() {
            let in_width = model.dims()[i];
            let out_width = model.dims()[i + 1];
            let layer = &mut model.layers_mut()[i];
            let dx = &mut ws.dgrad[..in_width];
            layer.backward_into_path(
                &ws.acts[i],
                &ws.grad[..out_width],
                hp.lr,
                hp.momentum,
                &mut velocities[i],
                dx,
                path,
            );
            if i > 0 {
                relu_backward(&ws.pre[i - 1], dx);
            }
            std::mem::swap(&mut ws.grad, &mut ws.dgrad);
        }
        loss
    }

    /// The original allocating trainer loop, kept verbatim as the golden
    /// reference for the bitwise-parity test of the workspace path.
    #[cfg(test)]
    fn fit_reference<S: Scalar>(
        &self,
        model: &mut Mlp<S>,
        data: &[(Vec<S>, usize)],
    ) -> Result<f64, NnError> {
        use crate::layer::softmax;
        if data.is_empty() {
            return Err(NnError::EmptyTrainingSet);
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut velocities: Vec<LayerVelocity<S>> = model
            .layers()
            .iter()
            .map(LayerVelocity::zeros_like)
            .collect();
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut final_loss = f64::INFINITY;

        let hp = StepConstants::for_model(self, model.output_dim());
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = S::ZERO;
            for chunk in order.chunks(self.batch_size) {
                let scale = S::from_f64(1.0 / chunk.len() as f64);
                for &idx in chunk {
                    let (x, label) = &data[idx];
                    let (pre, acts) = model.forward_cached(x);
                    let logits = pre.last().expect("at least one layer");
                    let proba = softmax(logits);
                    epoch_loss += -proba[*label].max(hp.loss_floor).ln();
                    let mut grad: Vec<S> = proba;
                    for (c, g) in grad.iter_mut().enumerate() {
                        let target = if c == *label {
                            hp.on_target
                        } else {
                            hp.off_target
                        };
                        *g = (*g - target) * scale;
                    }
                    let layer_count = model.layers().len();
                    for i in (0..layer_count).rev() {
                        let input = &acts[i];
                        let layer = &mut model.layers_mut()[i];
                        let mut dx =
                            layer.backward(input, &grad, hp.lr, hp.momentum, &mut velocities[i]);
                        if i > 0 {
                            relu_backward(&pre[i - 1], &mut dx);
                        }
                        grad = dx;
                    }
                }
            }
            final_loss = (epoch_loss / S::from_f64(data.len() as f64)).to_f64();
        }
        Ok(final_loss)
    }
}

/// Hyper-parameters converted to the kernel scalar once per `fit` call.
///
/// All derived quantities (`off_target` in particular) are computed in
/// `f64` first and rounded once, never re-derived in `S`, so the same
/// constants feed every step of a run.
struct StepConstants<S: Scalar> {
    lr: S,
    momentum: S,
    on_target: S,
    off_target: S,
    loss_floor: S,
}

impl<S: Scalar> StepConstants<S> {
    fn for_model(trainer: &Trainer, classes: usize) -> Self {
        let off_target = if classes > 1 {
            trainer.label_smoothing / (classes - 1) as f64
        } else {
            0.0
        };
        Self {
            lr: S::from_f64(trainer.lr),
            momentum: S::from_f64(trainer.momentum),
            on_target: S::from_f64(1.0 - trainer.label_smoothing),
            off_target: S::from_f64(off_target),
            loss_floor: S::from_f64(1e-12),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_data(seed: u64, per_class: usize) -> Vec<(Vec<f64>, usize)> {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let centers = [[2.0, 0.0], [-2.0, 0.0], [0.0, 2.5]];
        let mut data = Vec::new();
        for (label, c) in centers.iter().enumerate() {
            for _ in 0..per_class {
                let mut jitter = || rng.gen::<f64>() - 0.5;
                data.push((vec![c[0] + jitter(), c[1] + jitter()], label));
            }
        }
        data
    }

    #[test]
    fn learns_separable_blobs() {
        let data = blob_data(1, 30);
        let mut model = Mlp::new(&[2, 8, 3], 2).unwrap();
        let loss = Trainer::new()
            .with_epochs(80)
            .fit(&mut model, &data)
            .unwrap();
        assert!(loss < 0.1, "loss = {loss}");
        let correct = data
            .iter()
            .filter(|(x, y)| model.predict(x).0 == *y)
            .count();
        assert!(correct as f64 / data.len() as f64 > 0.95);
    }

    #[test]
    fn training_is_deterministic() {
        let data = blob_data(3, 10);
        let mut a = Mlp::new(&[2, 6, 3], 4).unwrap();
        let mut b = Mlp::new(&[2, 6, 3], 4).unwrap();
        let la = Trainer::new().with_epochs(10).fit(&mut a, &data).unwrap();
        let lb = Trainer::new().with_epochs(10).fit(&mut b, &data).unwrap();
        assert_eq!(la, lb);
        assert_eq!(a, b);
    }

    #[test]
    fn training_learns_and_repeats_at_f32() {
        let data: Vec<(Vec<f32>, usize)> = blob_data(9, 20)
            .into_iter()
            .map(|(x, y)| (x.into_iter().map(|v| v as f32).collect(), y))
            .collect();
        let trainer = Trainer::new().with_epochs(60);
        let mut a = Mlp::<f32>::new(&[2, 8, 3], 2).unwrap();
        let la = trainer.fit(&mut a, &data).unwrap();
        assert!(la.is_finite() && la < 0.2, "loss = {la}");
        let mut b = Mlp::<f32>::new(&[2, 8, 3], 2).unwrap();
        let lb = trainer.fit(&mut b, &data).unwrap();
        assert_eq!(la.to_bits(), lb.to_bits());
        assert_eq!(a, b);
    }

    /// The workspace trainer is pinned bitwise to the original
    /// allocating implementation: same shuffles, same reduction orders,
    /// same updates — byte-for-byte equal weights, biases and loss.
    #[test]
    fn fit_matches_reference_bitwise() {
        let data = blob_data(8, 12);
        for (smoothing, masked) in [(0.0, false), (0.1, false), (0.1, true)] {
            let trainer = Trainer::new()
                .with_epochs(7)
                .with_label_smoothing(smoothing)
                .unwrap();
            let mut a = Mlp::new(&[2, 6, 3], 4).unwrap();
            if masked {
                let mask: Vec<bool> = (0..a.layers()[0].total_weights())
                    .map(|i| i % 3 != 1)
                    .collect();
                a.layers_mut()[0].set_mask(mask);
            }
            let mut b = a.clone();
            let la = trainer.fit(&mut a, &data).unwrap();
            let lb = trainer.fit_reference(&mut b, &data).unwrap();
            assert_eq!(la.to_bits(), lb.to_bits());
            for (x, y) in a.layers().iter().zip(b.layers()) {
                assert_eq!(
                    x.weights()
                        .as_slice()
                        .iter()
                        .map(|v| v.to_bits())
                        .collect::<Vec<_>>(),
                    y.weights()
                        .as_slice()
                        .iter()
                        .map(|v| v.to_bits())
                        .collect::<Vec<_>>()
                );
                assert_eq!(
                    x.bias().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    y.bias().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                );
            }
        }
    }

    /// The unrolled kernels must not perturb training by a single bit:
    /// a full fit under `KernelPath::Scalar` and one under
    /// `KernelPath::Unrolled` end with byte-identical models.
    #[test]
    fn fit_paths_are_bitwise_identical() {
        let data = blob_data(11, 12);
        for masked in [false, true] {
            let mut a = Mlp::new(&[2, 7, 3], 5).unwrap();
            if masked {
                let mask: Vec<bool> = (0..a.layers()[0].total_weights())
                    .map(|i| i % 4 != 2)
                    .collect();
                a.layers_mut()[0].set_mask(mask);
            }
            let mut b = a.clone();
            let trainer = Trainer::new().with_epochs(6);
            let la = trainer
                .clone()
                .with_kernel_path(KernelPath::Unrolled)
                .fit(&mut a, &data)
                .unwrap();
            let lb = trainer
                .with_kernel_path(KernelPath::Scalar)
                .fit(&mut b, &data)
                .unwrap();
            assert_eq!(la.to_bits(), lb.to_bits());
            assert_eq!(a, b, "masked = {masked}");
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut model = Mlp::new(&[2, 3], 0).unwrap();
        assert!(matches!(
            Trainer::new().fit(&mut model, &[]),
            Err(NnError::EmptyTrainingSet)
        ));
        assert!(matches!(
            Trainer::new().fit(&mut model, &[(vec![1.0], 0)]),
            Err(NnError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            Trainer::new().fit(&mut model, &[(vec![1.0, 2.0], 9)]),
            Err(NnError::LabelOutOfRange { .. })
        ));
    }

    #[test]
    fn masked_weights_stay_zero_through_training() {
        let data = blob_data(5, 15);
        let mut model = Mlp::new(&[2, 6, 3], 6).unwrap();
        let mask: Vec<bool> = (0..model.layers()[0].total_weights())
            .map(|i| i % 2 == 0)
            .collect();
        model.layers_mut()[0].set_mask(mask.clone());
        let _ = Trainer::new()
            .with_epochs(20)
            .fit(&mut model, &data)
            .unwrap();
        for (i, &keep) in mask.iter().enumerate() {
            if !keep {
                assert_eq!(model.layers()[0].weights().as_slice()[i], 0.0);
            }
        }
    }

    /// The validating builders propagate the crate's typed error instead
    /// of panicking (surfaced by lint rule D3).
    #[test]
    fn bad_hyperparameters_return_typed_errors() {
        for lr in [0.0, -0.5, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                Trainer::new().with_lr(lr),
                Err(NnError::InvalidHyperparameter {
                    name: "learning rate",
                    ..
                })
            ));
        }
        assert!(matches!(
            Trainer::new().with_momentum(1.0),
            Err(NnError::InvalidHyperparameter {
                name: "momentum",
                ..
            })
        ));
        assert!(matches!(
            Trainer::new().with_batch_size(0),
            Err(NnError::InvalidHyperparameter {
                name: "batch size",
                ..
            })
        ));
        // Valid settings still flow through builder-style.
        let t = Trainer::new()
            .with_lr(0.1)
            .and_then(|t| t.with_momentum(0.5))
            .and_then(|t| t.with_batch_size(8))
            .expect("valid hyper-parameters");
        assert_eq!(t, t.clone());
    }
}

#[cfg(test)]
mod smoothing_tests {
    use super::*;
    use crate::mlp::Mlp;
    use crate::softmax_variance;

    /// Label smoothing is what keeps the softmax calibrated enough for
    /// Origin's variance-confidence to carry signal: the smoothed model
    /// must be measurably less saturated than the unsmoothed one on the
    /// same data.
    #[test]
    fn label_smoothing_reduces_softmax_saturation() {
        let data: Vec<(Vec<f64>, usize)> = (0..90)
            .map(|i| {
                let label = i % 3;
                (vec![label as f64 * 2.0 - 2.0, (i % 7) as f64 * 0.05], label)
            })
            .collect();
        let train = |eps: f64| -> f64 {
            let mut mlp = Mlp::new(&[2, 8, 3], 3).unwrap();
            Trainer::new()
                .with_epochs(150)
                .with_label_smoothing(eps)
                .unwrap()
                .fit(&mut mlp, &data)
                .unwrap();
            // Mean softmax variance over the training set: higher means
            // more saturated (closer to one-hot).
            data.iter()
                .map(|(x, _)| softmax_variance(&mlp.predict(x).1))
                .sum::<f64>()
                / data.len() as f64
        };
        let hard = train(0.0);
        let smoothed = train(0.15);
        assert!(
            smoothed < hard * 0.98,
            "smoothing must de-saturate: hard {hard} vs smoothed {smoothed}"
        );
    }

    #[test]
    fn bad_smoothing_returns_typed_error() {
        for eps in [1.0, -0.1, f64::NAN] {
            assert!(matches!(
                Trainer::new().with_label_smoothing(eps),
                Err(NnError::InvalidHyperparameter {
                    name: "label smoothing",
                    ..
                })
            ));
        }
    }
}
