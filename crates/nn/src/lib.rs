//! A small, from-scratch neural-network engine for the Origin reproduction.
//!
//! The paper trains one compact per-location DNN per sensor (Keras, designs
//! after \[11\], \[14\]) and derives energy-efficient variants via energy-aware
//! pruning \[15\]. Reproducing that in pure Rust requires a real — if small —
//! ML stack, provided here:
//!
//! * [`Matrix`] — dense row-major matrix with the handful of ops training
//!   needs;
//! * [`Dense`] / [`Mlp`] — fully-connected layers with ReLU hidden
//!   activations and a softmax head, with optional pruning masks;
//! * [`Trainer`] — seeded mini-batch SGD with momentum on cross-entropy;
//! * [`InferenceEnergyModel`] — per-MAC energy estimation in the spirit of
//!   energy-aware pruning: the cost of an inference scales with the
//!   *non-pruned* multiply-accumulates;
//! * [`prune_to_energy`] — iterative magnitude pruning of the most
//!   energy-hungry layer with fine-tuning between steps, the Baseline-2
//!   construction;
//! * [`SensorClassifier`] — an [`Mlp`] bundled with its feature
//!   [`Normalizer`] and [`ActivitySet`](origin_types::ActivitySet), whose
//!   [`Classification`] carries the softmax-variance confidence score the
//!   Origin ensemble weights by;
//! * [`ConfusionMatrix`] — accuracy accounting for every experiment table.
//!
//! The whole stack is generic over the sealed [`Scalar`] trait (`f64` and
//! `f32`), with `f64` as the default type parameter everywhere — existing
//! `Mlp` / `Workspace` / `SensorClassifier` code is unchanged, while
//! `Mlp<f32>` etc. opt into the narrow compute path. Seeded weight
//! initialization and SGD shuffling always draw the RNG in `f64` and
//! round once, so both precisions consume identical random streams, and
//! every kernel reduction uses one fixed fold order so results are
//! bitwise reproducible at either width. Raw features, confidence scores
//! and reports stay `f64` at the API boundary regardless of the kernel
//! scalar.
//!
//! The hot kernels additionally come in two bitwise-identical
//! implementations selected by an explicit [`KernelPath`] (see
//! [`kernels`]-module docs): the scalar reference, and row/batch-blocked
//! variants (several independent accumulator chains per block, shapes
//! chosen by measurement per kernel) the autovectorizer maps onto SIMD
//! registers.
//! `Unrolled` is the default; dispatch is pinned at [`Workspace`] (or
//! [`Trainer`]) construction and recorded in run manifests — never probed
//! from the environment.
//!
//! # Examples
//!
//! ```
//! use origin_nn::{Mlp, Trainer};
//!
//! let mut model = Mlp::new(&[4, 8, 3], 42)?;
//! let data = vec![
//!     (vec![1.0, 0.0, 0.0, 0.0], 0),
//!     (vec![0.0, 1.0, 0.0, 0.0], 1),
//!     (vec![0.0, 0.0, 1.0, 1.0], 2),
//! ];
//! Trainer::new().with_epochs(200).fit(&mut model, &data)?;
//! assert_eq!(model.predict(&data[0].0).0, 0);
//! # Ok::<(), origin_nn::NnError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod classifier;
mod cnn;
mod energy_model;
mod error;
pub mod kernels;
mod layer;
mod metrics;
mod mlp;
mod norm;
mod prune;
mod quantize;
mod scalar;
mod serialize;
mod tensor;
mod train;
mod workspace;

pub use classifier::{Classification, ScoredClass, SensorClassifier};
pub use cnn::{Cnn1d, CnnScratch};
pub use energy_model::InferenceEnergyModel;
pub use error::NnError;
pub use kernels::KernelPath;
pub use layer::Dense;
pub use metrics::ConfusionMatrix;
pub use mlp::Mlp;
pub use norm::Normalizer;
pub use prune::{prune_to_energy, PruneReport};
pub use quantize::{quantize_weights, QuantReport};
pub use scalar::Scalar;
pub use serialize::{load_classifier, save_classifier};
pub use tensor::Matrix;
pub use train::Trainer;
pub use workspace::Workspace;

/// Variance of a probability vector — the paper's confidence measure.
///
/// "A good metric for the confidence would be the variance of the output
/// probability vector. The higher the variance the more confident is the
/// classification" (Section III-C). A one-hot vector maximizes it; the
/// uniform vector yields zero.
///
/// ```
/// use origin_nn::softmax_variance;
/// let confident = softmax_variance(&[0.94, 0.01, 0.02, 0.03]);
/// let confused = softmax_variance(&[0.25, 0.25, 0.25, 0.25]);
/// assert!(confident > confused);
/// assert!(confused.abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics when `probabilities` is empty.
#[must_use]
pub fn softmax_variance<S: Scalar>(probabilities: &[S]) -> f64 {
    assert!(
        !probabilities.is_empty(),
        "cannot take variance of empty vector"
    );
    let n = S::from_f64(probabilities.len() as f64);
    let mean = probabilities.iter().fold(S::ZERO, |acc, &p| acc + p) / n;
    let var = probabilities.iter().fold(S::ZERO, |acc, &p| {
        let d = p - mean;
        acc + d * d
    }) / n;
    var.to_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hot_maximizes_variance() {
        let one_hot = softmax_variance(&[1.0, 0.0, 0.0, 0.0]);
        let partial = softmax_variance(&[0.8, 0.05, 0.08, 0.07]);
        assert!(one_hot > partial);
        assert!(partial > 0.0);
    }

    #[test]
    fn paper_example_ordering() {
        // V_C1 = [0.94, 0.01, 0.02, 0.01] is more confident than
        // V_C2 = [0.80, 0.05, 0.08, 0.07] (Section III-C).
        let c1 = softmax_variance(&[0.94, 0.01, 0.02, 0.01]);
        let c2 = softmax_variance(&[0.80, 0.05, 0.08, 0.07]);
        assert!(c1 > c2);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_vector_panics() {
        let _ = softmax_variance::<f64>(&[]);
    }
}
