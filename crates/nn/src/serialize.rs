//! Plain-text model persistence.
//!
//! A deployed sensor node receives its classifier once, over a wired
//! programmer or a (costly) bulk radio transfer; this module provides the
//! artifact. The format is a line-oriented text file — human-inspectable,
//! diff-able, and free of external dependencies — that round-trips a
//! [`SensorClassifier`] bit-exactly (weights are hex-encoded at their
//! native width: 16 digits for `f64`, 8 for `f32`).
//!
//! The line after the magic records the weight dtype (`dtype,f64` /
//! `dtype,f32`). Loading a file into a classifier of a different scalar
//! is refused with [`NnError::DtypeMismatch`]: a silent `f32`→`f64`
//! widening would produce a model that is bitwise unlike anything that
//! was ever trained, and a `f64`→`f32` narrowing would silently round
//! every weight — re-train or re-save at the target precision instead.

use crate::classifier::SensorClassifier;
use crate::error::NnError;
use crate::mlp::Mlp;
use crate::norm::Normalizer;
use crate::scalar::Scalar;
use origin_types::{ActivityClass, ActivitySet};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

const MAGIC: &str = "origin-classifier v1";

/// Maps a dtype tag from a model file to its canonical static string, so
/// [`NnError::DtypeMismatch`] can carry it without allocating.
fn canonical_dtype(tag: &str) -> Option<&'static str> {
    match tag {
        "f64" => Some("f64"),
        "f32" => Some("f32"),
        _ => None,
    }
}

/// Writes `classifier` to `writer` in the v1 text format.
///
/// A `&mut` reference may be passed for `writer`.
///
/// # Errors
///
/// Returns [`NnError::Io`] when the underlying writer fails.
pub fn save_classifier<S: Scalar, W: Write>(
    classifier: &SensorClassifier<S>,
    writer: W,
) -> Result<(), NnError> {
    let mut w = BufWriter::new(writer);
    let io = NnError::from_io;
    writeln!(w, "{MAGIC}").map_err(io)?;
    writeln!(w, "dtype,{}", S::DTYPE).map_err(io)?;

    let classes: Vec<String> = classifier
        .activities()
        .iter()
        .map(|c| c.index().to_string())
        .collect();
    writeln!(w, "activities,{}", classes.join(",")).map_err(io)?;

    let dims: Vec<String> = classifier
        .mlp()
        .dims()
        .iter()
        .map(usize::to_string)
        .collect();
    writeln!(w, "dims,{}", dims.join(",")).map_err(io)?;

    // Normalizer statistics live on the f64 side of the precision
    // boundary regardless of the weight dtype.
    writeln!(
        w,
        "normalizer_mean,{}",
        hex_floats(classifier.normalizer().mean())
    )
    .map_err(io)?;
    writeln!(
        w,
        "normalizer_std,{}",
        hex_floats(classifier.normalizer().std())
    )
    .map_err(io)?;

    for (i, layer) in classifier.mlp().layers().iter().enumerate() {
        writeln!(w, "layer,{i}").map_err(io)?;
        writeln!(w, "weights,{}", hex_floats(layer.weights().as_slice())).map_err(io)?;
        writeln!(w, "bias,{}", hex_floats(layer.bias())).map_err(io)?;
        if let Some(mask) = layer.mask() {
            let bits: String = mask.iter().map(|&b| if b { '1' } else { '0' }).collect();
            writeln!(w, "mask,{bits}").map_err(io)?;
        }
    }
    writeln!(w, "end").map_err(io)?;
    w.flush().map_err(io)?;
    Ok(())
}

/// Reads a classifier previously written with [`save_classifier`].
///
/// A `&mut` reference may be passed for `reader`. The round-trip is
/// bit-exact: `load(save(c)) == c`.
///
/// # Errors
///
/// * [`NnError::DtypeMismatch`] when the file holds a different scalar
///   dtype than `S`.
/// * [`NnError::ParseModel`] on a malformed file.
/// * [`NnError::Io`] on underlying reader failure.
pub fn load_classifier<S: Scalar, R: Read>(reader: R) -> Result<SensorClassifier<S>, NnError> {
    let lines: Vec<String> = BufReader::new(reader)
        .lines()
        .collect::<Result<_, _>>()
        .map_err(NnError::from_io)?;

    let take =
        |cursor: &mut dyn Iterator<Item = &str>, what: &'static str| -> Result<String, NnError> {
            cursor.next().map(str::to_owned).ok_or(NnError::ParseModel {
                line: what,
                reason: "unexpected end of file",
            })
        };

    let mut iter: Box<dyn Iterator<Item = &str>> = Box::new(lines.iter().map(String::as_str));

    let magic = take(&mut iter, "magic")?;
    if magic.trim() != MAGIC {
        return Err(NnError::ParseModel {
            line: "magic",
            reason: "not an origin-classifier v1 file",
        });
    }

    let dtype_line = take(&mut iter, "dtype")?;
    let found =
        canonical_dtype(field(&dtype_line, "dtype")?.trim()).ok_or(NnError::ParseModel {
            line: "dtype",
            reason: "unknown scalar dtype",
        })?;
    if found != S::DTYPE {
        return Err(NnError::DtypeMismatch {
            expected: S::DTYPE,
            found,
        });
    }

    let activities_line = take(&mut iter, "activities")?;
    let classes: Vec<ActivityClass> = field(&activities_line, "activities")?
        .split(',')
        .map(|v| {
            v.trim()
                .parse::<usize>()
                .ok()
                .and_then(ActivityClass::from_index)
                .ok_or(NnError::ParseModel {
                    line: "activities",
                    reason: "invalid class index",
                })
        })
        .collect::<Result<_, _>>()?;
    let activities = ActivitySet::new(classes).map_err(|_| NnError::ParseModel {
        line: "activities",
        reason: "empty activity set",
    })?;

    let dims_line = take(&mut iter, "dims")?;
    let dims: Vec<usize> = field(&dims_line, "dims")?
        .split(',')
        .map(|v| {
            v.trim().parse().map_err(|_| NnError::ParseModel {
                line: "dims",
                reason: "invalid dimension",
            })
        })
        .collect::<Result<_, _>>()?;

    let mean = parse_floats(&take(&mut iter, "normalizer_mean")?, "normalizer_mean")?;
    let std = parse_floats(&take(&mut iter, "normalizer_std")?, "normalizer_std")?;
    let normalizer = Normalizer::from_parts(mean, std)?;

    let mut mlp = Mlp::<S>::new(&dims, 0)?;
    let layer_count = mlp.layers().len();
    // Read layer blocks; a block is `layer,i` / `weights,..` / `bias,..`
    // optionally followed by `mask,..`. The line after the final block is
    // `end`.
    let mut pending = take(&mut iter, "layer")?;
    for i in 0..layer_count {
        if field(&pending, "layer")?.trim().parse::<usize>() != Ok(i) {
            return Err(NnError::ParseModel {
                line: "layer",
                reason: "layers out of order",
            });
        }
        let weights: Vec<S> = parse_floats(&take(&mut iter, "weights")?, "weights")?;
        let bias: Vec<S> = parse_floats(&take(&mut iter, "bias")?, "bias")?;
        mlp.layers_mut()[i].load_parameters(&weights, &bias)?;

        pending = take(&mut iter, "layer or mask or end")?;
        if let Ok(bits) = field(&pending, "mask") {
            let mask: Vec<bool> = bits
                .trim()
                .chars()
                .map(|c| match c {
                    '1' => Ok(true),
                    '0' => Ok(false),
                    _ => Err(NnError::ParseModel {
                        line: "mask",
                        reason: "mask bits must be 0/1",
                    }),
                })
                .collect::<Result<_, _>>()?;
            if mask.len() != mlp.layers()[i].total_weights() {
                return Err(NnError::ParseModel {
                    line: "mask",
                    reason: "mask length mismatch",
                });
            }
            mlp.layers_mut()[i].set_mask_preserving_weights(mask);
            pending = take(&mut iter, "layer or end")?;
        }
    }
    if pending.trim() != "end" {
        return Err(NnError::ParseModel {
            line: "end",
            reason: "missing end marker",
        });
    }

    SensorClassifier::new(mlp, normalizer, activities)
}

fn field<'a>(line: &'a str, key: &'static str) -> Result<&'a str, NnError> {
    line.strip_prefix(key)
        .and_then(|rest| rest.strip_prefix(','))
        .ok_or(NnError::ParseModel {
            line: key,
            reason: "missing or mislabelled field",
        })
}

fn hex_floats<S: Scalar>(values: &[S]) -> String {
    values
        .iter()
        .map(|v| format!("{:0width$x}", v.to_bits_u64(), width = S::HEX_WIDTH))
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_floats<S: Scalar>(line: &str, key: &'static str) -> Result<Vec<S>, NnError> {
    field(line, key)?
        .split(',')
        .map(|v| {
            u64::from_str_radix(v.trim(), 16)
                .ok()
                .and_then(S::checked_from_bits)
                .ok_or(NnError::ParseModel {
                    line: key,
                    reason: "invalid hex float",
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::Trainer;

    fn toy_training_data() -> Vec<(Vec<f64>, usize)> {
        (0..60)
            .map(|i| {
                let label = i % 3;
                (vec![label as f64 * 2.0, (i % 5) as f64 * 0.1], label)
            })
            .collect()
    }

    fn small_set() -> ActivitySet {
        ActivitySet::new([
            ActivityClass::Walking,
            ActivityClass::Running,
            ActivityClass::Jumping,
        ])
        .unwrap()
    }

    fn trained<S: Scalar>() -> SensorClassifier<S> {
        SensorClassifier::train(
            &[6],
            &toy_training_data(),
            small_set(),
            &Trainer::new().with_epochs(30),
            9,
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let clf = trained::<f64>();
        let mut buf = Vec::new();
        save_classifier(&clf, &mut buf).unwrap();
        let loaded = load_classifier(buf.as_slice()).unwrap();
        assert_eq!(clf, loaded);
    }

    #[test]
    fn f32_roundtrip_is_bit_exact() {
        let clf = trained::<f32>();
        let mut buf = Vec::new();
        save_classifier(&clf, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.contains("dtype,f32"));
        let loaded: SensorClassifier<f32> = load_classifier(buf.as_slice()).unwrap();
        assert_eq!(clf, loaded);
    }

    #[test]
    fn dtype_header_is_written_and_enforced() {
        let clf = trained::<f64>();
        let mut buf = Vec::new();
        save_classifier(&clf, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.lines().nth(1) == Some("dtype,f64"));

        // Loading an f64 file as f32 is refused with the typed error…
        assert_eq!(
            load_classifier::<f32, _>(buf.as_slice()).unwrap_err(),
            NnError::DtypeMismatch {
                expected: "f32",
                found: "f64",
            }
        );
        // …and the reverse direction likewise.
        let clf32 = trained::<f32>();
        let mut buf32 = Vec::new();
        save_classifier(&clf32, &mut buf32).unwrap();
        assert_eq!(
            load_classifier::<f64, _>(buf32.as_slice()).unwrap_err(),
            NnError::DtypeMismatch {
                expected: "f64",
                found: "f32",
            }
        );
    }

    #[test]
    fn unknown_dtype_is_a_parse_error() {
        let clf = trained::<f64>();
        let mut buf = Vec::new();
        save_classifier(&clf, &mut buf).unwrap();
        let text = String::from_utf8(buf)
            .unwrap()
            .replace("dtype,f64", "dtype,f16");
        assert!(matches!(
            load_classifier::<f64, _>(text.as_bytes()),
            Err(NnError::ParseModel { line: "dtype", .. })
        ));
    }

    #[test]
    fn f32_loader_rejects_overwide_hex() {
        let clf = trained::<f32>();
        let mut buf = Vec::new();
        save_classifier(&clf, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // Splice a 16-digit (f64-width) value into an f32 weights line.
        let tampered = text
            .lines()
            .map(|l| {
                if let Some(rest) = l.strip_prefix("weights,") {
                    let mut vals: Vec<String> = rest.split(',').map(str::to_owned).collect();
                    vals[0] = "3fe0000000000000".to_owned();
                    format!("weights,{}", vals.join(","))
                } else {
                    l.to_owned()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        assert!(matches!(
            load_classifier::<f32, _>(tampered.as_bytes()),
            Err(NnError::ParseModel {
                line: "weights",
                ..
            })
        ));
    }

    #[test]
    fn roundtrip_preserves_masks() {
        let mut clf = trained::<f64>();
        let n = clf.mlp().layers()[0].total_weights();
        let mask: Vec<bool> = (0..n).map(|i| i % 3 != 0).collect();
        clf.mlp_mut().layers_mut()[0].set_mask(mask.clone());
        let mut buf = Vec::new();
        save_classifier(&clf, &mut buf).unwrap();
        let loaded: SensorClassifier = load_classifier(buf.as_slice()).unwrap();
        assert_eq!(clf, loaded);
        assert_eq!(loaded.mlp().layers()[0].mask(), Some(mask.as_slice()));
    }

    #[test]
    fn loaded_model_classifies_identically() {
        let clf = trained::<f64>();
        let mut buf = Vec::new();
        save_classifier(&clf, &mut buf).unwrap();
        let loaded: SensorClassifier = load_classifier(buf.as_slice()).unwrap();
        for i in 0..10 {
            let x = vec![i as f64 * 0.37, (10 - i) as f64 * 0.11];
            assert_eq!(
                clf.classify(&x).unwrap(),
                loaded.classify(&x).unwrap(),
                "divergence at sample {i}"
            );
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            load_classifier::<f64, _>("not a model".as_bytes()),
            Err(NnError::ParseModel { line: "magic", .. })
        ));
        assert!(matches!(
            load_classifier::<f64, _>("".as_bytes()),
            Err(NnError::ParseModel { .. })
        ));
    }

    #[test]
    fn rejects_truncated_file() {
        let clf = trained::<f64>();
        let mut buf = Vec::new();
        save_classifier(&clf, &mut buf).unwrap();
        let truncated = &buf[..buf.len() / 2];
        assert!(load_classifier::<f64, _>(truncated).is_err());
    }

    #[test]
    fn rejects_tampered_mask() {
        let mut clf = trained::<f64>();
        let n = clf.mlp().layers()[0].total_weights();
        clf.mlp_mut().layers_mut()[0].set_mask(vec![true; n]);
        let mut buf = Vec::new();
        save_classifier(&clf, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap().replace("mask,1", "mask,x");
        assert!(matches!(
            load_classifier::<f64, _>(text.as_bytes()),
            Err(NnError::ParseModel { line: "mask", .. })
        ));
    }
}
