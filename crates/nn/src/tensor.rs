//! A minimal dense row-major matrix.

use crate::kernels::{self, KernelPath};
use crate::scalar::Scalar;
use core::fmt;

/// A dense `rows × cols` matrix, row-major, generic over the element
/// [`Scalar`] (`f64` by default).
///
/// Only the operations the MLP engine needs are provided; this is a
/// substrate, not a linear-algebra library.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<S: Scalar = f64> {
    rows: usize,
    cols: usize,
    data: Vec<S>,
}

impl<S: Scalar> Matrix<S> {
    /// A `rows × cols` matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![S::ZERO; rows * cols],
        }
    }

    /// Builds a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != rows * cols` or a dimension is zero.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<S>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert_eq!(
            data.len(),
            rows * cols,
            "data length must equal rows * cols"
        );
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> S {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn set(&mut self, r: usize, c: usize, v: S) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of bounds.
    #[must_use]
    pub fn row(&self, r: usize) -> &[S] {
        assert!(r < self.rows, "row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [S] {
        assert!(r < self.rows, "row out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The flat row-major data.
    #[must_use]
    pub fn as_slice(&self) -> &[S] {
        &self.data
    }

    /// Mutable flat row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != cols`.
    #[must_use]
    pub fn matvec(&self, x: &[S]) -> Vec<S> {
        let mut out = vec![S::ZERO; self.rows];
        self.matvec_into(x, &mut out);
        out
    }

    /// Allocation-free [`Matrix::matvec`]: writes `self * x` into `out`.
    ///
    /// The per-row reduction runs in ascending column order, exactly as
    /// in `matvec`, so the two paths are bitwise identical.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != cols` or `out.len() != rows`.
    pub fn matvec_into(&self, x: &[S], out: &mut [S]) {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        assert_eq!(out.len(), self.rows, "matvec output length mismatch");
        for (r, out_r) in out.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            *out_r = row
                .iter()
                .zip(x)
                .fold(S::ZERO, |acc, (&w, &xi)| acc + w * xi);
        }
    }

    /// [`Matrix::matvec_into`] through an explicit [`KernelPath`]:
    /// `Scalar` runs the reference fold, `Unrolled` runs the row-blocked
    /// kernel from [`crate::kernels`]. Both are bitwise identical.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != cols` or `out.len() != rows`.
    pub fn matvec_into_path(&self, x: &[S], out: &mut [S], path: KernelPath) {
        match path {
            KernelPath::Scalar => self.matvec_into(x, out),
            KernelPath::Unrolled => {
                assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
                assert_eq!(out.len(), self.rows, "matvec output length mismatch");
                kernels::matvec_unrolled(&self.data, self.cols, x, out);
            }
        }
    }

    /// Batched matrix–vector product: `xs` holds `batch` row-major input
    /// vectors of width `cols`; `out` receives `batch` output vectors of
    /// width `rows`.
    ///
    /// The loop nest iterates `(row, example)` so one weight row stays
    /// hot in cache across the whole batch; the per-`(row, example)`
    /// reduction order is unchanged from [`Matrix::matvec`], so each
    /// output vector is bitwise identical to a per-example `matvec`.
    ///
    /// # Panics
    ///
    /// Panics when `xs.len() != batch * cols` or
    /// `out.len() != batch * rows`.
    pub fn matvec_batch_into(&self, xs: &[S], batch: usize, out: &mut [S]) {
        assert_eq!(xs.len(), batch * self.cols, "batch input length mismatch");
        assert_eq!(out.len(), batch * self.rows, "batch output length mismatch");
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for e in 0..batch {
                let x = &xs[e * self.cols..(e + 1) * self.cols];
                out[e * self.rows + r] = row
                    .iter()
                    .zip(x)
                    .fold(S::ZERO, |acc, (&w, &xi)| acc + w * xi);
            }
        }
    }

    /// [`Matrix::matvec_batch_into`] through an explicit [`KernelPath`]
    /// (bitwise identical either way).
    ///
    /// # Panics
    ///
    /// Panics when the buffer lengths do not match `batch` × the shape.
    pub fn matvec_batch_into_path(&self, xs: &[S], batch: usize, out: &mut [S], path: KernelPath) {
        match path {
            KernelPath::Scalar => self.matvec_batch_into(xs, batch, out),
            KernelPath::Unrolled => {
                assert_eq!(xs.len(), batch * self.cols, "batch input length mismatch");
                assert_eq!(out.len(), batch * self.rows, "batch output length mismatch");
                kernels::matvec_batch_unrolled(&self.data, self.rows, self.cols, xs, batch, out);
            }
        }
    }

    /// Transposed matrix–vector product `selfᵀ * x`.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != rows`.
    #[must_use]
    pub fn matvec_transposed(&self, x: &[S]) -> Vec<S> {
        let mut out = vec![S::ZERO; self.cols];
        self.matvec_transposed_into(x, &mut out);
        out
    }

    /// Allocation-free [`Matrix::matvec_transposed`]: writes `selfᵀ * x`
    /// into `out` (bitwise identical accumulation order).
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != rows` or `out.len() != cols`.
    pub fn matvec_transposed_into(&self, x: &[S], out: &mut [S]) {
        assert_eq!(x.len(), self.rows, "matvec_transposed dimension mismatch");
        assert_eq!(
            out.len(),
            self.cols,
            "matvec_transposed output length mismatch"
        );
        out.fill(S::ZERO);
        for (r, &xr) in x.iter().enumerate() {
            for (c, out_c) in out.iter_mut().enumerate() {
                *out_c += self.data[r * self.cols + c] * xr;
            }
        }
    }

    /// [`Matrix::matvec_transposed_into`] through an explicit
    /// [`KernelPath`] (bitwise identical either way).
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != rows` or `out.len() != cols`.
    pub fn matvec_transposed_into_path(&self, x: &[S], out: &mut [S], path: KernelPath) {
        match path {
            KernelPath::Scalar => self.matvec_transposed_into(x, out),
            KernelPath::Unrolled => {
                assert_eq!(x.len(), self.rows, "matvec_transposed dimension mismatch");
                assert_eq!(
                    out.len(),
                    self.cols,
                    "matvec_transposed output length mismatch"
                );
                kernels::matvec_transposed_unrolled(&self.data, self.cols, x, out);
            }
        }
    }

    /// Number of non-zero entries.
    #[must_use]
    pub fn count_nonzero(&self) -> usize {
        self.data.iter().filter(|&&v| v != S::ZERO).count()
    }
}

impl<S: Scalar> fmt::Display for Matrix<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix[{}x{}]", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn from_vec_layout_is_row_major() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn matvec_works() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 0.0, 2.0, 0.0, 1.0, -1.0]);
        let y = m.matvec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn matvec_works_at_f32() {
        let m = Matrix::<f32>::from_vec(2, 3, vec![1.0, 0.0, 2.0, 0.0, 1.0, -1.0]);
        let y = m.matvec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![7.0f32, -1.0]);
    }

    #[test]
    fn matvec_transposed_works() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 0.0, 2.0, 0.0, 1.0, -1.0]);
        let y = m.matvec_transposed(&[1.0, 2.0]);
        assert_eq!(y, vec![1.0, 2.0, 0.0]);
    }

    #[test]
    fn count_nonzero_counts() {
        let m = Matrix::from_vec(2, 2, vec![0.0, 1.0, 0.0, -2.0]);
        assert_eq!(m.count_nonzero(), 2);
    }

    #[test]
    fn row_mut_edits_in_place() {
        let mut m = Matrix::zeros(2, 2);
        m.row_mut(0)[1] = 9.0;
        assert_eq!(m.get(0, 1), 9.0);
        m.as_mut_slice()[3] = 4.0;
        assert_eq!(m.get(1, 1), 4.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_checks_dims() {
        let _ = Matrix::<f64>::zeros(2, 3).matvec(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dims_panic() {
        let _ = Matrix::<f64>::zeros(0, 3);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Matrix::<f64>::zeros(3, 4).to_string(), "Matrix[3x4]");
    }
}
