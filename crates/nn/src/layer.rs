//! Fully-connected layer with an optional pruning mask.

use crate::tensor::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

/// A dense (fully-connected) layer: `y = W x + b`.
///
/// The layer optionally carries a *pruning mask*; masked weights stay
/// exactly zero through any further training, which is how fine-tuning
/// after energy-aware pruning preserves sparsity.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    weights: Matrix,
    bias: Vec<f64>,
    mask: Option<Vec<bool>>,
}

impl Dense {
    /// A layer with He-uniform initialized weights (suits the ReLU hidden
    /// activations).
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    #[must_use]
    pub fn init(inputs: usize, outputs: usize, rng: &mut StdRng) -> Self {
        assert!(
            inputs > 0 && outputs > 0,
            "layer dimensions must be positive"
        );
        let limit = (6.0 / inputs as f64).sqrt();
        let mut weights = Matrix::zeros(outputs, inputs);
        for w in weights.as_mut_slice() {
            *w = (rng.gen::<f64>() * 2.0 - 1.0) * limit;
        }
        Self {
            weights,
            bias: vec![0.0; outputs],
            mask: None,
        }
    }

    /// Input width.
    #[must_use]
    pub fn inputs(&self) -> usize {
        self.weights.cols()
    }

    /// Output width.
    #[must_use]
    pub fn outputs(&self) -> usize {
        self.weights.rows()
    }

    /// The weight matrix.
    #[must_use]
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// The bias vector.
    #[must_use]
    pub fn bias(&self) -> &[f64] {
        &self.bias
    }

    /// Number of *active* (unpruned, nonzero-capable) weights.
    #[must_use]
    pub fn active_weights(&self) -> usize {
        match &self.mask {
            Some(mask) => mask.iter().filter(|&&keep| keep).count(),
            None => self.weights.rows() * self.weights.cols(),
        }
    }

    /// Total weight count (dense size).
    #[must_use]
    pub fn total_weights(&self) -> usize {
        self.weights.rows() * self.weights.cols()
    }

    /// Forward pass.
    #[must_use]
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut y = self.weights.matvec(x);
        for (yi, bi) in y.iter_mut().zip(&self.bias) {
            *yi += bi;
        }
        y
    }

    /// Backward pass: given the upstream gradient `dy` and the cached input
    /// `x`, applies an SGD-with-momentum update and returns the gradient
    /// with respect to the input.
    pub fn backward(
        &mut self,
        x: &[f64],
        dy: &[f64],
        lr: f64,
        momentum: f64,
        velocity: &mut LayerVelocity,
    ) -> Vec<f64> {
        let dx = self.weights.matvec_transposed(dy);
        // Weight and bias updates.
        for (r, &dyr) in dy.iter().enumerate() {
            let vrow = velocity.weights.row_mut(r);
            let wrow = self.weights.row_mut(r);
            for (c, &xc) in x.iter().enumerate() {
                let grad = dyr * xc;
                vrow[c] = momentum * vrow[c] - lr * grad;
                wrow[c] += vrow[c];
            }
            velocity.bias[r] = momentum * velocity.bias[r] - lr * dyr;
            self.bias[r] += velocity.bias[r];
        }
        self.apply_mask();
        dx
    }

    /// Installs a pruning mask (`true` = keep) and zeroes pruned weights.
    ///
    /// # Panics
    ///
    /// Panics when the mask length does not equal the weight count.
    pub fn set_mask(&mut self, mask: Vec<bool>) {
        assert_eq!(
            mask.len(),
            self.total_weights(),
            "mask length must equal weight count"
        );
        self.mask = Some(mask);
        self.apply_mask();
    }

    /// The current mask, if any.
    #[must_use]
    pub fn mask(&self) -> Option<&[bool]> {
        self.mask.as_deref()
    }

    /// Overwrites the layer's parameters (persistence).
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::DimensionMismatch`] when the slices do
    /// not match the layer shape.
    pub fn load_parameters(&mut self, weights: &[f64], bias: &[f64]) -> Result<(), crate::NnError> {
        if weights.len() != self.total_weights() {
            return Err(crate::NnError::DimensionMismatch {
                expected: self.total_weights(),
                actual: weights.len(),
            });
        }
        if bias.len() != self.outputs() {
            return Err(crate::NnError::DimensionMismatch {
                expected: self.outputs(),
                actual: bias.len(),
            });
        }
        self.weights.as_mut_slice().copy_from_slice(weights);
        self.bias.copy_from_slice(bias);
        self.apply_mask();
        Ok(())
    }

    /// Installs a mask without zeroing weights that are already zero by
    /// construction (persistence path — the stored weights already
    /// reflect the mask).
    ///
    /// # Panics
    ///
    /// Panics when the mask length does not equal the weight count.
    pub fn set_mask_preserving_weights(&mut self, mask: Vec<bool>) {
        assert_eq!(
            mask.len(),
            self.total_weights(),
            "mask length must equal weight count"
        );
        self.mask = Some(mask);
        self.apply_mask();
    }

    fn apply_mask(&mut self) {
        if let Some(mask) = &self.mask {
            for (w, &keep) in self.weights.as_mut_slice().iter_mut().zip(mask) {
                if !keep {
                    *w = 0.0;
                }
            }
        }
    }

    /// Indices of active weights sorted by ascending |w| — the magnitude
    /// pruning order.
    #[must_use]
    pub fn weights_by_magnitude(&self) -> Vec<usize> {
        let mask = self.mask.as_deref();
        let mut indices: Vec<usize> = (0..self.total_weights())
            .filter(|&i| mask.is_none_or(|m| m[i]))
            .collect();
        indices.sort_by(|&a, &b| {
            let wa = self.weights.as_slice()[a].abs();
            let wb = self.weights.as_slice()[b].abs();
            wa.partial_cmp(&wb).expect("weights are finite")
        });
        indices
    }
}

/// Momentum state for one layer.
#[derive(Debug, Clone)]
pub struct LayerVelocity {
    pub(crate) weights: Matrix,
    pub(crate) bias: Vec<f64>,
}

impl LayerVelocity {
    /// Zero velocity matching `layer`'s shape.
    #[must_use]
    pub fn zeros_like(layer: &Dense) -> Self {
        Self {
            weights: Matrix::zeros(layer.outputs(), layer.inputs()),
            bias: vec![0.0; layer.outputs()],
        }
    }
}

/// In-place ReLU.
pub(crate) fn relu(x: &mut [f64]) {
    for v in x {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// ReLU gradient gate: zeroes `grad[i]` where the pre-activation was ≤ 0.
pub(crate) fn relu_backward(pre_activation: &[f64], grad: &mut [f64]) {
    for (g, &a) in grad.iter_mut().zip(pre_activation) {
        if a <= 0.0 {
            *g = 0.0;
        }
    }
}

/// Numerically-stable softmax.
#[must_use]
pub(crate) fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn init_shapes_and_bounds() {
        let layer = Dense::init(4, 3, &mut rng());
        assert_eq!(layer.inputs(), 4);
        assert_eq!(layer.outputs(), 3);
        assert_eq!(layer.total_weights(), 12);
        assert_eq!(layer.active_weights(), 12);
        let limit = (6.0f64 / 4.0).sqrt();
        assert!(layer.weights().as_slice().iter().all(|w| w.abs() <= limit));
        assert!(layer.bias().iter().all(|&b| b == 0.0));
    }

    #[test]
    fn forward_applies_affine() {
        let mut layer = Dense::init(2, 1, &mut rng());
        layer.weights.row_mut(0).copy_from_slice(&[2.0, -1.0]);
        layer.bias[0] = 0.5;
        assert_eq!(layer.forward(&[3.0, 1.0]), vec![5.5]);
    }

    #[test]
    fn mask_zeroes_and_sticks_through_updates() {
        let mut layer = Dense::init(2, 2, &mut rng());
        layer.set_mask(vec![true, false, false, true]);
        assert_eq!(layer.active_weights(), 2);
        assert_eq!(layer.weights().get(0, 1), 0.0);
        assert_eq!(layer.weights().get(1, 0), 0.0);
        // Train a step; masked weights must stay zero.
        let mut vel = LayerVelocity::zeros_like(&layer);
        let _ = layer.backward(&[1.0, 1.0], &[0.3, -0.2], 0.1, 0.9, &mut vel);
        assert_eq!(layer.weights().get(0, 1), 0.0);
        assert_eq!(layer.weights().get(1, 0), 0.0);
    }

    #[test]
    fn backward_reduces_loss_direction() {
        // y = w x; loss = (y - t)^2 / 2; gradient descent must move y toward t.
        let mut layer = Dense::init(1, 1, &mut rng());
        layer.weights.row_mut(0)[0] = 0.0;
        layer.bias[0] = 0.0;
        let mut vel = LayerVelocity::zeros_like(&layer);
        let target = 1.0;
        let mut last_err = f64::INFINITY;
        for _ in 0..50 {
            let y = layer.forward(&[1.0])[0];
            let err = (y - target).abs();
            assert!(err <= last_err + 1e-9);
            last_err = err;
            let dy = y - target;
            let _ = layer.backward(&[1.0], &[dy], 0.1, 0.0, &mut vel);
        }
        assert!(last_err < 0.05, "err = {last_err}");
    }

    #[test]
    fn magnitude_order_is_ascending() {
        let mut layer = Dense::init(2, 2, &mut rng());
        layer
            .weights
            .as_mut_slice()
            .copy_from_slice(&[0.5, -0.1, 0.9, 0.2]);
        let order = layer.weights_by_magnitude();
        assert_eq!(order, vec![1, 3, 0, 2]);
    }

    #[test]
    fn magnitude_order_skips_masked() {
        let mut layer = Dense::init(2, 2, &mut rng());
        layer
            .weights
            .as_mut_slice()
            .copy_from_slice(&[0.5, -0.1, 0.9, 0.2]);
        layer.set_mask(vec![true, false, true, true]);
        assert_eq!(layer.weights_by_magnitude(), vec![3, 0, 2]);
    }

    #[test]
    fn softmax_is_a_distribution() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
        // Stability with huge logits.
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn relu_and_gate() {
        let mut x = vec![-1.0, 0.0, 2.0];
        relu(&mut x);
        assert_eq!(x, vec![0.0, 0.0, 2.0]);
        let mut g = vec![1.0, 1.0, 1.0];
        relu_backward(&[-1.0, 0.0, 2.0], &mut g);
        assert_eq!(g, vec![0.0, 0.0, 1.0]);
    }
}
