//! Fully-connected layer with an optional pruning mask.

use crate::kernels::{self, KernelPath};
use crate::scalar::Scalar;
use crate::tensor::Matrix;
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::OnceLock;

/// Compiled sparse (CSR-style) view of a pruned weight matrix.
///
/// Built lazily from the mask on first inference and dropped on any
/// weight mutation. Active weights are stored per row in ascending
/// column order, so the sparse dot product visits the surviving terms
/// in exactly the order the dense kernel does. Skipping the masked
/// terms is bitwise-safe: masked weights are exactly `+0.0`, their
/// products are `±0.0`, and under IEEE-754 round-to-nearest a running
/// sum that starts at `+0.0` and only ever adds `±0.0` terms cannot
/// leave `+0.0`, nor can adding `±0.0` change a nonzero partial sum.
/// The argument is precision-independent — it holds at `f32` exactly as
/// it does at `f64`.
///
/// (An ELLPACK-style row-padded layout was benchmarked here and lost
/// to this layout at both 70% and 90% sparsity on the paper-sized
/// layers: padding rows to the densest row's width adds more
/// multiply-adds than the uniform trip count saves.)
#[derive(Debug, Clone)]
struct CsrWeights<S> {
    /// `row_ptr[r]..row_ptr[r + 1]` indexes the entries of row `r`.
    row_ptr: Vec<u32>,
    /// Column index of each active weight, ascending within a row.
    cols: Vec<u32>,
    /// Value of each active weight.
    vals: Vec<S>,
}

/// A dense (fully-connected) layer: `y = W x + b`.
///
/// The layer optionally carries a *pruning mask*; masked weights stay
/// exactly zero through any further training, which is how fine-tuning
/// after energy-aware pruning preserves sparsity. Pruned layers are
/// additionally compiled to a `CsrWeights` form on first inference so
/// the forward kernels skip masked weights entirely.
#[derive(Debug, Clone)]
pub struct Dense<S: Scalar = f64> {
    weights: Matrix<S>,
    bias: Vec<S>,
    mask: Option<Vec<bool>>,
    /// Lazily-compiled sparse form; `None` inside the lock means the
    /// mask (if any) keeps every weight, so dense iteration is cheaper.
    csr: OnceLock<Option<CsrWeights<S>>>,
}

impl<S: Scalar> PartialEq for Dense<S> {
    /// Compares the mathematical parameters only; the compiled sparse
    /// cache is derived state and deliberately ignored.
    fn eq(&self, other: &Self) -> bool {
        self.weights == other.weights && self.bias == other.bias && self.mask == other.mask
    }
}

impl<S: Scalar> Dense<S> {
    /// A layer with He-uniform initialized weights (suits the ReLU hidden
    /// activations).
    ///
    /// The uniform draw and scaling happen in `f64` and are narrowed at
    /// the end, so every precision consumes the identical RNG stream
    /// (the `f64` path is bitwise unchanged; the `f32` path sees the
    /// same weights rounded once).
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    #[must_use]
    pub fn init(inputs: usize, outputs: usize, rng: &mut StdRng) -> Self {
        assert!(
            inputs > 0 && outputs > 0,
            "layer dimensions must be positive"
        );
        let limit = (6.0 / inputs as f64).sqrt();
        let mut weights = Matrix::zeros(outputs, inputs);
        for w in weights.as_mut_slice() {
            *w = S::from_f64((rng.gen::<f64>() * 2.0 - 1.0) * limit);
        }
        Self {
            weights,
            bias: vec![S::ZERO; outputs],
            mask: None,
            csr: OnceLock::new(),
        }
    }

    /// Input width.
    #[must_use]
    pub fn inputs(&self) -> usize {
        self.weights.cols()
    }

    /// Output width.
    #[must_use]
    pub fn outputs(&self) -> usize {
        self.weights.rows()
    }

    /// The weight matrix.
    #[must_use]
    pub fn weights(&self) -> &Matrix<S> {
        &self.weights
    }

    /// The bias vector.
    #[must_use]
    pub fn bias(&self) -> &[S] {
        &self.bias
    }

    /// Number of *active* (unpruned, nonzero-capable) weights.
    #[must_use]
    pub fn active_weights(&self) -> usize {
        match &self.mask {
            Some(mask) => mask.iter().filter(|&&keep| keep).count(),
            None => self.weights.rows() * self.weights.cols(),
        }
    }

    /// Total weight count (dense size).
    #[must_use]
    pub fn total_weights(&self) -> usize {
        self.weights.rows() * self.weights.cols()
    }

    /// Forward pass.
    #[must_use]
    pub fn forward(&self, x: &[S]) -> Vec<S> {
        let mut y = vec![S::ZERO; self.outputs()];
        self.forward_into(x, &mut y);
        y
    }

    /// Allocation-free forward pass. Uses the compiled sparse form when
    /// the layer is pruned (bitwise identical to the dense path — see
    /// `CsrWeights`).
    ///
    /// # Panics
    ///
    /// Panics when `x` or `out` does not match the layer shape.
    pub fn forward_into(&self, x: &[S], out: &mut [S]) {
        if let Some(csr) = self.compiled() {
            assert_eq!(x.len(), self.inputs(), "matvec dimension mismatch");
            assert_eq!(out.len(), self.outputs(), "matvec output length mismatch");
            // The streaming gather (running `split_at` over the entry
            // arrays rather than re-derived `row_ptr` spans; benchmarked
            // ~25% faster than span indexing on the paper-sized layers)
            // lives in `kernels::csr_matvec_stream` and is *shared* with
            // the unrolled path — one copy of the loop in the binary, so
            // the A/B bench rows cannot drift apart through code layout.
            // It fuses the bias add (each output is still fold-then-bias
            // in the same per-element order), so no second pass here.
            kernels::csr_matvec_stream(&csr.row_ptr, &csr.cols, &csr.vals, &self.bias, x, out);
        } else {
            self.weights.matvec_into(x, out);
            for (yi, &bi) in out.iter_mut().zip(&self.bias) {
                *yi += bi;
            }
        }
    }

    /// [`Dense::forward_into`] through an explicit [`KernelPath`]:
    /// `Scalar` runs the reference kernels, `Unrolled` the row-blocked
    /// ones from [`crate::kernels`]. Bitwise identical either way; the
    /// compiled sparse form is used by both when the layer is pruned.
    ///
    /// # Panics
    ///
    /// Panics when `x` or `out` does not match the layer shape.
    pub fn forward_into_path(&self, x: &[S], out: &mut [S], path: KernelPath) {
        if path == KernelPath::Scalar {
            self.forward_into(x, out);
            return;
        }
        if let Some(csr) = self.compiled() {
            assert_eq!(x.len(), self.inputs(), "matvec dimension mismatch");
            assert_eq!(out.len(), self.outputs(), "matvec output length mismatch");
            kernels::csr_matvec_unrolled(&csr.row_ptr, &csr.cols, &csr.vals, &self.bias, x, out);
        } else {
            self.weights.matvec_into_path(x, out, path);
            for (yi, &bi) in out.iter_mut().zip(&self.bias) {
                *yi += bi;
            }
        }
    }

    /// Dense-only allocation-free forward pass, ignoring any compiled
    /// sparse form. The trainer uses this: backward invalidates the
    /// sparse cache every step, so compiling it mid-fit would thrash.
    pub(crate) fn forward_dense_into(&self, x: &[S], out: &mut [S]) {
        self.weights.matvec_into(x, out);
        for (yi, &bi) in out.iter_mut().zip(&self.bias) {
            *yi += bi;
        }
    }

    /// [`Dense::forward_dense_into`] through an explicit [`KernelPath`]
    /// (bitwise identical either way).
    pub(crate) fn forward_dense_into_path(&self, x: &[S], out: &mut [S], path: KernelPath) {
        if path == KernelPath::Scalar {
            self.forward_dense_into(x, out);
            return;
        }
        self.weights.matvec_into_path(x, out, path);
        for (yi, &bi) in out.iter_mut().zip(&self.bias) {
            *yi += bi;
        }
    }

    /// Batched allocation-free forward pass: `xs` holds `batch` inputs
    /// row-major, `out` receives `batch` outputs row-major. Iterates
    /// `(row, example)` so each weight row stays hot in cache across
    /// the batch; every output is bitwise identical to a per-example
    /// [`Dense::forward`].
    ///
    /// # Panics
    ///
    /// Panics when the buffer lengths do not match `batch` × the layer
    /// shape.
    pub fn forward_batch_into(&self, xs: &[S], batch: usize, out: &mut [S]) {
        let (ins, outs) = (self.inputs(), self.outputs());
        if let Some(csr) = self.compiled() {
            assert_eq!(xs.len(), batch * ins, "batch input length mismatch");
            assert_eq!(out.len(), batch * outs, "batch output length mismatch");
            for r in 0..outs {
                let (lo, hi) = (csr.row_ptr[r] as usize, csr.row_ptr[r + 1] as usize);
                let (cols, vals) = (&csr.cols[lo..hi], &csr.vals[lo..hi]);
                for e in 0..batch {
                    let x = &xs[e * ins..(e + 1) * ins];
                    let sum = cols
                        .iter()
                        .zip(vals)
                        .fold(S::ZERO, |acc, (&c, &w)| acc + w * x[c as usize]);
                    out[e * outs + r] = sum + self.bias[r];
                }
            }
        } else {
            self.weights.matvec_batch_into(xs, batch, out);
            for e in 0..batch {
                for (yi, &bi) in out[e * outs..(e + 1) * outs].iter_mut().zip(&self.bias) {
                    *yi += bi;
                }
            }
        }
    }

    /// [`Dense::forward_batch_into`] through an explicit [`KernelPath`]
    /// (bitwise identical either way).
    ///
    /// # Panics
    ///
    /// Panics when the buffer lengths do not match `batch` × the layer
    /// shape.
    pub fn forward_batch_into_path(&self, xs: &[S], batch: usize, out: &mut [S], path: KernelPath) {
        if path == KernelPath::Scalar {
            self.forward_batch_into(xs, batch, out);
            return;
        }
        let (ins, outs) = (self.inputs(), self.outputs());
        if let Some(csr) = self.compiled() {
            assert_eq!(xs.len(), batch * ins, "batch input length mismatch");
            assert_eq!(out.len(), batch * outs, "batch output length mismatch");
            kernels::csr_matvec_batch_unrolled(
                &csr.row_ptr,
                &csr.cols,
                &csr.vals,
                &self.bias,
                xs,
                ins,
                batch,
                out,
            );
        } else {
            self.weights.matvec_batch_into_path(xs, batch, out, path);
            for e in 0..batch {
                for (yi, &bi) in out[e * outs..(e + 1) * outs].iter_mut().zip(&self.bias) {
                    *yi += bi;
                }
            }
        }
    }

    /// Backward pass: given the upstream gradient `dy` and the cached input
    /// `x`, applies an SGD-with-momentum update and returns the gradient
    /// with respect to the input.
    pub fn backward(
        &mut self,
        x: &[S],
        dy: &[S],
        lr: S,
        momentum: S,
        velocity: &mut LayerVelocity<S>,
    ) -> Vec<S> {
        let mut dx = vec![S::ZERO; self.inputs()];
        self.backward_into(x, dy, lr, momentum, velocity, &mut dx);
        dx
    }

    /// Allocation-free [`Dense::backward`]: writes the input gradient
    /// into `dx`. Invalidates the compiled sparse form (weights moved).
    ///
    /// # Panics
    ///
    /// Panics when the slice lengths do not match the layer shape.
    pub fn backward_into(
        &mut self,
        x: &[S],
        dy: &[S],
        lr: S,
        momentum: S,
        velocity: &mut LayerVelocity<S>,
        dx: &mut [S],
    ) {
        self.weights.matvec_transposed_into(dy, dx);
        // Weight and bias updates.
        for (r, &dyr) in dy.iter().enumerate() {
            let vrow = velocity.weights.row_mut(r);
            let wrow = self.weights.row_mut(r);
            for (c, &xc) in x.iter().enumerate() {
                let grad = dyr * xc;
                vrow[c] = momentum * vrow[c] - lr * grad;
                wrow[c] += vrow[c];
            }
            velocity.bias[r] = momentum * velocity.bias[r] - lr * dyr;
            self.bias[r] += velocity.bias[r];
        }
        self.apply_mask();
    }

    /// [`Dense::backward_into`] through an explicit [`KernelPath`]:
    /// `Unrolled` runs the blocked transposed matvec and streaming SGD
    /// update from [`crate::kernels`]. Every `(r, c)` element sees the same
    /// operation sequence as the scalar loop, so the resulting weights,
    /// velocities and input gradient are bitwise identical.
    ///
    /// # Panics
    ///
    /// Panics when the slice lengths do not match the layer shape.
    #[allow(clippy::too_many_arguments)] // backward_into's surface plus the explicit path
    pub fn backward_into_path(
        &mut self,
        x: &[S],
        dy: &[S],
        lr: S,
        momentum: S,
        velocity: &mut LayerVelocity<S>,
        dx: &mut [S],
        path: KernelPath,
    ) {
        if path == KernelPath::Scalar {
            self.backward_into(x, dy, lr, momentum, velocity, dx);
            return;
        }
        self.weights.matvec_transposed_into_path(dy, dx, path);
        assert_eq!(x.len(), self.inputs(), "backward input length mismatch");
        assert_eq!(
            dy.len(),
            self.outputs(),
            "backward gradient length mismatch"
        );
        kernels::sgd_update_unrolled(
            self.weights.as_mut_slice(),
            velocity.weights.as_mut_slice(),
            x.len(),
            x,
            dy,
            lr,
            momentum,
        );
        for (r, &dyr) in dy.iter().enumerate() {
            velocity.bias[r] = momentum * velocity.bias[r] - lr * dyr;
            self.bias[r] += velocity.bias[r];
        }
        self.apply_mask();
    }

    /// Installs a pruning mask (`true` = keep) and zeroes pruned weights.
    ///
    /// # Panics
    ///
    /// Panics when the mask length does not equal the weight count.
    pub fn set_mask(&mut self, mask: Vec<bool>) {
        assert_eq!(
            mask.len(),
            self.total_weights(),
            "mask length must equal weight count"
        );
        self.mask = Some(mask);
        self.apply_mask();
    }

    /// The current mask, if any.
    #[must_use]
    pub fn mask(&self) -> Option<&[bool]> {
        self.mask.as_deref()
    }

    /// Overwrites the layer's parameters (persistence).
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::DimensionMismatch`] when the slices do
    /// not match the layer shape.
    pub fn load_parameters(&mut self, weights: &[S], bias: &[S]) -> Result<(), crate::NnError> {
        if weights.len() != self.total_weights() {
            return Err(crate::NnError::DimensionMismatch {
                expected: self.total_weights(),
                actual: weights.len(),
            });
        }
        if bias.len() != self.outputs() {
            return Err(crate::NnError::DimensionMismatch {
                expected: self.outputs(),
                actual: bias.len(),
            });
        }
        self.weights.as_mut_slice().copy_from_slice(weights);
        self.bias.copy_from_slice(bias);
        self.apply_mask();
        Ok(())
    }

    /// Installs a mask without touching the stored weights (persistence
    /// path — the stored weights already reflect the mask).
    ///
    /// In debug builds, asserts that every pruned position really holds
    /// an exact zero; release builds trust the serialized data.
    ///
    /// # Panics
    ///
    /// Panics when the mask length does not equal the weight count.
    pub fn set_mask_preserving_weights(&mut self, mask: Vec<bool>) {
        assert_eq!(
            mask.len(),
            self.total_weights(),
            "mask length must equal weight count"
        );
        debug_assert!(
            self.weights
                .as_slice()
                .iter()
                .zip(&mask)
                .all(|(&w, &keep)| keep || w == S::ZERO),
            "stored weights are inconsistent with the mask: pruned position holds a nonzero value"
        );
        self.mask = Some(mask);
        self.invalidate_compiled();
    }

    fn apply_mask(&mut self) {
        if let Some(mask) = &self.mask {
            for (w, &keep) in self.weights.as_mut_slice().iter_mut().zip(mask) {
                if !keep {
                    *w = S::ZERO;
                }
            }
        }
        self.invalidate_compiled();
    }

    /// Drops the compiled sparse form; it is rebuilt lazily on the next
    /// inference. Called on every weight/mask mutation.
    fn invalidate_compiled(&mut self) {
        self.csr = OnceLock::new();
    }

    /// The compiled sparse form, building it on first use. `None` when
    /// the layer has no mask or the mask keeps every weight (dense
    /// iteration is cheaper then).
    fn compiled(&self) -> Option<&CsrWeights<S>> {
        self.mask.as_ref()?;
        self.csr
            .get_or_init(|| {
                let mask = self.mask.as_ref()?;
                if mask.iter().all(|&keep| keep) {
                    return None;
                }
                let (rows, cols) = (self.outputs(), self.inputs());
                let active = self.active_weights();
                let mut csr = CsrWeights {
                    row_ptr: Vec::with_capacity(rows + 1),
                    cols: Vec::with_capacity(active),
                    vals: Vec::with_capacity(active),
                };
                csr.row_ptr.push(0);
                for r in 0..rows {
                    let row = self.weights.row(r);
                    for c in 0..cols {
                        if mask[r * cols + c] {
                            csr.cols
                                .push(u32::try_from(c).expect("layer width fits u32"));
                            csr.vals.push(row[c]);
                        }
                    }
                    csr.row_ptr
                        .push(u32::try_from(csr.cols.len()).expect("weight count fits u32"));
                }
                Some(csr)
            })
            .as_ref()
    }

    /// Indices of active weights sorted by ascending |w| — the magnitude
    /// pruning order.
    #[must_use]
    pub fn weights_by_magnitude(&self) -> Vec<usize> {
        let mask = self.mask.as_deref();
        let mut indices: Vec<usize> = (0..self.total_weights())
            .filter(|&i| mask.is_none_or(|m| m[i]))
            .collect();
        indices.sort_by(|&a, &b| {
            let wa = self.weights.as_slice()[a].abs();
            let wb = self.weights.as_slice()[b].abs();
            wa.partial_cmp(&wb).expect("weights are finite")
        });
        indices
    }
}

/// Momentum state for one layer.
#[derive(Debug, Clone)]
pub struct LayerVelocity<S: Scalar = f64> {
    pub(crate) weights: Matrix<S>,
    pub(crate) bias: Vec<S>,
}

impl<S: Scalar> LayerVelocity<S> {
    /// Zero velocity matching `layer`'s shape.
    #[must_use]
    pub fn zeros_like(layer: &Dense<S>) -> Self {
        Self {
            weights: Matrix::zeros(layer.outputs(), layer.inputs()),
            bias: vec![S::ZERO; layer.outputs()],
        }
    }
}

/// In-place ReLU.
pub(crate) fn relu<S: Scalar>(x: &mut [S]) {
    for v in x {
        if *v < S::ZERO {
            *v = S::ZERO;
        }
    }
}

/// ReLU gradient gate: zeroes `grad[i]` where the pre-activation was ≤ 0.
pub(crate) fn relu_backward<S: Scalar>(pre_activation: &[S], grad: &mut [S]) {
    for (g, &a) in grad.iter_mut().zip(pre_activation) {
        if a <= S::ZERO {
            *g = S::ZERO;
        }
    }
}

/// Numerically-stable softmax.
#[must_use]
pub(crate) fn softmax<S: Scalar>(logits: &[S]) -> Vec<S> {
    let mut out = vec![S::ZERO; logits.len()];
    softmax_into(logits, &mut out);
    out
}

/// Allocation-free [`softmax`]: same max-shift, exponentiation and
/// normalization order, so the result is bitwise identical.
pub(crate) fn softmax_into<S: Scalar>(logits: &[S], out: &mut [S]) {
    debug_assert_eq!(logits.len(), out.len(), "softmax output length mismatch");
    let max = logits.iter().copied().fold(S::NEG_INFINITY, S::max);
    for (o, &l) in out.iter_mut().zip(logits) {
        *o = (l - max).exp();
    }
    let sum = out.iter().fold(S::ZERO, |acc, &p| acc + p);
    for o in out.iter_mut() {
        *o /= sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn init_shapes_and_bounds() {
        let layer = Dense::<f64>::init(4, 3, &mut rng());
        assert_eq!(layer.inputs(), 4);
        assert_eq!(layer.outputs(), 3);
        assert_eq!(layer.total_weights(), 12);
        assert_eq!(layer.active_weights(), 12);
        let limit = (6.0f64 / 4.0).sqrt();
        assert!(layer.weights().as_slice().iter().all(|w| w.abs() <= limit));
        assert!(layer.bias().iter().all(|&b| b == 0.0));
    }

    #[test]
    fn init_draws_identical_rng_stream_across_dtypes() {
        let w64 = Dense::<f64>::init(4, 3, &mut rng());
        let w32 = Dense::<f32>::init(4, 3, &mut rng());
        for (&a, &b) in w64
            .weights()
            .as_slice()
            .iter()
            .zip(w32.weights().as_slice())
        {
            assert_eq!(b, a as f32, "f32 init must be the rounded f64 init");
        }
    }

    #[test]
    fn forward_applies_affine() {
        let mut layer = Dense::init(2, 1, &mut rng());
        layer.weights.row_mut(0).copy_from_slice(&[2.0, -1.0]);
        layer.bias[0] = 0.5;
        assert_eq!(layer.forward(&[3.0, 1.0]), vec![5.5]);
    }

    #[test]
    fn mask_zeroes_and_sticks_through_updates() {
        let mut layer = Dense::init(2, 2, &mut rng());
        layer.set_mask(vec![true, false, false, true]);
        assert_eq!(layer.active_weights(), 2);
        assert_eq!(layer.weights().get(0, 1), 0.0);
        assert_eq!(layer.weights().get(1, 0), 0.0);
        // Train a step; masked weights must stay zero.
        let mut vel = LayerVelocity::zeros_like(&layer);
        let _ = layer.backward(&[1.0, 1.0], &[0.3, -0.2], 0.1, 0.9, &mut vel);
        assert_eq!(layer.weights().get(0, 1), 0.0);
        assert_eq!(layer.weights().get(1, 0), 0.0);
    }

    #[test]
    fn backward_reduces_loss_direction() {
        // y = w x; loss = (y - t)^2 / 2; gradient descent must move y toward t.
        let mut layer = Dense::init(1, 1, &mut rng());
        layer.weights.row_mut(0)[0] = 0.0;
        layer.bias[0] = 0.0;
        let mut vel = LayerVelocity::zeros_like(&layer);
        let target = 1.0;
        let mut last_err = f64::INFINITY;
        for _ in 0..50 {
            let y = layer.forward(&[1.0])[0];
            let err = (y - target).abs();
            assert!(err <= last_err + 1e-9);
            last_err = err;
            let dy = y - target;
            let _ = layer.backward(&[1.0], &[dy], 0.1, 0.0, &mut vel);
        }
        assert!(last_err < 0.05, "err = {last_err}");
    }

    #[test]
    fn magnitude_order_is_ascending() {
        let mut layer = Dense::init(2, 2, &mut rng());
        layer
            .weights
            .as_mut_slice()
            .copy_from_slice(&[0.5, -0.1, 0.9, 0.2]);
        let order = layer.weights_by_magnitude();
        assert_eq!(order, vec![1, 3, 0, 2]);
    }

    #[test]
    fn magnitude_order_skips_masked() {
        let mut layer = Dense::init(2, 2, &mut rng());
        layer
            .weights
            .as_mut_slice()
            .copy_from_slice(&[0.5, -0.1, 0.9, 0.2]);
        layer.set_mask(vec![true, false, true, true]);
        assert_eq!(layer.weights_by_magnitude(), vec![3, 0, 2]);
    }

    #[test]
    fn softmax_is_a_distribution() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
        // Stability with huge logits.
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn softmax_is_stable_at_f32() {
        let p = softmax(&[1000.0f32, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-6);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn set_mask_preserving_weights_keeps_stored_weights() {
        // Regression: this used to call apply_mask(), mutating storage on
        // the persistence path instead of trusting the serialized weights.
        let mut layer = Dense::init(2, 2, &mut rng());
        layer
            .weights
            .as_mut_slice()
            .copy_from_slice(&[0.5, 0.0, 0.0, -0.25]);
        let before = layer.weights().as_slice().to_vec();
        layer.set_mask_preserving_weights(vec![true, false, false, true]);
        assert_eq!(layer.weights().as_slice(), before.as_slice());
        assert_eq!(layer.mask(), Some(&[true, false, false, true][..]));
        assert_eq!(layer.active_weights(), 2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "inconsistent with the mask")]
    fn set_mask_preserving_weights_debug_asserts_consistency() {
        let mut layer = Dense::init(2, 2, &mut rng());
        layer
            .weights
            .as_mut_slice()
            .copy_from_slice(&[0.5, 1.0, 0.0, -0.25]);
        // Position 1 is pruned but holds 1.0 — inconsistent.
        layer.set_mask_preserving_weights(vec![true, false, false, true]);
    }

    #[test]
    fn csr_forward_matches_dense_bitwise() {
        let mut r = rng();
        let mut layer = Dense::init(7, 5, &mut r);
        let mask: Vec<bool> = (0..35).map(|_| r.gen::<f64>() < 0.3).collect();
        layer.set_mask(mask);
        let x: Vec<f64> = (0..7).map(|_| r.gen::<f64>() * 4.0 - 2.0).collect();
        // Reference: dense math over the masked weight matrix.
        let mut expect = layer.weights().matvec(&x);
        for (yi, bi) in expect.iter_mut().zip(layer.bias()) {
            *yi += bi;
        }
        let got = layer.forward(&x);
        assert_eq!(
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            expect.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn csr_forward_matches_dense_bitwise_at_f32() {
        let mut r = rng();
        let mut layer = Dense::<f32>::init(7, 5, &mut r);
        let mask: Vec<bool> = (0..35).map(|_| r.gen::<f64>() < 0.3).collect();
        layer.set_mask(mask);
        let x: Vec<f32> = (0..7)
            .map(|_| (r.gen::<f64>() * 4.0 - 2.0) as f32)
            .collect();
        let mut expect = layer.weights().matvec(&x);
        for (yi, bi) in expect.iter_mut().zip(layer.bias()) {
            *yi += bi;
        }
        let got = layer.forward(&x);
        assert_eq!(
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            expect.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn csr_invalidated_by_weight_updates() {
        let mut r = rng();
        let mut layer = Dense::init(3, 2, &mut r);
        layer.set_mask(vec![true, false, true, true, true, false]);
        let x = [1.0, -2.0, 0.5];
        let _ = layer.forward(&x); // compiles the sparse form
        let mut vel = LayerVelocity::zeros_like(&layer);
        let _ = layer.backward(&x, &[0.3, -0.2], 0.1, 0.9, &mut vel);
        // After the update, forward must see the *new* weights.
        let mut expect = layer.weights().matvec(&x);
        for (yi, bi) in expect.iter_mut().zip(layer.bias()) {
            *yi += bi;
        }
        assert_eq!(layer.forward(&x), expect);
    }

    #[test]
    fn batched_forward_matches_single_bitwise() {
        let mut r = rng();
        for masked in [false, true] {
            let mut layer = Dense::init(6, 4, &mut r);
            if masked {
                let mask: Vec<bool> = (0..24).map(|_| r.gen::<f64>() < 0.4).collect();
                layer.set_mask(mask);
            }
            let batch = 5;
            let xs: Vec<f64> = (0..batch * 6).map(|_| r.gen::<f64>() * 2.0 - 1.0).collect();
            let mut out = vec![0.0; batch * 4];
            layer.forward_batch_into(&xs, batch, &mut out);
            for e in 0..batch {
                let single = layer.forward(&xs[e * 6..(e + 1) * 6]);
                assert_eq!(
                    out[e * 4..(e + 1) * 4]
                        .iter()
                        .map(|v| v.to_bits())
                        .collect::<Vec<_>>(),
                    single.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn relu_and_gate() {
        let mut x = vec![-1.0, 0.0, 2.0];
        relu(&mut x);
        assert_eq!(x, vec![0.0, 0.0, 2.0]);
        let mut g = vec![1.0, 1.0, 1.0];
        relu_backward(&[-1.0, 0.0, 2.0], &mut g);
        assert_eq!(g, vec![0.0, 0.0, 1.0]);
    }
}
