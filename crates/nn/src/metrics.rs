//! Classification accuracy accounting.

use core::fmt;

/// A square confusion matrix over dense class labels.
///
/// Rows are ground truth, columns are predictions. All the accuracy
/// figures in the experiment tables (overall top-1, per-class) come from
/// here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// An empty matrix over `classes` labels.
    ///
    /// # Panics
    ///
    /// Panics when `classes` is zero.
    #[must_use]
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "confusion matrix needs at least one class");
        Self {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Number of classes.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics when either label is out of range.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        assert!(
            truth < self.classes && predicted < self.classes,
            "label out of range"
        );
        self.counts[truth * self.classes + predicted] += 1;
    }

    /// Count at `(truth, predicted)`.
    ///
    /// # Panics
    ///
    /// Panics when either label is out of range.
    #[must_use]
    pub fn count(&self, truth: usize, predicted: usize) -> u64 {
        assert!(
            truth < self.classes && predicted < self.classes,
            "label out of range"
        );
        self.counts[truth * self.classes + predicted]
    }

    /// Total observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall top-1 accuracy, or `None` when empty.
    #[must_use]
    pub fn accuracy(&self) -> Option<f64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let correct: u64 = (0..self.classes).map(|c| self.count(c, c)).sum();
        Some(correct as f64 / total as f64)
    }

    /// Recall (per-class accuracy) of `class`, or `None` when the class
    /// has no observations.
    ///
    /// # Panics
    ///
    /// Panics when `class` is out of range.
    #[must_use]
    pub fn class_accuracy(&self, class: usize) -> Option<f64> {
        assert!(class < self.classes, "label out of range");
        let row: u64 = (0..self.classes).map(|p| self.count(class, p)).sum();
        if row == 0 {
            return None;
        }
        Some(self.count(class, class) as f64 / row as f64)
    }

    /// Merges another matrix into this one.
    ///
    /// # Panics
    ///
    /// Panics when the class counts differ.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.classes, other.classes, "class count mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "confusion matrix ({} classes, {} samples, top-1 {:.2}%)",
            self.classes,
            self.total(),
            self.accuracy().unwrap_or(0.0) * 100.0
        )?;
        for t in 0..self.classes {
            for p in 0..self.classes {
                write!(f, "{:>6}", self.count(t, p))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record(0, 0);
        cm.record(0, 0);
        cm.record(0, 1);
        cm.record(1, 1);
        cm.record(2, 0);
        assert_eq!(cm.total(), 5);
        assert!((cm.accuracy().unwrap() - 0.6).abs() < 1e-12);
        assert!((cm.class_accuracy(0).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cm.class_accuracy(1), Some(1.0));
        assert_eq!(cm.class_accuracy(2), Some(0.0));
        assert_eq!(cm.count(2, 0), 1);
    }

    #[test]
    fn empty_matrix_reports_none() {
        let cm = ConfusionMatrix::new(2);
        assert_eq!(cm.accuracy(), None);
        assert_eq!(cm.class_accuracy(0), None);
        assert_eq!(cm.total(), 0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = ConfusionMatrix::new(2);
        a.record(0, 0);
        let mut b = ConfusionMatrix::new(2);
        b.record(0, 1);
        b.record(1, 1);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.count(0, 1), 1);
    }

    #[test]
    fn display_contains_summary() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(0, 0);
        let s = cm.to_string();
        assert!(s.contains("2 classes"));
        assert!(s.contains("100.00%"));
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn record_checks_range() {
        ConfusionMatrix::new(2).record(2, 0);
    }

    #[test]
    #[should_panic(expected = "class count mismatch")]
    fn merge_checks_dims() {
        ConfusionMatrix::new(2).merge(&ConfusionMatrix::new(3));
    }
}
