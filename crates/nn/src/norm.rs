//! Per-feature standardization.

use crate::error::NnError;
use crate::scalar::Scalar;

/// Per-feature z-score normalizer fitted on a training set.
///
/// The raw window features mix scales (gravity means near 9.8 m/s² next to
/// frequency ratios near 0.05), which stalls SGD; classifiers always train
/// and infer on standardized features. The normalizer is part of the
/// deployed classifier so edge inference applies the identical transform.
#[derive(Debug, Clone, PartialEq)]
pub struct Normalizer {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Normalizer {
    /// Fits the normalizer on feature vectors.
    ///
    /// Constant features get unit std so they pass through as zeros.
    ///
    /// # Errors
    ///
    /// * [`NnError::EmptyTrainingSet`] on empty input.
    /// * [`NnError::DimensionMismatch`] when vectors disagree in width.
    pub fn fit<'a, I>(samples: I) -> Result<Self, NnError>
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        let mut iter = samples.into_iter();
        let first = iter.next().ok_or(NnError::EmptyTrainingSet)?;
        let dim = first.len();
        let mut mean = first.to_vec();
        let mut m2 = vec![0.0; dim];
        let mut count = 1.0;
        for sample in iter {
            if sample.len() != dim {
                return Err(NnError::DimensionMismatch {
                    expected: dim,
                    actual: sample.len(),
                });
            }
            count += 1.0;
            // Welford's online update.
            for ((m, s), &x) in mean.iter_mut().zip(&mut m2).zip(sample) {
                let delta = x - *m;
                *m += delta / count;
                *s += delta * (x - *m);
            }
        }
        let std = m2
            .into_iter()
            .map(|s| {
                let v = (s / count).sqrt();
                if v < 1e-9 {
                    1.0
                } else {
                    v
                }
            })
            .collect();
        Ok(Self { mean, std })
    }

    /// Reassembles a normalizer from persisted parts.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyTrainingSet`] on empty vectors and
    /// [`NnError::DimensionMismatch`] when the lengths differ.
    pub fn from_parts(mean: Vec<f64>, std: Vec<f64>) -> Result<Self, NnError> {
        if mean.is_empty() {
            return Err(NnError::EmptyTrainingSet);
        }
        if mean.len() != std.len() {
            return Err(NnError::DimensionMismatch {
                expected: mean.len(),
                actual: std.len(),
            });
        }
        Ok(Self { mean, std })
    }

    /// Per-feature means (persistence).
    #[must_use]
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Per-feature standard deviations (persistence).
    #[must_use]
    pub fn std(&self) -> &[f64] {
        &self.std
    }

    /// Feature dimensionality.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Returns the standardized copy of `x`.
    ///
    /// # Panics
    ///
    /// Panics when `x` has the wrong width.
    #[must_use]
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.dim()];
        self.transform_into(x, &mut out);
        out
    }

    /// Allocation-free [`Normalizer::transform`]: standardizes `x` into
    /// `out` (identical arithmetic, bitwise-equal results at `f64`).
    ///
    /// The output is generic over the kernel [`Scalar`]: statistics and
    /// the z-score are always computed in `f64` — the raw-feature side of
    /// the precision boundary — and each value is rounded to `S` exactly
    /// once on the way out.
    ///
    /// # Panics
    ///
    /// Panics when `x` or `out` has the wrong width.
    pub fn transform_into<S: Scalar>(&self, x: &[f64], out: &mut [S]) {
        assert_eq!(x.len(), self.dim(), "feature width mismatch");
        assert_eq!(out.len(), self.dim(), "feature width mismatch");
        for ((o, &xi), (&m, &s)) in out.iter_mut().zip(x).zip(self.mean.iter().zip(&self.std)) {
            *o = S::from_f64((xi - m) / s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_transform_standardizes() {
        let data = [vec![1.0, 10.0], vec![3.0, 30.0], vec![5.0, 50.0]];
        let norm = Normalizer::fit(data.iter().map(Vec::as_slice)).unwrap();
        let transformed: Vec<Vec<f64>> = data.iter().map(|x| norm.transform(x)).collect();
        for dim in 0..2 {
            let mean: f64 = transformed.iter().map(|t| t[dim]).sum::<f64>() / 3.0;
            let var: f64 = transformed.iter().map(|t| t[dim].powi(2)).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-9);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_features_pass_through_as_zero() {
        let data = [vec![7.0], vec![7.0]];
        let norm = Normalizer::fit(data.iter().map(Vec::as_slice)).unwrap();
        assert_eq!(norm.transform(&[7.0]), vec![0.0]);
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(matches!(
            Normalizer::fit(std::iter::empty()),
            Err(NnError::EmptyTrainingSet)
        ));
        let data: Vec<Vec<f64>> = vec![vec![1.0, 2.0], vec![1.0]];
        assert!(matches!(
            Normalizer::fit(data.iter().map(Vec::as_slice)),
            Err(NnError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn f32_transform_rounds_the_f64_zscore() {
        let data = [vec![1.0, 10.0], vec![3.0, 30.0], vec![5.0, 50.0]];
        let norm = Normalizer::fit(data.iter().map(Vec::as_slice)).unwrap();
        let wide = norm.transform(&[2.0, 40.0]);
        let mut narrow = [0.0f32; 2];
        norm.transform_into(&[2.0, 40.0], &mut narrow);
        for (&w, &n) in wide.iter().zip(&narrow) {
            assert_eq!(n, w as f32);
        }
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn transform_checks_width() {
        let norm = Normalizer::fit([[1.0, 2.0].as_slice()]).unwrap();
        let _ = norm.transform(&[1.0]);
    }
}
