//! Simulated fixed-point weight quantization.
//!
//! Ultra-low-power inference engines (including the ReSiRCa-class
//! accelerator the paper's compute node builds on) store weights in
//! narrow fixed-point formats. This module applies symmetric per-layer
//! quantization to an [`Mlp`]'s weights — each layer's weights are
//! snapped to `2^(bits-1) - 1` uniform levels of its own absolute-maximum
//! scale — so the accuracy cost of a deployment precision can be measured
//! before committing to it.

use crate::error::NnError;
use crate::mlp::Mlp;
use crate::scalar::Scalar;

/// Outcome of quantizing a model.
///
/// Reported in `f64` regardless of the model's kernel scalar so reports
/// from different precisions compare directly.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantReport {
    /// Bit width applied.
    pub bits: u8,
    /// Per-layer scale factors (absolute max weight per layer).
    pub scales: Vec<f64>,
    /// Root-mean-square weight perturbation introduced.
    pub rms_error: f64,
}

/// Quantizes every layer's weights in place to `bits`-wide symmetric
/// fixed point (biases stay full precision, as on most NPUs).
///
/// Pruned (masked) weights remain exactly zero.
///
/// # Errors
///
/// Returns [`NnError::InvalidQuantBits`] when `bits` is outside `2..=16`.
pub fn quantize_weights<S: Scalar>(model: &mut Mlp<S>, bits: u8) -> Result<QuantReport, NnError> {
    if !(2..=16).contains(&bits) {
        return Err(NnError::InvalidQuantBits {
            bits: u32::from(bits),
        });
    }
    let levels = S::from_f64(f64::from((1u32 << (bits - 1)) - 1));
    let mut scales = Vec::with_capacity(model.layers().len());
    let mut sq_error = 0.0f64;
    let mut count = 0usize;

    for layer in model.layers_mut() {
        let max_abs = layer
            .weights()
            .as_slice()
            .iter()
            .fold(S::ZERO, |m, w| m.max(w.abs()));
        let scale = if max_abs > S::ZERO { max_abs } else { S::ONE };
        scales.push(scale.to_f64());
        let quantize = |w: S| (w / scale * levels).round() / levels * scale;
        let quantized: Vec<S> = layer
            .weights()
            .as_slice()
            .iter()
            .map(|&w| {
                let q = quantize(w);
                let d = (q - w).to_f64();
                sq_error += d * d;
                q
            })
            .collect();
        count += quantized.len();
        let bias = layer.bias().to_vec();
        layer
            .load_parameters(&quantized, &bias)
            .expect("shapes unchanged");
    }

    Ok(QuantReport {
        bits,
        scales,
        rms_error: (sq_error / count.max(1) as f64).sqrt(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::Trainer;

    fn trained() -> (Mlp, Vec<(Vec<f64>, usize)>) {
        let data: Vec<(Vec<f64>, usize)> = (0..90)
            .map(|i| {
                let label = i % 3;
                (
                    vec![
                        label as f64 * 2.0 - 2.0,
                        (i % 7) as f64 * 0.1,
                        -(label as f64),
                    ],
                    label,
                )
            })
            .collect();
        let mut mlp = Mlp::new(&[3, 10, 3], 4).unwrap();
        Trainer::new().with_epochs(60).fit(&mut mlp, &data).unwrap();
        (mlp, data)
    }

    fn accuracy(mlp: &Mlp, data: &[(Vec<f64>, usize)]) -> f64 {
        data.iter().filter(|(x, y)| mlp.predict(x).0 == *y).count() as f64 / data.len() as f64
    }

    #[test]
    fn eight_bit_quantization_keeps_accuracy() {
        let (mut mlp, data) = trained();
        let before = accuracy(&mlp, &data);
        let report = quantize_weights(&mut mlp, 8).unwrap();
        assert_eq!(report.bits, 8);
        assert_eq!(report.scales.len(), 2);
        assert!(report.rms_error > 0.0);
        let after = accuracy(&mlp, &data);
        assert!(
            after > before - 0.05,
            "8-bit cost too much: {before} -> {after}"
        );
    }

    #[test]
    fn narrower_widths_perturb_more() {
        let (mlp, _) = trained();
        let mut coarse = mlp.clone();
        let mut fine = mlp;
        let r2 = quantize_weights(&mut coarse, 3).unwrap();
        let r12 = quantize_weights(&mut fine, 12).unwrap();
        assert!(r2.rms_error > r12.rms_error * 10.0);
    }

    #[test]
    fn quantization_is_idempotent() {
        let (mut mlp, _) = trained();
        quantize_weights(&mut mlp, 8).unwrap();
        let once = mlp.clone();
        let report = quantize_weights(&mut mlp, 8).unwrap();
        assert_eq!(mlp, once, "re-quantizing must be a fixed point");
        assert!(report.rms_error < 1e-12);
    }

    #[test]
    fn quantizes_f32_models_too() {
        let mut mlp = Mlp::<f32>::new(&[3, 10, 3], 4).unwrap();
        let report = quantize_weights(&mut mlp, 8).unwrap();
        assert_eq!(report.bits, 8);
        assert!(report.rms_error >= 0.0 && report.rms_error.is_finite());
        // Idempotence holds at f32 as well.
        let once = mlp.clone();
        quantize_weights(&mut mlp, 8).unwrap();
        assert_eq!(mlp, once);
    }

    #[test]
    fn masked_weights_stay_zero() {
        let (mut mlp, _) = trained();
        let n = mlp.layers()[0].total_weights();
        let mask: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        mlp.layers_mut()[0].set_mask(mask.clone());
        quantize_weights(&mut mlp, 6).unwrap();
        for (i, &keep) in mask.iter().enumerate() {
            if !keep {
                assert_eq!(mlp.layers()[0].weights().as_slice()[i], 0.0);
            }
        }
    }

    /// Out-of-range widths report the dedicated typed variant, not a
    /// shape error dressed up as an architecture problem.
    #[test]
    fn rejects_silly_widths_with_typed_error() {
        let (mut mlp, _) = trained();
        assert_eq!(
            quantize_weights(&mut mlp, 1).unwrap_err(),
            NnError::InvalidQuantBits { bits: 1 }
        );
        assert_eq!(
            quantize_weights(&mut mlp, 17).unwrap_err(),
            NnError::InvalidQuantBits { bits: 17 }
        );
        assert_eq!(
            quantize_weights(&mut mlp, 0).unwrap_err(),
            NnError::InvalidQuantBits { bits: 0 }
        );
    }

    #[test]
    fn zero_model_quantizes_cleanly() {
        let mut mlp = Mlp::new(&[2, 2], 0).unwrap();
        let zeros = vec![0.0; 4];
        mlp.layers_mut()[0]
            .load_parameters(&zeros, &[0.0, 0.0])
            .unwrap();
        let report = quantize_weights(&mut mlp, 8).unwrap();
        assert_eq!(report.rms_error, 0.0);
        assert_eq!(report.scales, vec![1.0]);
    }
}
