//! Per-inference energy estimation.
//!
//! Energy-aware pruning needs an energy *model*, not just a parameter
//! count: the cost of an inference is dominated by multiply-accumulates
//! and the memory traffic of fetching live weights [15]. We charge each
//! active (unpruned) weight one MAC plus one fetch, plus a static
//! per-inference overhead (activation buffers, control, NVP state).

use crate::mlp::Mlp;
use crate::scalar::Scalar;
use origin_types::{Energy, Power, SimDuration};

/// Energy model for executing one MLP inference on the sensor node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferenceEnergyModel {
    /// Energy per multiply-accumulate, µJ.
    pub energy_per_mac: Energy,
    /// Energy per live-weight fetch, µJ.
    pub energy_per_weight_fetch: Energy,
    /// Static per-inference overhead, µJ.
    pub static_overhead: Energy,
}

impl Default for InferenceEnergyModel {
    fn default() -> Self {
        // Calibrated so the workspace's default unpruned per-sensor MLPs
        // (~700 weights) cost ~260 µJ and the Baseline-2 pruned variants
        // land near 90 µJ — the regime where the Fig. 1 completion
        // fractions reproduce under the default WiFi office trace.
        Self {
            energy_per_mac: Energy::from_microjoules(0.22),
            energy_per_weight_fetch: Energy::from_microjoules(0.12),
            static_overhead: Energy::from_microjoules(22.0),
        }
    }
}

impl InferenceEnergyModel {
    /// Predicted energy of one inference of `model`. Counts active
    /// weights only, so the estimate is identical at every precision.
    #[must_use]
    pub fn inference_energy<S: Scalar>(&self, model: &Mlp<S>) -> Energy {
        let macs = model.macs() as f64;
        self.energy_per_mac * macs + self.energy_per_weight_fetch * macs + self.static_overhead
    }

    /// Predicted energy attributable to one layer (index into
    /// [`Mlp::layers`]), excluding the static overhead. Drives the
    /// pruner's pick-the-hungriest-layer heuristic.
    ///
    /// # Panics
    ///
    /// Panics when `layer` is out of range.
    #[must_use]
    pub fn layer_energy<S: Scalar>(&self, model: &Mlp<S>, layer: usize) -> Energy {
        let active = model.layers()[layer].active_weights() as f64;
        self.energy_per_mac * active + self.energy_per_weight_fetch * active
    }

    /// The floor below which no amount of pruning can push an inference.
    #[must_use]
    pub fn static_floor(&self) -> Energy {
        self.static_overhead
    }

    /// The Baseline-2 pruning budget for a harvest source of mean power
    /// `mean_harvest` and an inference window of `window`: the energy one
    /// window of average harvest delivers, scaled by `slack`.
    ///
    /// The paper prunes "to fit the average harvested power budget"
    /// (Section IV-C); `slack` absorbs the unstated duty-cycle/latency
    /// assumptions of the original platform (see DESIGN.md §2). The
    /// workspace default is [`InferenceEnergyModel::DEFAULT_BUDGET_SLACK`].
    ///
    /// # Panics
    ///
    /// Panics when `slack` is not positive.
    #[must_use]
    pub fn budget_from_power(mean_harvest: Power, window: SimDuration, slack: f64) -> Energy {
        assert!(slack > 0.0, "budget slack must be positive");
        mean_harvest.over(window) * slack
    }

    /// Default budget slack used across the experiments.
    pub const DEFAULT_BUDGET_SLACK: f64 = 4.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unpruned_default_mlp_costs_hundreds_of_microjoules() {
        let model = Mlp::<f64>::new(&[28, 20, 6], 0).unwrap();
        let e = InferenceEnergyModel::default().inference_energy(&model);
        let uj = e.as_microjoules();
        assert!((200.0..330.0).contains(&uj), "unpruned cost {uj} uJ");
    }

    #[test]
    fn pruning_reduces_energy_toward_static_floor() {
        let em = InferenceEnergyModel::default();
        let mut model = Mlp::<f64>::new(&[10, 10], 0).unwrap();
        let full = em.inference_energy(&model);
        model.layers_mut()[0].set_mask(vec![false; 100]);
        let empty = em.inference_energy(&model);
        assert!(full > empty);
        assert_eq!(empty, em.static_floor());
    }

    #[test]
    fn layer_energy_sums_to_dynamic_total() {
        let em = InferenceEnergyModel::default();
        let model = Mlp::<f64>::new(&[8, 6, 4], 1).unwrap();
        let dynamic: Energy = (0..2).map(|i| em.layer_energy(&model, i)).sum();
        let total = em.inference_energy(&model);
        let diff = (total - dynamic - em.static_floor()).as_microjoules();
        assert!(diff.abs() < 1e-9);
    }

    #[test]
    fn budget_scales_with_power_and_window() {
        let b = InferenceEnergyModel::budget_from_power(
            Power::from_microwatts(50.0),
            SimDuration::from_millis(500),
            4.0,
        );
        assert!((b.as_microjoules() - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "slack")]
    fn zero_slack_panics() {
        let _ =
            InferenceEnergyModel::budget_from_power(Power::ZERO, SimDuration::from_millis(1), 0.0);
    }
}
