//! A deployable per-sensor classifier: MLP + normalizer + label mapping.

use crate::energy_model::InferenceEnergyModel;
use crate::error::NnError;
use crate::layer::softmax_into;
use crate::metrics::ConfusionMatrix;
use crate::mlp::{argmax, Mlp};
use crate::norm::Normalizer;
use crate::scalar::Scalar;
use crate::softmax_variance;
use crate::train::Trainer;
use crate::workspace::Workspace;
use origin_types::{ActivityClass, ActivitySet, Energy};

/// One classification result, as transmitted to the host: the predicted
/// class plus the softmax-variance confidence score Origin's adaptive
/// ensemble consumes ("the sensors would send the confidence score for
/// that classifier along with the output class", Section III-C).
///
/// Reported in `f64` regardless of the classifier's kernel scalar: raw
/// features, confidences and host-side ensemble math all live on the
/// `f64` side of the precision boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct Classification {
    /// Predicted activity.
    pub activity: ActivityClass,
    /// Dense label index of the prediction.
    pub dense_label: usize,
    /// Full softmax distribution over the dense labels.
    pub probabilities: Vec<f64>,
    /// Variance of `probabilities` — higher is more confident.
    pub confidence: f64,
}

/// A [`Classification`] without the owned probability vector — what the
/// allocation-free [`SensorClassifier::classify_with`] hot path returns.
/// The simulator's inference loop only consumes the class and the
/// confidence score, so nothing here borrows or allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredClass {
    /// Predicted activity.
    pub activity: ActivityClass,
    /// Dense label index of the prediction.
    pub dense_label: usize,
    /// Variance of the softmax distribution — higher is more confident.
    pub confidence: f64,
}

/// A trained per-sensor activity classifier, generic over the kernel
/// [`Scalar`] (`f64` by default).
///
/// Bundles the [`Mlp`] with the feature [`Normalizer`] fitted on its
/// training set and the [`ActivitySet`] its dense labels index into, so a
/// deployed classifier is a single self-contained value. Raw features
/// enter in `f64` and are standardized directly into `S`; classes and
/// confidence scores leave in `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorClassifier<S: Scalar = f64> {
    mlp: Mlp<S>,
    normalizer: Normalizer,
    activities: ActivitySet,
}

impl<S: Scalar> SensorClassifier<S> {
    /// Wraps pre-trained components.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::DimensionMismatch`] when the normalizer width
    /// does not match the model input, or the model output does not match
    /// the class count.
    pub fn new(
        mlp: Mlp<S>,
        normalizer: Normalizer,
        activities: ActivitySet,
    ) -> Result<Self, NnError> {
        if normalizer.dim() != mlp.input_dim() {
            return Err(NnError::DimensionMismatch {
                expected: mlp.input_dim(),
                actual: normalizer.dim(),
            });
        }
        if mlp.output_dim() != activities.len() {
            return Err(NnError::DimensionMismatch {
                expected: activities.len(),
                actual: mlp.output_dim(),
            });
        }
        Ok(Self {
            mlp,
            normalizer,
            activities,
        })
    }

    /// Trains a fresh classifier end-to-end: fits the normalizer on
    /// `data`, builds an MLP `[features, hidden..., classes]` and trains
    /// it.
    ///
    /// `data` holds *raw* (unnormalized) feature vectors and dense labels.
    ///
    /// # Errors
    ///
    /// Propagates construction and training failures ([`NnError`]).
    pub fn train(
        hidden: &[usize],
        data: &[(Vec<f64>, usize)],
        activities: ActivitySet,
        trainer: &Trainer,
        seed: u64,
    ) -> Result<Self, NnError> {
        let first = data.first().ok_or(NnError::EmptyTrainingSet)?;
        let mut dims = Vec::with_capacity(hidden.len() + 2);
        dims.push(first.0.len());
        dims.extend_from_slice(hidden);
        dims.push(activities.len());
        let normalizer = Normalizer::fit(data.iter().map(|(x, _)| x.as_slice()))?;
        let normalized: Vec<(Vec<S>, usize)> = data
            .iter()
            .map(|(x, y)| {
                let mut out = vec![S::ZERO; x.len()];
                normalizer.transform_into(x, &mut out);
                (out, *y)
            })
            .collect();
        let mut mlp = Mlp::new(&dims, seed)?;
        trainer.fit(&mut mlp, &normalized)?;
        Self::new(mlp, normalizer, activities)
    }

    /// Classifies a raw feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::DimensionMismatch`] on a wrong-width input.
    pub fn classify(&self, raw_features: &[f64]) -> Result<Classification, NnError> {
        if raw_features.len() != self.mlp.input_dim() {
            return Err(NnError::DimensionMismatch {
                expected: self.mlp.input_dim(),
                actual: raw_features.len(),
            });
        }
        let mut x = vec![S::ZERO; self.mlp.input_dim()];
        self.normalizer.transform_into(raw_features, &mut x);
        let (dense_label, proba) = self.mlp.predict(&x);
        let activity = self
            .activities
            .class_at(dense_label)
            .expect("model output dim equals class count");
        let confidence = softmax_variance(&proba);
        Ok(Classification {
            activity,
            dense_label,
            probabilities: proba.iter().map(|p| p.to_f64()).collect(),
            confidence,
        })
    }

    /// Allocation-free [`SensorClassifier::classify`]: all intermediates
    /// live in `ws`, and the result omits the owned probability vector.
    /// The predicted class and confidence are bitwise identical to the
    /// allocating path.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::DimensionMismatch`] on a wrong-width input.
    pub fn classify_with(
        &self,
        ws: &mut Workspace<S>,
        raw_features: &[f64],
    ) -> Result<ScoredClass, NnError> {
        if raw_features.len() != self.mlp.input_dim() {
            return Err(NnError::DimensionMismatch {
                expected: self.mlp.input_dim(),
                actual: raw_features.len(),
            });
        }
        // Move the staging buffer out so `ws` stays free for the MLP.
        let mut features = std::mem::take(&mut ws.features);
        features.resize(self.mlp.input_dim(), S::ZERO);
        self.normalizer.transform_into(raw_features, &mut features);
        let proba = self.mlp.predict_proba_with(ws, &features)?;
        let dense_label = argmax(proba);
        let confidence = softmax_variance(proba);
        ws.features = features;
        let activity = self
            .activities
            .class_at(dense_label)
            .expect("model output dim equals class count");
        Ok(ScoredClass {
            activity,
            dense_label,
            confidence,
        })
    }

    /// Evaluates over raw `(features, dense_label)` pairs.
    ///
    /// Runs the batched forward kernel in chunks so weight rows stay hot
    /// in cache across examples; each prediction is bitwise identical to
    /// a per-sample [`SensorClassifier::classify`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::DimensionMismatch`] on a wrong-width input.
    pub fn evaluate(&self, data: &[(Vec<f64>, usize)]) -> Result<ConfusionMatrix, NnError> {
        const EVAL_BATCH: usize = 32;
        let mut cm = ConfusionMatrix::new(self.activities.len());
        let input = self.mlp.input_dim();
        let classes = self.mlp.output_dim();
        let mut ws = Workspace::new();
        let mut xs: Vec<S> = Vec::with_capacity(EVAL_BATCH * input);
        let mut proba = vec![S::ZERO; classes];
        for chunk in data.chunks(EVAL_BATCH) {
            xs.clear();
            for (x, _) in chunk {
                if x.len() != input {
                    return Err(NnError::DimensionMismatch {
                        expected: input,
                        actual: x.len(),
                    });
                }
                let start = xs.len();
                xs.resize(start + input, S::ZERO);
                self.normalizer.transform_into(x, &mut xs[start..]);
            }
            let logits = self.mlp.forward_batch_with(&mut ws, &xs)?;
            for (e, (_, label)) in chunk.iter().enumerate() {
                softmax_into(&logits[e * classes..(e + 1) * classes], &mut proba);
                cm.record(*label, argmax(&proba));
            }
        }
        Ok(cm)
    }

    /// The wrapped network.
    #[must_use]
    pub fn mlp(&self) -> &Mlp<S> {
        &self.mlp
    }

    /// Mutable network access (pruning).
    pub fn mlp_mut(&mut self) -> &mut Mlp<S> {
        &mut self.mlp
    }

    /// The label mapping.
    #[must_use]
    pub fn activities(&self) -> &ActivitySet {
        &self.activities
    }

    /// The fitted normalizer.
    #[must_use]
    pub fn normalizer(&self) -> &Normalizer {
        &self.normalizer
    }

    /// Predicted per-inference energy under `energy_model`.
    #[must_use]
    pub fn inference_energy(&self, energy_model: &InferenceEnergyModel) -> Energy {
        energy_model.inference_energy(&self.mlp)
    }

    /// Normalizes `data` with this classifier's normalizer — the form
    /// fine-tuning after pruning expects, standardized into the
    /// classifier's own scalar.
    #[must_use]
    pub fn normalize_data(&self, data: &[(Vec<f64>, usize)]) -> Vec<(Vec<S>, usize)> {
        data.iter()
            .map(|(x, y)| {
                let mut out = vec![S::ZERO; x.len()];
                self.normalizer.transform_into(x, &mut out);
                (out, *y)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn toy_data(seed: u64, per_class: usize, classes: usize) -> Vec<(Vec<f64>, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::new();
        for label in 0..classes {
            for _ in 0..per_class {
                // Class-dependent offsets on mismatched feature scales to
                // exercise the normalizer.
                let mut x = vec![
                    100.0 + label as f64 * 10.0,
                    0.01 * label as f64,
                    rng.gen::<f64>(),
                ];
                for v in &mut x {
                    *v += rng.gen::<f64>() * 0.3;
                }
                data.push((x, label));
            }
        }
        data
    }

    fn small_set() -> ActivitySet {
        ActivitySet::new([
            ActivityClass::Walking,
            ActivityClass::Running,
            ActivityClass::Jumping,
        ])
        .unwrap()
    }

    #[test]
    fn trains_and_classifies() {
        let data = toy_data(1, 30, 3);
        let clf = SensorClassifier::<f64>::train(
            &[8],
            &data,
            small_set(),
            &Trainer::new().with_epochs(60),
            7,
        )
        .unwrap();
        let cm = clf.evaluate(&data).unwrap();
        assert!(cm.accuracy().unwrap() > 0.9, "{}", cm);
        let c = clf.classify(&data[0].0).unwrap();
        assert_eq!(c.dense_label, 0);
        assert_eq!(c.activity, ActivityClass::Walking);
        assert!(c.confidence > 0.0);
        assert_eq!(c.probabilities.len(), 3);
    }

    #[test]
    fn f32_classifier_trains_and_agrees_with_itself() {
        let data = toy_data(8, 25, 3);
        let clf = SensorClassifier::<f32>::train(
            &[8],
            &data,
            small_set(),
            &Trainer::new().with_epochs(60),
            7,
        )
        .unwrap();
        let cm = clf.evaluate(&data).unwrap();
        assert!(cm.accuracy().unwrap() > 0.9, "{}", cm);
        // The allocation-free path matches the allocating one at f32 too.
        let mut ws = Workspace::new();
        for (x, _) in data.iter().take(10) {
            let full = clf.classify(x).unwrap();
            let scored = clf.classify_with(&mut ws, x).unwrap();
            assert_eq!(scored.dense_label, full.dense_label);
            assert_eq!(scored.confidence.to_bits(), full.confidence.to_bits());
        }
    }

    #[test]
    fn classification_maps_dense_labels_to_activities() {
        let data = toy_data(2, 20, 3);
        let clf = SensorClassifier::<f64>::train(
            &[6],
            &data,
            small_set(),
            &Trainer::new().with_epochs(40),
            1,
        )
        .unwrap();
        // Dense label 2 is Jumping in this set.
        let sample = data.iter().find(|(_, y)| *y == 2).unwrap();
        let c = clf.classify(&sample.0).unwrap();
        if c.dense_label == 2 {
            assert_eq!(c.activity, ActivityClass::Jumping);
        }
    }

    #[test]
    fn classify_with_matches_classify_bitwise() {
        let data = toy_data(6, 20, 3);
        let mut clf = SensorClassifier::<f64>::train(
            &[8],
            &data,
            small_set(),
            &Trainer::new().with_epochs(30),
            5,
        )
        .unwrap();
        // Prune a layer so the sparse kernel is on the tested path.
        let n = clf.mlp().layers()[0].total_weights();
        clf.mlp_mut().layers_mut()[0].set_mask((0..n).map(|i| i % 4 != 2).collect());
        let mut ws = Workspace::new();
        for (x, _) in &data {
            let full = clf.classify(x).unwrap();
            let scored = clf.classify_with(&mut ws, x).unwrap();
            assert_eq!(scored.dense_label, full.dense_label);
            assert_eq!(scored.activity, full.activity);
            assert_eq!(scored.confidence.to_bits(), full.confidence.to_bits());
        }
        assert!(matches!(
            clf.classify_with(&mut ws, &[1.0]),
            Err(NnError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn evaluate_matches_per_sample_classification() {
        // 37 samples: exercises a final partial batch (37 = 32 + 5).
        let data = toy_data(7, 13, 3)[..37].to_vec();
        let clf = SensorClassifier::<f64>::train(
            &[6],
            &data,
            small_set(),
            &Trainer::new().with_epochs(20),
            2,
        )
        .unwrap();
        let cm = clf.evaluate(&data).unwrap();
        let mut reference = ConfusionMatrix::new(3);
        for (x, label) in &data {
            reference.record(*label, clf.classify(x).unwrap().dense_label);
        }
        assert_eq!(cm, reference);
    }

    #[test]
    fn construction_validates_dims() {
        let mlp = Mlp::<f64>::new(&[3, 4, 2], 0).unwrap();
        let norm = Normalizer::fit([[0.0, 1.0].as_slice()]).unwrap();
        assert!(matches!(
            SensorClassifier::new(mlp.clone(), norm, small_set()),
            Err(NnError::DimensionMismatch { .. })
        ));
        let norm3 = Normalizer::fit([[0.0, 1.0, 2.0].as_slice()]).unwrap();
        // Output 2 != 3 classes.
        assert!(matches!(
            SensorClassifier::new(mlp, norm3, small_set()),
            Err(NnError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn classify_rejects_wrong_width() {
        let data = toy_data(3, 10, 3);
        let clf = SensorClassifier::<f64>::train(
            &[4],
            &data,
            small_set(),
            &Trainer::new().with_epochs(5),
            0,
        )
        .unwrap();
        assert!(matches!(
            clf.classify(&[1.0]),
            Err(NnError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn empty_training_set_is_rejected() {
        assert!(matches!(
            SensorClassifier::<f64>::train(&[4], &[], small_set(), &Trainer::new(), 0),
            Err(NnError::EmptyTrainingSet)
        ));
    }

    #[test]
    fn inference_energy_tracks_pruning() {
        let data = toy_data(4, 10, 3);
        let mut clf = SensorClassifier::<f64>::train(
            &[8],
            &data,
            small_set(),
            &Trainer::new().with_epochs(5),
            0,
        )
        .unwrap();
        let em = InferenceEnergyModel::default();
        let before = clf.inference_energy(&em);
        let n = clf.mlp().layers()[0].total_weights();
        clf.mlp_mut().layers_mut()[0]
            .set_mask(vec![false; n - 1].into_iter().chain([true]).collect());
        assert!(clf.inference_energy(&em) < before);
    }
}
