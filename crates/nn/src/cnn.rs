//! A small 1-D convolutional network over raw IMU windows.
//!
//! The paper's per-sensor classifiers are CNNs in the style of Ha & Choi
//! [11] and Rueda et al. [14]: temporal convolutions over the 6 IMU
//! channels followed by pooling and a dense head. The workspace's default
//! pipeline classifies hand-computed features with an [`Mlp`](crate::Mlp)
//! (faster to train, same policy-level behaviour — see DESIGN.md §2);
//! this module provides the faithful raw-window alternative, trained with
//! the same SGD machinery and verified by numerical gradient checking.
//!
//! Architecture: `Conv1d(C_in→F, k) → ReLU → MaxPool(2) → Conv1d(F→F, k)
//! → ReLU → GlobalAvgPool → Dense(F→classes)`.
//!
//! All activations live in contiguous `[channel × time]` buffers inside a
//! [`CnnScratch`], so the steady-state train/infer loop performs no heap
//! allocations; the loop orders replicate the original nested-`Vec`
//! implementation exactly (pinned bitwise by the parity tests). Like the
//! MLP stack, everything is generic over the kernel [`Scalar`] with
//! `f64` as the default.

use crate::error::NnError;
use crate::layer::softmax_into;
use crate::mlp::argmax;
use crate::scalar::Scalar;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One temporal convolution layer (valid padding, stride 1).
#[derive(Debug, Clone, PartialEq)]
struct Conv1d<S: Scalar = f64> {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    // weight[o][i][t] flattened
    weight: Vec<S>,
    bias: Vec<S>,
}

impl<S: Scalar> Conv1d<S> {
    fn init(in_channels: usize, out_channels: usize, kernel: usize, rng: &mut StdRng) -> Self {
        // Draws happen in f64 regardless of S so every precision consumes
        // the identical RNG stream; each draw rounds once.
        let fan_in = (in_channels * kernel) as f64;
        let limit = (6.0 / fan_in).sqrt();
        let weight = (0..out_channels * in_channels * kernel)
            .map(|_| S::from_f64((rng.gen::<f64>() * 2.0 - 1.0) * limit))
            .collect();
        Self {
            in_channels,
            out_channels,
            kernel,
            weight,
            bias: vec![S::ZERO; out_channels],
        }
    }

    fn w(&self, o: usize, i: usize, t: usize) -> S {
        self.weight[(o * self.in_channels + i) * self.kernel + t]
    }

    fn out_len(&self, in_len: usize) -> usize {
        in_len + 1 - self.kernel
    }

    /// Flat `[channel × time]` forward: `input` holds `in_channels` rows
    /// of `in_len` samples, `out` receives `out_channels` rows of
    /// `out_len(in_len)` samples. Accumulation order `(o, p, i, t)`.
    fn forward_flat(&self, input: &[S], in_len: usize, out: &mut [S]) {
        let out_len = self.out_len(in_len);
        debug_assert_eq!(input.len(), self.in_channels * in_len);
        debug_assert_eq!(out.len(), self.out_channels * out_len);
        for o in 0..self.out_channels {
            let out_ch = &mut out[o * out_len..(o + 1) * out_len];
            for (p, out_v) in out_ch.iter_mut().enumerate() {
                let mut acc = self.bias[o];
                for i in 0..self.in_channels {
                    let in_ch = &input[i * in_len..(i + 1) * in_len];
                    for t in 0..self.kernel {
                        acc += self.w(o, i, t) * in_ch[p + t];
                    }
                }
                *out_v = acc;
            }
        }
    }

    /// Flat SGD update; writes the gradient w.r.t. the input into
    /// `grad_in`. Same `(o, p, i, t)` / `(o, i, t, p)` loop orders as the
    /// original nested implementation.
    // The index arithmetic addresses the flat buffers from several loop
    // variables at once; iterator chains would hide it.
    #[allow(clippy::needless_range_loop)]
    fn backward_flat(
        &mut self,
        input: &[S],
        in_len: usize,
        grad_out: &[S],
        out_len: usize,
        lr: S,
        grad_in: &mut [S],
    ) {
        debug_assert_eq!(input.len(), self.in_channels * in_len);
        debug_assert_eq!(grad_out.len(), self.out_channels * out_len);
        debug_assert_eq!(grad_in.len(), self.in_channels * in_len);
        grad_in.fill(S::ZERO);
        // dX first (uses the pre-update weights).
        for o in 0..self.out_channels {
            let g_ch = &grad_out[o * out_len..(o + 1) * out_len];
            for (p, &g) in g_ch.iter().enumerate() {
                for i in 0..self.in_channels {
                    let gi_ch = &mut grad_in[i * in_len..(i + 1) * in_len];
                    for t in 0..self.kernel {
                        gi_ch[p + t] += g * self.w(o, i, t);
                    }
                }
            }
        }
        // dW, dB.
        for o in 0..self.out_channels {
            for i in 0..self.in_channels {
                for t in 0..self.kernel {
                    let mut dw = S::ZERO;
                    for p in 0..out_len {
                        dw += grad_out[o * out_len + p] * input[i * in_len + p + t];
                    }
                    self.weight[(o * self.in_channels + i) * self.kernel + t] -= lr * dw;
                }
            }
            let db = grad_out[o * out_len..(o + 1) * out_len]
                .iter()
                .fold(S::ZERO, |acc, &g| acc + g);
            self.bias[o] -= lr * db;
        }
    }
}

fn relu_fwd_flat<S: Scalar>(src: &[S], dst: &mut [S]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = s.max(S::ZERO);
    }
}

fn relu_bwd_flat<S: Scalar>(pre: &[S], grad: &mut [S]) {
    for (g, &p) in grad.iter_mut().zip(pre) {
        if p <= S::ZERO {
            *g = S::ZERO;
        }
    }
}

/// Flat max-pool by 2 (truncating an odd tail); fills `out` and the
/// per-channel argmax map (indices relative to the channel start).
fn maxpool2_fwd_flat<S: Scalar>(
    x: &[S],
    channels: usize,
    in_len: usize,
    out: &mut [S],
    arg: &mut [usize],
) {
    let out_len = in_len / 2;
    debug_assert_eq!(out.len(), channels * out_len);
    for ch in 0..channels {
        let row = &x[ch * in_len..(ch + 1) * in_len];
        for p in 0..out_len {
            let (l, r) = (row[2 * p], row[2 * p + 1]);
            let (v, a) = if l >= r { (l, 2 * p) } else { (r, 2 * p + 1) };
            out[ch * out_len + p] = v;
            arg[ch * out_len + p] = a;
        }
    }
}

fn maxpool2_bwd_flat<S: Scalar>(
    grad_out: &[S],
    arg: &[usize],
    channels: usize,
    in_len: usize,
    out_len: usize,
    grad_in: &mut [S],
) {
    debug_assert_eq!(grad_in.len(), channels * in_len);
    grad_in.fill(S::ZERO);
    for ch in 0..channels {
        for p in 0..out_len {
            grad_in[ch * in_len + arg[ch * out_len + p]] += grad_out[ch * out_len + p];
        }
    }
}

/// Preallocated scratch for [`Cnn1d`]: every activation and gradient
/// lives in a contiguous `[channel × time]` buffer that only ever grows,
/// so a reused scratch makes the steady-state CNN train/infer loop
/// allocation-free — at either precision.
#[derive(Debug, Clone, Default)]
pub struct CnnScratch<S: Scalar = f64> {
    input: Vec<S>,
    z1: Vec<S>,
    a1: Vec<S>,
    p1: Vec<S>,
    arg1: Vec<usize>,
    z2: Vec<S>,
    a2: Vec<S>,
    gap: Vec<S>,
    logits: Vec<S>,
    proba: Vec<S>,
    dlogits: Vec<S>,
    dgap: Vec<S>,
    da2: Vec<S>,
    dp1: Vec<S>,
    da1: Vec<S>,
    dinput: Vec<S>,
}

impl<S: Scalar> CnnScratch<S> {
    /// An empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// A compact 1-D CNN classifier over `[channels][time]` windows, generic
/// over the kernel [`Scalar`] (`f64` by default).
#[derive(Debug, Clone, PartialEq)]
pub struct Cnn1d<S: Scalar = f64> {
    conv1: Conv1d<S>,
    conv2: Conv1d<S>,
    // dense head: weight[class][filter], bias[class]
    head_w: Vec<S>,
    head_b: Vec<S>,
    filters: usize,
    classes: usize,
    in_channels: usize,
    min_len: usize,
}

impl<S: Scalar> Cnn1d<S> {
    /// A randomly initialized CNN: `in_channels` input channels,
    /// `filters` conv features, kernel width `kernel`, `classes` outputs.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadArchitecture`] when any size is zero or the
    /// kernel is 1 or less.
    pub fn new(
        in_channels: usize,
        filters: usize,
        kernel: usize,
        classes: usize,
        seed: u64,
    ) -> Result<Self, NnError> {
        if in_channels == 0 || filters == 0 || classes == 0 || kernel < 2 {
            return Err(NnError::BadArchitecture(vec![
                in_channels,
                filters,
                kernel,
                classes,
            ]));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let conv1 = Conv1d::init(in_channels, filters, kernel, &mut rng);
        let conv2 = Conv1d::init(filters, filters, kernel, &mut rng);
        let limit = (6.0 / filters as f64).sqrt();
        let head_w = (0..classes * filters)
            .map(|_| S::from_f64((rng.gen::<f64>() * 2.0 - 1.0) * limit))
            .collect();
        // Shortest window the two convolutions + pooling can digest.
        let min_len = 2 * kernel + 2 * (kernel - 1);
        Ok(Self {
            conv1,
            conv2,
            head_w,
            head_b: vec![S::ZERO; classes],
            filters,
            classes,
            in_channels,
            min_len,
        })
    }

    /// Number of input channels.
    #[must_use]
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of output classes.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Minimum window length the architecture accepts.
    #[must_use]
    pub fn min_window_len(&self) -> usize {
        self.min_len
    }

    /// Total parameter count.
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        self.conv1.weight.len()
            + self.conv1.bias.len()
            + self.conv2.weight.len()
            + self.conv2.bias.len()
            + self.head_w.len()
            + self.head_b.len()
    }

    fn validate(&self, window: &[Vec<S>]) -> Result<(), NnError> {
        if window.len() != self.in_channels {
            return Err(NnError::DimensionMismatch {
                expected: self.in_channels,
                actual: window.len(),
            });
        }
        let len = window.first().map_or(0, Vec::len);
        if len < self.min_len || window.iter().any(|ch| ch.len() != len) {
            return Err(NnError::DimensionMismatch {
                expected: self.min_len,
                actual: len,
            });
        }
        Ok(())
    }

    /// Stage lengths for a window of `len` samples: conv1 out, pool out,
    /// conv2 out. Resizes every scratch buffer to the exact shape.
    fn prepare_scratch(&self, ws: &mut CnnScratch<S>, len: usize) -> (usize, usize, usize) {
        let l1 = self.conv1.out_len(len);
        let p1 = l1 / 2;
        let l2 = self.conv2.out_len(p1);
        ws.input.resize(self.in_channels * len, S::ZERO);
        ws.dinput.resize(self.in_channels * len, S::ZERO);
        ws.z1.resize(self.filters * l1, S::ZERO);
        ws.a1.resize(self.filters * l1, S::ZERO);
        ws.da1.resize(self.filters * l1, S::ZERO);
        ws.p1.resize(self.filters * p1, S::ZERO);
        ws.arg1.resize(self.filters * p1, 0);
        ws.dp1.resize(self.filters * p1, S::ZERO);
        ws.z2.resize(self.filters * l2, S::ZERO);
        ws.a2.resize(self.filters * l2, S::ZERO);
        ws.da2.resize(self.filters * l2, S::ZERO);
        ws.gap.resize(self.filters, S::ZERO);
        ws.dgap.resize(self.filters, S::ZERO);
        ws.logits.resize(self.classes, S::ZERO);
        ws.dlogits.resize(self.classes, S::ZERO);
        ws.proba.resize(self.classes, S::ZERO);
        (l1, p1, l2)
    }

    /// Runs the forward pass inside `ws`, leaving logits in `ws.logits`.
    /// Returns `(l1, p1, l2)` stage lengths for the backward pass.
    fn run_forward(
        &self,
        ws: &mut CnnScratch<S>,
        window: &[Vec<S>],
    ) -> Result<(usize, usize, usize), NnError> {
        self.validate(window)?;
        let len = window[0].len();
        let (l1, p1, l2) = self.prepare_scratch(ws, len);
        for (c, ch) in window.iter().enumerate() {
            ws.input[c * len..(c + 1) * len].copy_from_slice(ch);
        }
        self.conv1.forward_flat(&ws.input, len, &mut ws.z1);
        relu_fwd_flat(&ws.z1, &mut ws.a1);
        maxpool2_fwd_flat(&ws.a1, self.filters, l1, &mut ws.p1, &mut ws.arg1);
        self.conv2.forward_flat(&ws.p1, p1, &mut ws.z2);
        relu_fwd_flat(&ws.z2, &mut ws.a2);
        // Global average pool to one value per filter.
        let t2 = S::from_f64(l2 as f64);
        for f in 0..self.filters {
            ws.gap[f] = ws.a2[f * l2..(f + 1) * l2]
                .iter()
                .fold(S::ZERO, |acc, &v| acc + v)
                / t2;
        }
        self.head_into(&ws.gap, &mut ws.logits);
        Ok((l1, p1, l2))
    }

    /// Allocation-free forward pass to logits; the slice is valid until
    /// the scratch is reused. Bitwise identical to [`Cnn1d::forward`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::DimensionMismatch`] for a wrong-shaped window.
    pub fn forward_with<'w>(
        &self,
        ws: &'w mut CnnScratch<S>,
        window: &[Vec<S>],
    ) -> Result<&'w [S], NnError> {
        self.run_forward(ws, window)?;
        Ok(&ws.logits)
    }

    /// Forward pass to logits.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::DimensionMismatch`] for a wrong-shaped window.
    pub fn forward(&self, window: &[Vec<S>]) -> Result<Vec<S>, NnError> {
        let mut ws = CnnScratch::new();
        self.run_forward(&mut ws, window)?;
        Ok(ws.logits)
    }

    fn head_into(&self, gap: &[S], out: &mut [S]) {
        for (c, out_c) in out.iter_mut().enumerate() {
            *out_c = self.head_b[c]
                + gap.iter().enumerate().fold(S::ZERO, |acc, (f, &v)| {
                    acc + self.head_w[c * self.filters + f] * v
                });
        }
    }

    /// Allocation-free softmax prediction: `(argmax, probabilities)`;
    /// the slice is valid until the scratch is reused.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::DimensionMismatch`] for a wrong-shaped window.
    pub fn predict_with<'w>(
        &self,
        ws: &'w mut CnnScratch<S>,
        window: &[Vec<S>],
    ) -> Result<(usize, &'w [S]), NnError> {
        self.run_forward(ws, window)?;
        softmax_into(&ws.logits, &mut ws.proba);
        Ok((argmax(&ws.proba), &ws.proba))
    }

    /// Softmax prediction: `(argmax, probabilities)`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::DimensionMismatch`] for a wrong-shaped window.
    pub fn predict(&self, window: &[Vec<S>]) -> Result<(usize, Vec<S>), NnError> {
        let mut ws = CnnScratch::new();
        let (class, _) = self.predict_with(&mut ws, window)?;
        Ok((class, ws.proba))
    }

    /// One SGD step on a single `(window, label)` example; returns the
    /// cross-entropy loss before the update. The rate is given in `f64`
    /// and rounded to `S` once at entry.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::DimensionMismatch`] / [`NnError::LabelOutOfRange`]
    /// on invalid input.
    pub fn train_step(&mut self, window: &[Vec<S>], label: usize, lr: f64) -> Result<f64, NnError> {
        let mut ws = CnnScratch::new();
        self.train_step_with(&mut ws, window, label, lr)
    }

    /// Allocation-free [`Cnn1d::train_step`]: every intermediate lives in
    /// `ws`; reusing the scratch across a training loop eliminates all
    /// steady-state heap traffic.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::DimensionMismatch`] / [`NnError::LabelOutOfRange`]
    /// on invalid input.
    // The head gradients index the flat weight buffer from two loop
    // variables at once; iterator chains would hide the arithmetic.
    #[allow(clippy::needless_range_loop)]
    pub fn train_step_with(
        &mut self,
        ws: &mut CnnScratch<S>,
        window: &[Vec<S>],
        label: usize,
        lr: f64,
    ) -> Result<f64, NnError> {
        if label >= self.classes {
            self.validate(window)?;
            return Err(NnError::LabelOutOfRange {
                label,
                classes: self.classes,
            });
        }
        let lr = S::from_f64(lr);
        let (l1, p1, l2) = self.run_forward(ws, window)?;
        let len = window[0].len();
        softmax_into(&ws.logits, &mut ws.proba);
        let loss = -ws.proba[label].max(S::from_f64(1e-12)).ln();

        // Head gradients.
        ws.dlogits.copy_from_slice(&ws.proba);
        ws.dlogits[label] -= S::ONE;
        ws.dgap.fill(S::ZERO);
        for c in 0..self.classes {
            for f in 0..self.filters {
                ws.dgap[f] += ws.dlogits[c] * self.head_w[c * self.filters + f];
            }
        }
        for c in 0..self.classes {
            for f in 0..self.filters {
                self.head_w[c * self.filters + f] -= lr * ws.dlogits[c] * ws.gap[f];
            }
            self.head_b[c] -= lr * ws.dlogits[c];
        }

        // Back through GAP → ReLU → conv2.
        let t2 = S::from_f64(l2 as f64);
        for f in 0..self.filters {
            ws.da2[f * l2..(f + 1) * l2].fill(ws.dgap[f] / t2);
        }
        relu_bwd_flat(&ws.z2, &mut ws.da2);
        self.conv2
            .backward_flat(&ws.p1, p1, &ws.da2, l2, lr, &mut ws.dp1);

        // Back through pool → ReLU → conv1.
        maxpool2_bwd_flat(&ws.dp1, &ws.arg1, self.filters, l1, p1, &mut ws.da1);
        relu_bwd_flat(&ws.z1, &mut ws.da1);
        self.conv1
            .backward_flat(&ws.input, len, &ws.da1, l1, lr, &mut ws.dinput);
        Ok(loss.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::softmax;

    fn toy_window(seed: u64, class: usize, len: usize) -> Vec<Vec<f64>> {
        // Class-dependent frequency content across 2 channels.
        let mut rng = StdRng::seed_from_u64(seed);
        let freq = 0.15 + class as f64 * 0.22;
        (0..2)
            .map(|ch| {
                (0..len)
                    .map(|t| (freq * t as f64 + ch as f64).sin() + 0.1 * (rng.gen::<f64>() - 0.5))
                    .collect()
            })
            .collect()
    }

    // ---- The original nested-Vec implementation, kept verbatim as the
    // ---- golden reference for the flat-kernel parity tests.

    fn ref_conv_forward(conv: &Conv1d, input: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let in_len = input[0].len();
        let out_len = conv.out_len(in_len);
        let mut out = vec![vec![0.0; out_len]; conv.out_channels];
        for (o, out_ch) in out.iter_mut().enumerate() {
            for (p, out_v) in out_ch.iter_mut().enumerate() {
                let mut acc = conv.bias[o];
                for (i, in_ch) in input.iter().enumerate() {
                    for t in 0..conv.kernel {
                        acc += conv.w(o, i, t) * in_ch[p + t];
                    }
                }
                *out_v = acc;
            }
        }
        out
    }

    fn ref_conv_backward(
        conv: &mut Conv1d,
        input: &[Vec<f64>],
        grad_out: &[Vec<f64>],
        lr: f64,
    ) -> Vec<Vec<f64>> {
        let in_len = input[0].len();
        let out_len = grad_out[0].len();
        let mut grad_in = vec![vec![0.0; in_len]; conv.in_channels];
        for (o, g_ch) in grad_out.iter().enumerate() {
            for (p, &g) in g_ch.iter().enumerate() {
                for (i, gi_ch) in grad_in.iter_mut().enumerate() {
                    for t in 0..conv.kernel {
                        gi_ch[p + t] += g * conv.w(o, i, t);
                    }
                }
            }
        }
        for (o, g_ch) in grad_out.iter().enumerate().take(conv.out_channels) {
            for (i, in_ch) in input.iter().enumerate().take(conv.in_channels) {
                for t in 0..conv.kernel {
                    let mut dw = 0.0;
                    for p in 0..out_len {
                        dw += g_ch[p] * in_ch[p + t];
                    }
                    conv.weight[(o * conv.in_channels + i) * conv.kernel + t] -= lr * dw;
                }
            }
            let db: f64 = g_ch.iter().sum();
            conv.bias[o] -= lr * db;
        }
        grad_in
    }

    fn ref_relu_fwd(x: &[Vec<f64>]) -> Vec<Vec<f64>> {
        x.iter()
            .map(|ch| ch.iter().map(|&v| v.max(0.0)).collect())
            .collect()
    }

    fn ref_relu_bwd(pre: &[Vec<f64>], grad: &mut [Vec<f64>]) {
        for (g_ch, p_ch) in grad.iter_mut().zip(pre) {
            for (g, &p) in g_ch.iter_mut().zip(p_ch) {
                if p <= 0.0 {
                    *g = 0.0;
                }
            }
        }
    }

    fn ref_maxpool2_fwd(x: &[Vec<f64>]) -> (Vec<Vec<f64>>, Vec<Vec<usize>>) {
        let out_len = x[0].len() / 2;
        let mut out = Vec::with_capacity(x.len());
        let mut arg = Vec::with_capacity(x.len());
        for ch in x {
            let mut o = Vec::with_capacity(out_len);
            let mut a = Vec::with_capacity(out_len);
            for p in 0..out_len {
                let (l, r) = (ch[2 * p], ch[2 * p + 1]);
                if l >= r {
                    o.push(l);
                    a.push(2 * p);
                } else {
                    o.push(r);
                    a.push(2 * p + 1);
                }
            }
            out.push(o);
            arg.push(a);
        }
        (out, arg)
    }

    fn ref_maxpool2_bwd(grad_out: &[Vec<f64>], arg: &[Vec<usize>], in_len: usize) -> Vec<Vec<f64>> {
        let mut grad_in = vec![vec![0.0; in_len]; grad_out.len()];
        for (ch, (g_ch, a_ch)) in grad_out.iter().zip(arg).enumerate() {
            for (g, &a) in g_ch.iter().zip(a_ch) {
                grad_in[ch][a] += g;
            }
        }
        grad_in
    }

    fn ref_forward(cnn: &Cnn1d, window: &[Vec<f64>]) -> Vec<f64> {
        let z1 = ref_conv_forward(&cnn.conv1, window);
        let a1 = ref_relu_fwd(&z1);
        let (p1, _) = ref_maxpool2_fwd(&a1);
        let z2 = ref_conv_forward(&cnn.conv2, &p1);
        let a2 = ref_relu_fwd(&z2);
        let gap: Vec<f64> = a2
            .iter()
            .map(|ch| ch.iter().sum::<f64>() / ch.len() as f64)
            .collect();
        let mut logits = vec![0.0; cnn.classes];
        cnn.head_into(&gap, &mut logits);
        logits
    }

    #[allow(clippy::needless_range_loop)]
    fn ref_train_step(cnn: &mut Cnn1d, window: &[Vec<f64>], label: usize, lr: f64) -> f64 {
        let z1 = ref_conv_forward(&cnn.conv1, window);
        let a1 = ref_relu_fwd(&z1);
        let (p1, arg1) = ref_maxpool2_fwd(&a1);
        let z2 = ref_conv_forward(&cnn.conv2, &p1);
        let a2 = ref_relu_fwd(&z2);
        let t2 = a2[0].len() as f64;
        let gap: Vec<f64> = a2.iter().map(|ch| ch.iter().sum::<f64>() / t2).collect();
        let mut logits = vec![0.0; cnn.classes];
        cnn.head_into(&gap, &mut logits);
        let proba = softmax(&logits);
        let loss = -proba[label].max(1e-12).ln();

        let mut dlogits = proba;
        dlogits[label] -= 1.0;
        let mut dgap = vec![0.0; cnn.filters];
        for c in 0..cnn.classes {
            for f in 0..cnn.filters {
                dgap[f] += dlogits[c] * cnn.head_w[c * cnn.filters + f];
            }
        }
        for c in 0..cnn.classes {
            for f in 0..cnn.filters {
                cnn.head_w[c * cnn.filters + f] -= lr * dlogits[c] * gap[f];
            }
            cnn.head_b[c] -= lr * dlogits[c];
        }

        let mut da2: Vec<Vec<f64>> = (0..cnn.filters)
            .map(|f| vec![dgap[f] / t2; a2[f].len()])
            .collect();
        ref_relu_bwd(&z2, &mut da2);
        let dp1 = ref_conv_backward(&mut cnn.conv2, &p1, &da2, lr);

        let mut da1 = ref_maxpool2_bwd(&dp1, &arg1, a1[0].len());
        ref_relu_bwd(&z1, &mut da1);
        let _ = ref_conv_backward(&mut cnn.conv1, window, &da1, lr);
        loss
    }

    #[test]
    fn flat_forward_matches_nested_reference_bitwise() {
        let cnn = Cnn1d::new(2, 4, 3, 3, 21).unwrap();
        let mut ws = CnnScratch::new();
        for k in 0..3 {
            let window = toy_window(40 + k, (k % 3) as usize, 20 + 2 * k as usize);
            let expect = ref_forward(&cnn, &window);
            let got = cnn.forward_with(&mut ws, &window).unwrap();
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                expect.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn flat_train_step_matches_nested_reference_bitwise() {
        let mut a = Cnn1d::new(2, 4, 3, 3, 22).unwrap();
        let mut b = a.clone();
        let mut ws = CnnScratch::new();
        for i in 0..12u64 {
            let class = (i % 3) as usize;
            let window = toy_window(i, class, 24);
            let la = a.train_step_with(&mut ws, &window, class, 0.02).unwrap();
            let lb = ref_train_step(&mut b, &window, class, 0.02);
            assert_eq!(la.to_bits(), lb.to_bits());
        }
        assert_eq!(a, b);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.conv1.weight), bits(&b.conv1.weight));
        assert_eq!(bits(&a.conv2.weight), bits(&b.conv2.weight));
        assert_eq!(bits(&a.head_w), bits(&b.head_w));
    }

    #[test]
    fn construction_and_shapes() {
        let cnn = Cnn1d::<f64>::new(2, 4, 3, 3, 0).unwrap();
        assert_eq!(cnn.in_channels(), 2);
        assert_eq!(cnn.classes(), 3);
        assert!(cnn.parameter_count() > 0);
        assert!(cnn.min_window_len() >= 6);
        assert!(Cnn1d::<f64>::new(0, 4, 3, 3, 0).is_err());
        assert!(Cnn1d::<f64>::new(2, 4, 1, 3, 0).is_err());
    }

    #[test]
    fn forward_validates_shape() {
        let cnn = Cnn1d::new(2, 4, 3, 3, 1).unwrap();
        // Wrong channel count.
        assert!(cnn.forward(&[vec![0.0; 32]]).is_err());
        // Too short.
        assert!(cnn.forward(&[vec![0.0; 4], vec![0.0; 4]]).is_err());
        // Ragged channels.
        assert!(cnn.forward(&[vec![0.0; 32], vec![0.0; 31]]).is_err());
        // Valid.
        let (label, proba) = cnn.predict(&toy_window(0, 0, 32)).unwrap();
        assert!(label < 3);
        assert!((proba.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn f32_cnn_mirrors_f64_initialization_and_trains() {
        let wide = Cnn1d::<f64>::new(2, 4, 3, 3, 22).unwrap();
        let mut narrow = Cnn1d::<f32>::new(2, 4, 3, 3, 22).unwrap();
        for (&a, &b) in wide.conv1.weight.iter().zip(&narrow.conv1.weight) {
            assert_eq!(b, a as f32);
        }
        for (&a, &b) in wide.head_w.iter().zip(&narrow.head_w) {
            assert_eq!(b, a as f32);
        }
        let mut ws = CnnScratch::<f32>::new();
        let mut last = f64::INFINITY;
        for i in 0..10u64 {
            let class = (i % 3) as usize;
            let window: Vec<Vec<f32>> = toy_window(i, class, 24)
                .into_iter()
                .map(|ch| ch.into_iter().map(|v| v as f32).collect())
                .collect();
            last = narrow
                .train_step_with(&mut ws, &window, class, 0.02)
                .unwrap();
        }
        assert!(last.is_finite());
        let window: Vec<Vec<f32>> = toy_window(99, 1, 32)
            .into_iter()
            .map(|ch| ch.into_iter().map(|v| v as f32).collect())
            .collect();
        let (label, proba) = narrow.predict_with(&mut ws, &window).unwrap();
        assert!(label < 3);
        assert!((proba.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn gradient_check_against_numerical() {
        // The gold-standard test: analytic dLoss/dW matches the numerical
        // central difference on a handful of parameters.
        let window = toy_window(3, 1, 16);
        let label = 1usize;
        let base = Cnn1d::new(2, 3, 3, 3, 7).unwrap();
        let loss_of = |cnn: &Cnn1d| -> f64 {
            let proba = softmax(&cnn.forward(&window).unwrap());
            -proba[label].max(1e-12).ln()
        };

        // Analytic gradient via a train_step with a tiny lr: dW = (w_before
        // - w_after) / lr.
        let lr = 1e-6;
        let mut stepped = base.clone();
        stepped.train_step(&window, label, lr).unwrap();

        let eps = 1e-5;
        // Check a spread of conv1, conv2 and head parameters.
        for idx in [0usize, 3, 7] {
            let analytic = (base.conv1.weight[idx] - stepped.conv1.weight[idx]) / lr;
            let mut plus = base.clone();
            plus.conv1.weight[idx] += eps;
            let mut minus = base.clone();
            minus.conv1.weight[idx] -= eps;
            let numeric = (loss_of(&plus) - loss_of(&minus)) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 1e-4 * (1.0 + numeric.abs()),
                "conv1[{idx}]: analytic {analytic} vs numeric {numeric}"
            );
        }
        for idx in [0usize, 5] {
            let analytic = (base.conv2.weight[idx] - stepped.conv2.weight[idx]) / lr;
            let mut plus = base.clone();
            plus.conv2.weight[idx] += eps;
            let mut minus = base.clone();
            minus.conv2.weight[idx] -= eps;
            let numeric = (loss_of(&plus) - loss_of(&minus)) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 1e-4 * (1.0 + numeric.abs()),
                "conv2[{idx}]: analytic {analytic} vs numeric {numeric}"
            );
        }
        let analytic = (base.head_w[2] - stepped.head_w[2]) / lr;
        let mut plus = base.clone();
        plus.head_w[2] += eps;
        let mut minus = base.clone();
        minus.head_w[2] -= eps;
        let numeric = (loss_of(&plus) - loss_of(&minus)) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 1e-4 * (1.0 + numeric.abs()),
            "head[2]: analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn learns_frequency_separated_classes() {
        let mut cnn = Cnn1d::new(2, 6, 5, 3, 11).unwrap();
        let mut ws = CnnScratch::new();
        let mut final_loss = f64::INFINITY;
        for epoch in 0..120 {
            let mut loss = 0.0;
            for i in 0..30 {
                let class = i % 3;
                let window = toy_window(epoch * 100 + i as u64, class, 32);
                loss += cnn.train_step_with(&mut ws, &window, class, 0.01).unwrap();
            }
            final_loss = loss / 30.0;
        }
        assert!(final_loss < 0.5, "loss = {final_loss}");
        let mut correct = 0;
        for i in 0..30 {
            let class = i % 3;
            let window = toy_window(999_000 + i as u64, class, 32);
            if cnn.predict_with(&mut ws, &window).unwrap().0 == class {
                correct += 1;
            }
        }
        assert!(correct >= 24, "accuracy {correct}/30");
    }

    #[test]
    fn training_is_deterministic() {
        let run = || {
            let mut cnn = Cnn1d::<f64>::new(2, 4, 3, 3, 5).unwrap();
            for i in 0..20 {
                let class = i % 3;
                let _ = cnn.train_step(&toy_window(i as u64, class, 24), class, 0.02);
            }
            cnn
        };
        assert_eq!(run(), run());
    }
}
