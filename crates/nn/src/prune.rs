//! Energy-aware magnitude pruning with fine-tuning.
//!
//! Implements the Baseline-2 construction: starting from a trained model,
//! iteratively prune the lowest-magnitude weights of the most
//! energy-hungry layer until the predicted per-inference energy fits the
//! harvest budget, fine-tuning between steps so accuracy degrades
//! gracefully. This mirrors the structure of energy-aware pruning [15]
//! (estimate energy per layer → prune where it pays most → restore
//! accuracy), specialized to our MLPs.

use crate::energy_model::InferenceEnergyModel;
use crate::error::NnError;
use crate::mlp::Mlp;
use crate::scalar::Scalar;
use crate::train::Trainer;
use origin_types::Energy;

/// Outcome of a pruning run.
#[derive(Debug, Clone, PartialEq)]
pub struct PruneReport {
    /// Predicted inference energy before pruning.
    pub energy_before: Energy,
    /// Predicted inference energy after pruning.
    pub energy_after: Energy,
    /// The budget that was met.
    pub budget: Energy,
    /// Final fraction of weights pruned, `[0, 1)`.
    pub sparsity: f64,
    /// Number of prune → fine-tune iterations.
    pub iterations: usize,
}

/// Prunes `model` until its predicted inference energy fits `budget`.
///
/// Each iteration removes `step_fraction` of the *remaining* weights from
/// the currently most energy-hungry layer, then runs `fine_tune` epochs of
/// the supplied trainer over `data` (with the masks held fixed).
///
/// # Errors
///
/// * [`NnError::BudgetUnreachable`] when `budget` is at or below the
///   model's static energy floor (no amount of pruning can reach it).
/// * [`NnError::EmptyTrainingSet`] when fine-tuning is requested with no
///   data.
///
/// # Panics
///
/// Panics when `step_fraction` ∉ `(0, 1)`.
pub fn prune_to_energy<S: Scalar>(
    model: &mut Mlp<S>,
    energy_model: &InferenceEnergyModel,
    budget: Energy,
    data: &[(Vec<S>, usize)],
    trainer: &Trainer,
    step_fraction: f64,
    fine_tune_epochs: usize,
) -> Result<PruneReport, NnError> {
    assert!(
        step_fraction > 0.0 && step_fraction < 1.0,
        "step fraction must be in (0, 1), got {step_fraction}"
    );
    if budget <= energy_model.static_floor() {
        return Err(NnError::BudgetUnreachable);
    }
    let energy_before = energy_model.inference_energy(model);
    let mut iterations = 0;
    // Keep at least one active weight per layer so the network stays
    // connected.
    while energy_model.inference_energy(model) > budget {
        let layer_count = model.layers().len();
        // Pick the most energy-hungry layer that can still lose weights.
        let target = (0..layer_count)
            .filter(|&i| model.layers()[i].active_weights() > 1)
            .max_by(|&a, &b| {
                let ea = energy_model.layer_energy(model, a).as_microjoules();
                let eb = energy_model.layer_energy(model, b).as_microjoules();
                ea.partial_cmp(&eb).expect("energies are finite")
            });
        let Some(target) = target else {
            // Every layer is down to one weight and we are still above
            // budget — cannot be reached (guarded above except for very
            // tight budgets).
            return Err(NnError::BudgetUnreachable);
        };

        let layer = &mut model.layers_mut()[target];
        let order = layer.weights_by_magnitude();
        let active = order.len();
        let to_prune = ((active as f64 * step_fraction).ceil() as usize)
            .min(active - 1)
            .max(1);
        let mut mask: Vec<bool> = match layer.mask() {
            Some(m) => m.to_vec(),
            None => vec![true; layer.total_weights()],
        };
        for &idx in order.iter().take(to_prune) {
            mask[idx] = false;
        }
        layer.set_mask(mask);
        iterations += 1;

        if fine_tune_epochs > 0 {
            trainer
                .clone_with_epochs(fine_tune_epochs)
                .fit(model, data)?;
        }
    }
    Ok(PruneReport {
        energy_before,
        energy_after: energy_model.inference_energy(model),
        budget,
        sparsity: model.sparsity(),
        iterations,
    })
}

impl Trainer {
    /// A copy of this trainer with a different epoch count (internal
    /// helper for fine-tuning rounds).
    #[must_use]
    fn clone_with_epochs(&self, epochs: usize) -> Trainer {
        self.clone().with_epochs(epochs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blob_data(seed: u64, per_class: usize) -> Vec<(Vec<f64>, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers = [[2.0, 0.0, 0.0], [-2.0, 0.0, 1.0], [0.0, 2.5, -1.0]];
        let mut data = Vec::new();
        for (label, c) in centers.iter().enumerate() {
            for _ in 0..per_class {
                let mut jitter = || rng.gen::<f64>() - 0.5;
                data.push((
                    vec![c[0] + jitter(), c[1] + jitter(), c[2] + jitter()],
                    label,
                ));
            }
        }
        data
    }

    #[test]
    fn pruning_meets_budget() {
        let data = blob_data(1, 30);
        let mut model = Mlp::new(&[3, 16, 3], 2).unwrap();
        let trainer = Trainer::new().with_epochs(40);
        trainer.fit(&mut model, &data).unwrap();
        let em = InferenceEnergyModel::default();
        let full = em.inference_energy(&model);
        let budget = em.static_floor() + (full - em.static_floor()) * 0.3;
        let report = prune_to_energy(&mut model, &em, budget, &data, &trainer, 0.2, 5).unwrap();
        assert!(report.energy_after <= budget);
        assert!(report.energy_before == full);
        assert!(report.sparsity > 0.5);
        assert!(report.iterations > 0);
        assert_eq!(report.budget, budget);
    }

    #[test]
    fn pruned_model_keeps_most_accuracy() {
        let data = blob_data(3, 40);
        let mut model = Mlp::new(&[3, 16, 3], 4).unwrap();
        let trainer = Trainer::new().with_epochs(60);
        trainer.fit(&mut model, &data).unwrap();
        let accuracy = |m: &Mlp| {
            data.iter().filter(|(x, y)| m.predict(x).0 == *y).count() as f64 / data.len() as f64
        };
        let acc_full = accuracy(&model);
        let em = InferenceEnergyModel::default();
        let full = em.inference_energy(&model);
        let budget = em.static_floor() + (full - em.static_floor()) * 0.35;
        prune_to_energy(&mut model, &em, budget, &data, &trainer, 0.15, 8).unwrap();
        let acc_pruned = accuracy(&model);
        assert!(
            acc_pruned > acc_full - 0.15,
            "pruning collapsed accuracy: {acc_full} -> {acc_pruned}"
        );
    }

    #[test]
    fn unreachable_budget_is_rejected() {
        let data = blob_data(5, 5);
        let mut model = Mlp::new(&[3, 4, 3], 6).unwrap();
        let em = InferenceEnergyModel::default();
        let err = prune_to_energy(
            &mut model,
            &em,
            em.static_floor(),
            &data,
            &Trainer::new(),
            0.2,
            0,
        )
        .unwrap_err();
        assert_eq!(err, NnError::BudgetUnreachable);
    }

    #[test]
    fn already_within_budget_is_a_no_op() {
        let data = blob_data(7, 5);
        let mut model = Mlp::new(&[3, 4, 3], 8).unwrap();
        let em = InferenceEnergyModel::default();
        let generous = em.inference_energy(&model) + Energy::from_microjoules(1.0);
        let report =
            prune_to_energy(&mut model, &em, generous, &data, &Trainer::new(), 0.2, 0).unwrap();
        assert_eq!(report.iterations, 0);
        assert_eq!(report.sparsity, 0.0);
        assert_eq!(report.energy_before, report.energy_after);
    }

    #[test]
    fn pruning_without_finetune_works() {
        let data = blob_data(9, 10);
        let mut model = Mlp::new(&[3, 8, 3], 10).unwrap();
        let em = InferenceEnergyModel::default();
        let full = em.inference_energy(&model);
        let budget = em.static_floor() + (full - em.static_floor()) * 0.5;
        let report =
            prune_to_energy(&mut model, &em, budget, &data, &Trainer::new(), 0.25, 0).unwrap();
        assert!(report.energy_after <= budget);
    }

    #[test]
    #[should_panic(expected = "step fraction")]
    fn bad_step_fraction_panics() {
        let mut model = Mlp::<f64>::new(&[2, 2], 0).unwrap();
        let _ = prune_to_energy(
            &mut model,
            &InferenceEnergyModel::default(),
            Energy::from_microjoules(1000.0),
            &[],
            &Trainer::new(),
            1.5,
            0,
        );
    }
}
