//! Error type for the NN engine.

use core::fmt;

/// Errors produced by model construction, training, pruning and
/// persistence.
#[derive(Debug)]
#[non_exhaustive]
pub enum NnError {
    /// A model was requested with fewer than two layer dimensions.
    BadArchitecture(Vec<usize>),
    /// An input vector's length does not match the model's input width.
    DimensionMismatch {
        /// Width the model expects.
        expected: usize,
        /// Width that was supplied.
        actual: usize,
    },
    /// A training label is outside the output range.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// Number of output classes.
        classes: usize,
    },
    /// The training set is empty.
    EmptyTrainingSet,
    /// A trainer hyper-parameter is outside its valid range.
    InvalidHyperparameter {
        /// Which hyper-parameter (`"learning rate"`, `"momentum"`, …).
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// An energy budget is unreachably small (below the model's static
    /// floor even with every weight pruned).
    BudgetUnreachable,
    /// A quantization bit width outside the supported range (2..=16).
    InvalidQuantBits {
        /// The rejected width.
        bits: u32,
    },
    /// A persisted model holds weights of a different scalar dtype than
    /// the one being loaded (cross-dtype loads are refused; re-train or
    /// re-save at the target precision instead of silently converting).
    DtypeMismatch {
        /// Dtype of the loading code path (`"f64"` / `"f32"`).
        expected: &'static str,
        /// Dtype recorded in the file.
        found: &'static str,
    },
    /// A persisted model file is malformed.
    ParseModel {
        /// Which section failed to parse.
        line: &'static str,
        /// What went wrong.
        reason: &'static str,
    },
    /// Underlying I/O failure while reading or writing a model.
    Io(std::io::Error),
}

impl NnError {
    /// Wraps an I/O error (used by the persistence layer).
    #[must_use]
    pub fn from_io(e: std::io::Error) -> Self {
        NnError::Io(e)
    }
}

impl PartialEq for NnError {
    fn eq(&self, other: &Self) -> bool {
        use NnError::*;
        match (self, other) {
            (BadArchitecture(a), BadArchitecture(b)) => a == b,
            (
                DimensionMismatch {
                    expected: a,
                    actual: b,
                },
                DimensionMismatch {
                    expected: c,
                    actual: d,
                },
            ) => a == c && b == d,
            (
                LabelOutOfRange {
                    label: a,
                    classes: b,
                },
                LabelOutOfRange {
                    label: c,
                    classes: d,
                },
            ) => a == c && b == d,
            (EmptyTrainingSet, EmptyTrainingSet) | (BudgetUnreachable, BudgetUnreachable) => true,
            (
                InvalidHyperparameter { name: a, value: b },
                InvalidHyperparameter { name: c, value: d },
            ) => a == c && b.to_bits() == d.to_bits(),
            (InvalidQuantBits { bits: a }, InvalidQuantBits { bits: b }) => a == b,
            (
                DtypeMismatch {
                    expected: a,
                    found: b,
                },
                DtypeMismatch {
                    expected: c,
                    found: d,
                },
            ) => a == c && b == d,
            (ParseModel { line: a, reason: b }, ParseModel { line: c, reason: d }) => {
                a == c && b == d
            }
            // I/O errors are never equal (they carry OS state).
            _ => false,
        }
    }
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::BadArchitecture(dims) => {
                write!(f, "architecture needs >= 2 dims and no zeros, got {dims:?}")
            }
            NnError::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "input width {actual} does not match model input {expected}"
                )
            }
            NnError::LabelOutOfRange { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            NnError::EmptyTrainingSet => write!(f, "training set is empty"),
            NnError::InvalidHyperparameter { name, value } => {
                write!(f, "{name} = {value} is outside the valid range")
            }
            NnError::BudgetUnreachable => {
                write!(f, "energy budget is below the model's static floor")
            }
            NnError::InvalidQuantBits { bits } => {
                write!(f, "quantization width {bits} bits is outside 2..=16")
            }
            NnError::DtypeMismatch { expected, found } => {
                write!(
                    f,
                    "model file holds {found} weights but {expected} was requested"
                )
            }
            NnError::ParseModel { line, reason } => {
                write!(f, "cannot parse model file at `{line}`: {reason}")
            }
            NnError::Io(e) => write!(f, "model I/O error: {e}"),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Io(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let variants = [
            NnError::BadArchitecture(vec![3]),
            NnError::DimensionMismatch {
                expected: 4,
                actual: 5,
            },
            NnError::LabelOutOfRange {
                label: 9,
                classes: 3,
            },
            NnError::EmptyTrainingSet,
            NnError::InvalidHyperparameter {
                name: "learning rate",
                value: -1.0,
            },
            NnError::BudgetUnreachable,
            NnError::InvalidQuantBits { bits: 40 },
            NnError::DtypeMismatch {
                expected: "f64",
                found: "f32",
            },
            NnError::ParseModel {
                line: "x",
                reason: "y",
            },
            NnError::Io(std::io::Error::other("boom")),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }
}
