//! Property tests for the vocabulary types.

use origin_types::{ActivityClass, ActivitySet, Energy, Power, SimDuration, SimTime};
use proptest::prelude::*;

fn finite_f64(max: f64) -> impl Strategy<Value = f64> {
    (0.0..max).prop_map(|v| v)
}

proptest! {
    #[test]
    fn power_over_is_linear_in_duration(uw in finite_f64(1e6), ms in 0u64..1_000_000) {
        let p = Power::from_microwatts(uw);
        let half = p.over(SimDuration::from_millis(ms / 2));
        let full = p.over(SimDuration::from_millis(ms / 2) * 2);
        prop_assert!((full.as_microjoules() - 2.0 * half.as_microjoules()).abs() < 1e-6);
    }

    #[test]
    fn energy_addition_is_commutative(a in finite_f64(1e9), b in finite_f64(1e9)) {
        let (ea, eb) = (Energy::from_microjoules(a), Energy::from_microjoules(b));
        prop_assert_eq!(ea + eb, eb + ea);
    }

    #[test]
    fn clamp_non_negative_is_idempotent_and_sound(a in -1e9f64..1e9) {
        let e = Energy::from_microjoules(a).clamp_non_negative();
        prop_assert!(e >= Energy::ZERO);
        prop_assert_eq!(e.clamp_non_negative(), e);
    }

    #[test]
    fn average_power_inverts_over(uw in 0.001f64..1e6, secs in 1u64..10_000) {
        let span = SimDuration::from_secs(secs);
        let p = Power::from_microwatts(uw);
        let back = p.over(span).average_power(span);
        prop_assert!((back.as_microwatts() - uw).abs() / uw < 1e-9);
    }

    #[test]
    fn time_add_sub_roundtrip(start in 0u64..u64::MAX / 4, delta in 0u64..u64::MAX / 4) {
        let t0 = SimTime::from_micros(start);
        let d = SimDuration::from_micros(delta);
        let t1 = t0 + d;
        prop_assert_eq!(t1 - t0, d);
        prop_assert_eq!(t1.saturating_since(t0), d);
        prop_assert_eq!(t0.saturating_since(t1), SimDuration::ZERO);
    }

    #[test]
    fn steps_of_times_step_never_exceeds_total(total in 1u64..1_000_000_000, step in 1u64..1_000_000) {
        let d = SimDuration::from_micros(total);
        let s = SimDuration::from_micros(step);
        let n = d.steps_of(s);
        prop_assert!(n * step <= total);
        prop_assert!((n + 1) * step > total);
    }

    #[test]
    fn activity_set_roundtrips_dense_indices(mask in 1u8..(1 << 6)) {
        let classes: Vec<ActivityClass> = ActivityClass::ALL
            .into_iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, c)| c)
            .collect();
        let set = ActivitySet::new(classes.clone()).expect("non-empty by construction");
        prop_assert_eq!(set.len(), classes.len());
        for class in classes {
            let dense = set.dense_index(class).expect("member");
            prop_assert_eq!(set.class_at(dense), Some(class));
        }
        // Dense labels are exactly 0..len, in canonical order.
        for dense in 0..set.len() {
            let class = set.class_at(dense).expect("in range");
            prop_assert_eq!(set.dense_index(class), Some(dense));
        }
    }

    #[test]
    fn activity_parse_roundtrips(idx in 0usize..6) {
        let class = ActivityClass::from_index(idx).expect("valid");
        let parsed: ActivityClass = class.label().parse().expect("parses");
        prop_assert_eq!(parsed, class);
    }
}
