//! Shared vocabulary types for the Origin reproduction.
//!
//! Every other crate in the workspace speaks in terms of the types defined
//! here: activity classes ([`ActivityClass`]), body locations
//! ([`SensorLocation`]), node identifiers ([`NodeId`]), simulated time
//! ([`SimTime`], [`SimDuration`]) and physical quantities ([`Energy`],
//! [`Power`]).
//!
//! The physical quantities are newtypes over `f64` (µJ and µW respectively)
//! so that a harvest rate can never be accidentally added to a stored-energy
//! figure without an explicit conversion through a duration
//! ([`Power::over`]).
//!
//! # Examples
//!
//! ```
//! use origin_types::{Energy, Power, SimDuration};
//!
//! let harvest_rate = Power::from_microwatts(50.0);
//! let window = SimDuration::from_millis(500);
//! let harvested = harvest_rate.over(window);
//! assert!((harvested.as_microjoules() - 25.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod activity;
pub mod error;
pub mod fold;
pub mod ids;
pub mod quantity;
pub mod time;

pub use activity::{ActivityClass, ActivitySet};
pub use error::TypesError;
pub use fold::{product_ordered, sum_ordered, sum_ordered_f32};
pub use ids::{NodeId, UserId};
pub use quantity::{Energy, Power};
pub use time::{SimDuration, SimTime};

/// Body locations of the three IMU sensor nodes used throughout the paper.
///
/// The evaluation setup in Section IV-A places one sensor at the chest, one
/// on the right wrist and one on the left ankle. Every array indexed by
/// sensor in this workspace uses [`SensorLocation::ALL`] ordering.
///
/// ```
/// use origin_types::SensorLocation;
/// assert_eq!(SensorLocation::ALL.len(), 3);
/// assert_eq!(SensorLocation::Chest.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SensorLocation {
    /// Sensor strapped to the chest.
    Chest,
    /// Sensor on the left ankle.
    LeftAnkle,
    /// Sensor on the right wrist.
    RightWrist,
}

impl SensorLocation {
    /// All locations in canonical (index) order.
    pub const ALL: [SensorLocation; 3] = [
        SensorLocation::Chest,
        SensorLocation::LeftAnkle,
        SensorLocation::RightWrist,
    ];

    /// Number of sensor locations in the paper's setup.
    pub const COUNT: usize = 3;

    /// Stable index of this location in [`SensorLocation::ALL`].
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            SensorLocation::Chest => 0,
            SensorLocation::LeftAnkle => 1,
            SensorLocation::RightWrist => 2,
        }
    }

    /// Inverse of [`SensorLocation::index`].
    ///
    /// Returns `None` when `index >= 3`.
    #[must_use]
    pub const fn from_index(index: usize) -> Option<SensorLocation> {
        match index {
            0 => Some(SensorLocation::Chest),
            1 => Some(SensorLocation::LeftAnkle),
            2 => Some(SensorLocation::RightWrist),
            _ => None,
        }
    }

    /// Short human-readable label used in experiment tables.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            SensorLocation::Chest => "Chest",
            SensorLocation::LeftAnkle => "Left Ankle",
            SensorLocation::RightWrist => "Right Wrist",
        }
    }
}

impl core::fmt::Display for SensorLocation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn location_index_roundtrip() {
        for loc in SensorLocation::ALL {
            assert_eq!(SensorLocation::from_index(loc.index()), Some(loc));
        }
        assert_eq!(SensorLocation::from_index(3), None);
    }

    #[test]
    fn location_labels_are_distinct() {
        let labels: Vec<&str> = SensorLocation::ALL.iter().map(|l| l.label()).collect();
        assert_eq!(labels.len(), 3);
        assert!(labels.windows(2).all(|w| w[0] != w[1]));
        assert_eq!(SensorLocation::Chest.to_string(), "Chest");
    }

    #[test]
    fn location_all_is_index_ordered() {
        for (i, loc) in SensorLocation::ALL.iter().enumerate() {
            assert_eq!(loc.index(), i);
        }
    }
}
