//! Opaque identifiers for simulation entities.

use core::fmt;

/// Identifier of a sensor node within a WSN deployment.
///
/// Node ids are dense indices assigned by the deployment builder; in the
/// paper's three-sensor setup they coincide with
/// [`SensorLocation::index`](crate::SensorLocation::index), but the
/// simulator supports arbitrary node counts ("can also be extended to larger
/// numbers of sensors", Section III footnote).
///
/// ```
/// use origin_types::NodeId;
/// let id = NodeId::new(2);
/// assert_eq!(id.as_usize(), 2);
/// assert_eq!(id.to_string(), "node#2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Constructs a node id from a dense index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The dense index, usable directly for array indexing.
    #[must_use]
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// The raw u32 value.
    #[must_use]
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// Identifier of a (possibly synthetic) user wearing the sensor network.
///
/// Users parameterize the synthetic gait models; Fig. 6 evaluates three
/// previously-unseen users.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct UserId(u32);

impl UserId {
    /// Constructs a user id.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        UserId(index)
    }

    /// The raw u32 value.
    #[must_use]
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl From<u32> for UserId {
    fn from(v: u32) -> Self {
        UserId(v)
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "user#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::from(7u32);
        assert_eq!(id.as_u32(), 7);
        assert_eq!(id.as_usize(), 7);
        assert_eq!(id, NodeId::new(7));
    }

    #[test]
    fn ids_order_and_display() {
        assert!(NodeId::new(0) < NodeId::new(1));
        assert_eq!(NodeId::new(3).to_string(), "node#3");
        assert_eq!(UserId::new(1).to_string(), "user#1");
        assert_eq!(UserId::from(9u32).as_u32(), 9);
    }
}
