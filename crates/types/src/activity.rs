//! Human activity classes and dataset-specific class sets.

use crate::error::TypesError;

/// The human activities classified in the paper's evaluation.
///
/// The MHEALTH evaluation (Fig. 2, Fig. 4, Fig. 5a, Table I) uses all six
/// classes; the PAMAP2 evaluation (Fig. 5b) omits [`ActivityClass::Jogging`].
///
/// ```
/// use origin_types::ActivityClass;
/// assert_eq!(ActivityClass::ALL.len(), 6);
/// assert_eq!(ActivityClass::Walking.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ActivityClass {
    /// Steady walking gait.
    Walking,
    /// Climbing stairs.
    Climbing,
    /// Cycling (dominant ankle rotation, quiet torso).
    Cycling,
    /// Running.
    Running,
    /// Jogging (between walking and running in intensity).
    Jogging,
    /// Repeated vertical jumping.
    Jumping,
}

impl ActivityClass {
    /// All six activities in canonical (index) order.
    pub const ALL: [ActivityClass; 6] = [
        ActivityClass::Walking,
        ActivityClass::Climbing,
        ActivityClass::Cycling,
        ActivityClass::Running,
        ActivityClass::Jogging,
        ActivityClass::Jumping,
    ];

    /// Number of activity classes across both datasets.
    pub const COUNT: usize = 6;

    /// Stable index of this class in [`ActivityClass::ALL`].
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            ActivityClass::Walking => 0,
            ActivityClass::Climbing => 1,
            ActivityClass::Cycling => 2,
            ActivityClass::Running => 3,
            ActivityClass::Jogging => 4,
            ActivityClass::Jumping => 5,
        }
    }

    /// Inverse of [`ActivityClass::index`].
    #[must_use]
    pub const fn from_index(index: usize) -> Option<ActivityClass> {
        match index {
            0 => Some(ActivityClass::Walking),
            1 => Some(ActivityClass::Climbing),
            2 => Some(ActivityClass::Cycling),
            3 => Some(ActivityClass::Running),
            4 => Some(ActivityClass::Jogging),
            5 => Some(ActivityClass::Jumping),
            _ => None,
        }
    }

    /// Human-readable label used in experiment tables.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            ActivityClass::Walking => "Walking",
            ActivityClass::Climbing => "Climbing",
            ActivityClass::Cycling => "Cycling",
            ActivityClass::Running => "Running",
            ActivityClass::Jogging => "Jogging",
            ActivityClass::Jumping => "Jumping",
        }
    }

    /// Typical dwell time of the activity in milliseconds, used by the
    /// semi-Markov activity timeline ("temporal continuity", Section III-A).
    ///
    /// Values follow the MHEALTH/PAMAP2 collection protocols, where each
    /// subject performs an activity continuously for on the order of a
    /// minute. High-intensity, rapid activities (jumping) dwell for
    /// shorter spans than locomotion activities — this is what makes very
    /// deep round-robin policies risk "missing an activity window"
    /// (Section IV-C).
    #[must_use]
    pub const fn typical_dwell_ms(self) -> u64 {
        match self {
            ActivityClass::Walking => 75_000,
            ActivityClass::Climbing => 60_000,
            ActivityClass::Cycling => 90_000,
            ActivityClass::Running => 60_000,
            ActivityClass::Jogging => 60_000,
            ActivityClass::Jumping => 35_000,
        }
    }
}

impl core::fmt::Display for ActivityClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

impl core::str::FromStr for ActivityClass {
    type Err = TypesError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ActivityClass::ALL
            .into_iter()
            .find(|c| c.label().eq_ignore_ascii_case(s.trim()))
            .ok_or_else(|| TypesError::ParseActivity(s.to_owned()))
    }
}

/// The subset of [`ActivityClass`]es a dataset evaluates over.
///
/// `ActivitySet` preserves the canonical class ordering and provides the
/// mapping between *global* class indices (0..6) and *dense* per-dataset
/// label indices (0..n) that classifiers are trained with.
///
/// ```
/// use origin_types::{ActivityClass, ActivitySet};
///
/// let pamap2 = ActivitySet::pamap2();
/// assert_eq!(pamap2.len(), 5);
/// assert!(!pamap2.contains(ActivityClass::Jogging));
/// assert_eq!(pamap2.dense_index(ActivityClass::Running), Some(3));
/// assert_eq!(pamap2.class_at(3), Some(ActivityClass::Running));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ActivitySet {
    classes: Vec<ActivityClass>,
}

impl ActivitySet {
    /// Builds a set from the given classes, deduplicating and sorting them
    /// into canonical order.
    ///
    /// # Errors
    ///
    /// Returns [`TypesError::EmptyActivitySet`] when `classes` is empty.
    pub fn new(classes: impl IntoIterator<Item = ActivityClass>) -> Result<Self, TypesError> {
        let mut classes: Vec<ActivityClass> = classes.into_iter().collect();
        classes.sort();
        classes.dedup();
        if classes.is_empty() {
            return Err(TypesError::EmptyActivitySet);
        }
        Ok(Self { classes })
    }

    /// The six-class MHEALTH evaluation set.
    #[must_use]
    pub fn mhealth() -> Self {
        Self {
            classes: ActivityClass::ALL.to_vec(),
        }
    }

    /// The five-class PAMAP2 evaluation set (no jogging, per Fig. 5b).
    #[must_use]
    pub fn pamap2() -> Self {
        Self {
            classes: vec![
                ActivityClass::Walking,
                ActivityClass::Climbing,
                ActivityClass::Cycling,
                ActivityClass::Running,
                ActivityClass::Jumping,
            ],
        }
    }

    /// Number of classes in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether the set is empty (never true for a constructed set).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Whether `class` is a member.
    #[must_use]
    pub fn contains(&self, class: ActivityClass) -> bool {
        self.classes.contains(&class)
    }

    /// Dense label index (0..len) of `class`, or `None` if not a member.
    #[must_use]
    pub fn dense_index(&self, class: ActivityClass) -> Option<usize> {
        self.classes.iter().position(|&c| c == class)
    }

    /// Class at dense label index `index`.
    #[must_use]
    pub fn class_at(&self, index: usize) -> Option<ActivityClass> {
        self.classes.get(index).copied()
    }

    /// Iterates over the member classes in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = ActivityClass> + '_ {
        self.classes.iter().copied()
    }

    /// The member classes as a slice in canonical order.
    #[must_use]
    pub fn as_slice(&self) -> &[ActivityClass] {
        &self.classes
    }
}

impl Default for ActivitySet {
    fn default() -> Self {
        Self::mhealth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_index_roundtrip() {
        for class in ActivityClass::ALL {
            assert_eq!(ActivityClass::from_index(class.index()), Some(class));
        }
        assert_eq!(ActivityClass::from_index(6), None);
    }

    #[test]
    fn class_parses_from_label() {
        for class in ActivityClass::ALL {
            let parsed: ActivityClass = class.label().parse().unwrap();
            assert_eq!(parsed, class);
            let lower: ActivityClass = class.label().to_lowercase().parse().unwrap();
            assert_eq!(lower, class);
        }
        assert!("flying".parse::<ActivityClass>().is_err());
    }

    #[test]
    fn mhealth_set_has_all_six() {
        let set = ActivitySet::mhealth();
        assert_eq!(set.len(), 6);
        for class in ActivityClass::ALL {
            assert_eq!(set.dense_index(class), Some(class.index()));
        }
    }

    #[test]
    fn pamap2_set_skips_jogging() {
        let set = ActivitySet::pamap2();
        assert_eq!(set.len(), 5);
        assert!(!set.contains(ActivityClass::Jogging));
        assert_eq!(set.dense_index(ActivityClass::Jumping), Some(4));
        assert_eq!(set.class_at(4), Some(ActivityClass::Jumping));
        assert_eq!(set.class_at(5), None);
    }

    #[test]
    fn new_deduplicates_and_sorts() {
        let set = ActivitySet::new([
            ActivityClass::Running,
            ActivityClass::Walking,
            ActivityClass::Running,
        ])
        .unwrap();
        assert_eq!(
            set.as_slice(),
            &[ActivityClass::Walking, ActivityClass::Running]
        );
    }

    #[test]
    fn new_rejects_empty() {
        assert!(matches!(
            ActivitySet::new([]),
            Err(TypesError::EmptyActivitySet)
        ));
    }

    #[test]
    fn dwell_times_are_positive_and_jumping_is_shortest() {
        let jump = ActivityClass::Jumping.typical_dwell_ms();
        for class in ActivityClass::ALL {
            assert!(class.typical_dwell_ms() > 0);
            assert!(class.typical_dwell_ms() >= jump);
        }
    }
}
