//! Physical quantities: energy (µJ) and power (µW).
//!
//! Both are thin newtypes over `f64`. The unit choice (micro-) matches the
//! scale of the paper's platform: RF-harvested power is tens of µW and a
//! pruned per-window inference costs tens to hundreds of µJ.

use crate::time::SimDuration;
use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// An amount of energy in microjoules.
///
/// ```
/// use origin_types::{Energy, Power, SimDuration};
/// let e = Energy::from_microjoules(90.0);
/// assert_eq!(e + e, Energy::from_microjoules(180.0));
/// assert!(e >= Energy::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Energy(f64);

/// A power level in microwatts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Power(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Constructs an energy amount from microjoules.
    ///
    /// # Panics
    ///
    /// Panics if `uj` is not finite.
    #[must_use]
    pub fn from_microjoules(uj: f64) -> Self {
        assert!(uj.is_finite(), "energy must be finite, got {uj}");
        Energy(uj)
    }

    /// Constructs an energy amount from millijoules.
    #[must_use]
    pub fn from_millijoules(mj: f64) -> Self {
        Self::from_microjoules(mj * 1e3)
    }

    /// Value in microjoules.
    #[must_use]
    pub const fn as_microjoules(self) -> f64 {
        self.0
    }

    /// Value in millijoules.
    #[must_use]
    pub fn as_millijoules(self) -> f64 {
        self.0 / 1e3
    }

    /// Clamps negative values to zero (storage can never go below empty).
    #[must_use]
    pub fn clamp_non_negative(self) -> Energy {
        Energy(self.0.max(0.0))
    }

    /// The smaller of two energies.
    #[must_use]
    pub fn min(self, other: Energy) -> Energy {
        Energy(self.0.min(other.0))
    }

    /// The larger of two energies.
    #[must_use]
    pub fn max(self, other: Energy) -> Energy {
        Energy(self.0.max(other.0))
    }

    /// Average power when this energy is spread over `span`.
    ///
    /// # Panics
    ///
    /// Panics when `span` is zero.
    #[must_use]
    pub fn average_power(self, span: SimDuration) -> Power {
        assert!(!span.is_zero(), "cannot average energy over zero duration");
        Power(self.0 / span.as_secs_f64())
    }
}

impl Power {
    /// Zero power.
    pub const ZERO: Power = Power(0.0);

    /// Constructs a power level from microwatts.
    ///
    /// # Panics
    ///
    /// Panics if `uw` is not finite.
    #[must_use]
    pub fn from_microwatts(uw: f64) -> Self {
        assert!(uw.is_finite(), "power must be finite, got {uw}");
        Power(uw)
    }

    /// Constructs a power level from milliwatts.
    #[must_use]
    pub fn from_milliwatts(mw: f64) -> Self {
        Self::from_microwatts(mw * 1e3)
    }

    /// Value in microwatts.
    #[must_use]
    pub const fn as_microwatts(self) -> f64 {
        self.0
    }

    /// Energy delivered at this power over `span` (µW × s = µJ).
    #[must_use]
    pub fn over(self, span: SimDuration) -> Energy {
        Energy(self.0 * span.as_secs_f64())
    }

    /// Clamps negative values to zero.
    #[must_use]
    pub fn clamp_non_negative(self) -> Power {
        Power(self.0.max(0.0))
    }
}

macro_rules! impl_linear_ops {
    ($ty:ident) => {
        impl Add for $ty {
            type Output = $ty;
            fn add(self, rhs: $ty) -> $ty {
                $ty(self.0 + rhs.0)
            }
        }
        impl AddAssign for $ty {
            fn add_assign(&mut self, rhs: $ty) {
                self.0 += rhs.0;
            }
        }
        impl Sub for $ty {
            type Output = $ty;
            fn sub(self, rhs: $ty) -> $ty {
                $ty(self.0 - rhs.0)
            }
        }
        impl SubAssign for $ty {
            fn sub_assign(&mut self, rhs: $ty) {
                self.0 -= rhs.0;
            }
        }
        impl Mul<f64> for $ty {
            type Output = $ty;
            fn mul(self, rhs: f64) -> $ty {
                $ty(self.0 * rhs)
            }
        }
        impl Div<f64> for $ty {
            type Output = $ty;
            fn div(self, rhs: f64) -> $ty {
                $ty(self.0 / rhs)
            }
        }
        impl Neg for $ty {
            type Output = $ty;
            fn neg(self) -> $ty {
                $ty(-self.0)
            }
        }
        impl core::iter::Sum for $ty {
            fn sum<I: Iterator<Item = $ty>>(iter: I) -> $ty {
                $ty(iter.map(|v| v.0).sum())
            }
        }
    };
}

impl_linear_ops!(Energy);
impl_linear_ops!(Power);

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}uJ", self.0)
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}uW", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_over_duration_gives_energy() {
        let p = Power::from_microwatts(50.0);
        let e = p.over(SimDuration::from_millis(500));
        assert!((e.as_microjoules() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn energy_average_power_inverts_over() {
        let span = SimDuration::from_secs(2);
        let p = Power::from_microwatts(80.0);
        let back = p.over(span).average_power(span);
        assert!((back.as_microwatts() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn clamping_and_min_max() {
        let e = Energy::from_microjoules(5.0) - Energy::from_microjoules(9.0);
        assert!(e.as_microjoules() < 0.0);
        assert_eq!(e.clamp_non_negative(), Energy::ZERO);
        let a = Energy::from_microjoules(1.0);
        let b = Energy::from_microjoules(2.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(
            (-Power::from_microwatts(3.0)).clamp_non_negative(),
            Power::ZERO
        );
    }

    #[test]
    fn sums_and_scalars() {
        let total: Energy = (0..4).map(|_| Energy::from_microjoules(2.5)).sum();
        assert!((total.as_microjoules() - 10.0).abs() < 1e-12);
        assert_eq!(
            Power::from_milliwatts(1.0) * 2.0,
            Power::from_microwatts(2000.0)
        );
        assert_eq!(
            Energy::from_millijoules(1.0) / 4.0,
            Energy::from_microjoules(250.0)
        );
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_energy_panics() {
        let _ = Energy::from_microjoules(f64::NAN);
    }

    #[test]
    fn display_units() {
        assert_eq!(Energy::from_microjoules(12.345).to_string(), "12.35uJ");
        assert_eq!(Power::from_microwatts(50.0).to_string(), "50.00uW");
    }
}
