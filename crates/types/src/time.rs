//! Simulated time: absolute instants and durations with microsecond
//! resolution.
//!
//! Wall-clock types from `std::time` are deliberately not used — the
//! discrete-event simulator owns its own clock, and integer microseconds
//! keep stepping exact (no floating-point drift over long timelines).

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in microseconds since the
/// start of the simulation.
///
/// ```
/// use origin_types::{SimDuration, SimTime};
/// let t = SimTime::ZERO + SimDuration::from_millis(500);
/// assert_eq!(t.as_micros(), 500_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs an instant from microseconds since simulation start.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Constructs an instant from milliseconds since simulation start.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Constructs an instant from whole seconds since simulation start.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Microseconds since simulation start.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since simulation start (truncating).
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since simulation start, as a float (for reporting only).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating to zero when `earlier` is
    /// in the future.
    #[must_use]
    pub const fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs a duration from microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Constructs a duration from milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Constructs a duration from whole seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Length in microseconds.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Length in milliseconds (truncating).
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Length in seconds as a float.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Whether this is the zero duration.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Integer number of whole `step`s that fit in this duration.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero.
    #[must_use]
    pub const fn steps_of(self, step: SimDuration) -> u64 {
        assert!(step.0 != 0, "step duration must be non-zero");
        self.0 / step.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Elapsed time between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when ordering is not guaranteed.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics when `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::from_millis(100);
        let t1 = t0 + SimDuration::from_millis(400);
        assert_eq!(t1, SimTime::from_millis(500));
        assert_eq!(t1 - t0, SimDuration::from_millis(400));
        assert_eq!(t0.saturating_since(t1), SimDuration::ZERO);
        assert_eq!(t1.saturating_since(t0), SimDuration::from_millis(400));
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_millis(500) * 4;
        assert_eq!(d, SimDuration::from_secs(2));
        assert_eq!(d / 2, SimDuration::from_secs(1));
        assert_eq!(d.steps_of(SimDuration::from_millis(500)), 4);
        let mut acc = SimDuration::ZERO;
        acc += SimDuration::from_micros(3);
        acc -= SimDuration::from_micros(1);
        assert_eq!(acc.as_micros(), 2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "t=1.500s");
        assert_eq!(SimDuration::from_millis(250).to_string(), "0.250s");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn steps_of_zero_panics() {
        let _ = SimDuration::from_secs(1).steps_of(SimDuration::ZERO);
    }
}
