//! Order-pinned float reductions.
//!
//! IEEE-754 addition and multiplication are not associative, so the
//! *value* of a float reduction depends on the order its terms combine.
//! `Iterator::sum` happens to fold left-to-right today, but that order
//! is an implementation detail — and the same source line silently
//! reassociates when a refactor swaps the iterator for a parallel or
//! chunked one. The reproduction's bitwise guarantees need the order to
//! be part of the code, so lint rule D7 bans bare float `.sum()` /
//! `.product()` in the deterministic crates and points here.
//!
//! These helpers are exact drop-in replacements: a strict left fold in
//! iteration order, the order `Iterator::sum`/`product` currently use,
//! so switching a call site is bitwise invisible.

/// Sums `it` left-to-right in iteration order: `((0 + x₀) + x₁) + …`.
///
/// Bitwise-identical to `it.sum::<f64>()` under the standard library's
/// current sequential fold, with the order now pinned by contract.
#[must_use]
pub fn sum_ordered(it: impl Iterator<Item = f64>) -> f64 {
    let mut acc = 0.0f64;
    for x in it {
        acc += x;
    }
    acc
}

/// [`sum_ordered`] for `f32` streams.
#[must_use]
pub fn sum_ordered_f32(it: impl Iterator<Item = f32>) -> f32 {
    let mut acc = 0.0f32;
    for x in it {
        acc += x;
    }
    acc
}

/// Multiplies `it` left-to-right in iteration order: `((1 · x₀) · x₁) · …`.
#[must_use]
pub fn product_ordered(it: impl Iterator<Item = f64>) -> f64 {
    let mut acc = 1.0f64;
    for x in it {
        acc *= x;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_iterator_sum_bitwise() {
        // Terms chosen so a different association changes the result.
        let xs = [1.0e16, 1.0, -1.0e16, 3.5, 0.1, -0.1, 1.0e-9];
        assert_eq!(
            sum_ordered(xs.iter().copied()).to_bits(),
            xs.iter().copied().sum::<f64>().to_bits()
        );
        let f = [1.0e7f32, 1.0, -1.0e7, 0.25];
        assert_eq!(
            sum_ordered_f32(f.iter().copied()).to_bits(),
            f.iter().copied().sum::<f32>().to_bits()
        );
    }

    #[test]
    fn matches_iterator_product_bitwise() {
        let xs = [1.1, 0.9, 3.7, 1.0e-3, 2.0e2];
        assert_eq!(
            product_ordered(xs.iter().copied()).to_bits(),
            xs.iter().copied().product::<f64>().to_bits()
        );
    }

    #[test]
    fn empty_and_single_term_identities() {
        assert_eq!(sum_ordered(std::iter::empty()).to_bits(), 0.0f64.to_bits());
        assert_eq!(
            product_ordered(std::iter::empty()).to_bits(),
            1.0f64.to_bits()
        );
        assert_eq!(sum_ordered([2.5].into_iter()).to_bits(), 2.5f64.to_bits());
    }

    #[test]
    fn order_actually_matters_for_these_terms() {
        // Sanity: the guard terms really are association-sensitive, so
        // the bitwise assertions above are not vacuous.
        let xs = [1.0e16, 1.0, -1.0e16, 3.5];
        let forward = sum_ordered(xs.iter().copied());
        let reverse = sum_ordered(xs.iter().rev().copied());
        assert_ne!(forward.to_bits(), reverse.to_bits());
    }
}
