//! Error types for the vocabulary crate.

use core::fmt;

/// Errors produced while constructing or parsing vocabulary types.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TypesError {
    /// A string did not name a known [`ActivityClass`](crate::ActivityClass).
    ParseActivity(String),
    /// An [`ActivitySet`](crate::ActivitySet) was constructed with no members.
    EmptyActivitySet,
}

impl fmt::Display for TypesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypesError::ParseActivity(s) => {
                write!(f, "unknown activity class `{s}`")
            }
            TypesError::EmptyActivitySet => {
                write!(f, "activity set must contain at least one class")
            }
        }
    }
}

impl std::error::Error for TypesError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            TypesError::ParseActivity("x".into()).to_string(),
            "unknown activity class `x`"
        );
        assert_eq!(
            TypesError::EmptyActivitySet.to_string(),
            "activity set must contain at least one class"
        );
    }

    #[test]
    fn is_error_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync>() {}
        assert_traits::<TypesError>();
    }
}
