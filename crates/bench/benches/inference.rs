//! Inference-path benchmarks: the per-window work a sensor node does.
//!
//! Covers the latency story behind the energy model: pruning shrinks the
//! active-MAC count, so pruned inference must be measurably faster, and
//! feature extraction must stay cheap relative to inference.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use origin_bench::bench_models;
use origin_core::ModelVariant;
use origin_nn::softmax_variance;
use origin_sensors::{sample_window, window_features, DatasetSpec, UserProfile};
use origin_types::{ActivityClass, SensorLocation, UserId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_inference(c: &mut Criterion) {
    let models = bench_models(11);
    let spec = DatasetSpec::mhealth_like();
    let user = UserProfile::nominal(UserId::new(0));
    let mut rng = StdRng::seed_from_u64(1);
    let window = sample_window(
        &spec,
        ActivityClass::Running,
        SensorLocation::LeftAnkle,
        &user,
        &mut rng,
    );
    let features = window_features(&window);

    let mut group = c.benchmark_group("inference");
    for variant in [ModelVariant::Unpruned, ModelVariant::Pruned] {
        let clf = models.classifier(variant, SensorLocation::LeftAnkle);
        group.bench_function(format!("{variant:?}"), |b| {
            b.iter(|| clf.classify(black_box(&features)).expect("width matches"))
        });
    }
    group.finish();

    c.bench_function("feature_extraction_64x6", |b| {
        b.iter(|| window_features(black_box(&window)))
    });

    c.bench_function("window_synthesis_64x6", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            sample_window(
                black_box(&spec),
                ActivityClass::Walking,
                SensorLocation::Chest,
                &user,
                &mut rng,
            )
        })
    });

    c.bench_function("softmax_variance_6", |b| {
        let probs = [0.5, 0.2, 0.1, 0.1, 0.05, 0.05];
        b.iter(|| softmax_variance(black_box(&probs)))
    });
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
