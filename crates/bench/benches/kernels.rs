//! NN kernel benchmarks: the allocation-free compute core underneath
//! every classifier call and training epoch.
//!
//! Three stories:
//!
//! * `matvec` — the raw dense kernel, the unit of the energy model's MAC
//!   accounting;
//! * `mlp_inference` — a paper-sized MLP through the workspace path:
//!   dense, versus the same architecture pruned to ≥70% / ≥90% sparsity
//!   (the CSR compiled form must win by the sparsity factor, ≥2× at 70%),
//!   plus the old dense-masked cost for reference;
//! * `mlp_train_epoch` — one epoch of the zero-allocation trainer loop;
//! * `batched_inference` — 32 windows through the batched kernel versus
//!   one-at-a-time;
//! * `forward_batch` — the pruned-layer batch kernel at n = 1/8/32:
//!   n = 1 is the latency floor one window pays, the larger sizes show
//!   what the batch-example unrolling amortizes.
//!
//! Unsuffixed entries measure the default `unrolled` kernel path;
//! `_scalar` twins time the bitwise-identical scalar reference.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use origin_nn::{KernelPath, Matrix, Mlp, Trainer, Workspace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIMS: &[usize] = &[28, 20, 6];

fn random_vec(n: usize, rng: &mut StdRng) -> Vec<f64> {
    (0..n).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect()
}

/// The paper-sized MLP with layer 0 pruned to `sparsity` (fraction of
/// weights masked off), deterministically.
fn pruned_mlp(sparsity: f64, seed: u64) -> Mlp {
    let mut model = Mlp::new(DIMS, seed).expect("valid dims");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC5);
    for layer in model.layers_mut() {
        let mask: Vec<bool> = (0..layer.total_weights())
            .map(|_| rng.gen::<f64>() >= sparsity)
            .collect();
        layer.set_mask(mask);
    }
    model
}

fn bench_matvec(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut group = c.benchmark_group("matvec");
    for (rows, cols) in [(20usize, 28usize), (64, 64)] {
        let m = Matrix::from_vec(rows, cols, random_vec(rows * cols, &mut rng));
        let x = random_vec(cols, &mut rng);
        let mut out = vec![0.0; rows];
        group.throughput(Throughput::Elements((rows * cols) as u64));
        group.bench_function(format!("{rows}x{cols}"), |b| {
            b.iter(|| {
                m.matvec_into_path(black_box(&x), black_box(&mut out), KernelPath::default())
            })
        });
        group.bench_function(format!("{rows}x{cols}_scalar"), |b| {
            b.iter(|| m.matvec_into_path(black_box(&x), black_box(&mut out), KernelPath::Scalar))
        });
    }
    group.finish();
}

fn bench_mlp_inference(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let x = random_vec(DIMS[0], &mut rng);
    let dense = Mlp::new(DIMS, 9).expect("valid dims");
    let pruned70 = pruned_mlp(0.70, 9);
    let pruned90 = pruned_mlp(0.90, 9);

    // Logit-path comparison (no softmax: the untrained random weights
    // here drive `exp` into subnormal territory, whose hardware penalty
    // would swamp the kernel signal; `benches/inference.rs` covers the
    // full classify path on trained models).
    let mut group = c.benchmark_group("mlp_forward");
    for (label, model) in [
        ("dense", &dense),
        ("pruned_70", &pruned70),
        ("pruned_90", &pruned90),
    ] {
        let mut ws = Workspace::new();
        group.bench_function(label, |b| {
            b.iter(|| {
                model
                    .forward_with(&mut ws, black_box(&x))
                    .expect("width matches")
                    .len()
            })
        });
    }
    group.finish();

    // The layer kernel head-to-head on identical pruned weights: the CSR
    // compiled form versus the dense matvec over the mask-zeroed matrix
    // (what the forward path paid before this optimization).
    let mut group = c.benchmark_group("pruned_layer_forward");
    for (sparsity, model) in [("70", &pruned70), ("90", &pruned90)] {
        let layer0 = &model.layers()[0];
        let mut out = vec![0.0; layer0.outputs()];
        let mut out2 = vec![0.0; layer0.outputs()];
        group.bench_function(format!("csr_{sparsity}"), |b| {
            b.iter(|| {
                layer0.forward_into_path(black_box(&x), black_box(&mut out), KernelPath::default())
            })
        });
        group.bench_function(format!("csr_{sparsity}_scalar"), |b| {
            b.iter(|| {
                layer0.forward_into_path(black_box(&x), black_box(&mut out), KernelPath::Scalar)
            })
        });
        group.bench_function(format!("masked_dense_{sparsity}"), |b| {
            b.iter(|| {
                layer0
                    .weights()
                    .matvec_into(black_box(&x), black_box(&mut out2));
                for (o, &bv) in out2.iter_mut().zip(layer0.bias()) {
                    *o += bv;
                }
            })
        });
    }
    group.finish();
}

fn bench_train_epoch(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let data: Vec<(Vec<f64>, usize)> = (0..64)
        .map(|i| (random_vec(DIMS[0], &mut rng), i % DIMS[DIMS.len() - 1]))
        .collect();
    let trainer = Trainer::new().with_epochs(1).with_seed(7);
    c.bench_function("mlp_train_epoch_28x20x6_n64", |b| {
        let mut model = Mlp::new(DIMS, 11).expect("valid dims");
        b.iter(|| trainer.fit(&mut model, black_box(&data)).expect("fits"))
    });
    let scalar = Trainer::new()
        .with_epochs(1)
        .with_seed(7)
        .with_kernel_path(KernelPath::Scalar);
    c.bench_function("mlp_train_epoch_28x20x6_n64_scalar", |b| {
        let mut model = Mlp::new(DIMS, 11).expect("valid dims");
        b.iter(|| scalar.fit(&mut model, black_box(&data)).expect("fits"))
    });
}

/// Batch-size sensitivity of the pruned-layer batch kernel.
fn bench_forward_batch_sizes(c: &mut Criterion) {
    let model = pruned_mlp(0.90, 9);
    let layer0 = &model.layers()[0];
    let mut group = c.benchmark_group("forward_batch");
    for n in [1usize, 8, 32] {
        let mut rng = StdRng::seed_from_u64(21);
        let xs = random_vec(DIMS[0] * n, &mut rng);
        let mut out = vec![0.0; layer0.outputs() * n];
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(format!("n{n}"), |b| {
            b.iter(|| {
                layer0.forward_batch_into_path(
                    black_box(&xs),
                    n,
                    black_box(&mut out),
                    KernelPath::default(),
                )
            })
        });
        group.bench_function(format!("n{n}_scalar"), |b| {
            b.iter(|| {
                layer0.forward_batch_into_path(
                    black_box(&xs),
                    n,
                    black_box(&mut out),
                    KernelPath::Scalar,
                )
            })
        });
    }
    group.finish();
}

fn bench_batched_inference(c: &mut Criterion) {
    const BATCH: usize = 32;
    let mut rng = StdRng::seed_from_u64(13);
    let model = pruned_mlp(0.70, 17);
    let xs = random_vec(DIMS[0] * BATCH, &mut rng);

    let mut group = c.benchmark_group("batched_inference");
    group.throughput(Throughput::Elements(BATCH as u64));
    let mut ws = Workspace::new();
    group.bench_function("batch_32", |b| {
        b.iter(|| {
            model
                .forward_batch_with(&mut ws, black_box(&xs))
                .expect("width matches")
                .len()
        })
    });
    let mut ws1 = Workspace::new();
    group.bench_function("single_x32", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for e in 0..BATCH {
                acc += model
                    .forward_with(&mut ws1, black_box(&xs[e * DIMS[0]..(e + 1) * DIMS[0]]))
                    .expect("width matches")
                    .len();
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matvec,
    bench_mlp_inference,
    bench_train_epoch,
    bench_batched_inference,
    bench_forward_batch_sizes
);
criterion_main!(benches);
