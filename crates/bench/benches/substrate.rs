//! Substrate benchmarks: trace generation/integration, energy-node
//! stepping, and classifier training — the costs behind experiment setup.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use origin_energy::{Capacitor, DutyState, EnergyCostTable, EnergyNode, Harvester, Nvp};
use origin_nn::{Mlp, Trainer};
use origin_sensors::{ActivityTimeline, TimelineConfig};
use origin_trace::{PowerSource, TraceSource, WifiOfficeModel};
use origin_types::{Energy, SimDuration, SimTime};

fn bench_substrate(c: &mut Criterion) {
    c.bench_function("wifi_trace_generate_60s", |b| {
        let model = WifiOfficeModel::default();
        b.iter(|| model.generate(black_box(7), SimDuration::from_secs(60)))
    });

    let trace = WifiOfficeModel::default().generate(7, SimDuration::from_secs(600));
    let source = TraceSource::looping(trace);
    c.bench_function("trace_energy_integration_500ms", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 500_000;
            source.energy_between(SimTime::from_micros(t), SimTime::from_micros(t + 500_000))
        })
    });

    c.bench_function("energy_node_step", |b| {
        let mut node = EnergyNode::new(
            Harvester::new(source.clone(), 0.7),
            Capacitor::new(Energy::from_microjoules(500.0)),
            Nvp::non_volatile(),
            EnergyCostTable::default(),
        );
        let mut t = 0u64;
        b.iter(|| {
            let t0 = SimTime::from_micros(t);
            t += 500_000;
            node.advance(t0, SimTime::from_micros(t), DutyState::Sleep)
        })
    });

    c.bench_function("timeline_generate_1h", |b| {
        let cfg = TimelineConfig::default();
        b.iter(|| ActivityTimeline::generate(&cfg, black_box(5), SimDuration::from_secs(3_600)))
    });

    c.bench_function("mlp_train_epoch_28x20x6", |b| {
        // One epoch over a small synthetic set.
        let data: Vec<(Vec<f64>, usize)> = (0..120)
            .map(|i| {
                let label = i % 6;
                let mut x = vec![0.0; 28];
                x[label] = 1.0;
                x[(label + 7) % 28] = 0.5;
                (x, label)
            })
            .collect();
        b.iter(|| {
            let mut mlp = Mlp::new(&[28, 20, 6], 3).expect("valid dims");
            Trainer::new()
                .with_epochs(1)
                .fit(&mut mlp, black_box(&data))
                .expect("valid data")
        })
    });
}

criterion_group!(benches, bench_substrate);
criterion_main!(benches);
