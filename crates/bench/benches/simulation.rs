//! Whole-system simulator throughput: simulated windows per second for
//! the policies the paper sweeps. The experiment harness runs dozens of
//! one-hour simulations; this is the loop that pays for them.

use criterion::{criterion_group, criterion_main, Criterion};
use origin_bench::bench_models;
use origin_core::{Deployment, PolicyKind, SimConfig, Simulator};
use origin_types::SimDuration;

fn bench_simulation(c: &mut Criterion) {
    let models = bench_models(13);
    let deployment = Deployment::builder().seed(13).build();
    let sim = Simulator::new(deployment, models);
    let horizon = SimDuration::from_secs(120); // 240 windows per iteration

    let mut group = c.benchmark_group("simulate_120s");
    group.sample_size(20);
    for policy in [
        PolicyKind::NaiveAllOn,
        PolicyKind::RoundRobin { cycle: 12 },
        PolicyKind::Aasr { cycle: 12 },
        PolicyKind::Origin { cycle: 12 },
    ] {
        group.bench_function(policy.label(), |b| {
            let config = SimConfig::new(policy).with_horizon(horizon).with_seed(3);
            b.iter(|| sim.run(&config).expect("valid cycle"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
