//! Observer overhead on the simulation hot loop.
//!
//! The telemetry design promises that the uninstrumented path pays
//! nothing: `run` delegates to `run_observed` with `NoopObserver`, whose
//! empty `on_event` lets the optimizer delete every emission site. This
//! bench pins that promise — `noop_observer` must stay within noise
//! (< 2%) of `uninstrumented`, and shows what real observers cost:
//!
//! * `uninstrumented` — `Simulator::run`, the baseline every experiment
//!   binary pays;
//! * `noop_observer` — `run_observed(&mut NoopObserver)` spelled
//!   explicitly, which must compile to the same code;
//! * `metrics_observer` — the in-memory aggregator;
//! * `jsonl_observer` — full event serialization into a `Vec<u8>` sink.
//!
//! The ledger arms extend the same promise to telemetry v2: with the
//! ledger off (`wants_ledger() == false`, the default) the flow
//! decomposition is never computed, so `noop_observer` stays within
//! noise of `uninstrumented` even though the emission sites exist;
//! `ledger_auditor` shows what a full conservation audit costs.

use criterion::{criterion_group, criterion_main, Criterion};
use origin_bench::bench_models;
use origin_core::{Deployment, PolicyKind, SimConfig, Simulator};
use origin_telemetry::{
    JsonlObserver, LedgerAuditor, MetricsObserver, NoopObserver, RecordingObserver, WithLedger,
};
use origin_types::SimDuration;

fn bench_observer_overhead(c: &mut Criterion) {
    let models = bench_models(13);
    let deployment = Deployment::builder().seed(13).build();
    let sim = Simulator::new(deployment, models);
    let config = SimConfig::new(PolicyKind::Origin { cycle: 12 })
        .with_horizon(SimDuration::from_secs(120))
        .with_seed(3);

    let mut group = c.benchmark_group("telemetry_120s");
    group.sample_size(20);
    group.bench_function("uninstrumented", |b| {
        b.iter(|| sim.run(&config).expect("valid cycle"))
    });
    group.bench_function("noop_observer", |b| {
        b.iter(|| {
            sim.run_observed(&config, &mut NoopObserver)
                .expect("valid cycle")
        })
    });
    group.bench_function("metrics_observer", |b| {
        b.iter(|| {
            let mut observer = MetricsObserver::new();
            sim.run_observed(&config, &mut observer)
                .expect("valid cycle")
        })
    });
    group.bench_function("jsonl_observer", |b| {
        b.iter(|| {
            let mut observer = JsonlObserver::new(Vec::new());
            sim.run_observed(&config, &mut observer)
                .expect("valid cycle")
        })
    });
    group.bench_function("ledger_auditor", |b| {
        b.iter(|| {
            let mut observer = LedgerAuditor::default();
            sim.run_observed(&config, &mut observer)
                .expect("valid cycle")
        })
    });
    group.bench_function("ledger_recording", |b| {
        b.iter(|| {
            let mut observer = WithLedger(RecordingObserver::new());
            sim.run_observed(&config, &mut observer)
                .expect("valid cycle")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_observer_overhead);
criterion_main!(benches);
