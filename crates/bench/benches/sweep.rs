//! Sweep-engine scaling: one 4×4 grid (4 seeds × 2 policies × 2 users =
//! 16 cells) evaluated at 1, 2 and 4 worker threads. On a multi-core
//! host the 4-thread run is expected to finish the grid at least 2×
//! faster than the serial run; on a single-core host the three times
//! collapse to parity (the engine's scheduling overhead is one atomic
//! fetch per cell). The output is byte-identical either way — see
//! `tests/sweep_determinism.rs`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use origin_bench::bench_models;
use origin_bench::sweep::{run_sweep, SweepGrid, SweepOptions, SweepPolicy};
use origin_core::experiments::{Dataset, ExperimentContext};
use origin_core::{BaselineKind, Deployment, PolicyKind};
use origin_types::SimDuration;

fn bench_sweep(c: &mut Criterion) {
    let ctx = ExperimentContext::from_parts(
        Dataset::Mhealth,
        bench_models(13),
        Deployment::builder().seed(13).build(),
        13,
    )
    .with_horizon(SimDuration::from_secs(60));
    let grid = SweepGrid::new(
        13,
        vec![
            SweepPolicy::Policy(PolicyKind::Origin { cycle: 12 }),
            SweepPolicy::Baseline(BaselineKind::Baseline2),
        ],
    )
    .with_seeds(4)
    .with_sampled_users(2);

    let mut group = c.benchmark_group("sweep_16_cells");
    group.sample_size(10);
    group.throughput(Throughput::Elements(grid.len() as u64));
    for threads in [1usize, 2, 4] {
        group.bench_function(format!("threads_{threads}"), |b| {
            let opts = SweepOptions {
                threads,
                ..SweepOptions::default()
            };
            b.iter(|| run_sweep(&ctx, &grid, &opts).expect("sweep succeeds"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
