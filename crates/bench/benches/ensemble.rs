//! Host-side aggregation benchmarks: the paper requires the ensemble to be
//! "light weight" so the host is not burdened — these numbers quantify it.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use origin_core::{majority_vote, weighted_vote, ConfidenceMatrix, Vote};
use origin_types::{ActivityClass, ActivitySet, NodeId, SimTime};

fn votes() -> Vec<Vote> {
    vec![
        Vote {
            node: NodeId::new(0),
            activity: ActivityClass::Walking,
            confidence: 0.08,
            reported_at: SimTime::from_millis(10),
        },
        Vote {
            node: NodeId::new(1),
            activity: ActivityClass::Walking,
            confidence: 0.11,
            reported_at: SimTime::from_millis(20),
        },
        Vote {
            node: NodeId::new(2),
            activity: ActivityClass::Running,
            confidence: 0.13,
            reported_at: SimTime::from_millis(30),
        },
    ]
}

fn bench_ensemble(c: &mut Criterion) {
    let votes = votes();
    let matrix = ConfidenceMatrix::uniform(ActivitySet::mhealth(), 3, 0.05);

    c.bench_function("majority_vote_3", |b| {
        b.iter(|| majority_vote(black_box(&votes)))
    });
    c.bench_function("weighted_vote_3", |b| {
        b.iter(|| weighted_vote(black_box(&votes), black_box(&matrix)))
    });
    c.bench_function("confidence_update", |b| {
        let mut matrix = matrix.clone();
        b.iter(|| matrix.update(NodeId::new(1), ActivityClass::Walking, black_box(0.09)))
    });
}

criterion_group!(benches, bench_ensemble);
criterion_main!(benches);
