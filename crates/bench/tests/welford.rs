//! Streaming-vs-two-pass agreement on *real* simulation output: the
//! fleet engine's [`OnlineStats`] accumulators must reproduce the
//! enumerated engine's [`Aggregate`] statistics to 1e-12 on the same
//! values, in any shard split and merge grouping.
//!
//! (`crates/bench/src/stats.rs` carries the synthetic property tests;
//! this file pins the same claims against actual sweep accuracies and
//! energy flows, which are the values the population study publishes.)

use origin_bench::bench_models;
use origin_bench::stats::{Aggregate, OnlineStats};
use origin_bench::sweep::{run_sweep, SweepGrid, SweepOptions, SweepPolicy};
use origin_core::experiments::{Dataset, ExperimentContext};
use origin_core::{BaselineKind, Deployment, PolicyKind};
use origin_types::SimDuration;

fn sweep_values() -> Vec<Vec<f64>> {
    let ctx = ExperimentContext::from_parts(
        Dataset::Mhealth,
        bench_models(21),
        Deployment::builder().seed(21).build(),
        21,
    )
    .with_horizon(SimDuration::from_secs(180));
    let grid = SweepGrid::new(
        21,
        vec![
            SweepPolicy::Policy(PolicyKind::Origin { cycle: 12 }),
            SweepPolicy::Baseline(BaselineKind::Baseline2),
        ],
    )
    .with_seeds(3)
    .with_sampled_users(2);
    let report = run_sweep(&ctx, &grid, &SweepOptions::default()).expect("sweep succeeds");
    // One value series per arm and metric: accuracies, completion rates
    // and a per-cell energy flow (harvested µJ spans orders of magnitude
    // more than accuracy, exercising the accumulator differently).
    let mut series = Vec::new();
    for arm in 0..2 {
        series.push(report.accuracies(arm));
        series.push(report.completion_rates(arm));
        series.push(
            report
                .cells
                .iter()
                .filter(|c| c.cell.policy_idx == arm)
                .map(|c| c.report.energy_breakdown().harvested.as_microjoules())
                .collect(),
        );
    }
    // Spot-check the harness itself: real data, not degenerate zeros.
    assert!(series.iter().all(|v| v.len() == 6));
    assert!(series.iter().any(|v| v.iter().any(|&x| x > 0.0)));
    series
}

#[test]
fn streamed_statistics_match_two_pass_on_real_sweep_output() {
    for values in sweep_values() {
        let two_pass = Aggregate::from_values(&values);
        let mut online = OnlineStats::new();
        for &v in &values {
            online.push(v);
        }
        let scale = two_pass.mean.abs().max(1.0);
        assert!((online.mean() - two_pass.mean).abs() <= 1e-12 * scale);
        assert!((online.std() - two_pass.std).abs() <= 1e-12 * scale);
        assert!((online.ci95() - two_pass.ci95).abs() <= 1e-12 * scale);
        assert_eq!(online.n() as usize, two_pass.n);
    }
}

#[test]
fn shard_merges_agree_with_the_whole_stream_on_real_sweep_output() {
    for values in sweep_values() {
        let mut whole = OnlineStats::new();
        for &v in &values {
            whole.push(v);
        }
        // Every contiguous split point, merged pairwise — the exact
        // operation the fleet's shard-index-order merge performs.
        for split in 0..=values.len() {
            let (left, right) = values.split_at(split);
            let mut a = OnlineStats::new();
            let mut b = OnlineStats::new();
            for &v in left {
                a.push(v);
            }
            for &v in right {
                b.push(v);
            }
            a.merge(&b);
            let scale = whole.mean().abs().max(1.0);
            assert!((a.mean() - whole.mean()).abs() <= 1e-12 * scale);
            assert!((a.std() - whole.std()).abs() <= 1e-12 * scale);
            assert_eq!(a.n(), whole.n());
            // min/max merge exactly, not just to rounding.
            assert_eq!(a.min(), whole.min());
            assert_eq!(a.max(), whole.max());
        }
    }
}
