//! The sweep engine's determinism contract: the aggregated report and
//! the merged run manifest are **byte-identical** at `--threads 1` and
//! `--threads 8` (the acceptance criterion for the parallel engine).

use origin_bench::bench_models;
use origin_bench::sweep::{run_sweep, SweepGrid, SweepOptions, SweepPolicy, SweepReport};
use origin_core::experiments::{Dataset, ExperimentContext};
use origin_core::{BaselineKind, Deployment, PolicyKind};
use origin_types::SimDuration;

fn small_ctx(seed: u64) -> ExperimentContext {
    ExperimentContext::from_parts(
        Dataset::Mhealth,
        bench_models(seed),
        Deployment::builder().seed(seed).build(),
        seed,
    )
    .with_horizon(SimDuration::from_secs(180))
}

fn grid(seed: u64) -> SweepGrid {
    SweepGrid::new(
        seed,
        vec![
            SweepPolicy::Policy(PolicyKind::Origin { cycle: 12 }),
            SweepPolicy::Policy(PolicyKind::Aasr { cycle: 12 }),
            SweepPolicy::Baseline(BaselineKind::Baseline2),
        ],
    )
    .with_seeds(2)
    .with_sampled_users(2)
}

fn run(ctx: &ExperimentContext, threads: usize) -> SweepReport {
    run_sweep(
        ctx,
        &grid(ctx.seed),
        &SweepOptions {
            threads,
            instrument: true,
            ledger: true,
            spans: true,
            // Progress streams to stderr only; leaving it on here pins
            // the claim that it cannot perturb the results.
            progress: true,
        },
    )
    .expect("sweep succeeds")
}

#[test]
fn one_thread_and_eight_threads_agree_bitwise() {
    let ctx = small_ctx(77);
    let serial = run(&ctx, 1);
    let wide = run(&ctx, 8);

    // The merged manifests — aggregates, win rates and all per-cell
    // children (including each cell's metrics snapshot) — render to the
    // same bytes.
    let serial_manifest = serial.to_manifest("determinism").render_pretty();
    let wide_manifest = wide.to_manifest("determinism").render_pretty();
    assert_eq!(serial_manifest, wide_manifest);

    // Cell-level equality, down to the JSONL event traces.
    assert_eq!(serial.cells.len(), wide.cells.len());
    for (a, b) in serial.cells.iter().zip(&wide.cells) {
        assert_eq!(a.cell, b.cell);
        assert_eq!(a.report, b.report);
        let (ta, tb) = (a.trace.as_ref().unwrap(), b.trace.as_ref().unwrap());
        assert_eq!(ta.jsonl, tb.jsonl, "trace diverged in cell {}", a.cell.id);
        assert_eq!(ta.events, tb.events);
        // The ledger stream and its audit are part of the contract too:
        // identical flows, residuals and span traces at any width.
        assert_eq!(ta.audit, tb.audit, "audit diverged in cell {}", a.cell.id);
        assert_eq!(ta.spans, tb.spans, "spans diverged in cell {}", a.cell.id);
        let audit = ta.audit.as_ref().unwrap();
        assert!(audit.slots_audited > 0);
        assert!(
            audit.conserved(),
            "cell {} residual {}",
            a.cell.id,
            audit.max_residual_uj
        );
    }

    // And the aggregates the binaries print.
    for i in 0..3 {
        assert_eq!(serial.accuracy_aggregate(i), wide.accuracy_aggregate(i));
        assert_eq!(serial.completion_aggregate(i), wide.completion_aggregate(i));
    }
    assert_eq!(serial.win_rate(0, 2), wide.win_rate(0, 2));
}

#[test]
fn policy_arms_are_paired_within_a_column() {
    let ctx = small_ctx(9);
    let report = run(&ctx, 4);
    // Every (seed, user) column shares one world seed across policies,
    // and distinct columns get distinct worlds.
    let mut columns: Vec<((u32, u32), Vec<u64>)> = Vec::new();
    for cell in report.cells.iter().map(|c| c.cell) {
        let key = (cell.seed_idx, cell.user_idx);
        match columns.iter_mut().find(|(k, _)| *k == key) {
            Some((_, seeds)) => seeds.push(cell.sim_seed),
            None => columns.push((key, vec![cell.sim_seed])),
        }
    }
    assert_eq!(columns.len(), 4, "2 seeds x 2 users");
    for (key, seeds) in &columns {
        assert_eq!(seeds.len(), 3, "one cell per policy in column {key:?}");
        assert!(seeds.iter().all(|s| s == &seeds[0]));
    }
    let worlds: Vec<u64> = columns.iter().map(|(_, s)| s[0]).collect();
    for (i, w) in worlds.iter().enumerate() {
        assert!(!worlds[i + 1..].contains(w), "columns share a world");
    }
}
