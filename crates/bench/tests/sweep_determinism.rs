//! The sweep engines' determinism contract: the aggregated report and
//! the merged run manifest are **byte-identical** at `--threads 1` and
//! `--threads 8` (the acceptance criterion for the parallel engines),
//! and a fleet run interrupted mid-way and resumed from its checkpoint
//! finishes with byte-identical output to an uninterrupted run.

use origin_bench::bench_models;
use origin_bench::fleet::{resume_states, run_fleet, FleetOptions, FleetPlan, FleetReport};
use origin_bench::sweep::{run_sweep, SweepGrid, SweepOptions, SweepPolicy, SweepReport};
use origin_core::experiments::{Dataset, ExperimentContext};
use origin_core::{BaselineKind, Deployment, PolicyKind};
use origin_nn::KernelPath;
use origin_telemetry::RunManifest;
use origin_types::SimDuration;

fn small_ctx(seed: u64) -> ExperimentContext {
    ExperimentContext::from_parts(
        Dataset::Mhealth,
        bench_models(seed),
        Deployment::builder().seed(seed).build(),
        seed,
    )
    .with_horizon(SimDuration::from_secs(180))
}

fn grid(seed: u64) -> SweepGrid {
    SweepGrid::new(
        seed,
        vec![
            SweepPolicy::Policy(PolicyKind::Origin { cycle: 12 }),
            SweepPolicy::Policy(PolicyKind::Aasr { cycle: 12 }),
            SweepPolicy::Baseline(BaselineKind::Baseline2),
        ],
    )
    .with_seeds(2)
    .with_sampled_users(2)
}

fn run(ctx: &ExperimentContext, threads: usize) -> SweepReport {
    run_sweep(
        ctx,
        &grid(ctx.seed),
        &SweepOptions {
            threads,
            instrument: true,
            ledger: true,
            spans: true,
            // Progress streams to stderr only; leaving it on here pins
            // the claim that it cannot perturb the results.
            progress: true,
            kernel_path: KernelPath::default(),
        },
    )
    .expect("sweep succeeds")
}

#[test]
fn one_thread_and_eight_threads_agree_bitwise() {
    let ctx = small_ctx(77);
    let serial = run(&ctx, 1);
    let wide = run(&ctx, 8);

    // The merged manifests — aggregates, win rates and all per-cell
    // children (including each cell's metrics snapshot) — render to the
    // same bytes.
    let serial_manifest = serial.to_manifest("determinism").render_pretty();
    let wide_manifest = wide.to_manifest("determinism").render_pretty();
    assert_eq!(serial_manifest, wide_manifest);

    // Cell-level equality, down to the JSONL event traces.
    assert_eq!(serial.cells.len(), wide.cells.len());
    for (a, b) in serial.cells.iter().zip(&wide.cells) {
        assert_eq!(a.cell, b.cell);
        assert_eq!(a.report, b.report);
        let (ta, tb) = (a.trace.as_ref().unwrap(), b.trace.as_ref().unwrap());
        assert_eq!(ta.jsonl, tb.jsonl, "trace diverged in cell {}", a.cell.id);
        assert_eq!(ta.events, tb.events);
        // The ledger stream and its audit are part of the contract too:
        // identical flows, residuals and span traces at any width.
        assert_eq!(ta.audit, tb.audit, "audit diverged in cell {}", a.cell.id);
        assert_eq!(ta.spans, tb.spans, "spans diverged in cell {}", a.cell.id);
        let audit = ta.audit.as_ref().unwrap();
        assert!(audit.slots_audited > 0);
        assert!(
            audit.conserved(),
            "cell {} residual {}",
            a.cell.id,
            audit.max_residual_uj
        );
    }

    // And the aggregates the binaries print.
    for i in 0..3 {
        assert_eq!(serial.accuracy_aggregate(i), wide.accuracy_aggregate(i));
        assert_eq!(serial.completion_aggregate(i), wide.completion_aggregate(i));
    }
    assert_eq!(serial.win_rate(0, 2), wide.win_rate(0, 2));
}

#[test]
fn policy_arms_are_paired_within_a_column() {
    let ctx = small_ctx(9);
    let report = run(&ctx, 4);
    // Every (seed, user) column shares one world seed across policies,
    // and distinct columns get distinct worlds.
    let mut columns: Vec<((u32, u32), Vec<u64>)> = Vec::new();
    for cell in report.cells.iter().map(|c| c.cell) {
        let key = (cell.seed_idx, cell.user_idx);
        match columns.iter_mut().find(|(k, _)| *k == key) {
            Some((_, seeds)) => seeds.push(cell.sim_seed),
            None => columns.push((key, vec![cell.sim_seed])),
        }
    }
    assert_eq!(columns.len(), 4, "2 seeds x 2 users");
    for (key, seeds) in &columns {
        assert_eq!(seeds.len(), 3, "one cell per policy in column {key:?}");
        assert!(seeds.iter().all(|s| s == &seeds[0]));
    }
    let worlds: Vec<u64> = columns.iter().map(|(_, s)| s[0]).collect();
    for (i, w) in worlds.iter().enumerate() {
        assert!(!worlds[i + 1..].contains(w), "columns share a world");
    }
}

/// A tiny fleet plan: 2 seed replicas × 6 sampled users in shards of 2
/// columns → 6 shards, 2 policy arms, 24 cells.
fn fleet_plan(seed: u64) -> FleetPlan {
    FleetPlan::new(
        seed,
        vec![
            SweepPolicy::Policy(PolicyKind::Origin { cycle: 12 }),
            SweepPolicy::Baseline(BaselineKind::Baseline2),
        ],
        6,
    )
    .with_seeds(2)
    .with_shard_size(2)
}

fn run_fleet_with(ctx: &ExperimentContext, opts: &FleetOptions) -> FleetReport {
    run_fleet(ctx, &fleet_plan(ctx.seed), opts).expect("fleet succeeds")
}

fn fleet_opts(threads: usize) -> FleetOptions {
    FleetOptions {
        threads,
        manifest_name: "fleet_determinism".to_owned(),
        dtype: "f64".to_owned(),
        ..FleetOptions::default()
    }
}

#[test]
fn fleet_is_bitwise_identical_across_thread_counts() {
    let ctx = small_ctx(31);
    let serial = run_fleet_with(&ctx, &fleet_opts(1));
    let wide = run_fleet_with(&ctx, &fleet_opts(8));
    assert!(serial.complete() && wide.complete());
    // The full manifest — streamed statistics, win rates and all shard
    // state children — renders to the same bytes at any width.
    assert_eq!(
        serial.to_manifest().render_pretty(),
        wide.to_manifest().render_pretty()
    );
    // And the bit patterns themselves agree, not just their rendering.
    for (a, b) in serial.arms.iter().zip(&wide.arms) {
        assert_eq!(a.encode(), b.encode());
    }
}

/// The tentpole acceptance test: stop a fleet run after a few shards,
/// resume it from the serialized checkpoint, and require the final
/// manifest to be **byte-identical** to an uninterrupted run — at one
/// worker thread and at eight.
#[test]
fn interrupted_and_resumed_fleet_matches_straight_through() {
    let ctx = small_ctx(45);
    let plan = fleet_plan(45);
    for threads in [1, 8] {
        let straight = run_fleet_with(&ctx, &fleet_opts(threads));
        assert!(straight.complete());

        // Phase 1: run only 3 of the 6 shards, as if interrupted.
        let partial = run_fleet_with(
            &ctx,
            &FleetOptions {
                max_shards: Some(3),
                ..fleet_opts(threads)
            },
        );
        assert!(!partial.complete());
        assert_eq!(partial.columns_done, 6, "3 shards x 2 columns");

        // The checkpoint is the manifest itself: serialize, parse back,
        // and recover the shard states bit-exactly.
        let checkpoint = partial.to_manifest().render_pretty();
        let parsed = RunManifest::parse(&checkpoint).expect("checkpoint parses");
        let recovered = resume_states(&parsed, &plan, 180, "f64").expect("states recover");
        assert_eq!(recovered.iter().filter(|s| s.is_some()).count(), 3);

        // Phase 2: resume. Completed shards must not re-run, and the
        // final manifest must match the uninterrupted run byte-for-byte.
        let resumed = run_fleet_with(
            &ctx,
            &FleetOptions {
                resume: Some(recovered),
                ..fleet_opts(threads)
            },
        );
        assert!(resumed.complete());
        assert_eq!(
            resumed.to_manifest().render_pretty(),
            straight.to_manifest().render_pretty(),
            "resume diverged at {threads} thread(s)"
        );
    }
}

/// The fleet engine's streamed accumulators agree with the enumerated
/// engine's two-pass statistics on the same paired columns.
#[test]
fn fleet_statistics_match_enumerated_two_pass_on_shared_worlds() {
    let ctx = small_ctx(13);
    let report = run_fleet_with(&ctx, &fleet_opts(2));
    for arm in &report.arms {
        assert_eq!(arm.accuracy.n(), 12, "2 seeds x 6 users");
        let agg = arm.accuracy.aggregate();
        assert!(agg.mean > 0.0 && agg.mean <= 1.0);
        assert!(arm.accuracy.min() <= agg.mean && agg.mean <= arm.accuracy.max());
        // Energy conservation survives aggregation: offered bounds
        // harvested on every cell, so it bounds the means too.
        assert!(arm.harvested_uj.mean() <= arm.offered_uj.mean());
    }
    // Win rates are paired and anti-symmetric up to ties.
    let w01 = report.win_rate(0, 1);
    let w10 = report.win_rate(1, 0);
    assert!((0.0..=1.0).contains(&w01));
    assert!(w01 + w10 <= 1.0 + 1e-12);
}
