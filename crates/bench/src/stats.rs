//! Streaming sample statistics for fleet-scale sweeps.
//!
//! An enumerated sweep keeps every cell and computes its statistics in a
//! two-pass sweep over the buffer ([`Aggregate::from_values`]). A
//! population sweep cannot afford the buffer: [`OnlineStats`] holds the
//! same information — count, mean, second central moment, min, max — in
//! O(1) space using Welford's online update, and merges across shards
//! with the parallel (Chan et al.) combination rule.
//!
//! Two properties matter for the engine's determinism contract
//! (DESIGN.md §11):
//!
//! * merging is performed in **fixed shard order** — floating-point
//!   Welford merges are associative only to rounding error, so the
//!   engine never lets the schedule pick the order;
//! * accumulator state serializes **bit-exactly** ([`OnlineStats::encode`]
//!   hex-encodes the `f64` bit patterns), so a sweep resumed from a
//!   checkpoint finishes with byte-identical output to an uninterrupted
//!   run.

/// Sample statistics over one metric of one policy arm.
///
/// Produced either from a full buffer ([`Aggregate::from_values`], the
/// enumerated sweep path) or from a streaming accumulator
/// ([`OnlineStats::aggregate`], the population path); `tests/welford.rs`
/// pins the two paths to within 1e-12 of each other.
///
/// # Examples
///
/// ```
/// use origin_bench::sweep::Aggregate;
///
/// let agg = Aggregate::from_values(&[0.90, 0.92, 0.91]);
/// assert_eq!(agg.n, 3);
/// assert!((agg.mean - 0.91).abs() < 1e-12);
/// assert!(agg.fmt_pct().starts_with("91.00% ±"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aggregate {
    /// Sample count.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator; 0 for n < 2).
    pub std: f64,
    /// Half-width of the normal-approximation 95% confidence interval
    /// (`1.96·std/√n`; 0 for n < 2).
    pub ci95: f64,
}

impl Aggregate {
    /// Statistics of `values` (mean / sample std / 95% CI half-width).
    #[must_use]
    pub fn from_values(values: &[f64]) -> Self {
        let n = values.len();
        if n == 0 {
            return Self {
                n,
                mean: 0.0,
                std: 0.0,
                ci95: 0.0,
            };
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        if n < 2 {
            return Self {
                n,
                mean,
                std: 0.0,
                ci95: 0.0,
            };
        }
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
        let std = var.sqrt();
        Self {
            n,
            mean,
            std,
            ci95: 1.96 * std / (n as f64).sqrt(),
        }
    }

    /// `"91.52% ± 0.34"` — the mean and CI half-width as percentages.
    #[must_use]
    pub fn fmt_pct(&self) -> String {
        format!("{:.2}% ± {:.2}", self.mean * 100.0, self.ci95 * 100.0)
    }
}

/// Welford online accumulator: count, mean, M2 (second central moment),
/// min and max in O(1) space.
///
/// Push samples with [`OnlineStats::push`], combine shard accumulators
/// with [`OnlineStats::merge`] (in fixed shard order — see the module
/// docs), and read the same mean/std/CI an [`Aggregate`] would report.
///
/// # Examples
///
/// ```
/// use origin_bench::sweep::{Aggregate, OnlineStats};
///
/// let values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
/// let mut online = OnlineStats::new();
/// for v in values {
///     online.push(v);
/// }
/// let two_pass = Aggregate::from_values(&values);
/// assert_eq!(online.n(), 8);
/// assert!((online.mean() - two_pass.mean).abs() < 1e-12);
/// assert!((online.std() - two_pass.std).abs() < 1e-12);
/// assert_eq!(online.min(), 2.0);
/// assert_eq!(online.max(), 9.0);
/// // Bit-exact round-trip for checkpoints:
/// assert_eq!(OnlineStats::decode(&online.encode()).unwrap(), online);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for OnlineStats {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineStats {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds one sample in (Welford's update; no allocation — this is
    /// the fleet engine's per-cell hot path, declared in
    /// `lint-allow.toml` `[hot-paths]`).
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Folds another accumulator in (Chan et al. parallel combination).
    ///
    /// Merging an empty side is an exact no-op — the other side's bits
    /// come through unchanged — which is what makes a resumed sweep
    /// bit-identical to an uninterrupted one. Merging two non-empty
    /// accumulators is associative only to rounding error, so callers
    /// must merge in a fixed order (the engine merges by shard index).
    pub fn merge(&mut self, other: &Self) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * (other.n as f64 / n as f64);
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64 / n as f64);
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Sample count.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (n − 1 denominator; 0 for n < 2).
    #[must_use]
    pub fn std(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n as f64 - 1.0)).sqrt()
        }
    }

    /// Half-width of the normal-approximation 95% CI (0 for n < 2).
    #[must_use]
    pub fn ci95(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.std() / (self.n as f64).sqrt()
        }
    }

    /// Smallest sample seen (0 when empty, matching [`OnlineStats::mean`]).
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample seen (0 when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The [`Aggregate`] view of this accumulator (what reports print).
    #[must_use]
    pub fn aggregate(&self) -> Aggregate {
        Aggregate {
            n: usize::try_from(self.n).unwrap_or(usize::MAX),
            mean: self.mean(),
            std: self.std(),
            ci95: self.ci95(),
        }
    }

    /// Serializes the accumulator **bit-exactly** as
    /// `"n:mean:m2:min:max"` with each `f64` as its 16-hex-digit IEEE-754
    /// bit pattern. Checkpoints store this in manifest `config` entries
    /// (strings), sidestepping JSON float formatting entirely.
    #[must_use]
    pub fn encode(&self) -> String {
        format!(
            "{}:{:016x}:{:016x}:{:016x}:{:016x}",
            self.n,
            self.mean.to_bits(),
            self.m2.to_bits(),
            self.min.to_bits(),
            self.max.to_bits()
        )
    }

    /// Parses [`OnlineStats::encode`] output back, bit-exactly.
    ///
    /// # Errors
    ///
    /// Describes the malformed field when `text` is not a five-field
    /// encoding.
    pub fn decode(text: &str) -> Result<Self, String> {
        let mut parts = text.split(':');
        let mut next = |what: &str| {
            parts
                .next()
                .ok_or_else(|| format!("accumulator state {text:?} is missing the {what} field"))
        };
        let n = next("n")?
            .parse::<u64>()
            .map_err(|e| format!("accumulator count in {text:?}: {e}"))?;
        let bits = |what: &str, raw: &str| {
            u64::from_str_radix(raw, 16)
                .map(f64::from_bits)
                .map_err(|e| format!("accumulator {what} bits in {text:?}: {e}"))
        };
        let mean = next("mean").and_then(|raw| bits("mean", raw))?;
        let m2 = next("m2").and_then(|raw| bits("m2", raw))?;
        let min = next("min").and_then(|raw| bits("min", raw))?;
        let max = next("max").and_then(|raw| bits("max", raw))?;
        if parts.next().is_some() {
            return Err(format!("accumulator state {text:?} has trailing fields"));
        }
        Ok(Self {
            n,
            mean,
            m2,
            min,
            max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny deterministic value stream for property-style loops (the
    /// real `proptest` dependency is unavailable offline; a counted loop
    /// over splitmix64 draws covers the same ground deterministically).
    fn stream(seed: u64, len: usize) -> Vec<f64> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    #[test]
    fn push_matches_two_pass_aggregate() {
        for (seed, len) in [(1u64, 1usize), (2, 2), (3, 7), (4, 100), (5, 1000)] {
            let values = stream(seed, len);
            let mut online = OnlineStats::new();
            for &v in &values {
                online.push(v);
            }
            let two_pass = Aggregate::from_values(&values);
            assert_eq!(online.n() as usize, two_pass.n);
            assert!((online.mean() - two_pass.mean).abs() < 1e-12, "seed {seed}");
            assert!((online.std() - two_pass.std).abs() < 1e-12, "seed {seed}");
            assert!((online.ci95() - two_pass.ci95).abs() < 1e-12, "seed {seed}");
        }
    }

    #[test]
    fn merge_of_splits_matches_whole_stream() {
        let values = stream(11, 500);
        let mut whole = OnlineStats::new();
        for &v in &values {
            whole.push(v);
        }
        for split in [1, 7, 250, 499] {
            let (a, b) = values.split_at(split);
            let mut left = OnlineStats::new();
            let mut right = OnlineStats::new();
            for &v in a {
                left.push(v);
            }
            for &v in b {
                right.push(v);
            }
            left.merge(&right);
            assert_eq!(left.n(), whole.n());
            assert!((left.mean() - whole.mean()).abs() < 1e-12, "split {split}");
            assert!((left.std() - whole.std()).abs() < 1e-12, "split {split}");
            assert_eq!(left.min(), whole.min());
            assert_eq!(left.max(), whole.max());
        }
    }

    #[test]
    fn merge_with_empty_is_a_bitwise_no_op() {
        let mut acc = OnlineStats::new();
        for &v in &stream(13, 64) {
            acc.push(v);
        }
        let before = acc.encode();
        acc.merge(&OnlineStats::new());
        assert_eq!(acc.encode(), before);
        let mut empty = OnlineStats::new();
        empty.merge(&acc);
        assert_eq!(empty.encode(), before);
    }

    #[test]
    fn merge_is_associative_to_rounding_error_only() {
        // (a ⊕ b) ⊕ c and a ⊕ (b ⊕ c) agree to ~1e-12 but not always
        // bitwise — which is exactly why the engine merges in fixed
        // shard order instead of letting the schedule decide.
        let chunks: Vec<Vec<f64>> = (0..3).map(|i| stream(20 + i, 97)).collect();
        let acc = |values: &[f64]| {
            let mut s = OnlineStats::new();
            for &v in values {
                s.push(v);
            }
            s
        };
        let (a, b, c) = (acc(&chunks[0]), acc(&chunks[1]), acc(&chunks[2]));
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        assert_eq!(left.n(), right.n());
        assert!((left.mean() - right.mean()).abs() < 1e-12);
        assert!((left.std() - right.std()).abs() < 1e-12);
    }

    #[test]
    fn encode_round_trips_bit_patterns() {
        // Signed zero, subnormals and infinities all survive — the JSON
        // number path would lose -0.0, which is why checkpoints encode
        // bits instead.
        for v in [0.0, -0.0, 1.5, -3.25e-308, f64::INFINITY, 1e300] {
            let mut s = OnlineStats::new();
            s.push(v);
            let back = OnlineStats::decode(&s.encode()).expect("decodes");
            assert_eq!(back.encode(), s.encode());
            assert_eq!(back.mean().to_bits(), s.mean().to_bits());
        }
        let empty = OnlineStats::new();
        assert_eq!(OnlineStats::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn decode_rejects_malformed_state() {
        assert!(OnlineStats::decode("").is_err());
        assert!(OnlineStats::decode("3:abc").is_err());
        assert!(OnlineStats::decode("x:0:0:0:0").is_err());
        assert!(OnlineStats::decode("1:0:0:0:zz").is_err());
        assert!(OnlineStats::decode("1:0:0:0:0:0").is_err());
    }

    #[test]
    fn empty_reads_as_zeroes() {
        let s = OnlineStats::new();
        assert_eq!(s.n(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std(), 0.0);
        assert_eq!(s.ci95(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.aggregate(), Aggregate::from_values(&[]));
    }
}
