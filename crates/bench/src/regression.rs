//! The bench regression gate: compare two `BENCH_sweep.json` snapshots
//! and fail when a benchmark slowed past a threshold.
//!
//! `scripts/bench.sh` pins one machine-readable snapshot per revision
//! (see the `bench_report` binary). This module turns consecutive
//! snapshots into a gate: parse both, join rows by benchmark name, and
//! flag every row whose median worsened by more than `threshold_pct`
//! percent. `bench_report --baseline BENCH_sweep.json --check` drives it
//! and exits nonzero on any flagged row, so perf regressions fail a run
//! instead of drifting in silently.
//!
//! Comparisons are tolerant of schema growth: rows present on only one
//! side are reported but never flagged (a new benchmark is not a
//! regression), and a baseline that fails to parse is an error, not a
//! pass.

use origin_telemetry::JsonValue;

/// One parsed bench snapshot (the `BENCH_sweep.json` schema).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSnapshot {
    /// Git revision the snapshot was taken at (`"unknown"` outside a
    /// checkout).
    pub git_rev: String,
    /// `(benchmark name, median ns/op)` rows, in file order.
    pub benches: Vec<(String, f64)>,
}

impl BenchSnapshot {
    /// Parses the `BENCH_sweep.json` schema
    /// (`{"git_rev", "harness", "benches": {name: {"median_ns", ...}}}`).
    ///
    /// # Errors
    ///
    /// Describes the first malformed element: invalid JSON, a missing
    /// `benches` object, or a row without a numeric `median_ns`.
    pub fn parse(text: &str) -> Result<Self, String> {
        let root = JsonValue::parse(text).map_err(|e| format!("invalid snapshot JSON: {e:?}"))?;
        let git_rev = root
            .get("git_rev")
            .and_then(JsonValue::as_str)
            .unwrap_or("unknown")
            .to_owned();
        let rows = root
            .get("benches")
            .and_then(JsonValue::as_object)
            .ok_or_else(|| "snapshot has no \"benches\" object".to_owned())?;
        let mut benches = Vec::with_capacity(rows.len());
        for (name, row) in rows {
            let median_ns = row
                .get("median_ns")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("bench {name:?} has no numeric \"median_ns\""))?;
            benches.push((name.clone(), median_ns));
        }
        Ok(Self { git_rev, benches })
    }

    /// The median ns/op recorded for `name`, if present.
    #[must_use]
    pub fn median_ns(&self, name: &str) -> Option<f64> {
        self.benches
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, ns)| ns)
    }

    /// One compact JSONL history line for `BENCH_history.jsonl`:
    /// `{"git_rev": ..., "recorded_unix": ..., "benches": {name: ns}}`.
    ///
    /// `recorded_unix` is a wall-clock stamp supplied by the caller (the
    /// bench harness is exempt from the workspace's no-wall-clock rule;
    /// this library stays clock-free).
    #[must_use]
    pub fn history_line(&self, recorded_unix: u64) -> String {
        let benches = self
            .benches
            .iter()
            .map(|(name, ns)| (name.clone(), JsonValue::from(*ns)))
            .collect();
        JsonValue::Object(vec![
            ("git_rev".to_owned(), JsonValue::from(self.git_rev.clone())),
            (
                "recorded_unix".to_owned(),
                JsonValue::from(recorded_unix as f64),
            ),
            ("benches".to_owned(), JsonValue::Object(benches)),
        ])
        .render()
    }
}

/// One joined row of a baseline/current comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionRow {
    /// Benchmark name (shared key of the two snapshots).
    pub name: String,
    /// Baseline median, ns/op.
    pub baseline_ns: f64,
    /// Current median, ns/op.
    pub current_ns: f64,
    /// Signed slowdown in percent (positive = current is slower).
    pub delta_pct: f64,
    /// Whether `delta_pct` exceeded the gate threshold.
    pub regressed: bool,
}

/// The outcome of comparing a current snapshot against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionReport {
    /// The gate threshold, in percent slowdown.
    pub threshold_pct: f64,
    /// Rows present in both snapshots, in current-snapshot order.
    pub rows: Vec<RegressionRow>,
    /// Names present on only one side (never flagged).
    pub unmatched: Vec<String>,
}

impl RegressionReport {
    /// Joins `current` against `baseline` and flags every row that
    /// slowed by more than `threshold_pct` percent.
    #[must_use]
    pub fn compare(baseline: &BenchSnapshot, current: &BenchSnapshot, threshold_pct: f64) -> Self {
        let mut rows = Vec::new();
        let mut unmatched = Vec::new();
        for (name, current_ns) in &current.benches {
            match baseline.median_ns(name) {
                Some(baseline_ns) if baseline_ns > 0.0 => {
                    let delta_pct = (current_ns - baseline_ns) / baseline_ns * 100.0;
                    rows.push(RegressionRow {
                        name: name.clone(),
                        baseline_ns,
                        current_ns: *current_ns,
                        delta_pct,
                        regressed: delta_pct > threshold_pct,
                    });
                }
                _ => unmatched.push(name.clone()),
            }
        }
        for (name, _) in &baseline.benches {
            if current.median_ns(name).is_none() {
                unmatched.push(name.clone());
            }
        }
        Self {
            threshold_pct,
            rows,
            unmatched,
        }
    }

    /// The flagged rows (slowdowns past the threshold).
    #[must_use]
    pub fn regressions(&self) -> Vec<&RegressionRow> {
        self.rows.iter().filter(|r| r.regressed).collect()
    }

    /// Whether the gate passes (no row slowed past the threshold).
    #[must_use]
    pub fn passed(&self) -> bool {
        self.rows.iter().all(|r| !r.regressed)
    }

    /// A fixed-width comparison table, worst slowdown first, with flagged
    /// rows marked `REGRESSED`.
    #[must_use]
    pub fn render(&self) -> String {
        let mut rows: Vec<&RegressionRow> = self.rows.iter().collect();
        rows.sort_by(|a, b| {
            b.delta_pct
                .partial_cmp(&a.delta_pct)
                .unwrap_or(core::cmp::Ordering::Equal)
        });
        let mut out = format!(
            "{:<42} {:>14} {:>14} {:>9}\n",
            "bench", "baseline ns", "current ns", "delta"
        );
        for row in rows {
            out.push_str(&format!(
                "{:<42} {:>14.0} {:>14.0} {:>+8.1}%{}\n",
                row.name,
                row.baseline_ns,
                row.current_ns,
                row.delta_pct,
                if row.regressed { "  REGRESSED" } else { "" }
            ));
        }
        for name in &self.unmatched {
            out.push_str(&format!("{name:<42} (present on one side only)\n"));
        }
        out.push_str(&format!(
            "gate: {} of {} rows regressed past +{:.0}%\n",
            self.regressions().len(),
            self.rows.len(),
            self.threshold_pct
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(rows: &[(&str, f64)]) -> BenchSnapshot {
        BenchSnapshot {
            git_rev: "abc1234".to_owned(),
            benches: rows.iter().map(|&(n, v)| (n.to_owned(), v)).collect(),
        }
    }

    #[test]
    fn parses_the_bench_report_schema() {
        let text = r#"{
            "git_rev": "deadbee",
            "harness": "bench_report median-of-samples",
            "benches": {
                "matvec_20x28": {"median_ns": 120.5, "ops_per_sec": 8298755.2},
                "sweep_16_cells_threads_1": {"median_ns": 2.0e9, "ops_per_sec": 8.0}
            }
        }"#;
        let snap = BenchSnapshot::parse(text).expect("parses");
        assert_eq!(snap.git_rev, "deadbee");
        assert_eq!(snap.benches.len(), 2);
        assert_eq!(snap.median_ns("matvec_20x28"), Some(120.5));
        assert_eq!(snap.median_ns("missing"), None);
        assert!(BenchSnapshot::parse("{}").is_err());
        assert!(BenchSnapshot::parse("not json").is_err());
        assert!(BenchSnapshot::parse(r#"{"benches": {"a": {}}}"#).is_err());
    }

    #[test]
    fn gate_flags_only_slowdowns_past_threshold() {
        let base = snapshot(&[("a", 100.0), ("b", 100.0), ("c", 100.0), ("gone", 5.0)]);
        let curr = snapshot(&[("a", 109.0), ("b", 140.0), ("c", 60.0), ("new", 7.0)]);
        let report = RegressionReport::compare(&base, &curr, 10.0);
        assert!(!report.passed());
        let flagged = report.regressions();
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].name, "b");
        assert!((flagged[0].delta_pct - 40.0).abs() < 1e-9);
        // Rows on one side only are surfaced, never flagged.
        assert_eq!(report.unmatched, vec!["new".to_owned(), "gone".to_owned()]);
        // A 9% slowdown and a speedup both pass at a 10% threshold.
        assert!(report.rows.iter().any(|r| r.name == "a" && !r.regressed));
        assert!(report.rows.iter().any(|r| r.name == "c" && !r.regressed));
        let rendered = report.render();
        assert!(rendered.contains("REGRESSED"));
        assert!(rendered.contains("1 of 3 rows"));
    }

    #[test]
    fn identical_snapshots_pass_at_zero_threshold() {
        let base = snapshot(&[("a", 100.0), ("b", 250.0)]);
        let report = RegressionReport::compare(&base, &base.clone(), 0.0);
        assert!(report.passed());
        assert!(report.regressions().is_empty());
    }

    #[test]
    fn history_line_is_one_compact_json_object() {
        let snap = snapshot(&[("a", 100.0)]);
        let line = snap.history_line(1_700_000_000);
        assert!(!line.contains('\n'));
        let parsed = JsonValue::parse(&line).expect("valid JSON");
        assert_eq!(
            parsed.get("git_rev").and_then(JsonValue::as_str),
            Some("abc1234")
        );
        assert_eq!(
            parsed.get("recorded_unix").and_then(JsonValue::as_f64),
            Some(1_700_000_000.0)
        );
        assert_eq!(
            parsed
                .get("benches")
                .and_then(|b| b.get("a"))
                .and_then(JsonValue::as_f64),
            Some(100.0)
        );
    }
}
