//! Shared helpers for the Origin experiment binaries and benchmarks.
//!
//! The runnable experiment reproductions live in `src/bin/` (one binary
//! per paper figure/table — see DESIGN.md §5); the Criterion performance
//! benchmarks live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use origin_core::ModelBank;
use origin_sensors::DatasetSpec;

/// Trains a deliberately small model bank for benchmarks: enough data to
/// converge, small enough that Criterion's warm-up stays quick.
///
/// # Panics
///
/// Panics when training fails (benchmarks have no error channel).
#[must_use]
pub fn bench_models(seed: u64) -> ModelBank {
    let spec = DatasetSpec::mhealth_like().with_windows(20, 8);
    ModelBank::train(&spec, seed).expect("bench training succeeds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use origin_types::SensorLocation;

    #[test]
    fn bench_models_train() {
        let bank = bench_models(5);
        for loc in SensorLocation::ALL {
            assert!(bank
                .validation_confusion(origin_core::ModelVariant::Pruned, loc)
                .accuracy()
                .is_some());
        }
    }
}
