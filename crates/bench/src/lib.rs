//! Shared helpers for the Origin experiment binaries and benchmarks.
//!
//! The runnable experiment reproductions live in `src/bin/` (one binary
//! per paper figure/table — see DESIGN.md §5); the Criterion performance
//! benchmarks live in `benches/`. This library carries the pieces they
//! share: small-model training for benchmarks, the common `--json <path>`
//! CLI flag, the telemetry plumbing (instrumented simulation runs and
//! run-manifest assembly — see EXPERIMENTS.md §Telemetry), the enumerated
//! sweep engine ([`sweep`]), the streaming accumulators ([`stats`]) and
//! the population-scale fleet engine ([`fleet`] — DESIGN.md §11). The
//! binaries' command-line surface is documented in `docs/OPERATIONS.md`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod fleet;
pub mod regression;
pub mod stats;
pub mod sweep;

use origin_core::{CoreError, ModelBank, SimConfig, SimReport, Simulator};
use origin_nn::{KernelPath, Scalar};
use origin_sensors::DatasetSpec;
use origin_telemetry::{
    JsonValue, JsonlObserver, MetricsObserver, MetricsRegistry, RunManifest, Tee,
};
use std::path::{Path, PathBuf};

/// Trains a deliberately small model bank for benchmarks: enough data to
/// converge, small enough that Criterion's warm-up stays quick.
///
/// # Panics
///
/// Panics when training fails (benchmarks have no error channel).
#[must_use]
pub fn bench_models(seed: u64) -> ModelBank {
    let spec = DatasetSpec::mhealth_like().with_windows(20, 8);
    ModelBank::train(&spec, seed).expect("bench training succeeds")
}

/// The kernel precision a binary runs its NN stack at, selected with
/// `--precision {f64,f32}` (the `f64` default reproduces the published
/// goldens bit-for-bit; `f32` exercises the narrow compute path and
/// writes its goldens under `results/f32/`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Precision {
    /// Full-width kernels (the golden default).
    #[default]
    F64,
    /// Narrow `f32` kernels.
    F32,
}

impl Precision {
    /// The dtype tag recorded in manifests and model files ("f64"/"f32").
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
        }
    }

    /// Parses a `--precision` value.
    ///
    /// # Errors
    ///
    /// Describes the accepted values when `spec` is neither.
    pub fn parse(spec: &str) -> Result<Self, String> {
        match spec.trim().to_lowercase().as_str() {
            "f64" => Ok(Precision::F64),
            "f32" => Ok(Precision::F32),
            other => Err(format!("unknown precision {other:?}: expected f64 or f32")),
        }
    }

    /// Prefixes `base` with the dtype-specific golden directory:
    /// `results/...` for `f64` (the published goldens), `results/f32/...`
    /// for `f32`.
    #[must_use]
    pub fn golden_path(self, base: &str) -> PathBuf {
        match self {
            Precision::F64 => PathBuf::from(base),
            Precision::F32 => match base.strip_prefix("results") {
                Some("") => PathBuf::from("results/f32"),
                Some(rest) => PathBuf::from("results/f32").join(rest.trim_start_matches('/')),
                None => PathBuf::from("results/f32").join(base),
            },
        }
    }
}

impl core::fmt::Display for Precision {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// Command-line arguments shared by the experiment binaries: positional
/// values, the common `--json <path>` / `--json=<path>` flag that
/// requests a machine-readable [`RunManifest`], and arbitrary
/// `--key value` / `--key=value` flags (`--threads`, `--seeds`,
/// `--policies`, `--precision`, …) read back through [`BenchArgs::flag`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BenchArgs {
    positional: Vec<String>,
    json: Option<PathBuf>,
    flags: Vec<(String, String)>,
}

impl BenchArgs {
    /// Parses the process arguments (without the program name).
    ///
    /// # Panics
    ///
    /// Panics when `--json` is passed without a path.
    #[must_use]
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (testable core of
    /// [`BenchArgs::parse`]).
    ///
    /// # Panics
    ///
    /// Panics when a `--flag` is passed without a value.
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut positional = Vec::new();
        let mut json = None;
        let mut flags = Vec::new();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            if arg == "--json" {
                let path = iter.next().expect("--json requires a path argument");
                json = Some(PathBuf::from(path));
            } else if let Some(path) = arg.strip_prefix("--json=") {
                json = Some(PathBuf::from(path));
            } else if let Some(flag) = arg.strip_prefix("--") {
                if let Some((key, value)) = flag.split_once('=') {
                    flags.push((key.to_owned(), value.to_owned()));
                } else {
                    let value = iter
                        .next()
                        .unwrap_or_else(|| panic!("--{flag} requires a value argument"));
                    flags.push((flag.to_owned(), value));
                }
            } else {
                positional.push(arg);
            }
        }
        Self {
            positional,
            json,
            flags,
        }
    }

    /// The positional arguments in order, flags removed.
    #[must_use]
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// Positional argument `index` parsed as `u64`, or `default` when
    /// absent or unparseable (matching the binaries' lenient style).
    #[must_use]
    pub fn u64_at(&self, index: usize, default: u64) -> u64 {
        self.positional
            .get(index)
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    }

    /// Positional argument `index`, or `default` when absent.
    #[must_use]
    pub fn str_at(&self, index: usize, default: &str) -> String {
        self.positional
            .get(index)
            .cloned()
            .unwrap_or_else(|| default.to_owned())
    }

    /// The value of flag `--name`, when passed (last occurrence wins).
    #[must_use]
    pub fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Flag `--name` parsed as `u64`, or `default` when absent or
    /// unparseable (matching the binaries' lenient style).
    #[must_use]
    pub fn u64_flag(&self, name: &str, default: u64) -> u64 {
        self.flag(name)
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    }

    /// The worker-thread count: `--threads N`, defaulting to 0 ("auto",
    /// resolved by [`sweep::available_threads`]).
    #[must_use]
    pub fn threads(&self) -> usize {
        usize::try_from(self.u64_flag("threads", 0)).unwrap_or(0)
    }

    /// The kernel precision: `--precision {f64,f32}`, defaulting to
    /// [`Precision::F64`] (the golden path).
    ///
    /// # Panics
    ///
    /// Panics on an unknown precision value (the binaries have no error
    /// channel).
    #[must_use]
    pub fn precision(&self) -> Precision {
        self.flag("precision")
            .map_or(Precision::F64, |s| match Precision::parse(s) {
                Ok(p) => p,
                Err(e) => panic!("{e}"),
            })
    }

    /// The NN kernel path: `--kernel-path {scalar,unrolled}`, defaulting
    /// to [`KernelPath::Unrolled`] (the fast path; both are bitwise
    /// identical).
    ///
    /// # Panics
    ///
    /// Panics on an unknown kernel-path value (the binaries have no
    /// error channel).
    #[must_use]
    pub fn kernel_path(&self) -> KernelPath {
        self.flag("kernel-path")
            .map_or_else(KernelPath::default, |s| match KernelPath::parse(s) {
                Some(p) => p,
                None => panic!("unknown kernel path {s:?} (expected scalar or unrolled)"),
            })
    }

    /// The `--json` destination, when requested.
    #[must_use]
    pub fn json_path(&self) -> Option<&Path> {
        self.json.as_deref()
    }

    /// Writes `manifest` to the `--json` destination, if one was given.
    ///
    /// # Panics
    ///
    /// Panics when the file cannot be written (the binaries have no error
    /// channel).
    pub fn write_manifest(&self, manifest: &RunManifest) {
        if let Some(path) = self.json_path() {
            write_manifest_file(path, manifest);
        }
    }
}

/// Writes `manifest` as pretty-printed JSON to `path`, creating parent
/// directories.
///
/// # Panics
///
/// Panics when the file cannot be written.
pub fn write_manifest_file(path: &Path, manifest: &RunManifest) {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .unwrap_or_else(|e| panic!("cannot create {parent:?}: {e}"));
        }
    }
    let mut text = manifest.render_pretty();
    text.push('\n');
    std::fs::write(path, text).unwrap_or_else(|e| panic!("cannot write {path:?}: {e}"));
    println!("wrote {}", path.display());
}

/// One fully-instrumented simulation run: the report plus everything the
/// observers captured.
#[derive(Debug, Clone)]
pub struct InstrumentedRun {
    /// The simulation outcome (identical to an unobserved run).
    pub report: SimReport,
    /// Aggregated metrics from the event stream.
    pub metrics: MetricsRegistry,
    /// The JSONL event trace, one event per line.
    pub jsonl: String,
    /// Total events emitted.
    pub events: u64,
}

/// Runs `config` on `sim` with the full observer stack: a JSONL event
/// trace plus the in-memory metrics aggregator.
///
/// # Errors
///
/// Propagates simulation errors (e.g. an invalid ER-r cycle).
///
/// # Panics
///
/// Panics when the in-memory JSONL sink fails, which a `Vec<u8>` writer
/// never does.
pub fn run_instrumented<S: Scalar>(
    sim: &Simulator<S>,
    config: &SimConfig,
) -> Result<InstrumentedRun, CoreError> {
    let mut observer = Tee(JsonlObserver::new(Vec::new()), MetricsObserver::new());
    let report = sim.run_observed(config, &mut observer)?;
    let Tee(jsonl, metrics) = observer;
    let events = jsonl.events_written();
    let bytes = jsonl.finish().expect("Vec<u8> writes are infallible");
    Ok(InstrumentedRun {
        report,
        metrics: metrics.into_metrics(),
        jsonl: String::from_utf8(bytes).expect("JSON output is UTF-8"),
        events,
    })
}

/// The manifest `config` entries describing a [`SimConfig`].
#[must_use]
pub fn sim_config_entries(config: &SimConfig) -> Vec<(String, String)> {
    let mut entries = vec![
        ("policy".to_owned(), config.policy.label()),
        (
            "horizon_secs".to_owned(),
            (config.horizon.as_micros() / 1_000_000).to_string(),
        ),
        ("seed".to_owned(), config.seed.to_string()),
        ("variant".to_owned(), format!("{:?}", config.variant)),
        ("alpha".to_owned(), config.alpha.to_string()),
        ("dwell_scale".to_owned(), config.dwell_scale.to_string()),
    ];
    if config.harvest_scale != 1.0 {
        entries.push(("harvest_scale".to_owned(), config.harvest_scale.to_string()));
    }
    // Recorded only when non-default, like harvest_scale: the committed
    // goldens stay byte-stable, and both paths are bitwise-identical
    // anyway — the entry is provenance for A/B runs.
    if config.kernel_path != KernelPath::default() {
        entries.push((
            "kernel_path".to_owned(),
            config.kernel_path.label().to_owned(),
        ));
    }
    if let Some(snr) = config.noise_snr_db {
        entries.push(("noise_snr_db".to_owned(), snr.to_string()));
    }
    if config.oracle_anticipation {
        entries.push(("oracle_anticipation".to_owned(), "true".to_owned()));
    }
    if !config.disabled_nodes.is_empty() {
        entries.push((
            "disabled_nodes".to_owned(),
            format!("{:?}", config.disabled_nodes),
        ));
    }
    entries
}

/// The headline `results` entries for a [`SimReport`].
#[must_use]
pub fn report_results(report: &SimReport) -> Vec<(String, JsonValue)> {
    vec![
        ("accuracy".to_owned(), JsonValue::from(report.accuracy())),
        (
            "completion_rate".to_owned(),
            JsonValue::from(report.completion_rate()),
        ),
        ("windows".to_owned(), JsonValue::from(report.windows)),
        ("attempts".to_owned(), JsonValue::from(report.attempts)),
        (
            "completions".to_owned(),
            JsonValue::from(report.completions),
        ),
        (
            "no_output_windows".to_owned(),
            JsonValue::from(report.no_output_windows),
        ),
        (
            "messages_sent".to_owned(),
            JsonValue::from(report.messages_sent),
        ),
        (
            "messages_dropped".to_owned(),
            JsonValue::from(report.messages_dropped),
        ),
        (
            "sent_by_node".to_owned(),
            JsonValue::Array(
                report
                    .sent_by_node
                    .iter()
                    .map(|&v| JsonValue::from(v))
                    .collect(),
            ),
        ),
        (
            "dropped_by_node".to_owned(),
            JsonValue::Array(
                report
                    .dropped_by_node
                    .iter()
                    .map(|&v| JsonValue::from(v))
                    .collect(),
            ),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use origin_core::{Deployment, PolicyKind};
    use origin_types::{SensorLocation, SimDuration};

    #[test]
    fn bench_models_train() {
        let bank = bench_models(5);
        for loc in SensorLocation::ALL {
            assert!(bank
                .validation_confusion(origin_core::ModelVariant::Pruned, loc)
                .accuracy()
                .is_some());
        }
    }

    fn args(list: &[&str]) -> BenchArgs {
        BenchArgs::from_args(list.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn bench_args_split_flags_from_positionals() {
        let a = args(&["42", "--json", "out/m.json", "results"]);
        assert_eq!(a.positional(), ["42", "results"]);
        assert_eq!(a.json_path(), Some(Path::new("out/m.json")));
        assert_eq!(a.u64_at(0, 7), 42);
        assert_eq!(a.u64_at(5, 7), 7);
        assert_eq!(a.str_at(1, "fallback"), "results");
        assert_eq!(a.str_at(9, "fallback"), "fallback");
    }

    #[test]
    fn bench_args_accept_equals_form() {
        let a = args(&["--json=m.json"]);
        assert_eq!(a.json_path(), Some(Path::new("m.json")));
        assert!(a.positional().is_empty());

        let none = args(&["13"]);
        assert_eq!(none.json_path(), None);
    }

    #[test]
    #[should_panic(expected = "--json requires a path")]
    fn bench_args_reject_dangling_json_flag() {
        let _ = args(&["--json"]);
    }

    #[test]
    fn bench_args_collect_generic_flags() {
        let a = args(&[
            "8",
            "--threads",
            "4",
            "--policies=origin12,bl2",
            "--seeds",
            "5",
        ]);
        assert_eq!(a.positional(), ["8"]);
        assert_eq!(a.flag("threads"), Some("4"));
        assert_eq!(a.threads(), 4);
        assert_eq!(a.flag("policies"), Some("origin12,bl2"));
        assert_eq!(a.u64_flag("seeds", 1), 5);
        assert_eq!(a.u64_flag("users", 8), 8);
        assert_eq!(a.flag("missing"), None);
        // No --threads means "auto".
        assert_eq!(args(&[]).threads(), 0);
    }

    #[test]
    #[should_panic(expected = "--threads requires a value")]
    fn bench_args_reject_dangling_flag() {
        let _ = args(&["--threads"]);
    }

    #[test]
    fn precision_flag_parses_and_defaults() {
        assert_eq!(args(&[]).precision(), Precision::F64);
        assert_eq!(args(&["--precision", "f32"]).precision(), Precision::F32);
        assert_eq!(args(&["--precision=F64"]).precision(), Precision::F64);
        assert_eq!(Precision::F32.label(), "f32");
        assert!(Precision::parse("f16").is_err());
    }

    #[test]
    #[should_panic(expected = "unknown precision")]
    fn precision_flag_rejects_unknown_dtype() {
        let _ = args(&["--precision", "f16"]).precision();
    }

    #[test]
    fn golden_paths_split_by_dtype() {
        assert_eq!(
            Precision::F64.golden_path("results/sweep.json"),
            Path::new("results/sweep.json")
        );
        assert_eq!(
            Precision::F32.golden_path("results/sweep.json"),
            Path::new("results/f32/sweep.json")
        );
        assert_eq!(
            Precision::F32.golden_path("sweep.json"),
            Path::new("results/f32/sweep.json")
        );
        assert_eq!(
            Precision::F32.golden_path("results"),
            Path::new("results/f32")
        );
        assert_eq!(Precision::F64.golden_path("results"), Path::new("results"));
    }

    /// The acceptance check: an instrumented run's manifest and JSONL
    /// trace must both parse back.
    #[test]
    fn instrumented_run_manifest_and_trace_parse() {
        let models = bench_models(9);
        let deployment = Deployment::builder().seed(9).build();
        let sim = Simulator::new(deployment, models);
        let config = SimConfig::new(PolicyKind::Origin { cycle: 12 })
            .with_horizon(SimDuration::from_secs(120))
            .with_seed(3);
        let run = run_instrumented(&sim, &config).expect("valid cycle");

        assert_eq!(run.jsonl.lines().count() as u64, run.events);
        for line in run.jsonl.lines() {
            let json = JsonValue::parse(line).expect("every trace line is JSON");
            assert!(json.get("event").is_some());
        }

        let manifest = RunManifest::new("bench_test", config.seed, &config.policy.label())
            .with_metrics(&run.metrics)
            .with_result("accuracy", JsonValue::from(run.report.accuracy()));
        let parsed = RunManifest::parse(&manifest.render_pretty()).expect("manifest parses");
        assert_eq!(parsed, manifest);
        assert_eq!(parsed.policy, "RR12 Origin");
        // The metrics snapshot survives the round-trip with its counters.
        assert!(parsed
            .metrics
            .get("counters")
            .and_then(|c| c.get("origin_events_total{event=\"window_start\"}"))
            .and_then(JsonValue::as_u64)
            .is_some());
    }

    #[test]
    fn sim_config_entries_cover_the_knobs() {
        let config = SimConfig::new(PolicyKind::Aas { cycle: 6 })
            .with_seed(11)
            .with_noise_snr(20.0);
        let entries = sim_config_entries(&config);
        let get = |k: &str| {
            entries
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.as_str())
        };
        assert_eq!(get("policy"), Some("RR6 AAS"));
        assert_eq!(get("seed"), Some("11"));
        assert_eq!(get("noise_snr_db"), Some("20"));
        assert_eq!(get("horizon_secs"), Some("3600"));
        // harvest_scale only appears when it deviates from 1.0 (the
        // enumerated goldens keep their exact byte shape).
        assert_eq!(get("harvest_scale"), None);
        // Same policy for kernel_path: absent at the default (Unrolled),
        // recorded for A/B runs on the scalar reference path.
        assert_eq!(get("kernel_path"), None);
        let scaled = sim_config_entries(&config.clone().with_harvest_scale(0.5));
        assert!(scaled
            .iter()
            .any(|(k, v)| k == "harvest_scale" && v == "0.5"));
        let scalar = sim_config_entries(&config.with_kernel_path(KernelPath::Scalar));
        assert!(scalar
            .iter()
            .any(|(k, v)| k == "kernel_path" && v == "scalar"));
    }
}
