//! Parallel deterministic sweep engine for (seed × policy × user) grids.
//!
//! Every experiment binary used to walk its grid serially; this module
//! fans the grid out over worker threads while keeping the output
//! **bitwise deterministic regardless of thread count**:
//!
//! * each cell derives its RNG stream from its grid coordinates (seed
//!   replica × user) through a splitmix64 finalizer ([`cell_stream`]) —
//!   no cell ever reads another cell's RNG, and no RNG state is shared
//!   across workers;
//! * the policy axis deliberately does **not** enter the stream, so every
//!   policy in a cell column sees the same simulated world and
//!   comparisons (win rates) are paired;
//! * workers race only for *which* cell to run next, never for what a
//!   result means — aggregation (mean, std, 95% CI, win rate) happens
//!   after the join, in cell-id order;
//! * the trained models and deployment are shared across workers through
//!   the [`ExperimentContext`]'s `Arc` handles, so training happens once
//!   per dataset rather than once per cell.
//!
//! This is the **enumerated** engine: it retains every cell result
//! ([`SweepReport::cells`]), which is exactly right for paper-scale grids
//! where per-cell traces and child manifests matter. For
//! population-scale studies (10⁵–10⁶ sampled users) the sibling
//! [`fleet`](crate::fleet) engine streams cells through O(1)
//! [`OnlineStats`] accumulators instead and adds checkpoint/resume;
//! the two engines share [`cell_stream`], the
//! policy-pairing discipline and the manifest result-key vocabulary.
//!
//! The engine threads the existing [`SimObserver`](origin_telemetry::SimObserver)
//! machinery through: with [`SweepOptions::instrument`] each cell records
//! its own JSONL event trace and metrics, and [`SweepReport::to_manifest`]
//! merges one child [`RunManifest`] per cell into a single run manifest.
//!
//! The `sweep` binary exposes the engine on the command line
//! (`--seeds N --policies origin12,bl2 --users N --threads N --json …`);
//! `cohort`, `ablation` and `reproduce_all` run on top of it. The full
//! CLI surface is documented in `docs/OPERATIONS.md`.

use origin_core::experiments::{cohort_user, ExperimentContext};
use origin_core::{
    fully_powered_simulator, BaselineKind, CoreError, PolicyKind, SimConfig, SimReport, Simulator,
};
use origin_nn::{KernelPath, Scalar};
use origin_sensors::UserProfile;
use origin_telemetry::{
    JsonValue, JsonlObserver, LedgerAuditReport, LedgerAuditor, MetricsObserver, MetricsRegistry,
    ProgressMeter, RunManifest, SpanObserver, Tee,
};
use origin_types::UserId;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

// The deterministic fan-out primitive lives in `origin_core` now (model
// training shares it); the sweep engine re-exports it so existing
// `origin_bench::sweep::parallel_map` callers keep working.
pub use origin_core::{available_threads, parallel_map};

// `Aggregate` moved to `crate::stats` when the streaming accumulators
// landed; re-exported here so `origin_bench::sweep::Aggregate` callers
// keep working.
pub use crate::stats::{Aggregate, OnlineStats};

/// splitmix64 finalizer: a bijective avalanche mix, the standard way to
/// turn structured coordinates into decorrelated RNG seeds.
#[must_use]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The RNG stream of the cell at (`seed_idx`, `user_idx`) under
/// `base_seed`.
///
/// The policy axis is intentionally absent: all policies of one
/// (seed, user) column share a world, which keeps policy comparisons
/// paired (the same timeline, link losses and runtime noise). The
/// fleet engine ([`crate::fleet`]) shares this derivation, so a
/// population column sees the same world family as an enumerated cell
/// at the same coordinates.
///
/// Streams are truncated to 53 bits so a cell's seed survives the JSON
/// manifest round-trip exactly (the manifest's number type is an `f64`).
///
/// # Examples
///
/// ```
/// use origin_bench::sweep::cell_stream;
///
/// // Deterministic, decorrelated, and 53-bit JSON-safe.
/// assert_eq!(cell_stream(77, 0, 1), cell_stream(77, 0, 1));
/// assert_ne!(cell_stream(77, 0, 1), cell_stream(77, 1, 0));
/// assert!(cell_stream(77, 0, 1) < (1 << 53));
/// ```
#[must_use]
pub fn cell_stream(base_seed: u64, seed_idx: u32, user_idx: u32) -> u64 {
    mix64(base_seed ^ mix64((u64::from(seed_idx) << 32) | u64::from(user_idx))) & ((1 << 53) - 1)
}

/// One policy arm of a sweep: either a scheduling policy on harvested
/// energy or one of the paper's fully-powered baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepPolicy {
    /// A scheduling policy running on the EH deployment.
    Policy(PolicyKind),
    /// A fully-powered baseline (BL-1 / BL-2).
    Baseline(BaselineKind),
}

impl SweepPolicy {
    /// Human-readable label ("RR12 Origin", "BL-2", …).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            SweepPolicy::Policy(p) => p.label(),
            SweepPolicy::Baseline(b) => b.label().to_owned(),
        }
    }

    /// Whether this arm is a fully-powered baseline.
    #[must_use]
    pub fn is_baseline(&self) -> bool {
        matches!(self, SweepPolicy::Baseline(_))
    }

    /// Parses one `--policies` element.
    ///
    /// Accepted: `naive`, `bl1`, `bl2`, and `rr`/`aas`/`aasr`/`origin`
    /// followed by the ER-r cycle (`origin12`, `aasr6`, `rr3`).
    ///
    /// # Examples
    ///
    /// ```
    /// use origin_bench::sweep::SweepPolicy;
    ///
    /// assert_eq!(SweepPolicy::parse("origin12").unwrap().label(), "RR12 Origin");
    /// assert!(SweepPolicy::parse("bl2").unwrap().is_baseline());
    /// assert!(SweepPolicy::parse("warp9").is_err());
    /// ```
    ///
    /// # Errors
    ///
    /// Describes the accepted grammar when `spec` does not match it.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let lower = spec.trim().to_lowercase();
        match lower.as_str() {
            "naive" => return Ok(SweepPolicy::Policy(PolicyKind::NaiveAllOn)),
            "bl1" => return Ok(SweepPolicy::Baseline(BaselineKind::Baseline1)),
            "bl2" => return Ok(SweepPolicy::Baseline(BaselineKind::Baseline2)),
            _ => {}
        }
        // Longest prefix first: "aasr" must win over "aas".
        for (prefix, make) in [
            ("origin", PolicyKind::Origin { cycle: 0 }),
            ("aasr", PolicyKind::Aasr { cycle: 0 }),
            ("aas", PolicyKind::Aas { cycle: 0 }),
            ("rr", PolicyKind::RoundRobin { cycle: 0 }),
        ] {
            if let Some(rest) = lower.strip_prefix(prefix) {
                let cycle: u8 = rest.parse().map_err(|_| {
                    format!("policy {spec:?}: expected a cycle after {prefix:?}, e.g. {prefix}12")
                })?;
                return Ok(SweepPolicy::Policy(match make {
                    PolicyKind::Origin { .. } => PolicyKind::Origin { cycle },
                    PolicyKind::Aasr { .. } => PolicyKind::Aasr { cycle },
                    PolicyKind::Aas { .. } => PolicyKind::Aas { cycle },
                    _ => PolicyKind::RoundRobin { cycle },
                }));
            }
        }
        Err(format!(
            "unknown policy {spec:?}: expected naive, bl1, bl2, or rr/aas/aasr/origin followed \
             by a cycle (e.g. origin12)"
        ))
    }

    /// Parses a comma-separated `--policies` list.
    ///
    /// # Errors
    ///
    /// Propagates the first element that fails [`SweepPolicy::parse`].
    pub fn parse_list(list: &str) -> Result<Vec<Self>, String> {
        list.split(',')
            .filter(|s| !s.trim().is_empty())
            .map(Self::parse)
            .collect()
    }
}

impl core::fmt::Display for SweepPolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.label())
    }
}

/// A full factorial (seed replica × policy × user) grid.
///
/// Grids enumerate every combination and retain every cell — the
/// paper-scale shape. For sampled populations at fleet scale, use a
/// [`FleetPlan`](crate::fleet::FleetPlan) instead.
///
/// # Examples
///
/// ```
/// use origin_bench::sweep::{SweepGrid, SweepPolicy};
///
/// let grid = SweepGrid::new(77, SweepPolicy::parse_list("origin12,bl2").unwrap())
///     .with_seeds(3)
///     .with_sampled_users(2);
/// assert_eq!(grid.len(), 12); // 3 seeds x 2 policies x 2 users
/// // Paired arms share a world; the policy axis never enters the stream.
/// let cells = grid.cells();
/// assert_eq!(cells[0].sim_seed, cells[2].sim_seed);
/// ```
#[derive(Debug, Clone)]
pub struct SweepGrid {
    /// Base seed every cell stream is derived from.
    pub base_seed: u64,
    /// Number of seed replicas (the statistical axis).
    pub seed_count: u32,
    /// The policy arms.
    pub policies: Vec<SweepPolicy>,
    /// The wearers.
    pub users: Vec<UserProfile>,
}

/// One cell's grid coordinates plus its derived RNG stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepCell {
    /// Flat cell id (row-major over seed → policy → user).
    pub id: usize,
    /// Seed-replica coordinate.
    pub seed_idx: u32,
    /// Policy coordinate (index into [`SweepGrid::policies`]).
    pub policy_idx: usize,
    /// User coordinate (index into [`SweepGrid::users`]).
    pub user_idx: u32,
    /// The simulation seed derived from the coordinates.
    pub sim_seed: u64,
}

impl SweepGrid {
    /// A grid of `policies` with one seed replica and the nominal wearer.
    ///
    /// # Panics
    ///
    /// Panics on an empty policy list (a grid with no cells).
    #[must_use]
    pub fn new(base_seed: u64, policies: Vec<SweepPolicy>) -> Self {
        assert!(!policies.is_empty(), "sweep grid needs at least one policy");
        Self {
            base_seed,
            seed_count: 1,
            policies,
            users: vec![UserProfile::nominal(UserId::new(0))],
        }
    }

    /// Sets the number of seed replicas. Builder-style.
    #[must_use]
    pub fn with_seeds(mut self, seed_count: u32) -> Self {
        self.seed_count = seed_count.max(1);
        self
    }

    /// Replaces the wearers. Builder-style.
    ///
    /// # Panics
    ///
    /// Panics on an empty user list.
    #[must_use]
    pub fn with_users(mut self, users: Vec<UserProfile>) -> Self {
        assert!(!users.is_empty(), "sweep grid needs at least one user");
        self.users = users;
        self
    }

    /// Replaces the wearers with `n` cohort-sampled profiles (the same
    /// population [`run_cohort`](origin_core::experiments::run_cohort)
    /// draws from). Builder-style.
    #[must_use]
    pub fn with_sampled_users(self, n: u32) -> Self {
        let base = self.base_seed;
        self.with_users((0..n.max(1)).map(|u| cohort_user(base, u)).collect())
    }

    /// Total cell count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.seed_count as usize * self.policies.len() * self.users.len()
    }

    /// Whether the grid is empty (never true for a constructed grid).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every cell in id order (row-major over seed → policy → user).
    #[must_use]
    pub fn cells(&self) -> Vec<SweepCell> {
        let mut cells = Vec::with_capacity(self.len());
        for seed_idx in 0..self.seed_count {
            for policy_idx in 0..self.policies.len() {
                for user_idx in 0..self.users.len() as u32 {
                    cells.push(SweepCell {
                        id: cells.len(),
                        seed_idx,
                        policy_idx,
                        user_idx,
                        sim_seed: cell_stream(self.base_seed, seed_idx, user_idx),
                    });
                }
            }
        }
        cells
    }
}

/// Execution knobs for [`run_sweep`] (none of these may influence the
/// results — that is the engine's determinism contract).
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Worker threads; 0 means [`available_threads`].
    pub threads: usize,
    /// Record a per-cell JSONL event trace and metrics snapshot through
    /// the `SimObserver` stack (slower, more memory; results unchanged).
    pub instrument: bool,
    /// Stream the per-slot energy ledger through each cell's trace and
    /// audit conservation as the cell runs (implies a per-cell trace,
    /// like [`SweepOptions::instrument`]; results unchanged).
    pub ledger: bool,
    /// Record a logical-time span trace per cell (implies a per-cell
    /// trace; results unchanged).
    pub spans: bool,
    /// Stream cell-completion progress (counts, cells/s, ETA) to stderr.
    /// Purely cosmetic: the report and manifest stay byte-identical.
    pub progress: bool,
    /// The NN [`KernelPath`] every cell's simulation dispatches to. Both
    /// paths are bitwise identical, so this knob keeps the determinism
    /// contract trivially; it exists for scalar-vs-unrolled A/B runs.
    pub kernel_path: KernelPath,
}

impl SweepOptions {
    /// Whether any per-cell trace capture is requested.
    #[must_use]
    pub fn traced(&self) -> bool {
        self.instrument || self.ledger || self.spans
    }
}

/// A cell's captured telemetry (present when any of
/// [`SweepOptions::instrument`], [`SweepOptions::ledger`] or
/// [`SweepOptions::spans`] was set).
#[derive(Debug, Clone)]
pub struct CellTrace {
    /// The JSONL event trace, one event per line (includes the ledger
    /// flow lines when [`SweepOptions::ledger`] was set).
    pub jsonl: String,
    /// Total events emitted.
    pub events: u64,
    /// Aggregated metrics from the event stream.
    pub metrics: MetricsRegistry,
    /// The conservation audit (present when [`SweepOptions::ledger`]).
    pub audit: Option<LedgerAuditReport>,
    /// The span trace as JSONL (present when [`SweepOptions::spans`]),
    /// with ids based at `cell_id << 32` so shards concatenate safely.
    pub spans: Option<String>,
}

/// One evaluated cell.
#[derive(Debug, Clone)]
pub struct SweepCellResult {
    /// The cell's coordinates.
    pub cell: SweepCell,
    /// The simulation outcome.
    pub report: SimReport,
    /// Telemetry, when instrumented.
    pub trace: Option<CellTrace>,
}

/// The joined sweep: every cell in id order plus the grid it came from.
///
/// Aggregation ([`SweepReport::accuracy_aggregate`],
/// [`SweepReport::win_rate`]) is two-pass over the retained cells; the
/// fleet engine's [`FleetReport`](crate::fleet::FleetReport) produces
/// the same statistics from streamed [`OnlineStats`] without retaining
/// cells.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// The grid that was evaluated.
    pub grid: SweepGrid,
    /// Per-cell results, indexed by cell id.
    pub cells: Vec<SweepCellResult>,
}

impl SweepReport {
    /// Accuracies of policy arm `policy_idx`, ordered by (seed, user).
    #[must_use]
    pub fn accuracies(&self, policy_idx: usize) -> Vec<f64> {
        self.metric(policy_idx, SimReport::accuracy)
    }

    /// Completion rates of policy arm `policy_idx`, ordered by
    /// (seed, user).
    #[must_use]
    pub fn completion_rates(&self, policy_idx: usize) -> Vec<f64> {
        self.metric(policy_idx, SimReport::completion_rate)
    }

    fn metric(&self, policy_idx: usize, f: impl Fn(&SimReport) -> f64) -> Vec<f64> {
        self.cells
            .iter()
            .filter(|c| c.cell.policy_idx == policy_idx)
            .map(|c| f(&c.report))
            .collect()
    }

    /// Accuracy statistics of policy arm `policy_idx`.
    #[must_use]
    pub fn accuracy_aggregate(&self, policy_idx: usize) -> Aggregate {
        Aggregate::from_values(&self.accuracies(policy_idx))
    }

    /// Completion-rate statistics of policy arm `policy_idx`.
    #[must_use]
    pub fn completion_aggregate(&self, policy_idx: usize) -> Aggregate {
        Aggregate::from_values(&self.completion_rates(policy_idx))
    }

    /// Fraction of paired (seed, user) cells where arm `a` is strictly
    /// more accurate than arm `b`. Pairing is exact: both arms of a pair
    /// simulated the same world (see [`cell_stream`]).
    #[must_use]
    pub fn win_rate(&self, a: usize, b: usize) -> f64 {
        let av = self.accuracies(a);
        let bv = self.accuracies(b);
        if av.is_empty() || av.len() != bv.len() {
            return 0.0;
        }
        av.iter().zip(&bv).filter(|(x, y)| x > y).count() as f64 / av.len() as f64
    }

    /// The merged run manifest: grid configuration, per-arm aggregates,
    /// pairwise win rates against every baseline arm, and one child
    /// manifest per cell (with its metrics snapshot when instrumented).
    ///
    /// Byte-identical across thread counts: nothing here depends on
    /// wall-clock or scheduling (the determinism test pins this).
    #[must_use]
    pub fn to_manifest(&self, name: &str) -> RunManifest {
        let grid = &self.grid;
        let policy_list = grid
            .policies
            .iter()
            .map(SweepPolicy::label)
            .collect::<Vec<_>>()
            .join(", ");
        let mut manifest = RunManifest::new(name, grid.base_seed, &policy_list)
            .with_config("seeds", grid.seed_count)
            .with_config("users", grid.users.len())
            .with_config("policies", &policy_list)
            .with_config("cells", self.cells.len())
            .with_config("cells_total", grid.len())
            .with_config("cells_completed", self.cells.len());
        for (i, policy) in grid.policies.iter().enumerate() {
            let key = key_label(&policy.label());
            let acc = self.accuracy_aggregate(i);
            let com = self.completion_aggregate(i);
            manifest = manifest
                .with_result(&format!("{key}_accuracy_mean"), acc.mean.into())
                .with_result(&format!("{key}_accuracy_std"), acc.std.into())
                .with_result(&format!("{key}_accuracy_ci95"), acc.ci95.into())
                .with_result(&format!("{key}_completion_mean"), com.mean.into());
            for (suffix, value) in self.energy_means(i) {
                manifest = manifest.with_result(&format!("{key}_{suffix}"), value.into());
            }
        }
        for (i, policy) in grid.policies.iter().enumerate() {
            if policy.is_baseline() {
                continue;
            }
            for (j, baseline) in grid.policies.iter().enumerate() {
                if !baseline.is_baseline() {
                    continue;
                }
                let key = format!(
                    "{}_win_rate_vs_{}",
                    key_label(&policy.label()),
                    key_label(&baseline.label())
                );
                manifest = manifest.with_result(&key, self.win_rate(i, j).into());
            }
        }
        for cell in &self.cells {
            manifest = manifest.with_child(self.cell_manifest(cell));
        }
        manifest
    }

    fn cell_manifest(&self, result: &SweepCellResult) -> RunManifest {
        let cell = result.cell;
        let policy = &self.grid.policies[cell.policy_idx];
        let mut child = RunManifest::new(
            &format!("cell_{:04}", cell.id),
            cell.sim_seed,
            &policy.label(),
        )
        .with_config("seed_idx", cell.seed_idx)
        .with_config("user_idx", cell.user_idx)
        .with_config("user", self.grid.users[cell.user_idx as usize].user)
        .with_result("accuracy", result.report.accuracy().into())
        .with_result("completion_rate", result.report.completion_rate().into())
        .with_result("windows", JsonValue::from(result.report.windows))
        .with_result("attempts", JsonValue::from(result.report.attempts))
        .with_result("completions", JsonValue::from(result.report.completions));
        if let Some(trace) = &result.trace {
            child = child
                .with_metrics(&trace.metrics)
                .with_result("events", JsonValue::from(trace.events));
            if let Some(audit) = &trace.audit {
                child = child
                    .with_result("ledger_slots_audited", JsonValue::from(audit.slots_audited))
                    .with_result("ledger_max_residual_uj", audit.max_residual_uj.into())
                    .with_result("ledger_conserved", JsonValue::Bool(audit.conserved()));
            }
            if let Some(spans) = &trace.spans {
                child = child.with_result(
                    "span_records",
                    JsonValue::from(spans.lines().count() as u64),
                );
            }
        }
        child
    }

    /// Per-arm mean energy flows in µJ, as `(result-key suffix, mean)`
    /// pairs derived from each cell's [`SimReport::energy_breakdown`].
    fn energy_means(&self, policy_idx: usize) -> Vec<(&'static str, f64)> {
        let mean = |f: &dyn Fn(&SimReport) -> f64| {
            Aggregate::from_values(&self.metric(policy_idx, f)).mean
        };
        vec![
            (
                "offered_uj_mean",
                mean(&|r| r.energy_breakdown().offered.as_microjoules()),
            ),
            (
                "harvested_uj_mean",
                mean(&|r| r.energy_breakdown().harvested.as_microjoules()),
            ),
            (
                "consumed_uj_mean",
                mean(&|r| r.energy_breakdown().consumed.as_microjoules()),
            ),
            (
                "charge_loss_uj_mean",
                mean(&|r| r.energy_breakdown().charge_loss.as_microjoules()),
            ),
            (
                "clipped_uj_mean",
                mean(&|r| r.energy_breakdown().clipped.as_microjoules()),
            ),
            (
                "leaked_uj_mean",
                mean(&|r| r.energy_breakdown().leaked.as_microjoules()),
            ),
        ]
    }
}

/// Sanitizes a policy label into a manifest/metric key fragment
/// (shared with the fleet engine so both manifests speak the same
/// result-key vocabulary).
#[must_use]
pub(crate) fn key_label(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

/// Evaluates `grid` over `ctx` in parallel.
///
/// The context's trained models and deployment are shared (not cloned)
/// across all workers; fully-powered baseline arms additionally share one
/// steady-supply simulator. Cells run at the context's horizon.
///
/// # Errors
///
/// Returns the failing cell with the lowest id (deterministic even
/// though later cells may have failed too).
pub fn run_sweep<S: Scalar>(
    ctx: &ExperimentContext<S>,
    grid: &SweepGrid,
    opts: &SweepOptions,
) -> Result<SweepReport, CoreError> {
    let harvest_sim = ctx.simulator();
    let baseline_sim = fully_powered_simulator(Arc::clone(&ctx.models));
    let cells = grid.cells();
    let completed = AtomicUsize::new(0);
    let evaluate = |_: usize, cell: &SweepCell| {
        let outcome = run_cell(ctx, grid, &harvest_sim, &baseline_sim, *cell, opts);
        completed.fetch_add(1, Ordering::Relaxed);
        outcome
    };
    let outcomes = if opts.progress {
        map_with_progress(opts.threads, &cells, &completed, evaluate)
    } else {
        parallel_map(opts.threads, &cells, evaluate)
    };
    let mut results = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        results.push(outcome?);
    }
    Ok(SweepReport {
        grid: grid.clone(),
        cells: results,
    })
}

/// [`parallel_map`] with a stderr progress reporter: completed/total cell
/// counts, throughput and ETA, refreshed a few times a second
/// (formatting via [`ProgressMeter`], shared with the fleet engine).
///
/// Progress is wall-clock by nature and writes only to stderr; nothing
/// here can reach the results (the `sweep_determinism` test pins that
/// contract for the whole engine).
#[allow(clippy::disallowed_methods)]
fn map_with_progress<T: Sync, R: Send>(
    threads: usize,
    items: &[T],
    completed: &AtomicUsize,
    f: impl Fn(usize, &T) -> R + Sync,
) -> Vec<R> {
    use std::time::{Duration, Instant};
    let meter = ProgressMeter::new("sweep", "cells", items.len() as u64);
    let stop = AtomicBool::new(false);
    let started = Instant::now();
    std::thread::scope(|scope| {
        let reporter = scope.spawn(|| loop {
            std::thread::sleep(Duration::from_millis(250));
            let done = completed.load(Ordering::Relaxed) as u64;
            let secs = started.elapsed().as_secs_f64();
            if stop.load(Ordering::Relaxed) || done >= meter.total() {
                eprintln!("{}", meter.final_line(done, secs));
                break;
            }
            eprintln!("{}", meter.line(done, secs));
        });
        let out = parallel_map(threads, items, f);
        stop.store(true, Ordering::Relaxed);
        let _ = reporter.join();
        out
    })
}

fn run_cell<S: Scalar>(
    ctx: &ExperimentContext<S>,
    grid: &SweepGrid,
    harvest_sim: &Simulator<S>,
    baseline_sim: &Simulator<S>,
    cell: SweepCell,
    opts: &SweepOptions,
) -> Result<SweepCellResult, CoreError> {
    let policy = grid.policies[cell.policy_idx];
    let user = grid.users[cell.user_idx as usize];
    let mut config = SimConfig::new(PolicyKind::NaiveAllOn)
        .with_horizon(ctx.horizon)
        .with_seed(cell.sim_seed)
        .with_user(user)
        .with_kernel_path(opts.kernel_path);
    let sim = match policy {
        SweepPolicy::Policy(kind) => {
            config.policy = kind;
            harvest_sim
        }
        SweepPolicy::Baseline(kind) => {
            config.variant = kind.variant();
            baseline_sim
        }
    };
    if !opts.traced() {
        return Ok(SweepCellResult {
            cell,
            report: sim.run(&config)?,
            trace: None,
        });
    }
    // One statically-dispatched stack: the JSONL/metrics pair is always
    // present on a traced run, while the auditor and span recorder are
    // `Option` observers that stay inert (and keep `wants_ledger` false)
    // when their features are off.
    let auditor = opts.ledger.then(LedgerAuditor::default);
    let spans = opts.spans.then(|| {
        SpanObserver::for_cell(&format!("cell_{:04} {}", cell.id, policy.label()))
            .with_id_base((cell.id as u64) << 32)
    });
    let mut observer = Tee(
        Tee(JsonlObserver::new(Vec::new()), MetricsObserver::new()),
        Tee(auditor, spans),
    );
    let report = sim.run_observed(&config, &mut observer)?;
    let Tee(Tee(jsonl, metrics), Tee(auditor, spans)) = observer;
    let events = jsonl.events_written();
    let bytes = jsonl.finish().expect("Vec<u8> writes are infallible");
    Ok(SweepCellResult {
        cell,
        report,
        trace: Some(CellTrace {
            jsonl: String::from_utf8(bytes).expect("JSON output is UTF-8"),
            events,
            metrics: metrics.into_metrics(),
            audit: auditor.map(LedgerAuditor::into_report),
            spans: spans.map(|mut s| s.to_jsonl()),
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_models;
    use origin_core::experiments::Dataset;
    use origin_core::Deployment;
    use origin_types::SimDuration;

    #[test]
    fn policy_specs_parse() {
        assert_eq!(
            SweepPolicy::parse("origin12").unwrap(),
            SweepPolicy::Policy(PolicyKind::Origin { cycle: 12 })
        );
        assert_eq!(
            SweepPolicy::parse("AASR6").unwrap(),
            SweepPolicy::Policy(PolicyKind::Aasr { cycle: 6 })
        );
        assert_eq!(
            SweepPolicy::parse("aas3").unwrap(),
            SweepPolicy::Policy(PolicyKind::Aas { cycle: 3 })
        );
        assert_eq!(
            SweepPolicy::parse("rr9").unwrap(),
            SweepPolicy::Policy(PolicyKind::RoundRobin { cycle: 9 })
        );
        assert_eq!(
            SweepPolicy::parse("bl2").unwrap(),
            SweepPolicy::Baseline(BaselineKind::Baseline2)
        );
        assert_eq!(
            SweepPolicy::parse("naive").unwrap(),
            SweepPolicy::Policy(PolicyKind::NaiveAllOn)
        );
        assert!(SweepPolicy::parse("origin").is_err());
        assert!(SweepPolicy::parse("warp9").is_err());
        let list = SweepPolicy::parse_list("origin12, bl2").unwrap();
        assert_eq!(list.len(), 2);
    }

    #[test]
    fn cell_streams_are_decorrelated() {
        let a = cell_stream(77, 0, 0);
        let b = cell_stream(77, 1, 0);
        let c = cell_stream(77, 0, 1);
        let d = cell_stream(78, 0, 0);
        assert!(a != b && a != c && a != d && b != c);
        assert_eq!(a, cell_stream(77, 0, 0));
    }

    #[test]
    fn aggregate_statistics_are_textbook() {
        let agg = Aggregate::from_values(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(agg.n, 8);
        assert!((agg.mean - 5.0).abs() < 1e-12);
        // Sample std of this classic set is sqrt(32/7).
        assert!((agg.std - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert!((agg.ci95 - 1.96 * agg.std / 8.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(Aggregate::from_values(&[0.5]).ci95, 0.0);
        assert_eq!(Aggregate::from_values(&[]).n, 0);
    }

    #[test]
    fn grid_enumerates_row_major() {
        let grid = SweepGrid::new(
            7,
            vec![
                SweepPolicy::Policy(PolicyKind::Origin { cycle: 12 }),
                SweepPolicy::Baseline(BaselineKind::Baseline2),
            ],
        )
        .with_seeds(3)
        .with_sampled_users(2);
        assert_eq!(grid.len(), 12);
        let cells = grid.cells();
        assert_eq!(cells.len(), 12);
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.id, i);
        }
        // Policy does not enter the stream: paired arms share a world.
        assert_eq!(cells[0].sim_seed, cells[2].sim_seed);
        assert_ne!(cells[0].sim_seed, cells[1].sim_seed);
    }

    /// A small end-to-end sweep: aggregates, pairing and instrumentation.
    #[test]
    fn small_sweep_aggregates_and_instruments() {
        let ctx = ExperimentContext::from_parts(
            Dataset::Mhealth,
            bench_models(5),
            Deployment::builder().seed(5).build(),
            5,
        )
        .with_horizon(SimDuration::from_secs(120));
        let grid = SweepGrid::new(
            5,
            vec![
                SweepPolicy::Policy(PolicyKind::Origin { cycle: 12 }),
                SweepPolicy::Baseline(BaselineKind::Baseline2),
            ],
        )
        .with_seeds(2);
        let report = run_sweep(
            &ctx,
            &grid,
            &SweepOptions {
                threads: 2,
                instrument: true,
                ledger: true,
                spans: true,
                ..SweepOptions::default()
            },
        )
        .expect("sweep succeeds");
        assert_eq!(report.cells.len(), 4);
        let acc = report.accuracy_aggregate(0);
        assert_eq!(acc.n, 2);
        assert!(acc.mean > 0.0 && acc.mean <= 1.0);
        let win = report.win_rate(0, 1);
        assert!((0.0..=1.0).contains(&win));
        for cell in &report.cells {
            let trace = cell.trace.as_ref().expect("instrumented");
            assert_eq!(trace.jsonl.lines().count() as u64, trace.events);
            let audit = trace.audit.as_ref().expect("ledger audit captured");
            assert!(audit.slots_audited > 0);
            assert!(audit.conserved(), "residual {}", audit.max_residual_uj);
            let spans = trace.spans.as_ref().expect("span trace captured");
            assert!(spans.lines().count() > 0);
        }
        let manifest = report.to_manifest("sweep_test");
        assert_eq!(manifest.children.len(), 4);
        let parsed = RunManifest::parse(&manifest.render_pretty()).expect("manifest parses");
        assert_eq!(parsed, manifest);
        assert!(parsed
            .results
            .iter()
            .any(|(k, _)| k == "rr12_origin_win_rate_vs_bl_2"));
        assert!(parsed
            .results
            .iter()
            .any(|(k, _)| k == "rr12_origin_harvested_uj_mean"));
        assert!(parsed
            .children
            .iter()
            .all(|c| c.results.iter().any(|(k, _)| k == "ledger_conserved")));
    }
}
