//! Population-scale streaming sweep engine: sharded execution, O(1)
//! online accumulators, checkpoint/resume.
//!
//! The enumerated engine ([`run_sweep`](crate::sweep::run_sweep)) keeps
//! every cell result; fine for paper-scale grids, memory-bound long
//! before a million users. This module evaluates a **sampled population**
//! ([`PopulationSpec`]) instead, streaming every cell through per-shard
//! [`OnlineStats`] accumulators so memory stays O(shards × arms)
//! regardless of population size.
//!
//! Determinism contract (DESIGN.md §11 walks through the design):
//!
//! * the shard layout is a pure function of the plan — a *shard* is a
//!   contiguous range of *columns* (a column = one `(seed replica, user)`
//!   pair, running every policy arm back-to-back so the policy pairing of
//!   the enumerated engine is preserved exactly);
//! * workers race only for *which* shard to run next; each shard folds
//!   its own accumulators, and the final merge walks shards in index
//!   order — so the output is bitwise identical at any `--threads`;
//! * shard accumulator state serializes bit-exactly into the
//!   [`RunManifest`] ([`OnlineStats::encode`]); a run resumed from a
//!   checkpoint therefore finishes with **byte-identical** output to an
//!   uninterrupted run (`tests/sweep_determinism.rs` pins both claims).

use crate::stats::OnlineStats;
use crate::sweep::{cell_stream, key_label, SweepPolicy};
use origin_core::experiments::ExperimentContext;
use origin_core::{
    fully_powered_simulator, CoreError, PolicyKind, PopulationSpec, SimConfig, SimReport, Simulator,
};
use origin_nn::{KernelPath, Scalar};
use origin_telemetry::{JsonValue, ProgressMeter, RunManifest};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The description of one population sweep: which policies, how many
/// sampled users and seed replicas, and how the column space is sharded.
///
/// The plan is pure data — two equal plans always describe bit-identical
/// sweeps — and everything in it is stamped into the manifest so a
/// checkpoint can refuse to resume under a different plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetPlan {
    /// Base seed every cell stream and every population draw derives
    /// from.
    pub base_seed: u64,
    /// Number of seed replicas (each re-runs the same population under a
    /// fresh world).
    pub seed_count: u32,
    /// The policy arms, all run per column (paired, like the enumerated
    /// engine).
    pub policies: Vec<SweepPolicy>,
    /// Number of sampled users.
    pub population: u32,
    /// The population's parameter distributions.
    pub spec: PopulationSpec,
    /// Columns per shard (the checkpoint granularity).
    pub shard_size: u32,
}

/// The default [`FleetPlan::shard_size`]: small enough that checkpoints
/// are frequent at fleet scale, large enough that per-shard bookkeeping
/// is noise.
pub const DEFAULT_SHARD_SIZE: u32 = 4_096;

impl FleetPlan {
    /// A single-replica plan over `population` sampled users.
    ///
    /// # Panics
    ///
    /// Panics on an empty policy list or a zero population.
    #[must_use]
    pub fn new(base_seed: u64, policies: Vec<SweepPolicy>, population: u32) -> Self {
        assert!(!policies.is_empty(), "fleet plan needs at least one policy");
        assert!(population > 0, "fleet plan needs at least one user");
        Self {
            base_seed,
            seed_count: 1,
            policies,
            population,
            spec: PopulationSpec::default(),
            shard_size: DEFAULT_SHARD_SIZE,
        }
    }

    /// Sets the number of seed replicas. Builder-style.
    #[must_use]
    pub fn with_seeds(mut self, seed_count: u32) -> Self {
        self.seed_count = seed_count.max(1);
        self
    }

    /// Sets the shard size (columns per shard). Builder-style.
    #[must_use]
    pub fn with_shard_size(mut self, shard_size: u32) -> Self {
        self.shard_size = shard_size.max(1);
        self
    }

    /// Replaces the population distributions. Builder-style.
    #[must_use]
    pub fn with_spec(mut self, spec: PopulationSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Total columns: seed replicas × population.
    #[must_use]
    pub fn columns(&self) -> u64 {
        u64::from(self.seed_count) * u64::from(self.population)
    }

    /// Total cells: columns × policy arms.
    #[must_use]
    pub fn cells_total(&self) -> u64 {
        self.columns() * self.policies.len() as u64
    }

    /// Number of shards the column space splits into.
    #[must_use]
    pub fn shard_count(&self) -> u64 {
        self.columns().div_ceil(u64::from(self.shard_size))
    }

    /// Shard `shard`'s column range as `(first_column, length)`.
    #[must_use]
    pub fn shard_range(&self, shard: u64) -> (u64, u64) {
        let from = shard * u64::from(self.shard_size);
        let len = u64::from(self.shard_size).min(self.columns().saturating_sub(from));
        (from, len)
    }

    /// The manifest `config` entries that identify this plan (plus the
    /// run's horizon and dtype). Resume refuses a checkpoint whose
    /// fingerprint differs in any entry.
    #[must_use]
    pub fn fingerprint(&self, horizon_secs: u64, dtype: &str) -> Vec<(String, String)> {
        let policy_list = self
            .policies
            .iter()
            .map(SweepPolicy::label)
            .collect::<Vec<_>>()
            .join(", ");
        vec![
            ("mode".into(), "population".into()),
            ("seeds".into(), self.seed_count.to_string()),
            ("population".into(), self.population.to_string()),
            ("policies".into(), policy_list),
            ("shard_size".into(), self.shard_size.to_string()),
            ("horizon_secs".into(), horizon_secs.to_string()),
            ("dtype".into(), dtype.to_owned()),
            ("gait_spread".into(), self.spec.gait_spread.to_string()),
            ("harvest_sigma".into(), self.spec.harvest_sigma.to_string()),
            ("dwell_spread".into(), self.spec.dwell_spread.to_string()),
            ("snr_mean_db".into(), self.spec.snr_mean_db.to_string()),
            ("snr_std_db".into(), self.spec.snr_std_db.to_string()),
        ]
    }

    /// The unique manifest key fragment of arm `i` (index-prefixed so
    /// duplicate labels cannot collide in shard state).
    fn arm_state_key(&self, i: usize) -> String {
        format!("arm{i}_{}", key_label(&self.policies[i].label()))
    }
}

/// Streaming statistics of one policy arm: accuracy, completion rate and
/// the six energy-ledger channels, each an [`OnlineStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct ArmStats {
    /// Top-1 accuracy per cell.
    pub accuracy: OnlineStats,
    /// Window completion rate per cell.
    pub completion: OnlineStats,
    /// Offered (incident) energy per cell, µJ.
    pub offered_uj: OnlineStats,
    /// Harvested energy per cell, µJ.
    pub harvested_uj: OnlineStats,
    /// Consumed energy per cell, µJ.
    pub consumed_uj: OnlineStats,
    /// Charge-transfer loss per cell, µJ.
    pub charge_loss_uj: OnlineStats,
    /// Clipped (capacitor-full) energy per cell, µJ.
    pub clipped_uj: OnlineStats,
    /// Leaked energy per cell, µJ.
    pub leaked_uj: OnlineStats,
}

impl Default for ArmStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ArmStats {
    /// An empty arm accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            accuracy: OnlineStats::new(),
            completion: OnlineStats::new(),
            offered_uj: OnlineStats::new(),
            harvested_uj: OnlineStats::new(),
            consumed_uj: OnlineStats::new(),
            charge_loss_uj: OnlineStats::new(),
            clipped_uj: OnlineStats::new(),
            leaked_uj: OnlineStats::new(),
        }
    }

    /// Folds one cell's report in (the fleet engine's per-cell hot path).
    pub fn push(&mut self, report: &SimReport) {
        let e = report.energy_breakdown();
        self.accuracy.push(report.accuracy());
        self.completion.push(report.completion_rate());
        self.offered_uj.push(e.offered.as_microjoules());
        self.harvested_uj.push(e.harvested.as_microjoules());
        self.consumed_uj.push(e.consumed.as_microjoules());
        self.charge_loss_uj.push(e.charge_loss.as_microjoules());
        self.clipped_uj.push(e.clipped.as_microjoules());
        self.leaked_uj.push(e.leaked.as_microjoules());
    }

    /// Folds another arm accumulator in (fixed order — see
    /// [`OnlineStats::merge`]).
    pub fn merge(&mut self, other: &Self) {
        self.accuracy.merge(&other.accuracy);
        self.completion.merge(&other.completion);
        self.offered_uj.merge(&other.offered_uj);
        self.harvested_uj.merge(&other.harvested_uj);
        self.consumed_uj.merge(&other.consumed_uj);
        self.charge_loss_uj.merge(&other.charge_loss_uj);
        self.clipped_uj.merge(&other.clipped_uj);
        self.leaked_uj.merge(&other.leaked_uj);
    }

    /// Serializes all eight accumulators bit-exactly
    /// (`"/"`-joined [`OnlineStats::encode`] fields, fixed order).
    #[must_use]
    pub fn encode(&self) -> String {
        [
            &self.accuracy,
            &self.completion,
            &self.offered_uj,
            &self.harvested_uj,
            &self.consumed_uj,
            &self.charge_loss_uj,
            &self.clipped_uj,
            &self.leaked_uj,
        ]
        .map(OnlineStats::encode)
        .join("/")
    }

    /// Parses [`ArmStats::encode`] output back, bit-exactly.
    ///
    /// # Errors
    ///
    /// Describes the malformed field when `text` is not an eight-field
    /// encoding.
    pub fn decode(text: &str) -> Result<Self, String> {
        let fields: Vec<&str> = text.split('/').collect();
        if fields.len() != 8 {
            return Err(format!(
                "arm state has {} fields, expected 8: {text:?}",
                fields.len()
            ));
        }
        let stat = |i: usize| OnlineStats::decode(fields[i]);
        Ok(Self {
            accuracy: stat(0)?,
            completion: stat(1)?,
            offered_uj: stat(2)?,
            harvested_uj: stat(3)?,
            consumed_uj: stat(4)?,
            charge_loss_uj: stat(5)?,
            clipped_uj: stat(6)?,
            leaked_uj: stat(7)?,
        })
    }

    /// The manifest `results` entries for this arm under key fragment
    /// `key` — the same `*_uj_mean` family the enumerated engine emits,
    /// plus the streaming extras (CI, min, max).
    #[must_use]
    pub fn result_entries(&self, key: &str) -> Vec<(String, JsonValue)> {
        vec![
            (format!("{key}_n"), JsonValue::from(self.accuracy.n())),
            (format!("{key}_accuracy_mean"), self.accuracy.mean().into()),
            (format!("{key}_accuracy_std"), self.accuracy.std().into()),
            (format!("{key}_accuracy_ci95"), self.accuracy.ci95().into()),
            (format!("{key}_accuracy_min"), self.accuracy.min().into()),
            (format!("{key}_accuracy_max"), self.accuracy.max().into()),
            (
                format!("{key}_completion_mean"),
                self.completion.mean().into(),
            ),
            (
                format!("{key}_offered_uj_mean"),
                self.offered_uj.mean().into(),
            ),
            (
                format!("{key}_harvested_uj_mean"),
                self.harvested_uj.mean().into(),
            ),
            (
                format!("{key}_consumed_uj_mean"),
                self.consumed_uj.mean().into(),
            ),
            (
                format!("{key}_charge_loss_uj_mean"),
                self.charge_loss_uj.mean().into(),
            ),
            (
                format!("{key}_clipped_uj_mean"),
                self.clipped_uj.mean().into(),
            ),
            (
                format!("{key}_leaked_uj_mean"),
                self.leaked_uj.mean().into(),
            ),
        ]
    }
}

/// One completed shard's accumulator state: per-arm statistics plus the
/// strict pairwise win counts of its columns.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardState {
    /// Shard index in the plan's layout.
    pub shard: u64,
    /// Columns this shard folded (always the full [`FleetPlan::shard_range`]
    /// length — only whole shards are checkpointed).
    pub columns: u64,
    /// Per-arm accumulators, indexed like [`FleetPlan::policies`].
    pub arms: Vec<ArmStats>,
    /// Flattened strict-win counts: `wins[a * arms + b]` counts columns
    /// where arm `a`'s accuracy strictly exceeded arm `b`'s.
    pub wins: Vec<u64>,
}

impl ShardState {
    fn empty(shard: u64, arm_count: usize) -> Self {
        Self {
            shard,
            columns: 0,
            arms: vec![ArmStats::new(); arm_count],
            wins: vec![0; arm_count * arm_count],
        }
    }

    /// Renders this shard as a checkpoint child manifest. All state goes
    /// into `config` entries (strings), so nothing passes through JSON
    /// float formatting.
    #[must_use]
    pub fn to_child(&self, plan: &FleetPlan) -> RunManifest {
        let (from, _) = plan.shard_range(self.shard);
        let mut child = RunManifest::new(&shard_name(self.shard), plan.base_seed, "")
            .with_config("shard", self.shard)
            .with_config("columns_from", from)
            .with_config("columns", self.columns);
        for (i, arm) in self.arms.iter().enumerate() {
            child = child.with_config(&plan.arm_state_key(i), arm.encode());
        }
        let wins = self
            .wins
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(",");
        child.with_config("wins", wins)
    }

    /// Parses a checkpoint child back into shard state, bit-exactly.
    ///
    /// # Errors
    ///
    /// Describes the first missing or malformed entry.
    pub fn from_child(child: &RunManifest, plan: &FleetPlan) -> Result<Self, String> {
        let shard = child
            .config_u64("shard")
            .ok_or_else(|| format!("checkpoint child {:?} has no shard index", child.name))?;
        if shard >= plan.shard_count() {
            return Err(format!(
                "checkpoint shard {shard} is outside the plan's {} shards",
                plan.shard_count()
            ));
        }
        let columns = child
            .config_u64("columns")
            .ok_or_else(|| format!("shard {shard} checkpoint has no column count"))?;
        let (_, expected) = plan.shard_range(shard);
        if columns != expected {
            return Err(format!(
                "shard {shard} checkpoint covers {columns} columns, expected {expected}"
            ));
        }
        let arm_count = plan.policies.len();
        let mut arms = Vec::with_capacity(arm_count);
        for i in 0..arm_count {
            let key = plan.arm_state_key(i);
            let encoded = child
                .config_value(&key)
                .ok_or_else(|| format!("shard {shard} checkpoint is missing arm state {key:?}"))?;
            arms.push(ArmStats::decode(encoded)?);
        }
        let wins = child
            .config_value("wins")
            .ok_or_else(|| format!("shard {shard} checkpoint is missing win counts"))?
            .split(',')
            .map(|w| {
                w.parse::<u64>()
                    .map_err(|e| format!("shard {shard} win count {w:?}: {e}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        if wins.len() != arm_count * arm_count {
            return Err(format!(
                "shard {shard} checkpoint has {} win counts, expected {}",
                wins.len(),
                arm_count * arm_count
            ));
        }
        Ok(Self {
            shard,
            columns,
            arms,
            wins,
        })
    }
}

fn shard_name(shard: u64) -> String {
    format!("shard_{shard:05}")
}

/// Execution knobs for [`run_fleet`]. Like the enumerated engine's
/// options, none of these may influence the results — threads, progress,
/// checkpoint cadence and resume state only change *how* the answer is
/// computed, never the answer.
#[derive(Debug, Clone, Default)]
pub struct FleetOptions {
    /// Worker threads; 0 means all available.
    pub threads: usize,
    /// Stream cell-completion progress to stderr (cosmetic only).
    pub progress: bool,
    /// Write a checkpoint manifest after every N completed shards
    /// (0 = off). Requires [`FleetOptions::checkpoint_path`].
    pub checkpoint_every: u64,
    /// Where checkpoints land (atomically: temp file + rename).
    pub checkpoint_path: Option<PathBuf>,
    /// Shard states recovered from a checkpoint
    /// ([`resume_states`]); completed shards are not re-run.
    pub resume: Option<Vec<Option<ShardState>>>,
    /// Run at most this many (incomplete) shards, then stop with a
    /// partial report — the time-boxing/interruption hook the
    /// checkpoint/resume tests drive.
    pub max_shards: Option<u64>,
    /// The manifest name checkpoints are written under.
    pub manifest_name: String,
    /// The kernel dtype label stamped into the manifest fingerprint
    /// ("f64"/"f32" — [`crate::Precision::label`]).
    pub dtype: String,
    /// The NN [`KernelPath`] every cell's simulation dispatches to. Both
    /// paths are bitwise identical, so this never changes the report —
    /// it exists for scalar-vs-unrolled A/B verification runs.
    pub kernel_path: KernelPath,
}

/// The outcome of a fleet run: merged per-arm statistics, pairwise win
/// counts, and every shard's state (for the manifest's audit trail and
/// for resumption when the run was partial).
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The plan that was executed.
    pub plan: FleetPlan,
    /// The horizon the cells ran at, whole seconds.
    pub horizon_secs: u64,
    /// The kernel dtype ("f64"/"f32").
    pub dtype: String,
    /// Merged per-arm statistics over all completed shards (merged in
    /// shard-index order).
    pub arms: Vec<ArmStats>,
    /// Merged strict pairwise win counts (`wins[a * arms + b]`).
    pub wins: Vec<u64>,
    /// Columns completed (equals [`FleetPlan::columns`] when complete).
    pub columns_done: u64,
    /// Per-shard states; `None` for shards not yet run (partial runs).
    pub shards: Vec<Option<ShardState>>,
    /// The manifest name ([`FleetOptions::manifest_name`]).
    pub name: String,
}

impl FleetReport {
    /// Whether every shard completed.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.columns_done == self.plan.columns()
    }

    /// Fraction of completed columns where arm `a`'s accuracy strictly
    /// exceeded arm `b`'s. Columns are paired: both arms simulated the
    /// same world (same [`cell_stream`] seed, same sampled user).
    #[must_use]
    pub fn win_rate(&self, a: usize, b: usize) -> f64 {
        if self.columns_done == 0 {
            return 0.0;
        }
        self.wins[a * self.plan.policies.len() + b] as f64 / self.columns_done as f64
    }

    /// Renders the run (or checkpoint — same format) as a manifest:
    /// the plan fingerprint and completion counters in `config`, the
    /// merged per-arm statistics and pairwise win rates in `results`,
    /// and one child per completed shard carrying its bit-exact
    /// accumulator state.
    #[must_use]
    pub fn to_manifest(&self) -> RunManifest {
        let plan = &self.plan;
        let policy_list = plan
            .policies
            .iter()
            .map(SweepPolicy::label)
            .collect::<Vec<_>>()
            .join(", ");
        let mut manifest = RunManifest::new(&self.name, plan.base_seed, &policy_list);
        for (key, value) in plan.fingerprint(self.horizon_secs, &self.dtype) {
            manifest = manifest.with_config(&key, value);
        }
        manifest = manifest
            .with_config("columns", plan.columns())
            .with_config("columns_done", self.columns_done)
            .with_config("shards_total", plan.shard_count())
            .with_config(
                "shards_done",
                self.shards.iter().filter(|s| s.is_some()).count(),
            )
            .with_config("cells_total", plan.cells_total())
            .with_config(
                "cells_completed",
                self.columns_done * plan.policies.len() as u64,
            );
        for (i, policy) in plan.policies.iter().enumerate() {
            let key = key_label(&policy.label());
            for (k, v) in self.arms[i].result_entries(&key) {
                manifest = manifest.with_result(&k, v);
            }
        }
        for (a, pa) in plan.policies.iter().enumerate() {
            for (b, pb) in plan.policies.iter().enumerate() {
                if a == b {
                    continue;
                }
                let key = format!(
                    "{}_win_rate_vs_{}",
                    key_label(&pa.label()),
                    key_label(&pb.label())
                );
                manifest = manifest.with_result(&key, self.win_rate(a, b).into());
            }
        }
        for state in self.shards.iter().flatten() {
            manifest = manifest.with_child(state.to_child(plan));
        }
        manifest
    }
}

/// Recovers per-shard states from a checkpoint manifest, refusing any
/// checkpoint whose plan fingerprint (seeds, population, policies, shard
/// size, horizon, dtype, distributions) differs from `plan`.
///
/// # Errors
///
/// Describes the first mismatched fingerprint entry or malformed shard
/// child.
pub fn resume_states(
    checkpoint: &RunManifest,
    plan: &FleetPlan,
    horizon_secs: u64,
    dtype: &str,
) -> Result<Vec<Option<ShardState>>, String> {
    if checkpoint.seed != plan.base_seed {
        return Err(format!(
            "checkpoint base seed {} does not match the requested {}",
            checkpoint.seed, plan.base_seed
        ));
    }
    for (key, expected) in plan.fingerprint(horizon_secs, dtype) {
        match checkpoint.config_value(&key) {
            Some(found) if found == expected => {}
            Some(found) => {
                return Err(format!(
                    "checkpoint {key} = {found:?} does not match the requested {expected:?}"
                ))
            }
            None => return Err(format!("checkpoint has no {key:?} config entry")),
        }
    }
    let mut states: Vec<Option<ShardState>> =
        vec![None; usize::try_from(plan.shard_count()).unwrap_or(usize::MAX)];
    for child in &checkpoint.children {
        let state = ShardState::from_child(child, plan)?;
        let slot = usize::try_from(state.shard).map_err(|_| "shard index overflow".to_owned())?;
        states[slot] = Some(state);
    }
    Ok(states)
}

/// Evaluates `plan` over `ctx`, streaming every cell through shard
/// accumulators.
///
/// Memory is O(shards × arms): no cell result is retained. With
/// [`FleetOptions::checkpoint_every`] set, completed-shard state is
/// serialized to [`FleetOptions::checkpoint_path`] as the run goes;
/// passing recovered state back through [`FleetOptions::resume`] skips
/// those shards and still produces byte-identical final output.
///
/// # Errors
///
/// Returns the failing shard with the lowest index (deterministic even
/// though later shards may have failed too).
///
/// # Panics
///
/// Panics when a checkpoint file cannot be written (the experiment
/// binaries' error channel).
pub fn run_fleet<S: Scalar>(
    ctx: &ExperimentContext<S>,
    plan: &FleetPlan,
    opts: &FleetOptions,
) -> Result<FleetReport, CoreError> {
    let horizon_secs = ctx.horizon.as_micros() / 1_000_000;
    let harvest_sim = ctx.simulator();
    let baseline_sim = fully_powered_simulator(Arc::clone(&ctx.models));
    let shard_count = usize::try_from(plan.shard_count()).unwrap_or(usize::MAX);
    let states = match &opts.resume {
        Some(recovered) => {
            assert_eq!(
                recovered.len(),
                shard_count,
                "resume state does not match the plan's shard count"
            );
            recovered.clone()
        }
        None => vec![None; shard_count],
    };
    let arms = plan.policies.len();
    let resumed_columns: u64 = states.iter().flatten().map(|s| s.columns).sum();
    let todo: Vec<u64> = {
        let mut todo: Vec<u64> = (0..plan.shard_count())
            .filter(|&s| states[usize::try_from(s).unwrap_or(usize::MAX)].is_none())
            .collect();
        if let Some(max) = opts.max_shards {
            todo.truncate(usize::try_from(max).unwrap_or(usize::MAX));
        }
        todo
    };
    let todo_count = todo.len() as u64;

    let cells_done = AtomicU64::new(resumed_columns * arms as u64);
    let shards_done_this_run = AtomicU64::new(0);
    let shared = Mutex::new(states);
    let errors: Mutex<Vec<(u64, CoreError)>> = Mutex::new(Vec::new());
    let next = AtomicUsize::new(0);
    let threads = if opts.threads == 0 {
        crate::sweep::available_threads()
    } else {
        opts.threads
    }
    .min(todo.len().max(1));

    let worker = || loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        let Some(&shard) = todo.get(i) else { break };
        match run_shard(
            ctx,
            plan,
            &harvest_sim,
            &baseline_sim,
            shard,
            opts.kernel_path,
            &cells_done,
        ) {
            Ok(state) => {
                let done = shards_done_this_run.fetch_add(1, Ordering::Relaxed) + 1;
                let snapshot = {
                    let mut guard = shared.lock().expect("shard state lock poisoned");
                    guard[usize::try_from(shard).unwrap_or(usize::MAX)] = Some(state);
                    let due = opts.checkpoint_every > 0
                        && opts.checkpoint_path.is_some()
                        && (done.is_multiple_of(opts.checkpoint_every) || done == todo_count);
                    due.then(|| guard.clone())
                };
                if let Some(snapshot) = snapshot {
                    if let Some(path) = &opts.checkpoint_path {
                        write_checkpoint(
                            path,
                            &assemble(plan, horizon_secs, snapshot, opts, arms).to_manifest(),
                            done,
                        );
                    }
                }
            }
            Err(e) => {
                errors.lock().expect("error lock poisoned").push((shard, e));
                break;
            }
        }
    };

    if opts.progress {
        run_workers_with_progress(plan, threads, &cells_done, &worker);
    } else {
        std::thread::scope(|scope| {
            for _ in 1..threads {
                scope.spawn(worker);
            }
            worker();
        });
    }

    let mut failures = errors.into_inner().expect("error lock poisoned");
    failures.sort_by_key(|(shard, _)| *shard);
    if let Some((_, error)) = failures.into_iter().next() {
        return Err(error);
    }
    let states = shared.into_inner().expect("shard state lock poisoned");
    Ok(assemble(plan, horizon_secs, states, opts, arms))
}

/// Merges shard states in index order into the final report — the one
/// place merge order is decided, so it cannot vary with scheduling.
fn assemble(
    plan: &FleetPlan,
    horizon_secs: u64,
    states: Vec<Option<ShardState>>,
    opts: &FleetOptions,
    arms: usize,
) -> FleetReport {
    let mut merged = vec![ArmStats::new(); arms];
    let mut wins = vec![0u64; arms * arms];
    let mut columns_done = 0u64;
    for state in states.iter().flatten() {
        for (into, from) in merged.iter_mut().zip(&state.arms) {
            into.merge(from);
        }
        for (into, from) in wins.iter_mut().zip(&state.wins) {
            *into += from;
        }
        columns_done += state.columns;
    }
    FleetReport {
        plan: plan.clone(),
        horizon_secs,
        dtype: opts.dtype.clone(),
        arms: merged,
        wins,
        columns_done,
        shards: states,
        name: opts.manifest_name.clone(),
    }
}

/// Runs one shard's columns, folding every cell into fresh accumulators.
#[allow(clippy::too_many_arguments)]
fn run_shard<S: Scalar>(
    ctx: &ExperimentContext<S>,
    plan: &FleetPlan,
    harvest_sim: &Simulator<S>,
    baseline_sim: &Simulator<S>,
    shard: u64,
    kernel_path: KernelPath,
    cells_done: &AtomicU64,
) -> Result<ShardState, CoreError> {
    let arms = plan.policies.len();
    let (from, len) = plan.shard_range(shard);
    let mut state = ShardState::empty(shard, arms);
    let mut accuracies = vec![0.0f64; arms];
    for column in from..from + len {
        let seed_idx = u32::try_from(column / u64::from(plan.population)).unwrap_or(u32::MAX);
        let user_idx = u32::try_from(column % u64::from(plan.population)).unwrap_or(u32::MAX);
        let user = plan.spec.sample_user(plan.base_seed, user_idx);
        let sim_seed = cell_stream(plan.base_seed, seed_idx, user_idx);
        for (i, policy) in plan.policies.iter().enumerate() {
            let mut config = SimConfig::new(PolicyKind::NaiveAllOn)
                .with_horizon(ctx.horizon)
                .with_seed(sim_seed)
                .with_user(user.profile)
                .with_dwell_scale(user.dwell_scale)
                .with_harvest_scale(user.harvest_scale)
                .with_noise_snr(user.snr_db)
                .with_kernel_path(kernel_path);
            let sim = match policy {
                SweepPolicy::Policy(kind) => {
                    config.policy = *kind;
                    harvest_sim
                }
                SweepPolicy::Baseline(kind) => {
                    config.variant = kind.variant();
                    baseline_sim
                }
            };
            let report = sim.run(&config)?;
            accuracies[i] = report.accuracy();
            state.arms[i].push(&report);
        }
        for a in 0..arms {
            for b in 0..arms {
                if a != b && accuracies[a] > accuracies[b] {
                    state.wins[a * arms + b] += 1;
                }
            }
        }
        state.columns += 1;
        cells_done.fetch_add(arms as u64, Ordering::Relaxed);
    }
    Ok(state)
}

/// The worker pool plus a stderr heartbeat thread. Wall-clock by nature
/// and stderr-only by contract: nothing here can reach the results.
#[allow(clippy::disallowed_methods)]
fn run_workers_with_progress(
    plan: &FleetPlan,
    threads: usize,
    cells_done: &AtomicU64,
    worker: &(impl Fn() + Sync),
) {
    use std::time::{Duration, Instant};
    let meter = ProgressMeter::new("fleet", "cells", plan.cells_total());
    let stop = AtomicBool::new(false);
    let started = Instant::now();
    std::thread::scope(|scope| {
        let reporter = scope.spawn(|| loop {
            std::thread::sleep(Duration::from_millis(250));
            let done = cells_done.load(Ordering::Relaxed);
            let secs = started.elapsed().as_secs_f64();
            if stop.load(Ordering::Relaxed) || done >= meter.total() {
                eprintln!("{}", meter.final_line(done, secs));
                break;
            }
            eprintln!("{}", meter.line(done, secs));
        });
        for _ in 1..threads {
            scope.spawn(worker);
        }
        worker();
        stop.store(true, Ordering::Relaxed);
        let _ = reporter.join();
    });
}

/// Atomically replaces the checkpoint at `path` (unique temp file +
/// rename, so an interrupted write can never corrupt a resumable
/// checkpoint). Concurrent writers each use their own temp file; the
/// last rename wins.
fn write_checkpoint(path: &Path, manifest: &RunManifest, token: u64) {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .unwrap_or_else(|e| panic!("cannot create {parent:?}: {e}"));
        }
    }
    let mut text = manifest.render_pretty();
    text.push('\n');
    let tmp = path.with_extension(format!("tmp{token}"));
    std::fs::write(&tmp, text).unwrap_or_else(|e| panic!("cannot write {tmp:?}: {e}"));
    std::fs::rename(&tmp, path)
        .unwrap_or_else(|e| panic!("cannot move checkpoint to {path:?}: {e}"));
    eprintln!("checkpoint: {} ({} shards banked)", path.display(), token);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FleetPlan {
        FleetPlan::new(
            7,
            vec![
                SweepPolicy::Policy(PolicyKind::Origin { cycle: 12 }),
                SweepPolicy::Policy(PolicyKind::RoundRobin { cycle: 12 }),
            ],
            10,
        )
        .with_seeds(2)
        .with_shard_size(3)
    }

    #[test]
    fn shard_layout_covers_the_column_space_exactly() {
        let p = plan();
        assert_eq!(p.columns(), 20);
        assert_eq!(p.cells_total(), 40);
        assert_eq!(p.shard_count(), 7);
        let mut covered = 0;
        for s in 0..p.shard_count() {
            let (from, len) = p.shard_range(s);
            assert_eq!(from, covered);
            covered += len;
            assert!(len >= 1 && len <= 3);
        }
        assert_eq!(covered, p.columns());
        assert_eq!(p.shard_range(6), (18, 2), "last shard is short");
    }

    #[test]
    fn shard_state_round_trips_bit_exactly_through_a_child_manifest() {
        let p = plan();
        let mut state = ShardState::empty(3, 2);
        state.columns = 3;
        for x in [0.25, -0.0, 1e-300] {
            state.arms[0].accuracy.push(x);
            state.arms[1].harvested_uj.push(x * 3.0);
        }
        state.wins = vec![0, 2, 1, 0];
        let child = state.to_child(&p);
        let back = ShardState::from_child(&child, &p).expect("round-trips");
        assert_eq!(back, state);
        assert_eq!(back.arms[0].encode(), state.arms[0].encode());
    }

    #[test]
    fn resume_rejects_fingerprint_drift() {
        let p = plan();
        let report = FleetReport {
            plan: p.clone(),
            horizon_secs: 60,
            dtype: "f64".into(),
            arms: vec![ArmStats::new(); 2],
            wins: vec![0; 4],
            columns_done: 0,
            shards: vec![None; 7],
            name: "fleet".into(),
        };
        let manifest = report.to_manifest();
        assert!(resume_states(&manifest, &p, 60, "f64").is_ok());
        assert!(resume_states(&manifest, &p, 61, "f64")
            .unwrap_err()
            .contains("horizon_secs"));
        assert!(resume_states(&manifest, &p, 60, "f32")
            .unwrap_err()
            .contains("dtype"));
        let bigger = p.clone().with_shard_size(5);
        assert!(resume_states(&manifest, &bigger, 60, "f64")
            .unwrap_err()
            .contains("shard_size"));
        let mut other_seed = p;
        other_seed.base_seed = 8;
        assert!(resume_states(&manifest, &other_seed, 60, "f64")
            .unwrap_err()
            .contains("base seed"));
    }
}
