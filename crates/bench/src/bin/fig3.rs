//! Prints the Fig. 3 extended round-robin slot layouts.
//!
//! Usage: `cargo run -p origin-bench --bin fig3 --release`

use origin_core::{SlotKind, Slots};
use origin_types::SensorLocation;

fn main() {
    println!("# Fig. 3 — extended round-robin schedules (S = sensor slot, -- = no-op)");
    for cycle in [3u8, 6, 9, 12] {
        let slots = Slots::paper(cycle);
        let layout: Vec<String> = slots
            .layout()
            .iter()
            .map(|kind| match kind {
                SlotKind::Sensor { ordinal } => {
                    let loc = SensorLocation::from_index(*ordinal).expect("three slots");
                    format!("[{}]", short(loc))
                }
                SlotKind::NoOp => "[  --  ]".to_owned(),
            })
            .collect();
        println!(
            "RR{cycle:<3} ({} no-ops, duty {:>5.1}%):",
            slots.noops(),
            slots.duty_fraction() * 100.0
        );
        println!("  {}", layout.join(" "));
    }
    println!("\nEach policy is named after the number of slots in the cycle;");
    println!("RR3 has 3 nodes and no no-ops, RR6 has 3 nodes and 3 no-ops, etc.");
}

fn short(loc: SensorLocation) -> &'static str {
    match loc {
        SensorLocation::Chest => " Chest",
        SensorLocation::LeftAnkle => "L.Ankle",
        SensorLocation::RightWrist => "R.Wrist",
    }
}
