//! Regenerates Fig. 1: inference completion under naive scheduling.
//!
//! Usage: `cargo run -p origin-bench --bin fig1 --release [seed]`

use origin_core::experiments::{run_fig1, Dataset, ExperimentContext};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(77);
    let ctx = ExperimentContext::new(Dataset::Mhealth, seed).expect("training succeeds");
    let r = run_fig1(&ctx).expect("simulation succeeds");

    println!("# Fig. 1 — completion on harvested energy, naive scheduling (seed {seed})");
    println!("\n(a) all three sensors attempt every window:");
    println!("    all succeed     {:>6.1}%   (paper:  1%)", r.naive_all * 100.0);
    println!("    at least one    {:>6.1}%   (paper:  9%)", r.naive_some * 100.0);
    println!("    failed          {:>6.1}%   (paper: 90%)", r.naive_none * 100.0);
    println!("\n(b) plain round-robin (RR3):");
    println!("    succeed         {:>6.1}%   (paper: 28%)", r.rr3_succeed * 100.0);
    println!("    failed          {:>6.1}%   (paper: 72%)", r.rr3_fail * 100.0);
}
