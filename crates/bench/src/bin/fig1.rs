//! Regenerates Fig. 1: inference completion under naive scheduling.
//!
//! Usage: `cargo run -p origin-bench --bin fig1 --release [seed] [--json <path>]`
//!
//! `--json` writes a machine-readable run manifest (see EXPERIMENTS.md
//! §Telemetry) with the five completion rates as results.

use origin_bench::BenchArgs;
use origin_core::experiments::{run_fig1, Dataset, ExperimentContext};
use origin_telemetry::{JsonValue, RunManifest};

fn main() {
    let args = BenchArgs::parse();
    let seed = args.u64_at(0, 77);
    let ctx = ExperimentContext::<f64>::new(Dataset::Mhealth, seed).expect("training succeeds");
    let r = run_fig1(&ctx).expect("simulation succeeds");

    println!("# Fig. 1 — completion on harvested energy, naive scheduling (seed {seed})");
    println!("\n(a) all three sensors attempt every window:");
    println!(
        "    all succeed     {:>6.1}%   (paper:  1%)",
        r.naive_all * 100.0
    );
    println!(
        "    at least one    {:>6.1}%   (paper:  9%)",
        r.naive_some * 100.0
    );
    println!(
        "    failed          {:>6.1}%   (paper: 90%)",
        r.naive_none * 100.0
    );
    println!("\n(b) plain round-robin (RR3):");
    println!(
        "    succeed         {:>6.1}%   (paper: 28%)",
        r.rr3_succeed * 100.0
    );
    println!(
        "    failed          {:>6.1}%   (paper: 72%)",
        r.rr3_fail * 100.0
    );

    let manifest = RunManifest::new("fig1", seed, "Naive / RR3")
        .with_config("dataset", Dataset::Mhealth.label())
        .with_result("naive_all", JsonValue::from(r.naive_all))
        .with_result("naive_some", JsonValue::from(r.naive_some))
        .with_result("naive_none", JsonValue::from(r.naive_none))
        .with_result("rr3_succeed", JsonValue::from(r.rr3_succeed))
        .with_result("rr3_fail", JsonValue::from(r.rr3_fail));
    args.write_manifest(&manifest);
}
