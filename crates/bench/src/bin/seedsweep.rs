//! Robustness diagnostic: the headline Origin-vs-BL-2 comparison across
//! eight seeds (models retrained per seed). See EXPERIMENTS.md, Table I
//! notes.
//!
//! Usage: `cargo run -p origin-bench --bin seedsweep --release`

use origin_core::experiments::{Dataset, ExperimentContext};
use origin_core::{run_baseline, BaselineKind, PolicyKind, SimConfig};

fn main() {
    for seed in [1u64, 7, 21, 42, 77, 101, 123, 200] {
        let ctx = ExperimentContext::<f64>::new(Dataset::Mhealth, seed).unwrap();
        let sim = ctx.simulator();
        let base = SimConfig::new(PolicyKind::Origin { cycle: 12 }).with_seed(seed);
        let origin = sim.run(&base).unwrap();
        let aasr = sim
            .run(&SimConfig {
                policy: PolicyKind::Aasr { cycle: 12 },
                ..base.clone()
            })
            .unwrap();
        let bl2 = run_baseline(BaselineKind::Baseline2, &ctx.models, &base).unwrap();
        let bl1 = run_baseline(BaselineKind::Baseline1, &ctx.models, &base).unwrap();
        println!(
            "seed {seed:>4}: Origin {:.2} AASR {:.2} BL-2 {:.2} BL-1 {:.2}  (O-BL2 {:+.2})",
            origin.accuracy() * 100.0,
            aasr.accuracy() * 100.0,
            bl2.report.accuracy() * 100.0,
            bl1.report.accuracy() * 100.0,
            (origin.accuracy() - bl2.report.accuracy()) * 100.0,
        );
    }
}
