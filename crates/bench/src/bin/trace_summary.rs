//! Renders a flamegraph-style self-time table from logical-time span
//! traces.
//!
//! Span traces are JSONL files of `SpanRecord`s keyed to simulation
//! slots (never wall clocks) — `sweep --spans PATH` writes one, and any
//! harness can via `SpanObserver::to_jsonl`. This binary aggregates one
//! or more trace files by span path (`sim_run;policy_step;nn_kernel`)
//! and prints total vs self ticks per path, most self-time first.
//!
//! Usage: `cargo run -p origin-bench --bin trace_summary --
//! <spans.jsonl> [more.jsonl ...]`
//!
//! Records from different files are re-based into disjoint id spaces
//! before aggregation, so summarizing several per-shard traces together
//! is safe even when their span ids overlap.

use origin_telemetry::{JsonValue, SpanRecord, SpanSummary};

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: trace_summary <spans.jsonl> [more.jsonl ...]");
        std::process::exit(2);
    }

    let mut records: Vec<SpanRecord> = Vec::new();
    let mut skipped = 0usize;
    let mut id_base = 0u64;
    for path in &paths {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let mut file_max = 0u64;
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let record = JsonValue::parse(line)
                .ok()
                .as_ref()
                .and_then(SpanRecord::from_json);
            match record {
                Some(mut record) => {
                    record.id += id_base;
                    if let Some(parent) = record.parent.as_mut() {
                        *parent += id_base;
                    }
                    file_max = file_max.max(record.id);
                    records.push(record);
                }
                None => skipped += 1,
            }
        }
        id_base = file_max + 1;
    }
    if skipped > 0 {
        eprintln!("warning: skipped {skipped} non-span lines");
    }
    if records.is_empty() {
        eprintln!("no span records found in {} file(s)", paths.len());
        std::process::exit(1);
    }

    let summary = SpanSummary::from_records(&records);
    println!(
        "{} spans over {} root ticks ({} file(s))",
        records.len(),
        summary.root_ticks,
        paths.len()
    );
    print!("{}", summary.render());
}
