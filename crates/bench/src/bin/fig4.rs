//! Regenerates Fig. 4: plain ER-r vs AAS per activity across RR depths.
//!
//! Usage: `cargo run -p origin-bench --bin fig4 --release [seed]`

use origin_core::experiments::{run_fig4, Dataset, ExperimentContext};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(77);
    let ctx = ExperimentContext::<f64>::new(Dataset::Mhealth, seed).expect("training succeeds");
    let r = run_fig4(&ctx).expect("simulation succeeds");

    println!("# Fig. 4 — accuracy (%) of ER-r vs AAS, MHEALTH-like, seed {seed}");
    print!("{:<14}", "policy");
    for a in &r.activities {
        print!("{:>10}", a.label());
    }
    println!("{:>10}", "overall");
    for (i, &cycle) in r.cycles.iter().enumerate() {
        print!("{:<14}", format!("RR{cycle}"));
        for v in &r.rr[i] {
            print!("{:>10.2}", v * 100.0);
        }
        println!("{:>10.2}", r.rr_overall[i] * 100.0);
        print!("{:<14}", format!("RR{cycle} AAS"));
        for v in &r.aas[i] {
            print!("{:>10.2}", v * 100.0);
        }
        println!("{:>10.2}", r.aas_overall[i] * 100.0);
    }
}
