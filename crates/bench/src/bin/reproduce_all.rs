//! Runs the complete evaluation — every figure, the table, and all
//! extension studies — and writes each report under `results/`.
//!
//! Usage: `cargo run -p origin-bench --bin reproduce_all --release [seed] [out_dir]`
//!
//! Expect a few minutes in release mode: it trains four model banks
//! (MHEALTH and PAMAP2, once per seed used) and runs several dozen
//! one-hour simulations.

use origin_core::experiments::{
    run_ablation, run_cohort, run_depth_sweep, run_fig1, run_fig2, run_fig4, run_fig5, run_fig6,
    run_power_study, run_table1, Dataset, ExperimentContext,
};
use std::fmt::Write as _;
use std::path::Path;

fn save(dir: &Path, name: &str, content: &str) {
    let path = dir.join(name);
    std::fs::write(&path, content).unwrap_or_else(|e| panic!("cannot write {path:?}: {e}"));
    println!("wrote {}", path.display());
}

#[allow(clippy::too_many_lines)]
fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(77);
    let out = std::env::args().nth(2).unwrap_or_else(|| "results".into());
    let dir = Path::new(&out);
    std::fs::create_dir_all(dir).expect("results directory is creatable");

    println!("training MHEALTH-like models (seed {seed})...");
    let ctx = ExperimentContext::new(Dataset::Mhealth, seed).expect("training succeeds");

    // Fig. 1.
    let f1 = run_fig1(&ctx).expect("fig1");
    let mut s = String::new();
    let _ = writeln!(s, "# Fig. 1 (seed {seed})");
    let _ = writeln!(s, "naive: all {:.1}% / some {:.1}% / none {:.1}%", f1.naive_all * 100.0, f1.naive_some * 100.0, f1.naive_none * 100.0);
    let _ = writeln!(s, "RR3: succeed {:.1}% / fail {:.1}%", f1.rr3_succeed * 100.0, f1.rr3_fail * 100.0);
    save(dir, "summary_fig1.txt", &s);

    // Fig. 2.
    let f2 = run_fig2(&ctx, 120).expect("fig2");
    let mut s = String::new();
    let _ = writeln!(s, "# Fig. 2 per-sensor accuracy (seed {seed})");
    for (i, cm) in f2.confusions.iter().enumerate() {
        let _ = writeln!(s, "sensor {i}: {:.2}%", cm.accuracy().unwrap_or(0.0) * 100.0);
    }
    let majority_mean = f2.majority.iter().sum::<f64>() / f2.majority.len() as f64;
    let _ = writeln!(s, "majority: {:.2}%", majority_mean * 100.0);
    save(dir, "summary_fig2.txt", &s);

    // Fig. 4.
    let f4 = run_fig4(&ctx).expect("fig4");
    let mut s = String::new();
    let _ = writeln!(s, "# Fig. 4 overall accuracy (seed {seed})");
    for (i, &cycle) in f4.cycles.iter().enumerate() {
        let _ = writeln!(s, "RR{cycle}: RR {:.2}% / AAS {:.2}%", f4.rr_overall[i] * 100.0, f4.aas_overall[i] * 100.0);
    }
    save(dir, "summary_fig4.txt", &s);

    // Fig. 5 on both datasets.
    for dataset in [Dataset::Mhealth, Dataset::Pamap2] {
        let dctx = if dataset == Dataset::Mhealth {
            ctx.clone()
        } else {
            println!("training PAMAP2-like models (seed {seed})...");
            ExperimentContext::new(dataset, seed).expect("training succeeds")
        };
        let f5 = run_fig5(&dctx).expect("fig5");
        let mut s = String::new();
        let _ = writeln!(s, "# Fig. 5 {} (seed {seed})", f5.dataset);
        for row in &f5.rows {
            let _ = writeln!(s, "{:<14} {:.2}%", row.label, row.overall * 100.0);
        }
        save(dir, &format!("summary_fig5_{}.txt", f5.dataset.to_lowercase()), &s);
    }

    // Fig. 6.
    let f6 = run_fig6(&ctx, 3, 1_000, 10, 20.0).expect("fig6");
    let mut s = String::new();
    let _ = writeln!(s, "# Fig. 6 (seed {seed}); base {:.2}%", f6.base_accuracy * 100.0);
    for user in &f6.users {
        let _ = writeln!(
            s,
            "{}: early {:.1}% -> late {:.1}%",
            user.user,
            user.mean_accuracy(0, 10) * 100.0,
            user.mean_accuracy(900, 1_000) * 100.0
        );
    }
    save(dir, "summary_fig6.txt", &s);

    // Table I.
    let t1 = run_table1(&ctx).expect("table1");
    let mut s = String::new();
    let _ = writeln!(s, "# Table I (seed {seed})");
    for row in &t1.rows {
        let _ = writeln!(
            s,
            "{:<10} origin {:.2}% bl2 {:.2}% bl1 {:.2}% (vs bl2 {:+.2})",
            row.activity.label(),
            row.origin * 100.0,
            row.bl2 * 100.0,
            row.bl1 * 100.0,
            row.vs_bl2()
        );
    }
    let (o, b2, b1) = t1.overall;
    let _ = writeln!(s, "overall: origin {:.2}% bl2 {:.2}% bl1 {:.2}%", o * 100.0, b2 * 100.0, b1 * 100.0);
    save(dir, "summary_table1.txt", &s);

    // Extensions.
    let ab = run_ablation(&ctx, 12).expect("ablation");
    let mut s = String::new();
    let _ = writeln!(s, "# Ablations at RR12 (seed {seed})");
    let _ = writeln!(s, "AAS {:.2}% -> AASR {:.2}% -> Origin {:.2}%", ab.aas_accuracy * 100.0, ab.aasr_accuracy * 100.0, ab.origin_accuracy * 100.0);
    let _ = writeln!(s, "naive completion: NVP {:.2}% vs volatile {:.2}%", ab.naive_nvp_completion * 100.0, ab.naive_volatile_completion * 100.0);
    let _ = writeln!(s, "oracle anticipation: {:.2}%", ab.origin_oracle_accuracy * 100.0);
    save(dir, "summary_ablation.txt", &s);

    let depth = run_depth_sweep(&ctx, &[3, 6, 9, 12, 18, 24, 36]).expect("depth");
    let mut s = String::new();
    let _ = writeln!(s, "# Depth sweep (seed {seed}); best RR{}", depth.best_cycle());
    for p in &depth.points {
        let _ = writeln!(s, "RR{:<3} {:.2}% (completion {:.1}%)", p.cycle, p.accuracy * 100.0, p.completion * 100.0);
    }
    save(dir, "summary_depth.txt", &s);

    let power = run_power_study(&ctx).expect("power");
    let mut s = String::new();
    let _ = writeln!(s, "# Power study (seed {seed}); incident {}", power.incident_power);
    for row in &power.rows {
        let _ = writeln!(s, "{:<12} consumed {} accuracy {:.2}%", row.label, row.mean_consumed_per_node, row.accuracy * 100.0);
    }
    save(dir, "summary_power.txt", &s);

    let cohort = run_cohort(&ctx, 6).expect("cohort");
    let (om, os) = cohort.origin_stats();
    let (bm, bs) = cohort.bl2_stats();
    let mut s = String::new();
    let _ = writeln!(s, "# Cohort (seed {seed}, n = {})", cohort.points.len());
    let _ = writeln!(s, "Origin {:.2}% +/- {:.2}; BL-2 {:.2}% +/- {:.2}; win rate {:.0}%", om * 100.0, os * 100.0, bm * 100.0, bs * 100.0, cohort.origin_win_rate() * 100.0);
    save(dir, "summary_cohort.txt", &s);

    println!("\nall experiments reproduced; summaries in {}/", dir.display());
}
