//! Runs the complete evaluation — every figure, the table, and all
//! extension studies — and writes each report under `results/`.
//!
//! Usage: `cargo run -p origin-bench --bin reproduce_all --release [seed] [out_dir] [--json <path>]`
//!
//! Besides the per-experiment text summaries, the run emits its telemetry
//! record (see EXPERIMENTS.md §Telemetry):
//!
//! * `run_manifest.json` — config, seed, metrics, stage timings and
//!   headline results for the whole reproduction (also copied to the
//!   `--json` path when given);
//! * `events_<policy>.jsonl` — per-window event traces of one
//!   short instrumented run per headline policy;
//! * `metrics.prom` — the aggregated metrics in Prometheus text format.
//!
//! Expect a few minutes in release mode: it trains four model banks
//! (MHEALTH and PAMAP2, once per seed used) and runs several dozen
//! one-hour simulations.

use origin_bench::{
    report_results, run_instrumented, sim_config_entries, write_manifest_file, BenchArgs,
};
use origin_core::experiments::{
    run_ablation, run_cohort, run_depth_sweep, run_fig1, run_fig2, run_fig4, run_fig5, run_fig6,
    run_power_study, run_table1, Dataset, ExperimentContext,
};
use origin_core::{PolicyKind, SimConfig};
use origin_telemetry::{write_prometheus, JsonValue, RunManifest, StageTimings};
use origin_types::SimDuration;
use std::fmt::Write as _;
use std::path::Path;

fn save(dir: &Path, name: &str, content: &str) {
    let path = dir.join(name);
    std::fs::write(&path, content).unwrap_or_else(|e| panic!("cannot write {path:?}: {e}"));
    println!("wrote {}", path.display());
}

/// Horizon of the instrumented trace runs: long enough for every event
/// kind to appear, short enough that the JSONL stays a few hundred kB.
const TRACE_HORIZON_SECS: u64 = 600;

#[allow(clippy::too_many_lines)]
fn main() {
    let args = BenchArgs::parse();
    let seed: u64 = args.u64_at(0, 77);
    let out = args.str_at(1, "results");
    let dir = Path::new(&out);
    std::fs::create_dir_all(dir).expect("results directory is creatable");

    let mut timings = StageTimings::new();

    println!("training MHEALTH-like models (seed {seed})...");
    let ctx = timings.time("train_mhealth", || {
        ExperimentContext::new(Dataset::Mhealth, seed).expect("training succeeds")
    });

    // Fig. 1.
    let f1 = timings.time("fig1", || run_fig1(&ctx).expect("fig1"));
    let mut s = String::new();
    let _ = writeln!(s, "# Fig. 1 (seed {seed})");
    let _ = writeln!(
        s,
        "naive: all {:.1}% / some {:.1}% / none {:.1}%",
        f1.naive_all * 100.0,
        f1.naive_some * 100.0,
        f1.naive_none * 100.0
    );
    let _ = writeln!(
        s,
        "RR3: succeed {:.1}% / fail {:.1}%",
        f1.rr3_succeed * 100.0,
        f1.rr3_fail * 100.0
    );
    save(dir, "summary_fig1.txt", &s);

    // Fig. 2.
    let f2 = timings.time("fig2", || run_fig2(&ctx, 120).expect("fig2"));
    let mut s = String::new();
    let _ = writeln!(s, "# Fig. 2 per-sensor accuracy (seed {seed})");
    for (i, cm) in f2.confusions.iter().enumerate() {
        let _ = writeln!(
            s,
            "sensor {i}: {:.2}%",
            cm.accuracy().unwrap_or(0.0) * 100.0
        );
    }
    let majority_mean = f2.majority.iter().sum::<f64>() / f2.majority.len() as f64;
    let _ = writeln!(s, "majority: {:.2}%", majority_mean * 100.0);
    save(dir, "summary_fig2.txt", &s);

    // Fig. 4.
    let f4 = timings.time("fig4", || run_fig4(&ctx).expect("fig4"));
    let mut s = String::new();
    let _ = writeln!(s, "# Fig. 4 overall accuracy (seed {seed})");
    for (i, &cycle) in f4.cycles.iter().enumerate() {
        let _ = writeln!(
            s,
            "RR{cycle}: RR {:.2}% / AAS {:.2}%",
            f4.rr_overall[i] * 100.0,
            f4.aas_overall[i] * 100.0
        );
    }
    save(dir, "summary_fig4.txt", &s);

    // Fig. 5 on both datasets.
    for dataset in [Dataset::Mhealth, Dataset::Pamap2] {
        let dctx = if dataset == Dataset::Mhealth {
            ctx.clone()
        } else {
            println!("training PAMAP2-like models (seed {seed})...");
            timings.time("train_pamap2", || {
                ExperimentContext::new(dataset, seed).expect("training succeeds")
            })
        };
        let f5 = timings.time("fig5", || run_fig5(&dctx).expect("fig5"));
        let mut s = String::new();
        let _ = writeln!(s, "# Fig. 5 {} (seed {seed})", f5.dataset);
        for row in &f5.rows {
            let _ = writeln!(s, "{:<14} {:.2}%", row.label, row.overall * 100.0);
        }
        save(
            dir,
            &format!("summary_fig5_{}.txt", f5.dataset.to_lowercase()),
            &s,
        );
    }

    // Fig. 6.
    let f6 = timings.time("fig6", || run_fig6(&ctx, 3, 1_000, 10, 20.0).expect("fig6"));
    let mut s = String::new();
    let _ = writeln!(
        s,
        "# Fig. 6 (seed {seed}); base {:.2}%",
        f6.base_accuracy * 100.0
    );
    for user in &f6.users {
        let _ = writeln!(
            s,
            "{}: early {:.1}% -> late {:.1}%",
            user.user,
            user.mean_accuracy(0, 10) * 100.0,
            user.mean_accuracy(900, 1_000) * 100.0
        );
    }
    save(dir, "summary_fig6.txt", &s);

    // Table I.
    let t1 = timings.time("table1", || run_table1(&ctx).expect("table1"));
    let mut s = String::new();
    let _ = writeln!(s, "# Table I (seed {seed})");
    for row in &t1.rows {
        let _ = writeln!(
            s,
            "{:<10} origin {:.2}% bl2 {:.2}% bl1 {:.2}% (vs bl2 {:+.2})",
            row.activity.label(),
            row.origin * 100.0,
            row.bl2 * 100.0,
            row.bl1 * 100.0,
            row.vs_bl2()
        );
    }
    let (o, b2, b1) = t1.overall;
    let _ = writeln!(
        s,
        "overall: origin {:.2}% bl2 {:.2}% bl1 {:.2}%",
        o * 100.0,
        b2 * 100.0,
        b1 * 100.0
    );
    save(dir, "summary_table1.txt", &s);

    // Extensions.
    let ab = timings.time("ablation", || run_ablation(&ctx, 12).expect("ablation"));
    let mut s = String::new();
    let _ = writeln!(s, "# Ablations at RR12 (seed {seed})");
    let _ = writeln!(
        s,
        "AAS {:.2}% -> AASR {:.2}% -> Origin {:.2}%",
        ab.aas_accuracy * 100.0,
        ab.aasr_accuracy * 100.0,
        ab.origin_accuracy * 100.0
    );
    let _ = writeln!(
        s,
        "naive completion: NVP {:.2}% vs volatile {:.2}%",
        ab.naive_nvp_completion * 100.0,
        ab.naive_volatile_completion * 100.0
    );
    let _ = writeln!(
        s,
        "oracle anticipation: {:.2}%",
        ab.origin_oracle_accuracy * 100.0
    );
    save(dir, "summary_ablation.txt", &s);

    let depth = timings.time("depth", || {
        run_depth_sweep(&ctx, &[3, 6, 9, 12, 18, 24, 36]).expect("depth")
    });
    let mut s = String::new();
    let _ = writeln!(
        s,
        "# Depth sweep (seed {seed}); best RR{}",
        depth.best_cycle()
    );
    for p in &depth.points {
        let _ = writeln!(
            s,
            "RR{:<3} {:.2}% (completion {:.1}%)",
            p.cycle,
            p.accuracy * 100.0,
            p.completion * 100.0
        );
    }
    save(dir, "summary_depth.txt", &s);

    let power = timings.time("power", || run_power_study(&ctx).expect("power"));
    let mut s = String::new();
    let _ = writeln!(
        s,
        "# Power study (seed {seed}); incident {}",
        power.incident_power
    );
    for row in &power.rows {
        let _ = writeln!(
            s,
            "{:<12} consumed {} accuracy {:.2}%",
            row.label,
            row.mean_consumed_per_node,
            row.accuracy * 100.0
        );
    }
    save(dir, "summary_power.txt", &s);

    let cohort = timings.time("cohort", || run_cohort(&ctx, 6).expect("cohort"));
    let (om, os) = cohort.origin_stats();
    let (bm, bs) = cohort.bl2_stats();
    let mut s = String::new();
    let _ = writeln!(s, "# Cohort (seed {seed}, n = {})", cohort.points.len());
    let _ = writeln!(
        s,
        "Origin {:.2}% +/- {:.2}; BL-2 {:.2}% +/- {:.2}; win rate {:.0}%",
        om * 100.0,
        os * 100.0,
        bm * 100.0,
        bs * 100.0,
        cohort.origin_win_rate() * 100.0
    );
    save(dir, "summary_cohort.txt", &s);

    // Instrumented trace runs: a short window of each headline policy
    // with the full observer stack, so the repo ships real event data.
    let sim = ctx.simulator();
    let mut manifest = RunManifest::new(
        "reproduce_all",
        seed,
        &PolicyKind::Origin { cycle: 12 }.label(),
    )
    .with_config("dataset", ctx.dataset.label())
    .with_config("out_dir", dir.display().to_string())
    .with_config("trace_horizon_secs", TRACE_HORIZON_SECS)
    .with_result("fig1_naive_none", JsonValue::from(f1.naive_none))
    .with_result("table1_origin_overall", JsonValue::from(o))
    .with_result("table1_bl2_overall", JsonValue::from(b2))
    .with_result(
        "ablation_origin_accuracy",
        JsonValue::from(ab.origin_accuracy),
    )
    .with_result(
        "depth_best_cycle",
        JsonValue::from(u64::from(depth.best_cycle())),
    );
    for policy in [PolicyKind::NaiveAllOn, PolicyKind::Origin { cycle: 12 }] {
        let config = SimConfig::new(policy)
            .with_horizon(SimDuration::from_secs(TRACE_HORIZON_SECS))
            .with_seed(seed);
        let label = policy.label().to_lowercase().replace(' ', "_");
        let run = timings.time("trace", || {
            run_instrumented(&sim, &config).expect("valid cycle")
        });
        let trace_name = format!("events_{label}.jsonl");
        save(dir, &trace_name, &run.jsonl);
        manifest = manifest.with_artifact(&trace_name);
        for (key, value) in sim_config_entries(&config) {
            manifest = manifest.with_config(&format!("trace_{label}_{key}"), value);
        }
        for (key, value) in report_results(&run.report) {
            manifest = manifest.with_result(&format!("trace_{label}_{key}"), value);
        }
        // The Origin run's aggregated metrics represent the reproduction
        // in the manifest and the Prometheus exposition.
        if policy != PolicyKind::NaiveAllOn {
            let mut prom = Vec::new();
            write_prometheus(&mut prom, &run.metrics).expect("Vec<u8> writes are infallible");
            save(
                dir,
                "metrics.prom",
                &String::from_utf8(prom).expect("exposition is UTF-8"),
            );
            manifest = manifest
                .with_metrics(&run.metrics)
                .with_artifact("metrics.prom");
        }
    }

    let manifest = manifest
        .with_timings(&timings)
        .with_artifact("run_manifest.json");
    write_manifest_file(&dir.join("run_manifest.json"), &manifest);
    args.write_manifest(&manifest);

    println!(
        "\nall experiments reproduced; summaries in {}/",
        dir.display()
    );
}
