//! Runs the complete evaluation — every figure, the table, and all
//! extension studies — and writes each report under `results/`.
//!
//! Usage: `cargo run -p origin-bench --bin reproduce_all --release -- [seed]
//! [out_dir] [--threads N] [--precision {f64,f32}]
//! [--kernel-path {scalar,unrolled}] [--json <path>]`
//!
//! With `--precision f32` the whole pipeline (training, pruning,
//! inference) runs on `f32` kernels and the default output directory
//! moves to `results/f32/`, keeping the published `f64` goldens intact;
//! the manifest records the dtype either way.
//!
//! The independent experiment stages — and the per-location model
//! training before them — fan out over the sweep engine's worker pool
//! (`--threads`, 0 = auto); every summary, result and manifest field is
//! identical for any thread count — only the stage timings (wall-clock)
//! differ. The per-stage timing labels (`train_mhealth`, `nn_fit`,
//! `nn_prune`, `nn_eval`, one per figure/table) are stable across widths.
//!
//! Besides the per-experiment text summaries, the run emits its telemetry
//! record (see EXPERIMENTS.md §Telemetry):
//!
//! * `run_manifest.json` — config, seed, metrics, stage timings and
//!   headline results for the whole reproduction (also copied to the
//!   `--json` path when given);
//! * `events_<policy>.jsonl` — per-window event traces of one
//!   short instrumented run per headline policy;
//! * `metrics.prom` — the aggregated metrics in Prometheus text format.
//!
//! Expect a few minutes in release mode: it trains four model banks
//! (MHEALTH and PAMAP2, once per seed used) and runs several dozen
//! one-hour simulations. The shared CLI surface — and the
//! population-scale `sweep --population` mode that complements this
//! enumerated reproduction — is documented in `docs/OPERATIONS.md`.

use origin_bench::sweep::parallel_map;
use origin_bench::{
    report_results, run_instrumented, sim_config_entries, write_manifest_file, BenchArgs, Precision,
};
use origin_core::experiments::{
    run_ablation, run_cohort, run_depth_sweep, run_fig1, run_fig2, run_fig4, run_fig5, run_fig6,
    run_power_study, run_table1, Dataset, ExperimentContext,
};
use origin_core::PolicyKind;
use origin_nn::{KernelPath, Scalar};
use origin_telemetry::{write_prometheus, JsonValue, RunManifest, StageTimings};
use origin_types::SimDuration;
use std::fmt::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

fn save(dir: &Path, name: &str, content: &str) {
    let path = dir.join(name);
    std::fs::write(&path, content).unwrap_or_else(|e| panic!("cannot write {path:?}: {e}"));
    println!("wrote {}", path.display());
}

/// Horizon of the instrumented trace runs: long enough for every event
/// kind to appear, short enough that the JSONL stays a few hundred kB.
const TRACE_HORIZON_SECS: u64 = 600;

/// One independent experiment stage of the reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Fig1,
    Fig2,
    Fig4,
    Fig5Mhealth,
    Fig5Pamap2,
    Fig6,
    Table1,
    Ablation,
    Depth,
    Power,
    Cohort,
}

impl Stage {
    const ALL: [Stage; 11] = [
        Stage::Fig1,
        Stage::Fig2,
        Stage::Fig4,
        Stage::Fig5Mhealth,
        Stage::Fig5Pamap2,
        Stage::Fig6,
        Stage::Table1,
        Stage::Ablation,
        Stage::Depth,
        Stage::Power,
        Stage::Cohort,
    ];

    fn name(self) -> &'static str {
        match self {
            Stage::Fig1 => "fig1",
            Stage::Fig2 => "fig2",
            Stage::Fig4 => "fig4",
            Stage::Fig5Mhealth => "fig5_mhealth",
            Stage::Fig5Pamap2 => "fig5_pamap2",
            Stage::Fig6 => "fig6",
            Stage::Table1 => "table1",
            Stage::Ablation => "ablation",
            Stage::Depth => "depth",
            Stage::Power => "power",
            Stage::Cohort => "cohort",
        }
    }
}

/// What a stage hands back to the (sequential) collector: the summary
/// file to write, headline results for the manifest, and how long the
/// worker spent (merged into [`StageTimings`] after the join).
struct StageOutput {
    stage: Stage,
    file: String,
    text: String,
    results: Vec<(String, JsonValue)>,
    elapsed: Duration,
}

// Wall-clock here only stamps per-stage duration into the run manifest;
// every experiment result is a pure function of (spec, seed).
#[allow(clippy::too_many_lines, clippy::disallowed_methods)]
fn run_stage<S: Scalar>(stage: Stage, ctx: &ExperimentContext<S>, seed: u64) -> StageOutput {
    let start = Instant::now();
    let mut s = String::new();
    let mut results = Vec::new();
    let mut file = format!("summary_{}.txt", stage.name());
    match stage {
        Stage::Fig1 => {
            let f1 = run_fig1(ctx).expect("fig1");
            let _ = writeln!(s, "# Fig. 1 (seed {seed})");
            let _ = writeln!(
                s,
                "naive: all {:.1}% / some {:.1}% / none {:.1}%",
                f1.naive_all * 100.0,
                f1.naive_some * 100.0,
                f1.naive_none * 100.0
            );
            let _ = writeln!(
                s,
                "RR3: succeed {:.1}% / fail {:.1}%",
                f1.rr3_succeed * 100.0,
                f1.rr3_fail * 100.0
            );
            results.push(("fig1_naive_none".to_owned(), JsonValue::from(f1.naive_none)));
        }
        Stage::Fig2 => {
            let f2 = run_fig2(ctx, 120).expect("fig2");
            let _ = writeln!(s, "# Fig. 2 per-sensor accuracy (seed {seed})");
            for (i, cm) in f2.confusions.iter().enumerate() {
                let _ = writeln!(
                    s,
                    "sensor {i}: {:.2}%",
                    cm.accuracy().unwrap_or(0.0) * 100.0
                );
            }
            let majority_mean = f2.majority.iter().sum::<f64>() / f2.majority.len() as f64;
            let _ = writeln!(s, "majority: {:.2}%", majority_mean * 100.0);
        }
        Stage::Fig4 => {
            let f4 = run_fig4(ctx).expect("fig4");
            let _ = writeln!(s, "# Fig. 4 overall accuracy (seed {seed})");
            for (i, &cycle) in f4.cycles.iter().enumerate() {
                let _ = writeln!(
                    s,
                    "RR{cycle}: RR {:.2}% / AAS {:.2}%",
                    f4.rr_overall[i] * 100.0,
                    f4.aas_overall[i] * 100.0
                );
            }
        }
        Stage::Fig5Mhealth | Stage::Fig5Pamap2 => {
            let dctx = if stage == Stage::Fig5Mhealth {
                ctx.clone()
            } else {
                println!("training PAMAP2-like models (seed {seed})...");
                ExperimentContext::<S>::new(Dataset::Pamap2, seed)
                    .expect("training succeeds")
                    .with_kernel_path(ctx.kernel_path)
            };
            let f5 = run_fig5(&dctx).expect("fig5");
            let _ = writeln!(s, "# Fig. 5 {} (seed {seed})", f5.dataset);
            for row in &f5.rows {
                let _ = writeln!(s, "{:<14} {:.2}%", row.label, row.overall * 100.0);
            }
            file = format!("summary_fig5_{}.txt", f5.dataset.to_lowercase());
        }
        Stage::Fig6 => {
            let f6 = run_fig6(ctx, 3, 1_000, 10, 20.0).expect("fig6");
            let _ = writeln!(
                s,
                "# Fig. 6 (seed {seed}); base {:.2}%",
                f6.base_accuracy * 100.0
            );
            for user in &f6.users {
                let _ = writeln!(
                    s,
                    "{}: early {:.1}% -> late {:.1}%",
                    user.user,
                    user.mean_accuracy(0, 10) * 100.0,
                    user.mean_accuracy(900, 1_000) * 100.0
                );
            }
        }
        Stage::Table1 => {
            let t1 = run_table1(ctx).expect("table1");
            let _ = writeln!(s, "# Table I (seed {seed})");
            for row in &t1.rows {
                let _ = writeln!(
                    s,
                    "{:<10} origin {:.2}% bl2 {:.2}% bl1 {:.2}% (vs bl2 {:+.2})",
                    row.activity.label(),
                    row.origin * 100.0,
                    row.bl2 * 100.0,
                    row.bl1 * 100.0,
                    row.vs_bl2()
                );
            }
            let (o, b2, b1) = t1.overall;
            let _ = writeln!(
                s,
                "overall: origin {:.2}% bl2 {:.2}% bl1 {:.2}%",
                o * 100.0,
                b2 * 100.0,
                b1 * 100.0
            );
            results.push(("table1_origin_overall".to_owned(), JsonValue::from(o)));
            results.push(("table1_bl2_overall".to_owned(), JsonValue::from(b2)));
        }
        Stage::Ablation => {
            let ab = run_ablation(ctx, 12).expect("ablation");
            let _ = writeln!(s, "# Ablations at RR12 (seed {seed})");
            let _ = writeln!(
                s,
                "AAS {:.2}% -> AASR {:.2}% -> Origin {:.2}%",
                ab.aas_accuracy * 100.0,
                ab.aasr_accuracy * 100.0,
                ab.origin_accuracy * 100.0
            );
            let _ = writeln!(
                s,
                "naive completion: NVP {:.2}% vs volatile {:.2}%",
                ab.naive_nvp_completion * 100.0,
                ab.naive_volatile_completion * 100.0
            );
            let _ = writeln!(
                s,
                "oracle anticipation: {:.2}%",
                ab.origin_oracle_accuracy * 100.0
            );
            results.push((
                "ablation_origin_accuracy".to_owned(),
                JsonValue::from(ab.origin_accuracy),
            ));
        }
        Stage::Depth => {
            let depth = run_depth_sweep(ctx, &[3, 6, 9, 12, 18, 24, 36]).expect("depth");
            let _ = writeln!(
                s,
                "# Depth sweep (seed {seed}); best RR{}",
                depth.best_cycle()
            );
            for p in &depth.points {
                let _ = writeln!(
                    s,
                    "RR{:<3} {:.2}% (completion {:.1}%)",
                    p.cycle,
                    p.accuracy * 100.0,
                    p.completion * 100.0
                );
            }
            results.push((
                "depth_best_cycle".to_owned(),
                JsonValue::from(u64::from(depth.best_cycle())),
            ));
        }
        Stage::Power => {
            let power = run_power_study(ctx).expect("power");
            let _ = writeln!(
                s,
                "# Power study (seed {seed}); incident {}",
                power.incident_power
            );
            for row in &power.rows {
                let _ = writeln!(
                    s,
                    "{:<12} consumed {} accuracy {:.2}%",
                    row.label,
                    row.mean_consumed_per_node,
                    row.accuracy * 100.0
                );
            }
        }
        Stage::Cohort => {
            let cohort = run_cohort(ctx, 6).expect("cohort");
            let (om, os) = cohort.origin_stats();
            let (bm, bs) = cohort.bl2_stats();
            let _ = writeln!(s, "# Cohort (seed {seed}, n = {})", cohort.points.len());
            let _ = writeln!(
                s,
                "Origin {:.2}% +/- {:.2}; BL-2 {:.2}% +/- {:.2}; win rate {:.0}%",
                om * 100.0,
                os * 100.0,
                bm * 100.0,
                bs * 100.0,
                cohort.origin_win_rate() * 100.0
            );
        }
    }
    StageOutput {
        stage,
        file,
        text: s,
        results,
        elapsed: start.elapsed(),
    }
}

fn run<S: Scalar>(args: &BenchArgs) {
    let seed: u64 = args.u64_at(0, 77);
    let precision = args.precision();
    let out = args
        .positional()
        .get(1)
        .cloned()
        .unwrap_or_else(|| precision.golden_path("results").display().to_string());
    let dir = Path::new(&out);
    std::fs::create_dir_all(dir).expect("results directory is creatable");

    let mut timings = StageTimings::new();

    println!("training MHEALTH-like models (seed {seed}, {precision} kernels)...");
    // Kernel-level breakdown (nn_fit / nn_prune / nn_eval) lands in the
    // manifest next to the aggregate training stage. Training fans out
    // over the same worker pool as the stages (one location per worker);
    // the bank — and the timing labels — are identical at any width.
    let kernel_path = args.kernel_path();
    let ctx = {
        let mut kernel = StageTimings::new();
        let ctx = timings.time("train_mhealth", || {
            ExperimentContext::<S>::new_instrumented_parallel(
                Dataset::Mhealth,
                seed,
                args.threads(),
                &mut kernel,
            )
            .expect("training succeeds")
        });
        for (name, elapsed) in kernel.iter() {
            timings.record(name, elapsed);
        }
        ctx.with_kernel_path(kernel_path)
    };

    // Fan the independent stages out over the worker pool; collect in
    // stage order after the join, so files, manifest entries and stdout
    // are identical regardless of --threads.
    let outputs = parallel_map(args.threads(), &Stage::ALL, |_, &stage| {
        run_stage(stage, &ctx, seed)
    });

    let mut manifest = RunManifest::new(
        "reproduce_all",
        seed,
        &PolicyKind::Origin { cycle: 12 }.label(),
    )
    .with_config("dataset", ctx.dataset.label())
    .with_config("dtype", precision.label())
    .with_config("out_dir", dir.display().to_string())
    .with_config("trace_horizon_secs", TRACE_HORIZON_SECS);
    // Recorded only when non-default, mirroring sim_config_entries: the
    // default-path manifest stays byte-stable across this provenance knob.
    if kernel_path != KernelPath::default() {
        manifest = manifest.with_config("kernel_path", kernel_path.label());
    }
    for output in outputs {
        save(dir, &output.file, &output.text);
        timings.record(output.stage.name(), output.elapsed);
        for (key, value) in output.results {
            manifest = manifest.with_result(&key, value);
        }
    }

    // Instrumented trace runs: a short window of each headline policy
    // with the full observer stack, so the repo ships real event data.
    let sim = ctx.simulator();
    for policy in [PolicyKind::NaiveAllOn, PolicyKind::Origin { cycle: 12 }] {
        let config = ctx
            .sim_config(policy)
            .with_horizon(SimDuration::from_secs(TRACE_HORIZON_SECS));
        let label = policy.label().to_lowercase().replace(' ', "_");
        let run = timings.time("trace", || {
            run_instrumented(&sim, &config).expect("valid cycle")
        });
        let trace_name = format!("events_{label}.jsonl");
        save(dir, &trace_name, &run.jsonl);
        manifest = manifest.with_artifact(&trace_name);
        for (key, value) in sim_config_entries(&config) {
            manifest = manifest.with_config(&format!("trace_{label}_{key}"), value);
        }
        for (key, value) in report_results(&run.report) {
            manifest = manifest.with_result(&format!("trace_{label}_{key}"), value);
        }
        // The Origin run's aggregated metrics represent the reproduction
        // in the manifest and the Prometheus exposition.
        if policy != PolicyKind::NaiveAllOn {
            let mut prom = Vec::new();
            write_prometheus(&mut prom, &run.metrics).expect("Vec<u8> writes are infallible");
            save(
                dir,
                "metrics.prom",
                &String::from_utf8(prom).expect("exposition is UTF-8"),
            );
            manifest = manifest
                .with_metrics(&run.metrics)
                .with_artifact("metrics.prom");
        }
    }

    let manifest = manifest
        .with_timings(&timings)
        .with_artifact("run_manifest.json");
    write_manifest_file(&dir.join("run_manifest.json"), &manifest);
    args.write_manifest(&manifest);

    println!(
        "\nall experiments reproduced; summaries in {}/",
        dir.display()
    );
}

fn main() {
    let args = BenchArgs::parse();
    match args.precision() {
        Precision::F64 => run::<f64>(&args),
        Precision::F32 => run::<f32>(&args),
    }
}
