//! Cross-user generalization study: RR12-Origin vs Baseline-2 across a
//! cohort of sampled wearers, replicated over multiple seeds on the
//! sweep engine.
//!
//! Usage: `cargo run -p origin-bench --bin cohort --release -- [users] [seed]
//! [--seeds N] [--threads N] [--precision {f64,f32}] [--json <path>]`
//!
//! Each wearer is evaluated under `--seeds` independent worlds; the
//! per-user rows report the mean over those replicas, and the aggregate
//! line carries the normal-approximation 95% confidence interval. The
//! output is independent of `--threads`.
//!
//! `--population N` switches from the enumerated cohort to a sampled
//! population streamed through the fleet engine ([`origin_bench::fleet`]):
//! no per-user rows (users are not enumerable at that scale), but the
//! same two-policy comparison with mean ± CI and paired win rate. See
//! `docs/OPERATIONS.md` for when to prefer which.

use origin_bench::fleet::{run_fleet, FleetOptions, FleetPlan};
use origin_bench::sweep::{run_sweep, Aggregate, SweepGrid, SweepOptions, SweepPolicy};
use origin_bench::{BenchArgs, Precision};
use origin_core::experiments::{Dataset, ExperimentContext};
use origin_core::{BaselineKind, PolicyKind};
use origin_nn::Scalar;

/// The sampled-population variant of the cohort study: same policy pair,
/// streaming accumulators instead of retained cells.
fn run_population<S: Scalar>(args: &BenchArgs, population: u32) {
    let seed = args.u64_at(1, 77);
    let seeds = u32::try_from(args.u64_flag("seeds", 1)).unwrap_or(1);
    let ctx = ExperimentContext::<S>::new(Dataset::Mhealth, seed).expect("training succeeds");
    let plan = FleetPlan::new(
        seed,
        vec![
            SweepPolicy::Policy(PolicyKind::Origin { cycle: 12 }),
            SweepPolicy::Baseline(BaselineKind::Baseline2),
        ],
        population,
    )
    .with_seeds(seeds);
    let opts = FleetOptions {
        threads: args.threads(),
        progress: args.u64_flag("progress", 0) != 0,
        manifest_name: "cohort".to_owned(),
        dtype: args.precision().label().to_owned(),
        ..FleetOptions::default()
    };
    let report = run_fleet(&ctx, &plan, &opts).expect("simulation succeeds");

    println!("# Cross-user population (n = {population} sampled, base seed {seed}, {seeds} seed replica(s))");
    let origin = report.arms[0].accuracy.aggregate();
    let bl2 = report.arms[1].accuracy.aggregate();
    println!(
        "Origin: {}   BL-2: {}   ({} runs per policy over {seeds} seed(s))",
        origin.fmt_pct(),
        bl2.fmt_pct(),
        origin.n
    );
    println!(
        "Origin wins {:.0}% of paired runs",
        report.win_rate(0, 1) * 100.0
    );
    args.write_manifest(&report.to_manifest());
}

fn run<S: Scalar>(args: &BenchArgs) {
    if let Some(population) = args.flag("population") {
        let population = population
            .parse::<u32>()
            .unwrap_or_else(|e| panic!("--population {population:?}: {e}"));
        run_population::<S>(args, population);
        return;
    }
    let users = u32::try_from(args.u64_at(0, 8)).unwrap_or(8);
    let seed = args.u64_at(1, 77);
    let seeds = u32::try_from(args.u64_flag("seeds", 3)).unwrap_or(3);

    let ctx = ExperimentContext::<S>::new(Dataset::Mhealth, seed).expect("training succeeds");
    let grid = SweepGrid::new(
        seed,
        vec![
            SweepPolicy::Policy(PolicyKind::Origin { cycle: 12 }),
            SweepPolicy::Baseline(BaselineKind::Baseline2),
        ],
    )
    .with_seeds(seeds)
    .with_sampled_users(users);
    let report = run_sweep(
        &ctx,
        &grid,
        &SweepOptions {
            threads: args.threads(),
            ..SweepOptions::default()
        },
    )
    .expect("simulation succeeds");

    println!("# Cross-user cohort (n = {users}, base seed {seed}, {seeds} seed replica(s))");
    println!("{:<12} {:>12} {:>8}", "user", "RR12 Origin", "BL-2");
    for (u, profile) in report.grid.users.iter().enumerate() {
        let per_user = |policy_idx: usize| {
            let values: Vec<f64> = report
                .cells
                .iter()
                .filter(|c| c.cell.policy_idx == policy_idx && c.cell.user_idx as usize == u)
                .map(|c| c.report.accuracy())
                .collect();
            Aggregate::from_values(&values).mean
        };
        println!(
            "{:<12} {:>11.2}% {:>7.2}%",
            profile.user.to_string(),
            per_user(0) * 100.0,
            per_user(1) * 100.0
        );
    }
    let origin = report.accuracy_aggregate(0);
    let bl2 = report.accuracy_aggregate(1);
    println!(
        "\nOrigin: {}   BL-2: {}   ({} runs per policy over {seeds} seed(s))",
        origin.fmt_pct(),
        bl2.fmt_pct(),
        origin.n
    );
    println!(
        "Origin wins {:.0}% of paired runs",
        report.win_rate(0, 1) * 100.0
    );
    args.write_manifest(
        &report
            .to_manifest("cohort")
            .with_config("dtype", args.precision().label()),
    );
}

fn main() {
    let args = BenchArgs::parse();
    match args.precision() {
        Precision::F64 => run::<f64>(&args),
        Precision::F32 => run::<f32>(&args),
    }
}
