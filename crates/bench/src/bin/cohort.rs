//! Cross-user generalization study: RR12-Origin vs Baseline-2 across a
//! cohort of sampled wearers.
//!
//! Usage: `cargo run -p origin-bench --bin cohort --release [users] [seed]`

use origin_core::experiments::{run_cohort, Dataset, ExperimentContext};

fn main() {
    let users: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let seed = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(77);
    let ctx = ExperimentContext::new(Dataset::Mhealth, seed).expect("training succeeds");
    let r = run_cohort(&ctx, users).expect("simulation succeeds");

    println!("# Cross-user cohort (n = {users}, seed {seed})");
    println!("{:<12} {:>12} {:>8}", "user", "RR12 Origin", "BL-2");
    for p in &r.points {
        println!(
            "{:<12} {:>11.2}% {:>7.2}%",
            p.user.to_string(),
            p.origin * 100.0,
            p.bl2 * 100.0
        );
    }
    let (om, os) = r.origin_stats();
    let (bm, bs) = r.bl2_stats();
    println!(
        "\nOrigin: {:.2}% ± {:.2}   BL-2: {:.2}% ± {:.2}",
        om * 100.0,
        os * 100.0,
        bm * 100.0,
        bs * 100.0
    );
    println!(
        "Origin wins for {:.0}% of wearers",
        r.origin_win_rate() * 100.0
    );
}
