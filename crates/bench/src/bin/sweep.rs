//! The sweep engine on the command line: evaluate a (seed × policy ×
//! user) grid in parallel and print per-policy aggregates.
//!
//! Usage:
//!
//! ```text
//! cargo run -p origin-bench --bin sweep --release -- \
//!     --seeds 5 --policies origin12,aasr12,bl2 --users 4 \
//!     --threads 4 --json results/sweep.json
//! ```
//!
//! Flags (all optional): `--seed BASE` (77), `--seeds N` (3),
//! `--policies LIST` (`origin12,bl2`), `--users N` (1; > 1 samples a
//! cohort), `--horizon SECS` (3600), `--threads N` (0 = auto),
//! `--instrument 1` (per-cell JSONL traces + metrics in the manifest),
//! `--precision {f64,f32}` (kernel dtype; `f64` is the golden default),
//! `--json PATH` (write the merged run manifest).
//!
//! The report — and the `--json` manifest — is bitwise identical for any
//! `--threads` value; only wall-clock changes.

use origin_bench::sweep::{
    available_threads, run_sweep, SweepGrid, SweepOptions, SweepPolicy, SweepReport,
};
use origin_bench::{BenchArgs, Precision};
use origin_core::experiments::{Dataset, ExperimentContext};
use origin_nn::Scalar;
use origin_types::SimDuration;

fn print_report(report: &SweepReport, seeds: u32, users: usize) {
    println!(
        "{:<14} {:>6} {:>18} {:>8} {:>12}",
        "policy", "n", "accuracy", "std", "completion"
    );
    for (i, policy) in report.grid.policies.iter().enumerate() {
        let acc = report.accuracy_aggregate(i);
        let com = report.completion_aggregate(i);
        println!(
            "{:<14} {:>6} {:>18} {:>7.2}% {:>11.2}%",
            policy.label(),
            acc.n,
            acc.fmt_pct(),
            acc.std * 100.0,
            com.mean * 100.0
        );
    }
    for (i, policy) in report.grid.policies.iter().enumerate() {
        if policy.is_baseline() {
            continue;
        }
        for (j, baseline) in report.grid.policies.iter().enumerate() {
            if !baseline.is_baseline() {
                continue;
            }
            println!(
                "win rate {} vs {}: {:.0}% of {} paired runs",
                policy.label(),
                baseline.label(),
                report.win_rate(i, j) * 100.0,
                seeds as usize * users
            );
        }
    }
}

fn run<S: Scalar>(args: &BenchArgs) {
    let base_seed = args.u64_flag("seed", 77);
    let seeds = u32::try_from(args.u64_flag("seeds", 3)).unwrap_or(3);
    let users = u32::try_from(args.u64_flag("users", 1)).unwrap_or(1);
    let horizon = args.u64_flag("horizon", ExperimentContext::<S>::DEFAULT_HORIZON_SECS);
    let threads = args.threads();
    let instrument = args.u64_flag("instrument", 0) != 0;
    let precision = args.precision();
    let policies = SweepPolicy::parse_list(args.flag("policies").unwrap_or("origin12,bl2"))
        .unwrap_or_else(|e| panic!("{e}"));

    // Progress (and anything host-dependent, like the resolved thread
    // count) goes to stderr; stdout carries only the deterministic
    // report, so redirected output regenerates bit-identically.
    eprintln!("training MHEALTH-like models (seed {base_seed}, {precision} kernels)...");
    let ctx = ExperimentContext::<S>::new(Dataset::Mhealth, base_seed)
        .expect("training succeeds")
        .with_horizon(SimDuration::from_secs(horizon));

    let mut grid = SweepGrid::new(base_seed, policies).with_seeds(seeds);
    if users > 1 {
        grid = grid.with_sampled_users(users);
    }
    let resolved = if threads == 0 {
        available_threads()
    } else {
        threads
    };
    eprintln!(
        "running {} cells on {resolved} worker thread(s)...",
        grid.len()
    );
    println!(
        "# Sweep: {} cells ({} seeds x {} policies x {} users, base seed {base_seed})\n",
        grid.len(),
        seeds,
        grid.policies.len(),
        grid.users.len()
    );

    let report = run_sweep(
        &ctx,
        &grid,
        &SweepOptions {
            threads,
            instrument,
        },
    )
    .expect("simulation succeeds");

    print_report(&report, seeds, grid.users.len());
    args.write_manifest(
        &report
            .to_manifest("sweep")
            .with_config("dtype", precision.label()),
    );
}

fn main() {
    let args = BenchArgs::parse();
    match args.precision() {
        Precision::F64 => run::<f64>(&args),
        Precision::F32 => run::<f32>(&args),
    }
}
