//! The sweep engine on the command line: evaluate a (seed × policy ×
//! user) grid in parallel and print per-policy aggregates — or, with
//! `--population N`, stream a sampled-population fleet study through
//! O(1) accumulators with checkpoint/resume.
//!
//! Usage (enumerated grid):
//!
//! ```text
//! cargo run -p origin-bench --bin sweep --release -- \
//!     --seeds 5 --policies origin12,aasr12,bl2 --users 4 \
//!     --threads 4 --json results/sweep.json
//! ```
//!
//! Usage (population study — see `docs/OPERATIONS.md` for the full
//! operator's guide):
//!
//! ```text
//! cargo run -p origin-bench --bin sweep --release -- \
//!     --population 1000000 --policies origin12,rr12 --horizon 60 \
//!     --threads 8 --checkpoint-every 16 --json results/population.json
//! # interrupted? pick up where the last checkpoint left off:
//! cargo run -p origin-bench --bin sweep --release -- \
//!     --population 1000000 --policies origin12,rr12 --horizon 60 \
//!     --threads 8 --checkpoint-every 16 --resume results/population.json \
//!     --json results/population.json
//! ```
//!
//! Flags (all optional): `--seed BASE` (77), `--seeds N` (3 enumerated,
//! 1 population), `--policies LIST` (`origin12,bl2`), `--users N` (1;
//! larger values sample a cohort), `--horizon SECS` (3600), `--threads N`
//! (0 = auto), `--instrument 1` (per-cell JSONL traces + metrics in the
//! manifest), `--ledger 1` (stream the per-slot energy ledger, audit
//! conservation per cell, and print a per-policy energy table; exits
//! nonzero if any slot fails the audit), `--spans PATH` (write
//! logical-time span traces for all cells to one JSONL file — feed it to
//! `trace_summary`), `--progress 1` (cells/s + ETA heartbeat on stderr),
//! `--precision {f64,f32}` (kernel dtype; `f64` is the golden default),
//! `--kernel-path {scalar,unrolled}` (NN kernel implementation; the two
//! are bitwise identical, so the default `unrolled` changes nothing but
//! speed — the flag exists for A/B verification, and the manifest
//! records it only when non-default), `--json PATH` (write the merged
//! run manifest).
//!
//! Population-only flags: `--population N` (sample N users instead of
//! enumerating a grid; per-cell flags `--instrument/--ledger/--spans`
//! are rejected at this scale), `--shard-size N` (4096 columns per
//! shard), `--checkpoint-every K` (write the manifest after every K
//! completed shards; requires `--json`), `--resume PATH` (load a
//! checkpoint manifest and skip its completed shards), `--max-shards N`
//! (stop after N shards with a partial, resumable manifest).
//!
//! The report — and the `--json` manifest — is bitwise identical for any
//! `--threads` value, and a resumed run's final manifest is
//! byte-identical to an uninterrupted one (`tests/sweep_determinism.rs`
//! pins both). The ledger, span and progress paths never perturb the
//! default stdout report: committed goldens regenerate byte-identically
//! with or without them.

use origin_bench::fleet::{
    resume_states, run_fleet, FleetOptions, FleetPlan, FleetReport, DEFAULT_SHARD_SIZE,
};
use origin_bench::sweep::{
    available_threads, run_sweep, SweepGrid, SweepOptions, SweepPolicy, SweepReport,
};
use origin_bench::{write_manifest_file, BenchArgs, Precision};
use origin_core::experiments::{Dataset, ExperimentContext};
use origin_core::PopulationSpec;
use origin_nn::{KernelPath, Scalar};
use origin_types::SimDuration;

fn print_report(report: &SweepReport, seeds: u32, users: usize) {
    println!(
        "{:<14} {:>6} {:>18} {:>8} {:>12}",
        "policy", "n", "accuracy", "std", "completion"
    );
    for (i, policy) in report.grid.policies.iter().enumerate() {
        let acc = report.accuracy_aggregate(i);
        let com = report.completion_aggregate(i);
        println!(
            "{:<14} {:>6} {:>18} {:>7.2}% {:>11.2}%",
            policy.label(),
            acc.n,
            acc.fmt_pct(),
            acc.std * 100.0,
            com.mean * 100.0
        );
    }
    for (i, policy) in report.grid.policies.iter().enumerate() {
        if policy.is_baseline() {
            continue;
        }
        for (j, baseline) in report.grid.policies.iter().enumerate() {
            if !baseline.is_baseline() {
                continue;
            }
            println!(
                "win rate {} vs {}: {:.0}% of {} paired runs",
                policy.label(),
                baseline.label(),
                report.win_rate(i, j) * 100.0,
                seeds as usize * users
            );
        }
    }
}

/// Runs a `--population N` fleet study: sampled users, streaming
/// accumulators, optional checkpoint/resume.
fn run_population<S: Scalar>(args: &BenchArgs, population: u32) {
    let base_seed = args.u64_flag("seed", 77);
    let seeds = u32::try_from(args.u64_flag("seeds", 1)).unwrap_or(1);
    let horizon = args.u64_flag("horizon", ExperimentContext::<S>::DEFAULT_HORIZON_SECS);
    let shard_size = u32::try_from(args.u64_flag("shard-size", u64::from(DEFAULT_SHARD_SIZE)))
        .unwrap_or(DEFAULT_SHARD_SIZE);
    let checkpoint_every = args.u64_flag("checkpoint-every", 0);
    let max_shards = args.flag("max-shards").map(|s| {
        s.parse::<u64>()
            .unwrap_or_else(|e| panic!("--max-shards {s:?}: {e}"))
    });
    let precision = args.precision();
    let policies = SweepPolicy::parse_list(args.flag("policies").unwrap_or("origin12,bl2"))
        .unwrap_or_else(|e| panic!("{e}"));
    for flag in ["instrument", "ledger", "spans"] {
        assert!(
            args.flag(flag).is_none(),
            "--{flag} captures per-cell traces and is not available with --population \
             (the fleet engine keeps O(1) state per cell); drop --population to trace cells"
        );
    }
    assert!(
        checkpoint_every == 0 || args.json_path().is_some(),
        "--checkpoint-every needs --json PATH: checkpoints are written to the manifest path"
    );

    let plan = FleetPlan::new(base_seed, policies, population)
        .with_seeds(seeds)
        .with_shard_size(shard_size)
        .with_spec(PopulationSpec::default());
    let resume = args.flag("resume").map(|path| {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read checkpoint {path}: {e}"));
        let manifest = origin_telemetry::RunManifest::parse(&text)
            .unwrap_or_else(|e| panic!("checkpoint {path} does not parse: {e}"));
        let states = resume_states(&manifest, &plan, horizon, precision.label())
            .unwrap_or_else(|e| panic!("cannot resume from {path}: {e}"));
        let done = states.iter().filter(|s| s.is_some()).count();
        eprintln!(
            "resuming from {path}: {done}/{} shards already complete",
            plan.shard_count()
        );
        states
    });

    eprintln!("training MHEALTH-like models (seed {base_seed}, {precision} kernels)...");
    let ctx = ExperimentContext::<S>::new(Dataset::Mhealth, base_seed)
        .expect("training succeeds")
        .with_horizon(SimDuration::from_secs(horizon));

    let threads = args.threads();
    let resolved = if threads == 0 {
        available_threads()
    } else {
        threads
    };
    eprintln!(
        "running {} cells in {} shards on {resolved} worker thread(s)...",
        plan.cells_total(),
        plan.shard_count()
    );
    println!(
        "# Population study: {} cells ({} seeds x {} policies x {} sampled users, base seed {base_seed})\n",
        plan.cells_total(),
        seeds,
        plan.policies.len(),
        population
    );

    let opts = FleetOptions {
        threads,
        progress: args.u64_flag("progress", 0) != 0,
        checkpoint_every,
        checkpoint_path: args.json_path().map(std::path::Path::to_path_buf),
        resume,
        max_shards,
        manifest_name: "sweep".to_owned(),
        dtype: precision.label().to_owned(),
        kernel_path: args.kernel_path(),
    };
    let report = run_fleet(&ctx, &plan, &opts).expect("simulation succeeds");

    print_population_report(&report);
    if let Some(path) = args.json_path() {
        let mut manifest = report.to_manifest();
        if opts.kernel_path != KernelPath::default() {
            manifest = manifest.with_config("kernel_path", opts.kernel_path.label());
        }
        write_manifest_file(path, &manifest);
    }
}

/// Prints the streamed per-arm statistics and the paired win-rate matrix.
fn print_population_report(report: &FleetReport) {
    if !report.complete() {
        println!(
            "# PARTIAL: {}/{} columns done — resume with --resume <manifest>\n",
            report.columns_done,
            report.plan.columns()
        );
    }
    println!(
        "{:<14} {:>8} {:>18} {:>8} {:>8} {:>8} {:>12}",
        "policy", "n", "accuracy", "min", "max", "std", "completion"
    );
    for (i, policy) in report.plan.policies.iter().enumerate() {
        let arm = &report.arms[i];
        println!(
            "{:<14} {:>8} {:>18} {:>7.2}% {:>7.2}% {:>7.2}% {:>11.2}%",
            policy.label(),
            arm.accuracy.n(),
            arm.accuracy.aggregate().fmt_pct(),
            arm.accuracy.min() * 100.0,
            arm.accuracy.max() * 100.0,
            arm.accuracy.std() * 100.0,
            arm.completion.mean() * 100.0
        );
    }
    println!(
        "\n{:<14} {:>14} {:>14} {:>14} {:>12} {:>12} {:>12}",
        "policy", "offered_uJ", "harvested_uJ", "consumed_uJ", "loss_uJ", "clipped_uJ", "leaked_uJ"
    );
    for (i, policy) in report.plan.policies.iter().enumerate() {
        let arm = &report.arms[i];
        println!(
            "{:<14} {:>14.1} {:>14.1} {:>14.1} {:>12.1} {:>12.1} {:>12.1}",
            policy.label(),
            arm.offered_uj.mean(),
            arm.harvested_uj.mean(),
            arm.consumed_uj.mean(),
            arm.charge_loss_uj.mean(),
            arm.clipped_uj.mean(),
            arm.leaked_uj.mean(),
        );
    }
    println!();
    for (a, pa) in report.plan.policies.iter().enumerate() {
        for (b, pb) in report.plan.policies.iter().enumerate() {
            if a == b {
                continue;
            }
            println!(
                "win rate {} vs {}: {:.0}% of {} paired columns",
                pa.label(),
                pb.label(),
                report.win_rate(a, b) * 100.0,
                report.columns_done
            );
        }
    }
}

fn run<S: Scalar>(args: &BenchArgs) {
    if let Some(population) = args.flag("population") {
        let population = population
            .parse::<u32>()
            .unwrap_or_else(|e| panic!("--population {population:?}: {e}"));
        run_population::<S>(args, population);
        return;
    }
    let base_seed = args.u64_flag("seed", 77);
    let seeds = u32::try_from(args.u64_flag("seeds", 3)).unwrap_or(3);
    let users = u32::try_from(args.u64_flag("users", 1)).unwrap_or(1);
    let horizon = args.u64_flag("horizon", ExperimentContext::<S>::DEFAULT_HORIZON_SECS);
    let threads = args.threads();
    let instrument = args.u64_flag("instrument", 0) != 0;
    let ledger = args.u64_flag("ledger", 0) != 0;
    let spans_path = args.flag("spans");
    let progress = args.u64_flag("progress", 0) != 0;
    let precision = args.precision();
    let policies = SweepPolicy::parse_list(args.flag("policies").unwrap_or("origin12,bl2"))
        .unwrap_or_else(|e| panic!("{e}"));

    // Progress (and anything host-dependent, like the resolved thread
    // count) goes to stderr; stdout carries only the deterministic
    // report, so redirected output regenerates bit-identically.
    eprintln!("training MHEALTH-like models (seed {base_seed}, {precision} kernels)...");
    let ctx = ExperimentContext::<S>::new(Dataset::Mhealth, base_seed)
        .expect("training succeeds")
        .with_horizon(SimDuration::from_secs(horizon));

    let mut grid = SweepGrid::new(base_seed, policies).with_seeds(seeds);
    if users > 1 {
        grid = grid.with_sampled_users(users);
    }
    let resolved = if threads == 0 {
        available_threads()
    } else {
        threads
    };
    eprintln!(
        "running {} cells on {resolved} worker thread(s)...",
        grid.len()
    );
    println!(
        "# Sweep: {} cells ({} seeds x {} policies x {} users, base seed {base_seed})\n",
        grid.len(),
        seeds,
        grid.policies.len(),
        grid.users.len()
    );

    let kernel_path = args.kernel_path();
    let report = run_sweep(
        &ctx,
        &grid,
        &SweepOptions {
            threads,
            instrument,
            ledger,
            spans: spans_path.is_some(),
            progress,
            kernel_path,
        },
    )
    .expect("simulation succeeds");

    print_report(&report, seeds, grid.users.len());
    if ledger {
        print_energy_table(&report);
    }
    if let Some(path) = spans_path {
        write_spans(&report, path);
    }
    let mut manifest = report
        .to_manifest("sweep")
        .with_config("dtype", precision.label());
    if kernel_path != KernelPath::default() {
        manifest = manifest.with_config("kernel_path", kernel_path.label());
    }
    args.write_manifest(&manifest);
    if ledger {
        enforce_audit(&report);
    }
}

/// Prints the per-policy mean energy breakdown (µJ per run) that the
/// ledger pass makes visible. Only reached under `--ledger`, so the
/// default stdout report stays byte-identical to the committed goldens.
fn print_energy_table(report: &SweepReport) {
    println!(
        "\n{:<14} {:>14} {:>14} {:>14} {:>12} {:>12} {:>12}",
        "policy", "offered_uJ", "harvested_uJ", "consumed_uJ", "loss_uJ", "clipped_uJ", "leaked_uJ"
    );
    for (i, policy) in report.grid.policies.iter().enumerate() {
        let cells: Vec<_> = report
            .cells
            .iter()
            .filter(|c| c.cell.policy_idx == i)
            .collect();
        let n = cells.len().max(1) as f64;
        let mean = |f: &dyn Fn(&origin_core::EnergyBreakdown) -> f64| {
            cells
                .iter()
                .map(|c| f(&c.report.energy_breakdown()))
                .sum::<f64>()
                / n
        };
        println!(
            "{:<14} {:>14.1} {:>14.1} {:>14.1} {:>12.1} {:>12.1} {:>12.1}",
            policy.label(),
            mean(&|e| e.offered.as_microjoules()),
            mean(&|e| e.harvested.as_microjoules()),
            mean(&|e| e.consumed.as_microjoules()),
            mean(&|e| e.charge_loss.as_microjoules()),
            mean(&|e| e.clipped.as_microjoules()),
            mean(&|e| e.leaked.as_microjoules()),
        );
    }
}

/// Concatenates every cell's span trace into one JSONL file. Cell ids
/// pre-partition the span id space (`cell_id << 32`), so the merged file
/// is safe to aggregate as a whole.
fn write_spans(report: &SweepReport, path: &str) {
    let mut out = String::new();
    for cell in &report.cells {
        if let Some(spans) = cell.trace.as_ref().and_then(|t| t.spans.as_deref()) {
            out.push_str(spans);
        }
    }
    std::fs::write(path, &out).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!("wrote span traces to {path}");
}

/// Fails the process if any cell's ledger audit found an unbalanced
/// slot. The audit tolerance is 1e-9 µJ per slot (see
/// `origin_telemetry::LedgerAuditor`).
fn enforce_audit(report: &SweepReport) {
    let mut slots = 0u64;
    let mut max_residual = 0.0f64;
    let mut violations = 0usize;
    for cell in &report.cells {
        if let Some(audit) = cell.trace.as_ref().and_then(|t| t.audit.as_ref()) {
            slots += audit.slots_audited;
            if audit.max_residual_uj.abs() > max_residual.abs() {
                max_residual = audit.max_residual_uj;
            }
            violations += audit.violations.len();
        }
    }
    eprintln!(
        "ledger audit: {slots} slots, max residual {max_residual:.3e} uJ, {violations} violation(s)"
    );
    assert_eq!(violations, 0, "energy ledger failed conservation audit");
}

fn main() {
    let args = BenchArgs::parse();
    match args.precision() {
        Precision::F64 => run::<f64>(&args),
        Precision::F32 => run::<f32>(&args),
    }
}
