//! Regenerates Fig. 6: confidence-matrix adaptation for unseen users.
//!
//! Usage: `cargo run -p origin-bench --bin fig6 --release [seed]`

use origin_core::experiments::{run_fig6, Dataset, ExperimentContext};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(77);
    let ctx = ExperimentContext::<f64>::new(Dataset::Mhealth, seed).expect("training succeeds");
    let r = run_fig6(&ctx, 3, 1_000, 10, 20.0).expect("study succeeds");

    println!("# Fig. 6 — accuracy (%) over iterations, 3 unseen users, 20 dB SNR, seed {seed}");
    println!("base model (clean data): {:.2}%", r.base_accuracy * 100.0);
    println!(
        "{:<8} {:>8} {:>8} {:>8} {:>9} {:>10}",
        "user", "iter 1", "iter 10", "iter 100", "iter 1000", "late mean"
    );
    for user in &r.users {
        let at = |i: usize| user.accuracy_per_iteration[i - 1] * 100.0;
        println!(
            "{:<8} {:>8.1} {:>8.1} {:>8.1} {:>9.1} {:>10.2}",
            user.user.to_string(),
            at(1),
            at(10),
            at(100),
            at(1_000),
            user.mean_accuracy(900, 1_000) * 100.0
        );
    }
    // Convergence summary: mean accuracy in iteration bands.
    println!("\nmean accuracy per band (all users):");
    for (label, from, to) in [
        ("iters   1-10", 0, 10),
        ("iters  10-100", 10, 100),
        ("iters 100-1000", 100, 1_000),
    ] {
        let mean: f64 = r
            .users
            .iter()
            .map(|u| u.mean_accuracy(from, to))
            .sum::<f64>()
            / r.users.len() as f64;
        println!("  {label}: {:.2}%", mean * 100.0);
    }
}
