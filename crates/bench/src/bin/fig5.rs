//! Regenerates Fig. 5: the full policy sweep vs both baselines, on the
//! MHEALTH-like (5a) and PAMAP2-like (5b) datasets.
//!
//! Usage: `cargo run -p origin-bench --bin fig5 --release [mhealth|pamap2|both] [seed]`

use origin_core::experiments::{run_fig5, Dataset, ExperimentContext, Fig5Result};

fn print_result(r: &Fig5Result) {
    println!(
        "\n# Fig. 5 — accuracy (%) per policy, {} dataset",
        r.dataset
    );
    print!("{:<14}", "policy");
    for a in &r.activities {
        print!("{:>10}", a.label());
    }
    println!("{:>10}", "overall");
    for row in &r.rows {
        print!("{:<14}", row.label);
        for v in &row.per_activity {
            print!("{:>10.2}", v * 100.0);
        }
        println!("{:>10.2}", row.overall * 100.0);
    }
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "both".to_owned());
    let seed = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(77);

    let datasets: Vec<Dataset> = match which.as_str() {
        "mhealth" => vec![Dataset::Mhealth],
        "pamap2" => vec![Dataset::Pamap2],
        _ => vec![Dataset::Mhealth, Dataset::Pamap2],
    };
    for dataset in datasets {
        let ctx = ExperimentContext::<f64>::new(dataset, seed).expect("training succeeds");
        let r = run_fig5(&ctx).expect("simulation succeeds");
        print_result(&r);
    }
}
