//! Regenerates Table I: RR12-Origin vs BL-2 vs BL-1 per activity.
//!
//! Usage: `cargo run -p origin-bench --bin table1 --release [seed] [n_seeds]`
//!
//! With `n_seeds > 1`, the table is averaged over `n_seeds` consecutive
//! seeds (models retrained and trace regenerated per seed) — BL-2's
//! accuracy is fairly seed-sensitive, so the averaged table is the one to
//! compare against the paper.

use origin_core::experiments::{run_table1, Dataset, ExperimentContext, Table1Result};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(77);
    let n_seeds: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);

    let mut results: Vec<Table1Result> = Vec::new();
    for s in 0..n_seeds {
        let ctx = ExperimentContext::new(Dataset::Mhealth, seed + s).expect("training succeeds");
        results.push(run_table1(&ctx).expect("simulation succeeds"));
    }
    let n = results.len() as f64;

    println!(
        "# Table I — RR12-Origin vs baselines (%), MHEALTH-like, {} seed(s) from {seed}",
        results.len()
    );
    println!(
        "{:<10} {:>12} {:>8} {:>8} {:>9} {:>9}",
        "Activity", "RR12 Origin", "BL-2", "BL-1", "vs BL-2", "vs BL-1"
    );
    let rows = results[0].rows.len();
    for i in 0..rows {
        let activity = results[0].rows[i].activity;
        let avg = |f: &dyn Fn(&Table1Result) -> f64| -> f64 {
            results.iter().map(f).sum::<f64>() / n
        };
        let origin = avg(&|r| r.rows[i].origin);
        let bl2 = avg(&|r| r.rows[i].bl2);
        let bl1 = avg(&|r| r.rows[i].bl1);
        println!(
            "{:<10} {:>12.2} {:>8.2} {:>8.2} {:>+9.2} {:>+9.2}",
            activity.label(),
            origin * 100.0,
            bl2 * 100.0,
            bl1 * 100.0,
            (origin - bl2) * 100.0,
            (origin - bl1) * 100.0
        );
    }
    let o = results.iter().map(|r| r.overall.0).sum::<f64>() / n;
    let b2 = results.iter().map(|r| r.overall.1).sum::<f64>() / n;
    let b1 = results.iter().map(|r| r.overall.2).sum::<f64>() / n;
    println!(
        "{:<10} {:>12.2} {:>8.2} {:>8.2} {:>+9.2} {:>+9.2}",
        "OVERALL",
        o * 100.0,
        b2 * 100.0,
        b1 * 100.0,
        (o - b2) * 100.0,
        (o - b1) * 100.0
    );
    let mean_adv = results.iter().map(Table1Result::mean_vs_bl2).sum::<f64>() / n;
    println!("mean per-activity advantage vs BL-2: {mean_adv:+.2} pp");
}
