//! Regenerates Table I: RR12-Origin vs BL-2 vs BL-1 per activity.
//!
//! Usage: `cargo run -p origin-bench --bin table1 --release [seed] [n_seeds] [--json <path>]`
//!
//! With `n_seeds > 1`, the table is averaged over `n_seeds` consecutive
//! seeds (models retrained and trace regenerated per seed) — BL-2's
//! accuracy is fairly seed-sensitive, so the averaged table is the one to
//! compare against the paper. `--json` writes a machine-readable run
//! manifest (see EXPERIMENTS.md §Telemetry) with the averaged
//! per-activity rows as results.

use origin_bench::BenchArgs;
use origin_core::experiments::{run_table1, Dataset, ExperimentContext, Table1Result};
use origin_telemetry::{JsonValue, RunManifest};

fn main() {
    let args = BenchArgs::parse();
    let seed = args.u64_at(0, 77);
    let n_seeds = args.u64_at(1, 1);

    let mut results: Vec<Table1Result> = Vec::new();
    for s in 0..n_seeds {
        let ctx =
            ExperimentContext::<f64>::new(Dataset::Mhealth, seed + s).expect("training succeeds");
        results.push(run_table1(&ctx).expect("simulation succeeds"));
    }
    let n = results.len() as f64;

    println!(
        "# Table I — RR12-Origin vs baselines (%), MHEALTH-like, {} seed(s) from {seed}",
        results.len()
    );
    println!(
        "{:<10} {:>12} {:>8} {:>8} {:>9} {:>9}",
        "Activity", "RR12 Origin", "BL-2", "BL-1", "vs BL-2", "vs BL-1"
    );
    let mut manifest = RunManifest::new("table1", seed, "RR12 Origin")
        .with_config("dataset", Dataset::Mhealth.label())
        .with_config("n_seeds", n_seeds);
    let rows = results[0].rows.len();
    for i in 0..rows {
        let activity = results[0].rows[i].activity;
        let avg =
            |f: &dyn Fn(&Table1Result) -> f64| -> f64 { results.iter().map(f).sum::<f64>() / n };
        let origin = avg(&|r| r.rows[i].origin);
        let bl2 = avg(&|r| r.rows[i].bl2);
        let bl1 = avg(&|r| r.rows[i].bl1);
        println!(
            "{:<10} {:>12.2} {:>8.2} {:>8.2} {:>+9.2} {:>+9.2}",
            activity.label(),
            origin * 100.0,
            bl2 * 100.0,
            bl1 * 100.0,
            (origin - bl2) * 100.0,
            (origin - bl1) * 100.0
        );
        let key = activity.label().to_lowercase().replace(' ', "_");
        manifest = manifest.with_result(
            &key,
            JsonValue::Object(vec![
                ("origin".to_owned(), JsonValue::from(origin)),
                ("bl2".to_owned(), JsonValue::from(bl2)),
                ("bl1".to_owned(), JsonValue::from(bl1)),
            ]),
        );
    }
    let o = results.iter().map(|r| r.overall.0).sum::<f64>() / n;
    let b2 = results.iter().map(|r| r.overall.1).sum::<f64>() / n;
    let b1 = results.iter().map(|r| r.overall.2).sum::<f64>() / n;
    println!(
        "{:<10} {:>12.2} {:>8.2} {:>8.2} {:>+9.2} {:>+9.2}",
        "OVERALL",
        o * 100.0,
        b2 * 100.0,
        b1 * 100.0,
        (o - b2) * 100.0,
        (o - b1) * 100.0
    );
    let mean_adv = results.iter().map(Table1Result::mean_vs_bl2).sum::<f64>() / n;
    println!("mean per-activity advantage vs BL-2: {mean_adv:+.2} pp");

    let manifest = manifest
        .with_result(
            "overall",
            JsonValue::Object(vec![
                ("origin".to_owned(), JsonValue::from(o)),
                ("bl2".to_owned(), JsonValue::from(b2)),
                ("bl1".to_owned(), JsonValue::from(b1)),
            ]),
        )
        .with_result("mean_vs_bl2_pp", JsonValue::from(mean_adv));
    args.write_manifest(&manifest);
}
