//! Calibration diagnostic: per-sensor accuracy pattern (Fig. 2 target)
//! and the pruning accuracy drop, used when retuning the signature table.
//!
//! Usage: `cargo run -p origin-bench --bin calib --release`

use origin_nn::{prune_to_energy, InferenceEnergyModel, SensorClassifier, Trainer};
use origin_sensors::{DatasetSpec, HarDataset};
use origin_types::{ActivityClass, Energy, SensorLocation};

fn main() {
    let spec = DatasetSpec::mhealth_like();
    let ds = HarDataset::generate(&spec, 42);
    let trainer = Trainer::new().with_epochs(80);
    let em = InferenceEnergyModel::default();

    let hidden_for = |loc: SensorLocation| match loc {
        SensorLocation::Chest => vec![18usize],
        SensorLocation::LeftAnkle => vec![24],
        SensorLocation::RightWrist => vec![16],
    };

    for loc in SensorLocation::ALL {
        let sd = ds.sensor(loc);
        let train: Vec<(Vec<f64>, usize)> = sd
            .train
            .iter()
            .map(|s| (s.features.clone(), s.dense_label))
            .collect();
        let test: Vec<(Vec<f64>, usize)> = sd
            .test
            .iter()
            .map(|s| (s.features.clone(), s.dense_label))
            .collect();
        let mut clf = SensorClassifier::<f64>::train(
            &hidden_for(loc),
            &train,
            ds.activities().clone(),
            &trainer,
            42 + loc.index() as u64,
        )
        .unwrap();
        let cm = clf.evaluate(&test).unwrap();
        println!(
            "\n== {loc} == unpruned acc {:.2}%  energy {}",
            cm.accuracy().unwrap() * 100.0,
            clf.inference_energy(&em)
        );
        for a in ActivityClass::ALL {
            let d = ds.activities().dense_index(a).unwrap();
            print!("  {a}: {:.1}%", cm.class_accuracy(d).unwrap_or(0.0) * 100.0);
        }
        println!();

        // Prune to ~90 uJ.
        let budget = Energy::from_microjoules(90.0);
        let norm_train = clf.normalize_data(&train);
        let report =
            prune_to_energy(clf.mlp_mut(), &em, budget, &norm_train, &trainer, 0.15, 10).unwrap();
        let cm2 = clf.evaluate(&test).unwrap();
        println!(
            "  pruned: acc {:.2}%  energy {} sparsity {:.2} iters {}",
            cm2.accuracy().unwrap() * 100.0,
            report.energy_after,
            report.sparsity,
            report.iterations
        );
        for a in ActivityClass::ALL {
            let d = ds.activities().dense_index(a).unwrap();
            print!(
                "  {a}: {:.1}%",
                cm2.class_accuracy(d).unwrap_or(0.0) * 100.0
            );
        }
        println!();
    }
}
