//! Average-power study: what each system actually consumes per node,
//! versus the harvest supply, and the accuracy it buys (the abstract's
//! "same average power" comparison).
//!
//! Usage: `cargo run -p origin-bench --bin power --release [seed]`

use origin_core::experiments::{run_power_study, Dataset, ExperimentContext};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(77);
    let ctx = ExperimentContext::<f64>::new(Dataset::Mhealth, seed).expect("training succeeds");
    let r = run_power_study(&ctx).expect("simulation succeeds");

    println!("# Average power per node vs accuracy (seed {seed})");
    println!("mean incident harvest power: {}", r.incident_power);
    println!(
        "\n{:<14} {:>14} {:>14} {:>10}",
        "system", "consumed", "harvested", "accuracy"
    );
    for row in &r.rows {
        println!(
            "{:<14} {:>14} {:>14} {:>9.2}%",
            row.label,
            row.mean_consumed_per_node.to_string(),
            row.mean_harvested_per_node.to_string(),
            row.accuracy * 100.0
        );
    }
    println!("\nOrigin's consumption is bounded by its harvest; the baselines'");
    println!("steady supply lets them burn an order of magnitude more.");
}
