//! Times the NN kernel and sweep hot paths with a self-contained
//! median-of-samples harness and writes the numbers to `BENCH_sweep.json`.
//!
//! Criterion benches (`cargo bench -p origin-bench`) remain the
//! statistical authority; this binary exists so `scripts/bench.sh` can
//! pin one machine-readable snapshot (median ns, derived throughput, git
//! revision) per revision without parsing harness output.
//!
//! Usage: `cargo run -p origin-bench --bin bench_report --release --
//! [out.json] [--baseline PATH] [--check] [--threshold PCT] [--quick]`
//!
//! The NN kernel micro-benches run at both precisions: the `f64` rows
//! keep their historical names, the `f32` rows carry a `_f32` suffix, so
//! one snapshot answers "what does the narrow path buy" per revision.
//! Unsuffixed rows measure the default `unrolled` kernel path; `_scalar`
//! twins re-time the same kernels on the scalar reference so the
//! snapshot also answers "what does the unrolling buy". A `machine`
//! object records the CPU model, compile-time target features and
//! default kernel path the numbers were taken under.
//!
//! The regression gate: `--baseline PATH` compares the fresh numbers
//! against a previous snapshot (the baseline is read before the output
//! is written, so baselining against the out path works) and prints a
//! delta table; with `--check`, any row that slowed by more than
//! `--threshold` percent (default 25) exits nonzero. `--quick` runs only
//! the fast `f64` kernel rows and writes nothing — check.sh uses it as a
//! warn-only smoke; scripts/bench.sh runs the full gate. Every full run
//! also appends one compact line to `BENCH_history.jsonl` beside the
//! snapshot, building a per-revision perf history.

use origin_bench::bench_models;
use origin_bench::regression::{BenchSnapshot, RegressionReport};
use origin_bench::sweep::{run_sweep, SweepGrid, SweepOptions, SweepPolicy};
use origin_core::experiments::{Dataset, ExperimentContext};
use origin_core::{BaselineKind, Deployment, ModelVariant, PolicyKind};
use origin_nn::{KernelPath, Mlp, Scalar, Trainer, Workspace};
use origin_telemetry::JsonValue;
use origin_types::{SensorLocation, SimDuration};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

const DIMS: &[usize] = &[28, 20, 6];

/// Times `inner` calls of `f` per sample, `samples` times; returns the
/// median per-call nanoseconds.
// Benchmarks measure real elapsed time by definition; the reading never
// feeds back into simulated behaviour.
#[allow(clippy::disallowed_methods)]
fn median_ns(samples: usize, inner: usize, mut f: impl FnMut()) -> f64 {
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..inner {
                f();
            }
            start.elapsed().as_nanos() as f64 / inner as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    per_iter[per_iter.len() / 2]
}

fn random_vec<S: Scalar>(n: usize, rng: &mut StdRng) -> Vec<S> {
    (0..n)
        .map(|_| S::from_f64(rng.gen::<f64>() * 2.0 - 1.0))
        .collect()
}

fn pruned_mlp<S: Scalar>(sparsity: f64, seed: u64) -> Mlp<S> {
    let mut model = Mlp::<S>::new(DIMS, seed).expect("valid dims");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC5);
    for layer in model.layers_mut() {
        let mask: Vec<bool> = (0..layer.total_weights())
            .map(|_| rng.gen::<f64>() >= sparsity)
            .collect();
        layer.set_mask(mask);
    }
    model
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// The NN kernel micro-benches at precision `S` on `path`; `suffix`
/// distinguishes dtype and kernel path in the row names ("" keeps the
/// historical `f64` keys, which — like every unsuffixed row — measure
/// the default [`KernelPath::Unrolled`]; `_scalar` rows are the A/B
/// reference).
#[allow(clippy::too_many_lines)]
fn kernel_benches<S: Scalar>(
    push: &impl Fn(&mut Vec<(String, JsonValue)>, &str, f64, f64),
    rows: &mut Vec<(String, JsonValue)>,
    suffix: &str,
    path: KernelPath,
) {
    let mut rng = StdRng::seed_from_u64(5);
    let x: Vec<S> = random_vec(DIMS[0], &mut rng);

    // Raw dense kernel.
    {
        let dense = Mlp::<S>::new(DIMS, 9).expect("valid dims");
        let layer0 = &dense.layers()[0];
        let mut out = vec![S::ZERO; layer0.outputs()];
        let ns = median_ns(15, 20_000, || {
            layer0
                .weights()
                .matvec_into_path(black_box(&x), black_box(&mut out), path);
        });
        push(rows, &format!("matvec_20x28{suffix}"), ns, 1.0);
    }

    // Pruned layer: CSR compiled form vs the dense matvec over the same
    // mask-zeroed weights (the pre-optimization cost).
    for sparsity in [0.70, 0.90] {
        let model = pruned_mlp::<S>(sparsity, 9);
        let layer0 = &model.layers()[0];
        let pct = (sparsity * 100.0) as u32;
        let mut out = vec![S::ZERO; layer0.outputs()];
        let ns_csr = median_ns(15, 20_000, || {
            layer0.forward_into_path(black_box(&x), black_box(&mut out), path);
        });
        push(rows, &format!("pruned{pct}_layer_csr{suffix}"), ns_csr, 1.0);
        let mut out2 = vec![S::ZERO; layer0.outputs()];
        let ns_dense = median_ns(15, 20_000, || {
            layer0
                .weights()
                .matvec_into_path(black_box(&x), black_box(&mut out2), path);
            for (o, &bv) in out2.iter_mut().zip(layer0.bias()) {
                *o += bv;
            }
        });
        push(
            rows,
            &format!("pruned{pct}_layer_masked_dense{suffix}"),
            ns_dense,
            1.0,
        );
    }

    // Batch-size sensitivity of the batched CSR layer kernel: n = 1
    // pins the latency floor a single window pays, n = 8/32 show the
    // per-example amortization the batch dimension buys.
    {
        let model = pruned_mlp::<S>(0.90, 9);
        let layer0 = &model.layers()[0];
        for n in [1usize, 8, 32] {
            let mut rng = StdRng::seed_from_u64(21);
            let xs: Vec<S> = random_vec(DIMS[0] * n, &mut rng);
            let mut out = vec![S::ZERO; layer0.outputs() * n];
            let ns = median_ns(15, 10_000, || {
                layer0.forward_batch_into_path(black_box(&xs), n, black_box(&mut out), path);
            });
            push(
                rows,
                &format!("pruned90_forward_batch_n{n}{suffix}"),
                ns,
                n as f64,
            );
        }
    }

    // Whole-MLP logit path, dense vs pruned (workspace, zero-alloc).
    for (name, model) in [
        (
            "mlp_forward_dense",
            Mlp::<S>::new(DIMS, 9).expect("valid dims"),
        ),
        ("mlp_forward_pruned70", pruned_mlp::<S>(0.70, 9)),
    ] {
        let mut ws = Workspace::with_kernel_path(path);
        let ns = median_ns(15, 10_000, || {
            let _ = black_box(model.forward_with(&mut ws, black_box(&x))).expect("width matches");
        });
        push(rows, &format!("{name}{suffix}"), ns, 1.0);
    }

    // One epoch of the zero-allocation trainer.
    {
        let mut rng = StdRng::seed_from_u64(7);
        let data: Vec<(Vec<S>, usize)> = (0..64)
            .map(|i| (random_vec(DIMS[0], &mut rng), i % DIMS[DIMS.len() - 1]))
            .collect();
        let trainer = Trainer::new()
            .with_epochs(1)
            .with_seed(7)
            .with_kernel_path(path);
        let mut model = Mlp::<S>::new(DIMS, 11).expect("valid dims");
        let ns = median_ns(9, 50, || {
            let _ = black_box(trainer.fit(&mut model, black_box(&data))).expect("fits");
        });
        push(
            rows,
            &format!("mlp_train_epoch_28x20x6_n64{suffix}"),
            ns,
            1.0,
        );
    }
}

/// Parsed command line (see the module docs for the flag semantics).
struct Cli {
    out_path: String,
    baseline: Option<String>,
    check: bool,
    threshold_pct: f64,
    quick: bool,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        out_path: "BENCH_sweep.json".to_owned(),
        baseline: None,
        check: false,
        threshold_pct: 25.0,
        quick: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => cli.check = true,
            "--quick" => cli.quick = true,
            "--baseline" => {
                cli.baseline = Some(args.next().expect("--baseline needs a path"));
            }
            "--threshold" => {
                let value = args.next().expect("--threshold needs a percentage");
                cli.threshold_pct = value
                    .parse()
                    .unwrap_or_else(|_| panic!("invalid --threshold {value:?}"));
            }
            flag if flag.starts_with("--") => panic!("unknown flag {flag:?}"),
            positional => cli.out_path = positional.to_owned(),
        }
    }
    cli
}

/// Seconds since the Unix epoch, for history-line stamps only.
// History stamps are wall-clock metadata by definition; nothing
// deterministic reads them back.
#[allow(clippy::disallowed_methods)]
fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs())
}

fn main() {
    let cli = parse_cli();
    // Read the baseline before any output is written: baselining against
    // the out path itself (the bench.sh flow) must see the old bytes.
    let baseline = cli.baseline.as_ref().map(|path| {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        BenchSnapshot::parse(&text).unwrap_or_else(|e| panic!("baseline {path}: {e}"))
    });

    let mut rows: Vec<(String, JsonValue)> = Vec::new();
    // (name, median ns/op, ops represented by one call)
    let push = |rows: &mut Vec<(String, JsonValue)>, name: &str, ns: f64, ops: f64| {
        println!("{name:<42} {ns:>14.0} ns/op");
        rows.push((
            name.to_owned(),
            JsonValue::Object(vec![
                ("median_ns".to_owned(), JsonValue::from(ns)),
                ("ops_per_sec".to_owned(), JsonValue::from(ops * 1.0e9 / ns)),
            ]),
        ));
    };

    kernel_benches::<f64>(&push, &mut rows, "", KernelPath::default());
    if !cli.quick {
        full_benches(&push, &mut rows);
    }

    let report = JsonValue::Object(vec![
        ("git_rev".to_owned(), JsonValue::from(git_rev())),
        (
            "harness".to_owned(),
            JsonValue::from("bench_report median-of-samples (see scripts/bench.sh)"),
        ),
        ("machine".to_owned(), machine_metadata()),
        ("benches".to_owned(), JsonValue::Object(rows)),
    ]);
    let current = BenchSnapshot::parse(&report.render_pretty()).expect("own schema parses");

    if cli.quick {
        println!("quick mode: snapshot not written");
    } else {
        std::fs::write(&cli.out_path, report.render_pretty() + "\n")
            .expect("report file is writable");
        println!("wrote {}", cli.out_path);
        let history_path =
            std::path::Path::new(&cli.out_path).with_file_name("BENCH_history.jsonl");
        let mut history = std::fs::read_to_string(&history_path).unwrap_or_default();
        history.push_str(&current.history_line(unix_now()));
        history.push('\n');
        std::fs::write(&history_path, history).expect("history file is writable");
        println!("appended {}", history_path.display());
    }

    if let Some(baseline) = baseline {
        let gate = RegressionReport::compare(&baseline, &current, cli.threshold_pct);
        println!(
            "\nvs baseline {} (threshold +{:.0}%):",
            baseline.git_rev, cli.threshold_pct
        );
        print!("{}", gate.render());
        if cli.check && !gate.passed() {
            eprintln!("bench regression gate FAILED");
            std::process::exit(1);
        }
    }
}

/// Where the numbers came from: CPU model, the compile-time target
/// features the kernels were built against, and the default kernel
/// path the unsuffixed rows measure. [`BenchSnapshot::parse`] ignores
/// unknown top-level keys, so older baselines stay comparable.
fn machine_metadata() -> JsonValue {
    let cpu_model = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|text| {
            text.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|m| m.trim().to_owned())
        })
        .unwrap_or_else(|| "unknown".to_owned());
    // Compile-time (cfg!) features: what the autovectorizer was actually
    // allowed to emit — deliberately not a runtime CPUID probe (lint D1).
    let mut features: Vec<&str> = Vec::new();
    macro_rules! feat {
        ($name:literal) => {
            if cfg!(target_feature = $name) {
                features.push($name);
            }
        };
    }
    feat!("sse2");
    feat!("sse4.2");
    feat!("avx");
    feat!("avx2");
    feat!("fma");
    feat!("avx512f");
    JsonValue::Object(vec![
        ("cpu_model".to_owned(), JsonValue::from(cpu_model)),
        (
            "target_features".to_owned(),
            JsonValue::from(features.join(",")),
        ),
        (
            "default_kernel_path".to_owned(),
            JsonValue::from(KernelPath::default().label()),
        ),
    ])
}

/// The slow rows of the full snapshot: the scalar-reference A/B twins,
/// `f32` kernel twins (both paths), the trained classifier entry
/// points, and the 16-cell sweep.
fn full_benches(
    push: &impl Fn(&mut Vec<(String, JsonValue)>, &str, f64, f64),
    rows: &mut Vec<(String, JsonValue)>,
) {
    kernel_benches::<f64>(push, rows, "_scalar", KernelPath::Scalar);
    kernel_benches::<f32>(push, rows, "_f32", KernelPath::default());
    kernel_benches::<f32>(push, rows, "_f32_scalar", KernelPath::Scalar);

    // Trained classifier: allocating entry point vs workspace entry
    // point (same kernels, isolates the steady-state allocation cost).
    println!("training bench models...");
    let models = bench_models(11);
    {
        let clf = models.classifier(ModelVariant::Pruned, SensorLocation::LeftAnkle);
        let mut rng = StdRng::seed_from_u64(1);
        let features = random_vec(clf.mlp().input_dim(), &mut rng);
        let ns_alloc = median_ns(15, 10_000, || {
            let _ = black_box(clf.classify(black_box(&features))).expect("width matches");
        });
        push(rows, "classify_pruned_alloc", ns_alloc, 1.0);
        let mut ws = Workspace::new();
        let ns_ws = median_ns(15, 10_000, || {
            let _ =
                black_box(clf.classify_with(&mut ws, black_box(&features))).expect("width matches");
        });
        push(rows, "classify_pruned_workspace", ns_ws, 1.0);
    }

    // The 16-cell sweep grid from `benches/sweep.rs`, single-threaded.
    {
        let ctx = ExperimentContext::from_parts(
            Dataset::Mhealth,
            models,
            Deployment::builder().seed(13).build(),
            13,
        )
        .with_horizon(SimDuration::from_secs(60));
        let grid = SweepGrid::new(
            13,
            vec![
                SweepPolicy::Policy(PolicyKind::Origin { cycle: 12 }),
                SweepPolicy::Baseline(BaselineKind::Baseline2),
            ],
        )
        .with_seeds(4)
        .with_sampled_users(2);
        let opts = SweepOptions {
            threads: 1,
            ..SweepOptions::default()
        };
        let cells = grid.len() as f64;
        let ns = median_ns(5, 1, || {
            let _ = black_box(run_sweep(&ctx, &grid, &opts)).expect("sweep succeeds");
        });
        push(rows, "sweep_16_cells_threads_1", ns, cells);
    }
}
