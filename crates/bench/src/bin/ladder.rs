//! Calibration diagnostic: the full policy ladder with completion and
//! confidence-matrix internals, used when retuning the energy or
//! signature constants (see EXPERIMENTS.md "Calibration notes").
//!
//! Usage: `cargo run -p origin-bench --bin ladder --release`

use origin_core::experiments::{Dataset, ExperimentContext};
use origin_core::{run_baseline, BaselineKind, PolicyKind, SimConfig};
use origin_types::SimDuration;

fn main() {
    let ctx = ExperimentContext::<f64>::new(Dataset::Mhealth, 77)
        .unwrap()
        .with_horizon(SimDuration::from_secs(3_600));
    let sim = ctx.simulator();
    let base = SimConfig::new(PolicyKind::NaiveAllOn)
        .with_horizon(ctx.horizon)
        .with_seed(ctx.seed);

    let policies = [
        PolicyKind::NaiveAllOn,
        PolicyKind::RoundRobin { cycle: 3 },
        PolicyKind::RoundRobin { cycle: 6 },
        PolicyKind::RoundRobin { cycle: 9 },
        PolicyKind::RoundRobin { cycle: 12 },
        PolicyKind::Aas { cycle: 12 },
        PolicyKind::Aasr { cycle: 12 },
        PolicyKind::Origin { cycle: 12 },
        PolicyKind::Aas { cycle: 6 },
        PolicyKind::Aasr { cycle: 6 },
        PolicyKind::Origin { cycle: 6 },
    ];
    for p in policies {
        let r = sim
            .run(&SimConfig {
                policy: p,
                ..base.clone()
            })
            .unwrap();
        let (all, some, none) = r.completion_breakdown();
        println!(
            "{:<14} acc {:.4} completion {:.3} (all {:.3} some {:.3} none {:.3}) attempts {} completions {} no_out {}",
            p.label(),
            r.accuracy(),
            r.completion_rate(),
            all, some, none,
            r.attempts,
            r.completions,
            r.no_output_windows,
        );
    }
    // Confidence matrix inspection.
    let cm = ctx.models.confidence_matrix(0.08);
    println!("confidence matrix (rows=node, cols=class):");
    for n in 0..3 {
        let row: Vec<String> = origin_types::ActivityClass::ALL
            .iter()
            .map(|&a| format!("{:.4}", cm.weight(origin_types::NodeId::new(n), a).unwrap()))
            .collect();
        println!("  node{}: {}", n, row.join(" "));
    }
    for alpha in [0.001f64, 0.02, 0.3] {
        let mut cfg = SimConfig {
            policy: PolicyKind::Origin { cycle: 12 },
            ..base.clone()
        };
        cfg.alpha = alpha;
        let r = sim.run(&cfg).unwrap();
        println!("Origin RR12 alpha {:.3}: acc {:.4}", alpha, r.accuracy());
    }
    for kind in [BaselineKind::Baseline2, BaselineKind::Baseline1] {
        let b = run_baseline(kind, &ctx.models, &base).unwrap();
        println!(
            "{:<14} acc {:.4} completion {:.3}",
            kind.label(),
            b.report.accuracy(),
            b.report.completion_rate()
        );
    }
}
