//! Ablation battery: recall, confidence weighting, NVP, adaptation rate.
//!
//! Usage: `cargo run -p origin-bench --bin ablation --release [cycle] [seed]`

use origin_core::experiments::{run_ablation, Dataset, ExperimentContext};

fn main() {
    let cycle: u8 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    let seed = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(77);
    let ctx = ExperimentContext::new(Dataset::Mhealth, seed).expect("training succeeds");
    let r = run_ablation(&ctx, cycle).expect("simulation succeeds");

    println!("# Ablations at RR{} (seed {seed})", r.cycle);
    println!("\nmechanism ladder (what each part of Origin buys):");
    println!(
        "  AAS only (no recall, no weights): {:>6.2}%",
        r.aas_accuracy * 100.0
    );
    println!(
        "  + recall (AASR, majority vote):   {:>6.2}%",
        r.aasr_accuracy * 100.0
    );
    println!(
        "  + adaptive confidence weighting:  {:>6.2}%",
        r.origin_accuracy * 100.0
    );

    println!("\nnon-volatile processor (naive policy completion rate):");
    println!("  with NVP:       {:>6.2}%", r.naive_nvp_completion * 100.0);
    println!(
        "  volatile CPU:   {:>6.2}%",
        r.naive_volatile_completion * 100.0
    );

    println!("\nconfidence adaptation rate (Origin accuracy):");
    for (alpha, acc) in &r.alpha_sweep {
        println!("  alpha {alpha:<5}: {:>6.2}%", acc * 100.0);
    }

    println!("\nanticipation quality:");
    println!(
        "  learned (last classification): {:>6.2}%",
        r.origin_accuracy * 100.0
    );
    println!(
        "  oracle (true activity):        {:>6.2}%",
        r.origin_oracle_accuracy * 100.0
    );
}
