//! Ablation battery: recall, confidence weighting, NVP, adaptation rate —
//! replicated over multiple seeds in parallel, reported as mean ± 95% CI.
//!
//! Usage: `cargo run -p origin-bench --bin ablation --release -- [cycle] [seed]
//! [--seeds N] [--threads N]`
//!
//! Each seed replica runs the full battery on its own derived RNG stream
//! (the sweep engine's [`cell_stream`] derivation), sharing the one
//! trained model bank. The output is independent of `--threads`. The
//! shared CLI surface is documented in `docs/OPERATIONS.md`.

use origin_bench::sweep::{cell_stream, parallel_map, Aggregate};
use origin_bench::BenchArgs;
use origin_core::experiments::{run_ablation_seeded, AblationReport, Dataset, ExperimentContext};

fn agg(reports: &[AblationReport], f: impl Fn(&AblationReport) -> f64) -> Aggregate {
    Aggregate::from_values(&reports.iter().map(f).collect::<Vec<_>>())
}

fn main() {
    let args = BenchArgs::parse();
    let cycle = u8::try_from(args.u64_at(0, 12)).unwrap_or(12);
    let seed = args.u64_at(1, 77);
    let seeds = u32::try_from(args.u64_flag("seeds", 3)).unwrap_or(3).max(1);

    let ctx = ExperimentContext::<f64>::new(Dataset::Mhealth, seed).expect("training succeeds");
    let replicas: Vec<u64> = (0..seeds).map(|s| cell_stream(seed, s, 0)).collect();
    let reports = parallel_map(args.threads(), &replicas, |_, &sim_seed| {
        run_ablation_seeded(&ctx, cycle, sim_seed).expect("simulation succeeds")
    });

    println!("# Ablations at RR{cycle} (base seed {seed}, {seeds} seed replica(s), mean ± 95% CI)");
    println!("\nmechanism ladder (what each part of Origin buys):");
    println!(
        "  AAS only (no recall, no weights): {:>16}",
        agg(&reports, |r| r.aas_accuracy).fmt_pct()
    );
    println!(
        "  + recall (AASR, majority vote):   {:>16}",
        agg(&reports, |r| r.aasr_accuracy).fmt_pct()
    );
    println!(
        "  + adaptive confidence weighting:  {:>16}",
        agg(&reports, |r| r.origin_accuracy).fmt_pct()
    );

    println!("\nnon-volatile processor (naive policy completion rate):");
    println!(
        "  with NVP:       {:>16}",
        agg(&reports, |r| r.naive_nvp_completion).fmt_pct()
    );
    println!(
        "  volatile CPU:   {:>16}",
        agg(&reports, |r| r.naive_volatile_completion).fmt_pct()
    );

    println!("\nconfidence adaptation rate (Origin accuracy):");
    for i in 0..reports[0].alpha_sweep.len() {
        let alpha = reports[0].alpha_sweep[i].0;
        println!(
            "  alpha {alpha:<5}: {:>16}",
            agg(&reports, |r| r.alpha_sweep[i].1).fmt_pct()
        );
    }

    println!("\nanticipation quality:");
    println!(
        "  learned (last classification): {:>16}",
        agg(&reports, |r| r.origin_accuracy).fmt_pct()
    );
    println!(
        "  oracle (true activity):        {:>16}",
        agg(&reports, |r| r.origin_oracle_accuracy).fmt_pct()
    );
}
