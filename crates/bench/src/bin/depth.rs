//! The RR-depth sweet-spot sweep: where does more harvesting time stop
//! paying for itself? (Section IV-C's RR-12 recommendation.)
//!
//! Usage: `cargo run -p origin-bench --bin depth --release [seed]`

use origin_core::experiments::{run_depth_sweep, Dataset, ExperimentContext};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(77);
    let ctx = ExperimentContext::<f64>::new(Dataset::Mhealth, seed).expect("training succeeds");
    let cycles = [3u8, 6, 9, 12, 18, 24, 36, 48, 72];
    let sweep = run_depth_sweep(&ctx, &cycles).expect("simulation succeeds");

    println!("# Origin accuracy vs ER-r depth (seed {seed})");
    println!(
        "{:>6} {:>10} {:>12} {:>12}",
        "cycle", "accuracy", "jumping", "completion"
    );
    for p in &sweep.points {
        println!(
            "{:>6} {:>9.2}% {:>11.2}% {:>11.1}%",
            format!("RR{}", p.cycle),
            p.accuracy * 100.0,
            p.jumping_accuracy * 100.0,
            p.completion * 100.0
        );
    }
    println!("\nbest depth: RR{}", sweep.best_cycle());
    println!("Shallow cycles starve; deep cycles go stale. The sweet spot sits");
    println!("where completion saturates — the paper's RR-12 recommendation.");
}
