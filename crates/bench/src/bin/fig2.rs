//! Regenerates Fig. 2: per-sensor DNN accuracy + majority-voting ensemble
//! per activity (fully powered, MHEALTH-like).
//!
//! Usage: `cargo run -p origin-bench --bin fig2 --release [seed]`

use origin_core::experiments::{run_fig2, Dataset, ExperimentContext};
use origin_types::SensorLocation;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(77);
    let ctx = ExperimentContext::<f64>::new(Dataset::Mhealth, seed).expect("training succeeds");
    let r = run_fig2(&ctx, 120).expect("evaluation succeeds");

    println!("# Fig. 2 — per-sensor accuracy (%) and majority ensemble, seed {seed}");
    print!("{:<14}", "sensor");
    for a in &r.activities {
        print!("{:>10}", a.label());
    }
    println!("{:>10}", "overall");
    for loc in SensorLocation::ALL {
        print!("{:<14}", loc.label());
        for v in &r.per_sensor[loc.index()] {
            print!("{:>10.2}", v * 100.0);
        }
        println!(
            "{:>10.2}",
            r.confusions[loc.index()].accuracy().unwrap_or(0.0) * 100.0
        );
    }
    print!("{:<14}", "Majority Vote");
    let mut sum = 0.0;
    for v in &r.majority {
        print!("{:>10.2}", v * 100.0);
        sum += v;
    }
    println!("{:>10.2}", sum / r.majority.len() as f64 * 100.0);
}
