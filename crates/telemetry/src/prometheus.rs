//! Hand-rolled Prometheus text exposition (format version 0.0.4).
//!
//! Registry names may carry an inline label set
//! (`origin_events_total{event="window_start"}`); the family name before
//! the brace groups the `# HELP`/`# TYPE` headers so a scrape parses
//! cleanly. Metric names follow the Prometheus unit conventions —
//! cumulative energy families end in `_microjoules_total`, slot counts
//! in `_slots_total` — and every family carries a `# HELP` line (the
//! known Origin families get curated text, anything else a generic one).

use crate::metrics::MetricsRegistry;
use std::io::{self, Write};

/// Curated `# HELP` text for the metric families the observers emit.
fn help_text(family: &str) -> Option<&'static str> {
    Some(match family {
        "origin_events_total" => "Simulation events observed, by event kind.",
        "origin_node_harvested_microjoules_total" => {
            "Cumulative harvested energy credited to each node, in microjoules."
        }
        "origin_node_stored_microjoules" => {
            "Stored capacitor energy per node at the last harvest slice, in microjoules."
        }
        "origin_stored_headroom" => {
            "Stored energy at each inference attempt, as a fraction of capacity."
        }
        "origin_slot_attempters" => "Nodes attempting inference per window.",
        "origin_confidence" => "Reported classifier confidence per completed inference.",
        "origin_radio_bytes_total" => "Radio payload bytes, by direction.",
        "origin_ledger_microjoules_total" => {
            "Energy-ledger flows (harvested, charge_loss, clipped, leaked), in microjoules."
        }
        "origin_ledger_drawn_microjoules_total" => {
            "Energy drawn from storage, by operation (duty, infer, checkpoint, ...), in microjoules."
        }
        "origin_ledger_slots_total" => "Per-node ledger slots closed (audit granularity).",
        _ => return None,
    })
}

/// Family name (before any `{label}` suffix), sanitized to the
/// Prometheus charset.
fn family(name: &str) -> String {
    let bare = name.split('{').next().unwrap_or(name);
    bare.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// The full sample name with its label set, family part sanitized.
fn sample(name: &str) -> String {
    match name.split_once('{') {
        Some((bare, labels)) => format!("{}{{{}", family(bare), labels),
        None => family(name),
    }
}

fn number(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v.is_infinite() {
        if v > 0.0 {
            "+Inf".into()
        } else {
            "-Inf".into()
        }
    } else if v.fract() == 0.0 && v.abs() < 9_007_199_254_740_992.0 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Writes `metrics` (a [`MetricsRegistry`], typically filled by
/// [`crate::MetricsObserver`]) in Prometheus text exposition format.
///
/// Counters (integer and floating-point) and gauges become single
/// samples under `# HELP`/`# TYPE` headers (one pair per family, in name
/// order); histograms expand to cumulative `_bucket{le=...}` samples
/// plus `_sum` and `_count`.
///
/// # Errors
///
/// Propagates any error from `out`.
pub fn write_prometheus<W: Write>(out: &mut W, metrics: &MetricsRegistry) -> io::Result<()> {
    let mut last_family = String::new();
    let mut header = |out: &mut W, name: &str, kind: &str| -> io::Result<()> {
        let fam = family(name);
        if fam != last_family {
            let help =
                help_text(&fam).map_or_else(|| format!("Origin {kind} {fam}."), str::to_owned);
            writeln!(out, "# HELP {fam} {help}")?;
            writeln!(out, "# TYPE {fam} {kind}")?;
            last_family = fam;
        }
        Ok(())
    };

    for (name, value) in metrics.counters() {
        header(out, name, "counter")?;
        writeln!(out, "{} {}", sample(name), value)?;
    }
    // Floating-point counters (the energy ledger's µJ flows) render as
    // ordinary counter families; fractional values are legal samples.
    for (name, value) in metrics.fcounters() {
        header(out, name, "counter")?;
        writeln!(out, "{} {}", sample(name), number(value))?;
    }
    for (name, value) in metrics.gauges() {
        header(out, name, "gauge")?;
        writeln!(out, "{} {}", sample(name), number(value))?;
    }
    for (name, histogram) in metrics.histograms() {
        let fam = family(name);
        let help =
            help_text(&fam).map_or_else(|| format!("Origin histogram {fam}."), str::to_owned);
        writeln!(out, "# HELP {fam} {help}")?;
        writeln!(out, "# TYPE {fam} histogram")?;
        let mut cumulative = 0u64;
        for (bound, count) in histogram
            .bounds()
            .iter()
            .map(|b| number(*b))
            .chain(std::iter::once("+Inf".to_owned()))
            .zip(histogram.bucket_counts())
        {
            cumulative += count;
            writeln!(out, "{fam}_bucket{{le=\"{bound}\"}} {cumulative}")?;
        }
        writeln!(out, "{fam}_sum {}", number(histogram.sum()))?;
        writeln!(out, "{fam}_count {}", histogram.count())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_get_one_help_and_type_header() {
        let mut m = MetricsRegistry::new();
        m.add("origin_events_total{event=\"a\"}", 1);
        m.add("origin_events_total{event=\"b\"}", 2);
        m.set_gauge("origin_stored{node=\"0\"}", 1.5);
        let mut buf = Vec::new();
        write_prometheus(&mut buf, &m).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(
            text.matches("# TYPE origin_events_total counter").count(),
            1
        );
        // Every family carries exactly one HELP line; known families get
        // curated text, unknown ones a generic fallback.
        assert_eq!(
            text.matches("# HELP origin_events_total Simulation events observed")
                .count(),
            1
        );
        assert!(text.contains("# HELP origin_stored Origin gauge origin_stored.\n"));
        assert!(text.contains("origin_events_total{event=\"a\"} 1\n"));
        assert!(text.contains("origin_events_total{event=\"b\"} 2\n"));
        assert!(text.contains("# TYPE origin_stored gauge\n"));
        assert!(text.contains("origin_stored{node=\"0\"} 1.5\n"));
    }

    #[test]
    fn ledger_fcounters_render_as_counter_families() {
        let mut m = MetricsRegistry::new();
        m.fadd("origin_ledger_microjoules_total{flow=\"harvested\"}", 12.25);
        m.fadd("origin_ledger_drawn_microjoules_total{op=\"duty\"}", 3.5);
        m.add("origin_ledger_slots_total", 7);
        let mut buf = Vec::new();
        write_prometheus(&mut buf, &m).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("# HELP origin_ledger_microjoules_total Energy-ledger flows"));
        assert!(text.contains("# TYPE origin_ledger_microjoules_total counter\n"));
        assert!(text.contains("origin_ledger_microjoules_total{flow=\"harvested\"} 12.25\n"));
        assert!(text.contains("origin_ledger_drawn_microjoules_total{op=\"duty\"} 3.5\n"));
        assert!(text.contains("# HELP origin_ledger_slots_total Per-node ledger slots closed"));
        assert!(text.contains("origin_ledger_slots_total 7\n"));
    }

    #[test]
    fn histograms_expose_cumulative_buckets() {
        let mut m = MetricsRegistry::new();
        for v in [0.5, 1.5, 9.0] {
            m.observe("origin_headroom", &[1.0, 2.0], v);
        }
        let mut buf = Vec::new();
        write_prometheus(&mut buf, &m).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("# HELP origin_headroom Origin histogram origin_headroom.\n"));
        assert!(text.contains("# TYPE origin_headroom histogram\n"));
        assert!(text.contains("origin_headroom_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("origin_headroom_bucket{le=\"2\"} 2\n"));
        assert!(text.contains("origin_headroom_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("origin_headroom_sum 11\n"));
        assert!(text.contains("origin_headroom_count 3\n"));
    }

    #[test]
    fn family_sanitizes_bad_chars() {
        assert_eq!(family("ok_name"), "ok_name");
        assert_eq!(family("bad-name.total"), "bad_name_total");
        assert_eq!(family("labelled{x=\"y\"}"), "labelled");
    }
}
