//! The JSONL event sink: one [`SimEvent`] per line.
//!
//! The schema is one JSON object per line with `"event"` first (see
//! EXPERIMENTS.md §Telemetry); lines parse back with
//! [`crate::JsonValue::parse`].

use crate::event::SimEvent;
use crate::observer::SimObserver;
use std::io::{self, Write};

/// Writes every observed event as one JSON line into `W`.
///
/// I/O errors are deferred: the writer keeps a sticky first error and
/// stops writing, and [`JsonlObserver::finish`] surfaces it — `on_event`
/// itself stays infallible so the observer can sit on the hot path.
#[derive(Debug)]
pub struct JsonlObserver<W: Write> {
    writer: W,
    written: u64,
    error: Option<io::Error>,
}

impl<W: Write> JsonlObserver<W> {
    /// Wraps `writer` as an event sink.
    #[must_use]
    pub fn new(writer: W) -> Self {
        Self {
            writer,
            written: 0,
            error: None,
        }
    }

    /// Lines successfully written so far.
    #[must_use]
    pub fn events_written(&self) -> u64 {
        self.written
    }

    /// Flushes and returns the inner writer, or the first I/O error hit.
    ///
    /// # Errors
    ///
    /// Returns the sticky write error if any line failed, or the flush
    /// error.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> SimObserver for JsonlObserver<W> {
    fn on_event(&mut self, event: &SimEvent) {
        if self.error.is_some() {
            return;
        }
        let mut line = event.to_json().render();
        line.push('\n');
        match self.writer.write_all(line.as_bytes()) {
            Ok(()) => self.written += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;
    use origin_types::NodeId;

    #[test]
    fn writes_one_parseable_line_per_event() {
        let mut sink = JsonlObserver::new(Vec::new());
        sink.on_event(&SimEvent::NvpCheckpoint {
            window: 3,
            node: NodeId::new(1),
        });
        sink.on_event(&SimEvent::RecallServed {
            window: 4,
            votes: 2,
        });
        assert_eq!(sink.events_written(), 2);
        let bytes = sink.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = JsonValue::parse(lines[0]).unwrap();
        assert_eq!(
            first.get("event").and_then(JsonValue::as_str),
            Some("nvp_checkpoint")
        );
        assert_eq!(first.get("window").and_then(JsonValue::as_u64), Some(3));
        let second = JsonValue::parse(lines[1]).unwrap();
        assert_eq!(second.get("votes").and_then(JsonValue::as_u64), Some(2));
    }

    /// A writer that fails after `ok_writes` successful lines.
    struct Flaky {
        ok_writes: u32,
    }

    impl Write for Flaky {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.ok_writes == 0 {
                Err(io::Error::other("disk full"))
            } else {
                self.ok_writes -= 1;
                Ok(buf.len())
            }
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn io_errors_are_sticky_and_surface_in_finish() {
        let mut sink = JsonlObserver::new(Flaky { ok_writes: 1 });
        let event = SimEvent::RecallServed {
            window: 0,
            votes: 1,
        };
        sink.on_event(&event);
        sink.on_event(&event);
        sink.on_event(&event);
        assert_eq!(sink.events_written(), 1);
        assert!(sink.finish().is_err());
    }
}
