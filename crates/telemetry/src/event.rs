//! The structured simulation event vocabulary.
//!
//! Every variant is `Copy` and allocation-free so that constructing an
//! event costs nothing when the observer is [`crate::NoopObserver`] — the
//! optimizer deletes the whole emission.

use crate::json::JsonValue;
use origin_types::{ActivityClass, NodeId};

/// An addressable participant on the body-area network, mirrored from
/// `origin-net`'s `Endpoint` without the dependency (the net crate emits
/// into this crate, not the other way around).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Party {
    /// The battery-backed host device (phone).
    Host,
    /// A sensor node.
    Node(NodeId),
}

impl Party {
    fn to_json(self) -> JsonValue {
        match self {
            Party::Host => JsonValue::from("host"),
            Party::Node(id) => JsonValue::from(format!("node{}", id.as_u32())),
        }
    }
}

/// The operation a [`LedgerEntry::Drawn`] flow paid for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DrawOp {
    /// The always-on duty load over one window (sensing + idle).
    Duty,
    /// A completed inference attempt (full window cost).
    Infer,
    /// A brownout checkpoint under non-volatile progress (NVP).
    Checkpoint,
    /// Energy wasted by a brownout on a volatile node (progress lost).
    Lost,
    /// A radio transmission (report or activation signal).
    RadioTx,
    /// A radio reception (host frame delivered to the node).
    RadioRx,
}

impl DrawOp {
    /// The JSONL / metrics name of this operation (snake_case).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DrawOp::Duty => "duty",
            DrawOp::Infer => "infer",
            DrawOp::Checkpoint => "checkpoint",
            DrawOp::Lost => "lost",
            DrawOp::RadioTx => "radio_tx",
            DrawOp::RadioRx => "radio_rx",
        }
    }
}

/// One typed flow of the deterministic energy ledger.
///
/// Flows are per-node and per-window (the simulator's slot). The audit
/// identity — checked by [`crate::LedgerAuditor`] — is
///
/// ```text
/// stored(close) = stored(prev close)
///               + harvested − charge_loss − clipped    (capacitor intake)
///               − Σ drawn − leaked                     (capacitor outflow)
/// ```
///
/// where `harvested` is the energy the harvester front-end *offered* to
/// the capacitor, `charge_loss` the charge-efficiency loss, and `clipped`
/// the part rejected because the capacitor was full.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LedgerEntry {
    /// Audit anchor: the stored energy before the first window runs.
    Opening {
        /// Stored energy at simulation start (µJ).
        stored_uj: f64,
    },
    /// Energy the harvester front-end offered to the capacitor.
    Harvested {
        /// Offered energy (µJ), before charge-efficiency loss.
        uj: f64,
    },
    /// Energy lost to the capacitor's charge efficiency.
    ChargeLoss {
        /// Lost energy (µJ).
        uj: f64,
    },
    /// Energy rejected because the capacitor was at capacity.
    Clipped {
        /// Rejected energy (µJ).
        uj: f64,
    },
    /// Energy lost to capacitor leakage over the window.
    Leaked {
        /// Leaked energy (µJ).
        uj: f64,
    },
    /// Energy drawn from the capacitor to pay for one operation.
    Drawn {
        /// What the draw paid for.
        op: DrawOp,
        /// Drawn energy (µJ).
        uj: f64,
    },
    /// Audit anchor: the stored energy when the window's slot closed.
    SlotClose {
        /// Stored energy at slot close (µJ).
        stored_uj: f64,
    },
}

impl LedgerEntry {
    /// The JSONL / metrics name of this flow (snake_case).
    #[must_use]
    pub fn flow(&self) -> &'static str {
        match self {
            LedgerEntry::Opening { .. } => "opening",
            LedgerEntry::Harvested { .. } => "harvested",
            LedgerEntry::ChargeLoss { .. } => "charge_loss",
            LedgerEntry::Clipped { .. } => "clipped",
            LedgerEntry::Leaked { .. } => "leaked",
            LedgerEntry::Drawn { .. } => "drawn",
            LedgerEntry::SlotClose { .. } => "slot_close",
        }
    }
}

/// One thing the simulated system did.
///
/// Times are simulation time in microseconds (`at_us`); `window` is the
/// HAR window index within the run. Energies are microjoules to match the
/// workspace's `Energy` quantity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimEvent {
    /// A HAR window began.
    WindowStart {
        /// Window index.
        window: u64,
        /// Window start, simulated µs.
        at_us: u64,
        /// Ground-truth activity for this window.
        truth: ActivityClass,
    },
    /// One node's energy intake over one window.
    HarvestSlice {
        /// Window index.
        window: u64,
        /// The harvesting node.
        node: NodeId,
        /// Energy captured into the capacitor this window (µJ).
        harvested_uj: f64,
        /// Stored energy after harvest, duty and leakage (µJ).
        stored_uj: f64,
    },
    /// The policy decided this window's slot (no-op slots included).
    SlotScheduled {
        /// Window index.
        window: u64,
        /// How many nodes attempt this window (0 for a no-op slot).
        attempters: u32,
        /// Whether this is an ER-r no-op slot.
        idle: bool,
    },
    /// An AAS hand-off signal was sent over the radio.
    ActivationSignal {
        /// Window index.
        window: u64,
        /// The previous attempter doing the signalling.
        from: NodeId,
        /// The node being activated.
        to: NodeId,
    },
    /// A node was scheduled and started an inference attempt.
    InferenceAttempt {
        /// Window index.
        window: u64,
        /// The attempting node.
        node: NodeId,
        /// Stored energy over full attempt cost at schedule time
        /// (≥ 1.0 means affordable).
        headroom: f64,
    },
    /// An inference attempt finished and produced a classification.
    InferenceCompleted {
        /// Window index.
        window: u64,
        /// The completing node.
        node: NodeId,
        /// The classified activity.
        activity: ActivityClass,
        /// The classifier's softmax-variance confidence.
        confidence: f64,
    },
    /// An inference attempt aborted on energy.
    InferenceBrownout {
        /// Window index.
        window: u64,
        /// The browned-out node.
        node: NodeId,
        /// `false` when sampling itself browned out (no usable window),
        /// `true` when the inference ran out of energy.
        sensed: bool,
    },
    /// The NVP checkpointed through a brownout (progress preserved).
    NvpCheckpoint {
        /// Window index.
        window: u64,
        /// The checkpointing node.
        node: NodeId,
    },
    /// A radio frame was offered to the link and delivered.
    MessageTx {
        /// Sender.
        from: Party,
        /// Destination.
        to: Party,
        /// Frame wire size in bytes.
        bytes: usize,
        /// Send time, simulated µs.
        at_us: u64,
    },
    /// A radio frame was offered to the link and lost.
    MessageDrop {
        /// Sender (its transmit energy was still spent).
        from: Party,
        /// Intended destination.
        to: Party,
        /// Frame wire size in bytes.
        bytes: usize,
        /// Send time, simulated µs.
        at_us: u64,
    },
    /// The host ensemble drew recalled votes from the recall store.
    RecallServed {
        /// Window index.
        window: u64,
        /// How many per-node votes the store served.
        votes: u32,
    },
    /// The host produced (or failed to produce) a final classification.
    EnsembleVote {
        /// Window index.
        window: u64,
        /// The aggregated output, `None` before any report has arrived.
        prediction: Option<ActivityClass>,
    },
    /// An adaptive host folded a report into the confidence matrix.
    ConfidenceUpdate {
        /// The reporting node.
        node: NodeId,
        /// The reported activity.
        activity: ActivityClass,
        /// The matrix weight for (node, activity) after the update.
        weight: f64,
    },
    /// One energy-ledger flow (emitted only when the observer opts in
    /// via [`crate::SimObserver::wants_ledger`]).
    Ledger {
        /// Window index the flow belongs to.
        window: u64,
        /// The node whose capacitor the flow crossed.
        node: NodeId,
        /// The typed flow.
        entry: LedgerEntry,
    },
}

/// Discriminant-only mirror of [`SimEvent`], for counting and filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// A [`SimEvent::WindowStart`].
    WindowStart,
    /// A [`SimEvent::HarvestSlice`].
    HarvestSlice,
    /// A [`SimEvent::SlotScheduled`].
    SlotScheduled,
    /// A [`SimEvent::ActivationSignal`].
    ActivationSignal,
    /// A [`SimEvent::InferenceAttempt`].
    InferenceAttempt,
    /// A [`SimEvent::InferenceCompleted`].
    InferenceCompleted,
    /// A [`SimEvent::InferenceBrownout`].
    InferenceBrownout,
    /// A [`SimEvent::NvpCheckpoint`].
    NvpCheckpoint,
    /// A [`SimEvent::MessageTx`].
    MessageTx,
    /// A [`SimEvent::MessageDrop`].
    MessageDrop,
    /// A [`SimEvent::RecallServed`].
    RecallServed,
    /// A [`SimEvent::EnsembleVote`].
    EnsembleVote,
    /// A [`SimEvent::ConfidenceUpdate`].
    ConfidenceUpdate,
    /// A [`SimEvent::Ledger`].
    Ledger,
}

impl EventKind {
    /// The JSONL / metrics name of this kind (snake_case).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::WindowStart => "window_start",
            EventKind::HarvestSlice => "harvest_slice",
            EventKind::SlotScheduled => "slot_scheduled",
            EventKind::ActivationSignal => "activation_signal",
            EventKind::InferenceAttempt => "inference_attempt",
            EventKind::InferenceCompleted => "inference_completed",
            EventKind::InferenceBrownout => "inference_brownout",
            EventKind::NvpCheckpoint => "nvp_checkpoint",
            EventKind::MessageTx => "message_tx",
            EventKind::MessageDrop => "message_drop",
            EventKind::RecallServed => "recall_served",
            EventKind::EnsembleVote => "ensemble_vote",
            EventKind::ConfidenceUpdate => "confidence_update",
            EventKind::Ledger => "ledger",
        }
    }
}

impl SimEvent {
    /// This event's discriminant.
    #[must_use]
    pub fn kind(&self) -> EventKind {
        match self {
            SimEvent::WindowStart { .. } => EventKind::WindowStart,
            SimEvent::HarvestSlice { .. } => EventKind::HarvestSlice,
            SimEvent::SlotScheduled { .. } => EventKind::SlotScheduled,
            SimEvent::ActivationSignal { .. } => EventKind::ActivationSignal,
            SimEvent::InferenceAttempt { .. } => EventKind::InferenceAttempt,
            SimEvent::InferenceCompleted { .. } => EventKind::InferenceCompleted,
            SimEvent::InferenceBrownout { .. } => EventKind::InferenceBrownout,
            SimEvent::NvpCheckpoint { .. } => EventKind::NvpCheckpoint,
            SimEvent::MessageTx { .. } => EventKind::MessageTx,
            SimEvent::MessageDrop { .. } => EventKind::MessageDrop,
            SimEvent::RecallServed { .. } => EventKind::RecallServed,
            SimEvent::EnsembleVote { .. } => EventKind::EnsembleVote,
            SimEvent::ConfidenceUpdate { .. } => EventKind::ConfidenceUpdate,
            SimEvent::Ledger { .. } => EventKind::Ledger,
        }
    }

    /// Renders the event as one JSON object (the JSONL schema documented
    /// in EXPERIMENTS.md §Telemetry). The `"event"` key always holds
    /// [`EventKind::name`].
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let mut fields: Vec<(String, JsonValue)> =
            vec![("event".into(), JsonValue::from(self.kind().name()))];
        let mut push = |key: &str, value: JsonValue| fields.push((key.into(), value));
        match *self {
            SimEvent::WindowStart {
                window,
                at_us,
                truth,
            } => {
                push("window", JsonValue::from(window));
                push("at_us", JsonValue::from(at_us));
                push("truth", JsonValue::from(truth.label()));
            }
            SimEvent::HarvestSlice {
                window,
                node,
                harvested_uj,
                stored_uj,
            } => {
                push("window", JsonValue::from(window));
                push("node", JsonValue::from(u64::from(node.as_u32())));
                push("harvested_uj", JsonValue::from(harvested_uj));
                push("stored_uj", JsonValue::from(stored_uj));
            }
            SimEvent::SlotScheduled {
                window,
                attempters,
                idle,
            } => {
                push("window", JsonValue::from(window));
                push("attempters", JsonValue::from(u64::from(attempters)));
                push("idle", JsonValue::from(idle));
            }
            SimEvent::ActivationSignal { window, from, to } => {
                push("window", JsonValue::from(window));
                push("from", JsonValue::from(u64::from(from.as_u32())));
                push("to", JsonValue::from(u64::from(to.as_u32())));
            }
            SimEvent::InferenceAttempt {
                window,
                node,
                headroom,
            } => {
                push("window", JsonValue::from(window));
                push("node", JsonValue::from(u64::from(node.as_u32())));
                push("headroom", JsonValue::from(headroom));
            }
            SimEvent::InferenceCompleted {
                window,
                node,
                activity,
                confidence,
            } => {
                push("window", JsonValue::from(window));
                push("node", JsonValue::from(u64::from(node.as_u32())));
                push("activity", JsonValue::from(activity.label()));
                push("confidence", JsonValue::from(confidence));
            }
            SimEvent::InferenceBrownout {
                window,
                node,
                sensed,
            } => {
                push("window", JsonValue::from(window));
                push("node", JsonValue::from(u64::from(node.as_u32())));
                push("sensed", JsonValue::from(sensed));
            }
            SimEvent::NvpCheckpoint { window, node } => {
                push("window", JsonValue::from(window));
                push("node", JsonValue::from(u64::from(node.as_u32())));
            }
            SimEvent::MessageTx {
                from,
                to,
                bytes,
                at_us,
            }
            | SimEvent::MessageDrop {
                from,
                to,
                bytes,
                at_us,
            } => {
                push("from", from.to_json());
                push("to", to.to_json());
                push("bytes", JsonValue::from(bytes as u64));
                push("at_us", JsonValue::from(at_us));
            }
            SimEvent::RecallServed { window, votes } => {
                push("window", JsonValue::from(window));
                push("votes", JsonValue::from(u64::from(votes)));
            }
            SimEvent::EnsembleVote { window, prediction } => {
                push("window", JsonValue::from(window));
                push(
                    "prediction",
                    match prediction {
                        Some(activity) => JsonValue::from(activity.label()),
                        None => JsonValue::Null,
                    },
                );
            }
            SimEvent::ConfidenceUpdate {
                node,
                activity,
                weight,
            } => {
                push("node", JsonValue::from(u64::from(node.as_u32())));
                push("activity", JsonValue::from(activity.label()));
                push("weight", JsonValue::from(weight));
            }
            SimEvent::Ledger {
                window,
                node,
                entry,
            } => {
                push("window", JsonValue::from(window));
                push("node", JsonValue::from(u64::from(node.as_u32())));
                push("flow", JsonValue::from(entry.flow()));
                match entry {
                    LedgerEntry::Opening { stored_uj } | LedgerEntry::SlotClose { stored_uj } => {
                        push("stored_uj", JsonValue::from(stored_uj));
                    }
                    LedgerEntry::Drawn { op, uj } => {
                        push("op", JsonValue::from(op.name()));
                        push("uj", JsonValue::from(uj));
                    }
                    LedgerEntry::Harvested { uj }
                    | LedgerEntry::ChargeLoss { uj }
                    | LedgerEntry::Clipped { uj }
                    | LedgerEntry::Leaked { uj } => {
                        push("uj", JsonValue::from(uj));
                    }
                }
            }
        }
        JsonValue::Object(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_snake_case_and_unique() {
        let kinds = [
            EventKind::WindowStart,
            EventKind::HarvestSlice,
            EventKind::SlotScheduled,
            EventKind::ActivationSignal,
            EventKind::InferenceAttempt,
            EventKind::InferenceCompleted,
            EventKind::InferenceBrownout,
            EventKind::NvpCheckpoint,
            EventKind::MessageTx,
            EventKind::MessageDrop,
            EventKind::RecallServed,
            EventKind::EnsembleVote,
            EventKind::ConfidenceUpdate,
            EventKind::Ledger,
        ];
        let names: std::collections::BTreeSet<&str> = kinds.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), kinds.len());
        for name in names {
            assert!(name.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }

    #[test]
    fn events_render_their_kind_and_fields() {
        let event = SimEvent::InferenceAttempt {
            window: 41,
            node: NodeId::new(2),
            headroom: 1.5,
        };
        let json = event.to_json();
        assert_eq!(
            json.get("event").and_then(JsonValue::as_str),
            Some("inference_attempt")
        );
        assert_eq!(json.get("window").and_then(JsonValue::as_u64), Some(41));
        assert_eq!(json.get("node").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(json.get("headroom").and_then(JsonValue::as_f64), Some(1.5));
    }

    #[test]
    fn ensemble_vote_renders_null_prediction() {
        let event = SimEvent::EnsembleVote {
            window: 0,
            prediction: None,
        };
        let json = event.to_json();
        assert!(matches!(json.get("prediction"), Some(JsonValue::Null)));
    }

    #[test]
    fn ledger_events_render_flow_and_op() {
        let event = SimEvent::Ledger {
            window: 7,
            node: NodeId::new(1),
            entry: LedgerEntry::Drawn {
                op: DrawOp::Infer,
                uj: 2.25,
            },
        };
        let json = event.to_json();
        assert_eq!(
            json.get("event").and_then(JsonValue::as_str),
            Some("ledger")
        );
        assert_eq!(json.get("flow").and_then(JsonValue::as_str), Some("drawn"));
        assert_eq!(json.get("op").and_then(JsonValue::as_str), Some("infer"));
        assert_eq!(json.get("uj").and_then(JsonValue::as_f64), Some(2.25));

        let close = SimEvent::Ledger {
            window: 7,
            node: NodeId::new(1),
            entry: LedgerEntry::SlotClose { stored_uj: 10.5 },
        };
        let json = close.to_json();
        assert_eq!(
            json.get("flow").and_then(JsonValue::as_str),
            Some("slot_close")
        );
        assert_eq!(
            json.get("stored_uj").and_then(JsonValue::as_f64),
            Some(10.5)
        );
    }

    #[test]
    fn message_events_render_parties() {
        let event = SimEvent::MessageDrop {
            from: Party::Node(NodeId::new(1)),
            to: Party::Host,
            bytes: 6,
            at_us: 500,
        };
        let json = event.to_json();
        assert_eq!(json.get("from").and_then(JsonValue::as_str), Some("node1"));
        assert_eq!(json.get("to").and_then(JsonValue::as_str), Some("host"));
        assert_eq!(json.get("bytes").and_then(JsonValue::as_u64), Some(6));
    }
}
