//! A minimal JSON value: build, render, parse.
//!
//! Mirrors the workspace's no-dependency idiom (`origin-trace` hand-rolls
//! its CSV I/O the same way). Only what the telemetry sinks need: objects
//! preserve insertion order, numbers are `f64`, rendering is
//! deterministic, and the parser accepts exactly RFC 8259 documents
//! (sufficient for round-tripping our own output in tests and tools).

use std::fmt;

/// A JSON document node.
///
/// ```
/// use origin_telemetry::JsonValue;
///
/// let doc = JsonValue::Object(vec![
///     ("name".into(), JsonValue::Str("origin".into())),
///     ("cells".into(), JsonValue::Num(24.0)),
/// ]);
/// let text = doc.render();
/// assert_eq!(JsonValue::parse(&text).unwrap(), doc);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers are exact up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; insertion order is preserved when rendering.
    Object(Vec<(String, JsonValue)>),
}

/// Why a JSON document failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What the parser expected.
    pub expected: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid JSON at byte {}: expected {}",
            self.offset, self.expected
        )
    }
}

impl std::error::Error for JsonError {}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_owned())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Num(v)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Num(v as f64)
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl JsonValue {
    /// Looks up `key` in an object; `None` for other variants.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The bool, if this is a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element slice, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The field slice, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Renders the document on one line (JSONL-safe: no raw newlines).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders the document indented for human eyes.
    #[must_use]
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Num(v) => write_number(out, *v),
            JsonValue::Str(s) => write_string(out, s),
            JsonValue::Array(items) => {
                write_seq(
                    out,
                    indent,
                    depth,
                    '[',
                    ']',
                    items.len(),
                    |out, i, depth| {
                        items[i].write(out, indent, depth);
                    },
                );
            }
            JsonValue::Object(fields) => {
                write_seq(
                    out,
                    indent,
                    depth,
                    '{',
                    '}',
                    fields.len(),
                    |out, i, depth| {
                        let (key, value) = &fields[i];
                        write_string(out, key);
                        out.push(':');
                        if indent.is_some() {
                            out.push(' ');
                        }
                        value.write(out, indent, depth);
                    },
                );
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with the failing byte offset when `input` is
    /// not a single valid JSON document (trailing junk included).
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.err("end of input"));
        }
        Ok(value)
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn write_number(out: &mut String, v: f64) {
    use fmt::Write as _;
    if !v.is_finite() {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() < 2f64.powi(53) {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_string(out: &mut String, s: &str) {
    use fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..(depth + 1) * width {
                out.push(' ');
            }
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
    out.push(close);
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, expected: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            expected,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, token: &str) -> bool {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') if self.eat("null") => Ok(JsonValue::Null),
            Some(b't') if self.eat("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat("false") => Ok(JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("a JSON value")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.pos += 1; // consume '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("an object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("':'"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // consume opening quote
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("a closing '\"'"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("an escape character"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("four hex digits"))?;
                            self.pos += 4;
                            // Surrogate pairs are not reconstructed; the
                            // writer never emits them (it escapes only
                            // control characters).
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| self.err("a scalar code point"))?,
                            );
                        }
                        _ => return Err(self.err("a valid escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("valid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("a character"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|v| v.is_finite())
            .map(JsonValue::Num)
            .ok_or_else(|| self.err("a number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(JsonValue::Null.render(), "null");
        assert_eq!(JsonValue::from(true).render(), "true");
        assert_eq!(JsonValue::from(3.0).render(), "3");
        assert_eq!(JsonValue::from(3.5).render(), "3.5");
        assert_eq!(JsonValue::from("hi").render(), "\"hi\"");
        assert_eq!(JsonValue::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn escapes_strings() {
        let v = JsonValue::from("a\"b\\c\nd\u{1}");
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
        let back = JsonValue::parse(&v.render()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn roundtrips_nested_documents() {
        let doc = JsonValue::Object(vec![
            ("name".into(), JsonValue::from("run")),
            ("seed".into(), JsonValue::from(77u64)),
            (
                "values".into(),
                JsonValue::Array(vec![
                    JsonValue::from(1u64),
                    JsonValue::from(2.25),
                    JsonValue::Null,
                    JsonValue::from(false),
                ]),
            ),
            ("empty".into(), JsonValue::Object(vec![])),
        ]);
        for rendered in [doc.render(), doc.render_pretty()] {
            assert_eq!(JsonValue::parse(&rendered).unwrap(), doc);
        }
    }

    #[test]
    fn single_line_render_has_no_newlines() {
        let doc = JsonValue::Object(vec![("text".into(), JsonValue::from("line1\nline2"))]);
        assert!(!doc.render().contains('\n'));
    }

    #[test]
    fn accessors_narrow_types() {
        let doc = JsonValue::parse(r#"{"a": 7, "b": "x", "c": [1], "d": true, "e": 1.5}"#).unwrap();
        assert_eq!(doc.get("a").and_then(JsonValue::as_u64), Some(7));
        assert_eq!(doc.get("b").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(
            doc.get("c").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(1)
        );
        assert_eq!(doc.get("d").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(doc.get("e").and_then(JsonValue::as_u64), None);
        assert_eq!(doc.get("e").and_then(JsonValue::as_f64), Some(1.5));
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "nul",
            "1 2",
            "\"unterminated",
            "{a: 1}",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parses_numbers_with_exponents() {
        let v = JsonValue::parse("[-1.5e3, 2E-2, 0]").unwrap();
        let items = v.as_array().unwrap();
        assert_eq!(items[0].as_f64(), Some(-1500.0));
        assert_eq!(items[1].as_f64(), Some(0.02));
        assert_eq!(items[2].as_u64(), Some(0));
    }
}
