//! Logical-time trace spans derived from the event stream.
//!
//! Wall clocks are banned in the deterministic crates (origin-lint D1),
//! so spans are keyed to *logical time*: one tick per non-ledger
//! [`SimEvent`] the observer sees, and `slot` is the simulator's window
//! index. The hierarchy is
//!
//! ```text
//! sweep_cell (optional root, one per sweep cell)
//! └─ sim_run (one per simulation)
//!    └─ policy_step (one per window)
//!       ├─ nn_kernel (one per inference attempt)
//!       ├─ radio (leaf: tx/drop/activation signal)
//!       └─ host_vote (leaf: recall/ensemble/confidence)
//! ```
//!
//! A span covers the half-open tick range `[open_tick, close_tick)`, so
//! its duration is exactly the number of events inside it and self-time
//! (duration minus children) is well defined. Ledger events do not
//! advance the clock: a ledger-enabled run yields the same spans as a
//! ledger-free one.

use crate::event::{EventKind, SimEvent};
use crate::json::JsonValue;
use crate::observer::SimObserver;
use std::collections::BTreeMap;

/// The level of a span in the trace hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// One sweep cell (policy × seed × user), the optional root.
    SweepCell,
    /// One simulation run.
    SimRun,
    /// One policy step: a HAR window from `WindowStart` to the next.
    PolicyStep,
    /// One NN inference attempt on a node.
    NnKernel,
    /// A radio interaction (tx, drop, activation signal).
    Radio,
    /// Host-side vote machinery (recall, ensemble, confidence update).
    HostVote,
}

impl SpanKind {
    /// The JSONL name of this kind (snake_case).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::SweepCell => "sweep_cell",
            SpanKind::SimRun => "sim_run",
            SpanKind::PolicyStep => "policy_step",
            SpanKind::NnKernel => "nn_kernel",
            SpanKind::Radio => "radio",
            SpanKind::HostVote => "host_vote",
        }
    }

    /// Parses a [`SpanKind::name`] back to the kind.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "sweep_cell" => Some(SpanKind::SweepCell),
            "sim_run" => Some(SpanKind::SimRun),
            "policy_step" => Some(SpanKind::PolicyStep),
            "nn_kernel" => Some(SpanKind::NnKernel),
            "radio" => Some(SpanKind::Radio),
            "host_vote" => Some(SpanKind::HostVote),
            _ => None,
        }
    }
}

/// One closed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span id, unique within one observer's stream.
    pub id: u64,
    /// Parent span id, `None` for the root.
    pub parent: Option<u64>,
    /// The hierarchy level.
    pub kind: SpanKind,
    /// The sim slot (window index) the span belongs to; 0 for roots.
    pub slot: u64,
    /// The node involved, when the span is node-scoped.
    pub node: Option<u32>,
    /// First tick inside the span.
    pub open_tick: u64,
    /// First tick after the span (half-open range).
    pub close_tick: u64,
    /// Free-form label (sweep cell key), empty otherwise.
    pub label: String,
}

impl SpanRecord {
    /// Span duration in ticks.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.close_tick.saturating_sub(self.open_tick)
    }

    /// Renders the span as one JSONL object.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let mut fields: Vec<(String, JsonValue)> = vec![
            ("span".into(), JsonValue::from(self.kind.name())),
            ("id".into(), JsonValue::from(self.id)),
            (
                "parent".into(),
                match self.parent {
                    Some(p) => JsonValue::from(p),
                    None => JsonValue::Null,
                },
            ),
            ("slot".into(), JsonValue::from(self.slot)),
            (
                "node".into(),
                match self.node {
                    Some(n) => JsonValue::from(u64::from(n)),
                    None => JsonValue::Null,
                },
            ),
            ("open_tick".into(), JsonValue::from(self.open_tick)),
            ("close_tick".into(), JsonValue::from(self.close_tick)),
        ];
        if !self.label.is_empty() {
            fields.push(("label".into(), JsonValue::from(self.label.as_str())));
        }
        JsonValue::Object(fields)
    }

    /// Parses a span from its [`Self::to_json`] form; `None` when the
    /// object is not a span record.
    #[must_use]
    pub fn from_json(json: &JsonValue) -> Option<Self> {
        let kind = SpanKind::from_name(json.get("span")?.as_str()?)?;
        Some(Self {
            id: json.get("id")?.as_u64()?,
            parent: json.get("parent").and_then(JsonValue::as_u64),
            kind,
            slot: json.get("slot")?.as_u64()?,
            node: json
                .get("node")
                .and_then(JsonValue::as_u64)
                .map(|n| n as u32),
            open_tick: json.get("open_tick")?.as_u64()?,
            close_tick: json.get("close_tick")?.as_u64()?,
            label: json
                .get("label")
                .and_then(JsonValue::as_str)
                .unwrap_or("")
                .to_owned(),
        })
    }
}

/// A currently-open span.
#[derive(Debug, Clone, Copy)]
struct OpenSpan {
    id: u64,
    kind: SpanKind,
    slot: u64,
    node: Option<u32>,
    open_tick: u64,
}

/// Derives hierarchical logical-time spans from the event stream.
///
/// Spans close on their natural boundary events (`WindowStart` closes the
/// previous policy step, completion/brownout closes the kernel) and
/// whatever is still open closes at [`SpanObserver::finish`]. Records are
/// emitted in close order, like a flamegraph collector.
#[derive(Debug, Clone, Default)]
pub struct SpanObserver {
    records: Vec<SpanRecord>,
    next_id: u64,
    tick: u64,
    cell: Option<OpenSpan>,
    cell_label: String,
    run: Option<OpenSpan>,
    step: Option<OpenSpan>,
    kernel: Option<OpenSpan>,
    finished: bool,
}

impl SpanObserver {
    /// An observer rooted at a `sim_run` span.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An observer rooted at a labelled `sweep_cell` span (the sim run
    /// nests under it).
    #[must_use]
    pub fn for_cell(label: &str) -> Self {
        Self {
            cell_label: label.to_owned(),
            ..Self::default()
        }
    }

    /// Starts span ids at `base`. Builder-style.
    ///
    /// Give each concurrently-traced run a disjoint id space (e.g.
    /// `cell_index << 32`) so their records can be concatenated into one
    /// JSONL file without parent references colliding.
    #[must_use]
    pub fn with_id_base(mut self, base: u64) -> Self {
        self.next_id = base;
        self
    }

    fn open(&mut self, kind: SpanKind, slot: u64, node: Option<u32>) -> OpenSpan {
        let span = OpenSpan {
            id: self.next_id,
            kind,
            slot,
            node,
            open_tick: self.tick,
        };
        self.next_id += 1;
        span
    }

    fn close(&mut self, span: OpenSpan, parent: Option<u64>, close_tick: u64, label: &str) {
        self.records.push(SpanRecord {
            id: span.id,
            parent,
            kind: span.kind,
            slot: span.slot,
            node: span.node,
            open_tick: span.open_tick,
            close_tick,
            label: label.to_owned(),
        });
    }

    fn ensure_run(&mut self) {
        if self.run.is_some() {
            return;
        }
        if !self.cell_label.is_empty() && self.cell.is_none() {
            self.cell = Some(self.open(SpanKind::SweepCell, 0, None));
        }
        self.run = Some(self.open(SpanKind::SimRun, 0, None));
    }

    fn close_kernel(&mut self, close_tick: u64) {
        if let Some(kernel) = self.kernel.take() {
            let parent = self.step.as_ref().or(self.run.as_ref()).map(|s| s.id);
            self.close(kernel, parent, close_tick, "");
        }
    }

    fn close_step(&mut self, close_tick: u64) {
        self.close_kernel(close_tick);
        if let Some(step) = self.step.take() {
            let parent = self.run.as_ref().map(|s| s.id);
            self.close(step, parent, close_tick, "");
        }
    }

    /// The id of the innermost open span (leaf parent).
    fn top_id(&self) -> Option<u64> {
        self.kernel
            .as_ref()
            .or(self.step.as_ref())
            .or(self.run.as_ref())
            .map(|s| s.id)
    }

    fn leaf(&mut self, kind: SpanKind, slot: u64, node: Option<u32>, tick: u64) {
        let parent = self.top_id();
        let span = OpenSpan {
            id: self.next_id,
            kind,
            slot,
            node,
            open_tick: tick,
        };
        self.next_id += 1;
        self.close(span, parent, tick + 1, "");
    }

    /// Closes every open span at the current tick. Idempotent; called
    /// automatically by [`Self::records`] and [`Self::to_jsonl`].
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let t = self.tick;
        self.close_step(t);
        if let Some(run) = self.run.take() {
            let parent = self.cell.as_ref().map(|s| s.id);
            self.close(run, parent, t, "");
        }
        if let Some(cell) = self.cell.take() {
            let label = std::mem::take(&mut self.cell_label);
            self.close(cell, None, t, &label);
        }
    }

    /// All closed spans, finishing the stream first.
    pub fn records(&mut self) -> &[SpanRecord] {
        self.finish();
        &self.records
    }

    /// Renders the closed spans as JSONL (one span object per line).
    pub fn to_jsonl(&mut self) -> String {
        self.finish();
        let mut out = String::new();
        for record in &self.records {
            out.push_str(&record.to_json().render());
            out.push('\n');
        }
        out
    }
}

impl SimObserver for SpanObserver {
    fn on_event(&mut self, event: &SimEvent) {
        if self.finished || event.kind() == EventKind::Ledger {
            return;
        }
        self.ensure_run();
        let t = self.tick;
        match *event {
            SimEvent::WindowStart { window, .. } => {
                self.close_step(t);
                self.step = Some(self.open(SpanKind::PolicyStep, window, None));
            }
            SimEvent::InferenceAttempt { window, node, .. } => {
                self.close_kernel(t);
                self.kernel = Some(self.open(SpanKind::NnKernel, window, Some(node.as_u32())));
            }
            SimEvent::InferenceCompleted { .. } | SimEvent::InferenceBrownout { .. } => {
                self.close_kernel(t + 1);
            }
            SimEvent::ActivationSignal { window, .. } => {
                self.leaf(SpanKind::Radio, window, None, t);
            }
            SimEvent::MessageTx { .. } | SimEvent::MessageDrop { .. } => {
                let slot = self.step.as_ref().map_or(0, |s| s.slot);
                self.leaf(SpanKind::Radio, slot, None, t);
            }
            SimEvent::RecallServed { window, .. } | SimEvent::EnsembleVote { window, .. } => {
                self.leaf(SpanKind::HostVote, window, None, t);
            }
            SimEvent::ConfidenceUpdate { node, .. } => {
                let slot = self.step.as_ref().map_or(0, |s| s.slot);
                self.leaf(SpanKind::HostVote, slot, Some(node.as_u32()), t);
            }
            _ => {}
        }
        self.tick = t + 1;
    }
}

/// One row of the flamegraph-style summary: all spans sharing a path.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSummaryRow {
    /// The kind path from the root, joined with `;` (flamegraph syntax).
    pub path: String,
    /// How many spans share this path.
    pub count: u64,
    /// Summed span durations, ticks.
    pub total_ticks: u64,
    /// Summed durations minus child durations, ticks.
    pub self_ticks: u64,
}

/// A self-time aggregation of a span stream, grouped by path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanSummary {
    /// Rows in descending self-time order.
    pub rows: Vec<SpanSummaryRow>,
    /// Ticks covered by root spans (the 100% mark for `self%`).
    pub root_ticks: u64,
}

impl SpanSummary {
    /// Aggregates `records` (any order) into per-path self-time rows.
    #[must_use]
    pub fn from_records(records: &[SpanRecord]) -> Self {
        let by_id: BTreeMap<u64, &SpanRecord> = records.iter().map(|r| (r.id, r)).collect();
        let mut child_ticks: BTreeMap<u64, u64> = BTreeMap::new();
        for record in records {
            if let Some(parent) = record.parent {
                *child_ticks.entry(parent).or_insert(0) += record.ticks();
            }
        }
        let path_of = |record: &SpanRecord| -> String {
            let mut chain = vec![record.kind.name()];
            let mut cursor = record.parent;
            while let Some(id) = cursor {
                match by_id.get(&id) {
                    Some(parent) => {
                        chain.push(parent.kind.name());
                        cursor = parent.parent;
                    }
                    None => break,
                }
            }
            chain.reverse();
            chain.join(";")
        };
        let mut rows: BTreeMap<String, SpanSummaryRow> = BTreeMap::new();
        let mut root_ticks = 0u64;
        for record in records {
            if record.parent.is_none() {
                root_ticks += record.ticks();
            }
            let ticks = record.ticks();
            let nested = child_ticks.get(&record.id).copied().unwrap_or(0);
            let row = rows
                .entry(path_of(record))
                .or_insert_with_key(|path| SpanSummaryRow {
                    path: path.clone(),
                    count: 0,
                    total_ticks: 0,
                    self_ticks: 0,
                });
            row.count += 1;
            row.total_ticks += ticks;
            row.self_ticks += ticks.saturating_sub(nested);
        }
        let mut rows: Vec<SpanSummaryRow> = rows.into_values().collect();
        rows.sort_by(|a, b| b.self_ticks.cmp(&a.self_ticks).then(a.path.cmp(&b.path)));
        Self { rows, root_ticks }
    }

    /// Renders the summary as an aligned text table.
    #[must_use]
    pub fn render(&self) -> String {
        let path_width = self
            .rows
            .iter()
            .map(|r| r.path.len())
            .chain(std::iter::once("span path".len()))
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<path_width$}  {:>8}  {:>12}  {:>12}  {:>6}\n",
            "span path", "spans", "ticks", "self", "self%"
        ));
        for row in &self.rows {
            let pct = if self.root_ticks == 0 {
                0.0
            } else {
                100.0 * row.self_ticks as f64 / self.root_ticks as f64
            };
            out.push_str(&format!(
                "{:<path_width$}  {:>8}  {:>12}  {:>12}  {:>5.1}%\n",
                row.path, row.count, row.total_ticks, row.self_ticks, pct
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use origin_types::{ActivityClass, NodeId};

    fn window_start(window: u64) -> SimEvent {
        SimEvent::WindowStart {
            window,
            at_us: window * 2_000_000,
            truth: ActivityClass::Walking,
        }
    }

    fn attempt(window: u64, node: u32) -> SimEvent {
        SimEvent::InferenceAttempt {
            window,
            node: NodeId::new(node),
            headroom: 1.0,
        }
    }

    fn completed(window: u64, node: u32) -> SimEvent {
        SimEvent::InferenceCompleted {
            window,
            node: NodeId::new(node),
            activity: ActivityClass::Walking,
            confidence: 0.1,
        }
    }

    #[test]
    fn spans_nest_run_step_kernel() {
        let mut obs = SpanObserver::new();
        obs.on_event(&window_start(0));
        obs.on_event(&attempt(0, 1));
        obs.on_event(&completed(0, 1));
        obs.on_event(&window_start(1));
        let records = obs.records().to_vec();
        let kernel = records
            .iter()
            .find(|r| r.kind == SpanKind::NnKernel)
            .unwrap();
        let step0 = records
            .iter()
            .find(|r| r.kind == SpanKind::PolicyStep && r.slot == 0)
            .unwrap();
        let run = records.iter().find(|r| r.kind == SpanKind::SimRun).unwrap();
        assert_eq!(kernel.parent, Some(step0.id));
        assert_eq!(step0.parent, Some(run.id));
        assert_eq!(run.parent, None);
        assert_eq!(kernel.node, Some(1));
        // Kernel covers [attempt, completed] = ticks [1, 3).
        assert_eq!((kernel.open_tick, kernel.close_tick), (1, 3));
        // Step 0 covers [window_start, next window_start) = [0, 3).
        assert_eq!((step0.open_tick, step0.close_tick), (0, 3));
    }

    #[test]
    fn ledger_events_do_not_advance_the_clock() {
        let mut with_ledger = SpanObserver::new();
        let mut without = SpanObserver::new();
        let events = [window_start(0), attempt(0, 0), completed(0, 0)];
        for event in &events {
            without.on_event(event);
            with_ledger.on_event(event);
            with_ledger.on_event(&SimEvent::Ledger {
                window: 0,
                node: NodeId::new(0),
                entry: crate::LedgerEntry::Harvested { uj: 1.0 },
            });
        }
        assert_eq!(with_ledger.to_jsonl(), without.to_jsonl());
    }

    #[test]
    fn cell_root_wraps_the_run() {
        let mut obs = SpanObserver::for_cell("origin/s0/u3");
        obs.on_event(&window_start(0));
        let records = obs.records();
        let cell = records
            .iter()
            .find(|r| r.kind == SpanKind::SweepCell)
            .unwrap();
        let run = records.iter().find(|r| r.kind == SpanKind::SimRun).unwrap();
        assert_eq!(run.parent, Some(cell.id));
        assert_eq!(cell.label, "origin/s0/u3");
    }

    #[test]
    fn records_round_trip_through_json() {
        let mut obs = SpanObserver::for_cell("cell");
        obs.on_event(&window_start(0));
        obs.on_event(&attempt(0, 2));
        obs.on_event(&completed(0, 2));
        let jsonl = obs.to_jsonl();
        let parsed: Vec<SpanRecord> = jsonl
            .lines()
            .map(|line| SpanRecord::from_json(&JsonValue::parse(line).unwrap()).unwrap())
            .collect();
        assert_eq!(parsed, obs.records());
    }

    #[test]
    fn summary_self_time_subtracts_children() {
        let mut obs = SpanObserver::new();
        obs.on_event(&window_start(0));
        obs.on_event(&attempt(0, 0));
        obs.on_event(&completed(0, 0));
        obs.on_event(&window_start(1));
        obs.on_event(&window_start(2));
        let summary = SpanSummary::from_records(obs.records());
        let step = summary
            .rows
            .iter()
            .find(|r| r.path == "sim_run;policy_step")
            .unwrap();
        assert_eq!(step.count, 3);
        // Steps cover ticks [0,3), [3,4), [4,5) = 5; the kernel [1,3) = 2.
        assert_eq!(step.total_ticks, 5);
        assert_eq!(step.self_ticks, 3);
        let run = summary.rows.iter().find(|r| r.path == "sim_run").unwrap();
        assert_eq!(run.self_ticks, 0);
        assert_eq!(summary.root_ticks, 5);
        let table = summary.render();
        assert!(table.contains("sim_run;policy_step;nn_kernel"));
        assert!(table.contains("self%"));
    }
}
