//! A dependency-free metrics registry: counters, gauges, fixed-bucket
//! histograms.
//!
//! Names follow Prometheus conventions (`[a-zA-Z_:][a-zA-Z0-9_:]*`,
//! snake_case, unit-suffixed) so the registry can be rendered directly by
//! [`crate::write_prometheus`] and embedded in run manifests.

use crate::json::JsonValue;
use std::collections::BTreeMap;

/// A fixed-bucket histogram (Prometheus semantics: cumulative on export,
/// stored per-bucket here).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One count per bound, plus the overflow (+Inf) bucket at the end.
    counts: Vec<u64>,
    sum: f64,
    total: u64,
}

impl Histogram {
    /// A histogram over `bounds` (strictly increasing upper bounds; an
    /// implicit `+Inf` bucket is appended).
    ///
    /// # Panics
    ///
    /// Panics when `bounds` is empty or not strictly increasing.
    #[must_use]
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "a histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            total: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let bucket = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[bucket] += 1;
        self.sum += value;
        self.total += 1;
    }

    /// The configured upper bounds (without the implicit `+Inf`).
    #[must_use]
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket (non-cumulative) counts; the last entry is `+Inf`.
    #[must_use]
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation, or `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.sum / self.total as f64)
        }
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "bounds".into(),
                JsonValue::Array(self.bounds.iter().map(|&b| JsonValue::from(b)).collect()),
            ),
            (
                "counts".into(),
                JsonValue::Array(self.counts.iter().map(|&c| JsonValue::from(c)).collect()),
            ),
            ("sum".into(), JsonValue::from(self.sum)),
            ("count".into(), JsonValue::from(self.total)),
        ])
    }
}

/// Counters, gauges and histograms under stable sorted names.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    fcounters: BTreeMap<String, f64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments counter `name` by one (creating it at zero).
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `by` to counter `name` (creating it at zero).
    pub fn add(&mut self, name: &str, by: u64) {
        if let Some(v) = self.counters.get_mut(name) {
            *v += by;
        } else {
            self.counters.insert(name.to_owned(), by);
        }
    }

    /// Adds `by` to floating-point counter `name` (creating it at zero).
    ///
    /// Fractional counters carry physical quantities (microjoules) whose
    /// sub-unit remainders a `u64` counter would truncate away; they live
    /// in their own namespace and render as Prometheus counters.
    pub fn fadd(&mut self, name: &str, by: f64) {
        if let Some(v) = self.fcounters.get_mut(name) {
            *v += by;
        } else {
            self.fcounters.insert(name.to_owned(), by);
        }
    }

    /// Sets gauge `name` to `value`.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Records `value` into histogram `name`, creating it over `bounds`
    /// on first use (later calls ignore `bounds`).
    ///
    /// # Panics
    ///
    /// Panics when creating a histogram with invalid `bounds` (see
    /// [`Histogram::new`]).
    pub fn observe(&mut self, name: &str, bounds: &[f64], value: f64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(value);
        } else {
            let mut h = Histogram::new(bounds);
            h.observe(value);
            self.histograms.insert(name.to_owned(), h);
        }
    }

    /// Counter `name`'s value (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Floating-point counter `name`'s value (0.0 when absent).
    #[must_use]
    pub fn fcounter(&self, name: &str) -> f64 {
        self.fcounters.get(name).copied().unwrap_or(0.0)
    }

    /// Gauge `name`'s value.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram `name`, when present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All floating-point counters in name order.
    pub fn fcounters(&self) -> impl Iterator<Item = (&str, f64)> {
        self.fcounters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.fcounters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
    }

    /// Renders the registry as a JSON object (`{"counters": {...},
    /// "gauges": {...}, "histograms": {...}}`) for run manifests. An
    /// `"fcounters"` member appears only when floating-point counters
    /// exist, so ledger-free manifests keep their original shape.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let mut fields: Vec<(String, JsonValue)> = vec![(
            "counters".into(),
            JsonValue::Object(
                self.counters
                    .iter()
                    .map(|(k, &v)| (k.clone(), JsonValue::from(v)))
                    .collect(),
            ),
        )];
        if !self.fcounters.is_empty() {
            fields.push((
                "fcounters".into(),
                JsonValue::Object(
                    self.fcounters
                        .iter()
                        .map(|(k, &v)| (k.clone(), JsonValue::from(v)))
                        .collect(),
                ),
            ));
        }
        fields.extend([
            (
                "gauges".into(),
                JsonValue::Object(
                    self.gauges
                        .iter()
                        .map(|(k, &v)| (k.clone(), JsonValue::from(v)))
                        .collect(),
                ),
            ),
            (
                "histograms".into(),
                JsonValue::Object(
                    self.histograms
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
        ]);
        JsonValue::Object(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.counter("x"), 0);
        m.inc("x");
        m.add("x", 4);
        assert_eq!(m.counter("x"), 5);
    }

    #[test]
    fn fcounters_accumulate_fractions() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.fcounter("e"), 0.0);
        m.fadd("e", 0.25);
        m.fadd("e", 1.5);
        assert_eq!(m.fcounter("e"), 1.75);
        assert!(!m.is_empty());
        let json = m.to_json();
        assert_eq!(
            json.get("fcounters")
                .and_then(|f| f.get("e"))
                .and_then(JsonValue::as_f64),
            Some(1.75)
        );
        // A registry without fcounters keeps the original 3-key shape.
        let mut plain = MetricsRegistry::new();
        plain.inc("c");
        assert!(plain.to_json().get("fcounters").is_none());
    }

    #[test]
    fn gauges_overwrite() {
        let mut m = MetricsRegistry::new();
        m.set_gauge("g", 1.0);
        m.set_gauge("g", -2.5);
        assert_eq!(m.gauge("g"), Some(-2.5));
        assert_eq!(m.gauge("missing"), None);
    }

    #[test]
    fn histogram_buckets_values() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 1.5, 3.0, 10.0] {
            h.observe(v);
        }
        // <=1: {0.5, 1.0}; <=2: {1.5}; <=4: {3.0}; +Inf: {10.0}.
        assert_eq!(h.bucket_counts(), &[2, 1, 1, 1]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 16.0).abs() < 1e-12);
        assert!((h.mean().unwrap() - 3.2).abs() < 1e-12);
    }

    #[test]
    fn registry_histogram_keeps_first_bounds() {
        let mut m = MetricsRegistry::new();
        m.observe("h", &[1.0, 2.0], 0.5);
        m.observe("h", &[99.0], 1.5);
        let h = m.histogram("h").unwrap();
        assert_eq!(h.bounds(), &[1.0, 2.0]);
        assert_eq!(h.count(), 2);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_panic() {
        let _ = Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn json_snapshot_lists_all_metric_families() {
        let mut m = MetricsRegistry::new();
        m.inc("c");
        m.set_gauge("g", 2.0);
        m.observe("h", &[1.0], 0.5);
        let json = m.to_json();
        assert_eq!(
            json.get("counters")
                .and_then(|c| c.get("c"))
                .and_then(JsonValue::as_u64),
            Some(1)
        );
        assert_eq!(
            json.get("gauges")
                .and_then(|g| g.get("g"))
                .and_then(JsonValue::as_f64),
            Some(2.0)
        );
        let h = json.get("histograms").and_then(|h| h.get("h")).unwrap();
        assert_eq!(h.get("count").and_then(JsonValue::as_u64), Some(1));
    }
}
