//! The machine-readable record of one experiment run.
//!
//! A manifest pins everything needed to interpret (and diff) a run:
//! which experiment, which seed, which policy, the knob settings, the
//! aggregated metrics, the wall-clock stage timings, any artifact files
//! written next to it, and the headline results.

use crate::json::JsonValue;
use crate::metrics::MetricsRegistry;
use crate::timing::StageTimings;

/// The version stamped into every manifest (`"manifest_version"`).
pub const MANIFEST_VERSION: u64 = 1;

/// One experiment run's identity, configuration and outcomes.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// The experiment name (e.g. `"table1"`, `"fig6_energy_aware"`).
    pub name: String,
    /// The RNG seed the run used.
    pub seed: u64,
    /// Human-readable policy label (e.g. `"Origin (ER-4)"`).
    pub policy: String,
    /// Knob settings, in insertion order (stringified values).
    pub config: Vec<(String, String)>,
    /// Snapshot of the aggregated metrics (`MetricsRegistry::to_json`),
    /// `Null` when the run was not instrumented.
    pub metrics: JsonValue,
    /// Wall-clock stage timings (`StageTimings::to_json`), `Null` when
    /// not timed.
    pub timings: JsonValue,
    /// Paths of artifact files written alongside the manifest, relative
    /// to it.
    pub artifacts: Vec<String>,
    /// Headline results (accuracy, drop rates, …), in insertion order.
    pub results: Vec<(String, JsonValue)>,
    /// Per-cell manifests merged into this one (a sweep engine writes one
    /// child per grid cell); empty for ordinary single-run manifests.
    pub children: Vec<RunManifest>,
}

impl RunManifest {
    /// A manifest for run `name` under `seed` and `policy`.
    #[must_use]
    pub fn new(name: &str, seed: u64, policy: &str) -> Self {
        Self {
            name: name.to_owned(),
            seed,
            policy: policy.to_owned(),
            config: Vec::new(),
            metrics: JsonValue::Null,
            timings: JsonValue::Null,
            artifacts: Vec::new(),
            results: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Adds one config knob (stringified).
    #[must_use]
    pub fn with_config(mut self, key: &str, value: impl ToString) -> Self {
        self.config.push((key.to_owned(), value.to_string()));
        self
    }

    /// Snapshots `metrics` into the manifest.
    #[must_use]
    pub fn with_metrics(mut self, metrics: &MetricsRegistry) -> Self {
        self.metrics = metrics.to_json();
        self
    }

    /// Snapshots `timings` into the manifest.
    #[must_use]
    pub fn with_timings(mut self, timings: &StageTimings) -> Self {
        self.timings = timings.to_json();
        self
    }

    /// Records an artifact file written alongside the manifest.
    #[must_use]
    pub fn with_artifact(mut self, path: &str) -> Self {
        self.artifacts.push(path.to_owned());
        self
    }

    /// Adds one headline result.
    #[must_use]
    pub fn with_result(mut self, key: &str, value: JsonValue) -> Self {
        self.results.push((key.to_owned(), value));
        self
    }

    /// Merges `child` into this manifest — the per-cell record of one
    /// grid cell inside a sweep. Children render under a `"children"`
    /// array and round-trip through [`RunManifest::parse`].
    #[must_use]
    pub fn with_child(mut self, child: RunManifest) -> Self {
        self.children.push(child);
        self
    }

    /// Looks up config knob `key` (last occurrence wins, matching
    /// [`RunManifest::with_config`] append semantics).
    ///
    /// # Examples
    ///
    /// ```
    /// use origin_telemetry::RunManifest;
    ///
    /// let m = RunManifest::new("sweep", 77, "Origin").with_config("users", 4);
    /// assert_eq!(m.config_value("users"), Some("4"));
    /// assert_eq!(m.config_value("missing"), None);
    /// ```
    #[must_use]
    pub fn config_value(&self, key: &str) -> Option<&str> {
        self.config
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// [`RunManifest::config_value`] parsed as a `u64` (`None` when the
    /// knob is absent or not an unsigned integer). Checkpoint resume uses
    /// this to read back counters like `cells_total`.
    #[must_use]
    pub fn config_u64(&self, key: &str) -> Option<u64> {
        self.config_value(key).and_then(|v| v.parse().ok())
    }

    /// The first child manifest named `name` (e.g. one shard of a
    /// checkpointed fleet sweep).
    ///
    /// # Examples
    ///
    /// ```
    /// use origin_telemetry::RunManifest;
    ///
    /// let m = RunManifest::new("fleet", 7, "Origin")
    ///     .with_child(RunManifest::new("shard_0000", 7, ""));
    /// assert!(m.find_child("shard_0000").is_some());
    /// assert!(m.find_child("shard_0001").is_none());
    /// ```
    #[must_use]
    pub fn find_child(&self, name: &str) -> Option<&RunManifest> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Renders the manifest as a JSON object. The `"children"` array is
    /// only present when children were merged in, so single-run manifests
    /// keep their original shape.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let mut fields = vec![
            ("manifest_version".into(), JsonValue::from(MANIFEST_VERSION)),
            ("name".into(), JsonValue::from(self.name.as_str())),
            ("seed".into(), JsonValue::from(self.seed)),
            ("policy".into(), JsonValue::from(self.policy.as_str())),
            (
                "config".into(),
                JsonValue::Object(
                    self.config
                        .iter()
                        .map(|(k, v)| (k.clone(), JsonValue::from(v.as_str())))
                        .collect(),
                ),
            ),
            ("metrics".into(), self.metrics.clone()),
            ("timings".into(), self.timings.clone()),
            (
                "artifacts".into(),
                JsonValue::Array(
                    self.artifacts
                        .iter()
                        .map(|p| JsonValue::from(p.as_str()))
                        .collect(),
                ),
            ),
            ("results".into(), JsonValue::Object(self.results.clone())),
        ];
        if !self.children.is_empty() {
            fields.push((
                "children".into(),
                JsonValue::Array(self.children.iter().map(RunManifest::to_json).collect()),
            ));
        }
        JsonValue::Object(fields)
    }

    /// Renders the manifest as pretty-printed JSON (the on-disk format
    /// under `results/`).
    #[must_use]
    pub fn render_pretty(&self) -> String {
        self.to_json().render_pretty()
    }

    /// Parses a manifest back from its JSON text.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntactic or structural
    /// problem (bad JSON, missing/ill-typed required field).
    pub fn parse(text: &str) -> Result<Self, String> {
        let json =
            JsonValue::parse(text).map_err(|e| format!("manifest is not valid JSON: {e}"))?;
        Self::from_json(&json)
    }

    /// Builds a manifest from an already-parsed JSON object (the
    /// recursive core of [`RunManifest::parse`]).
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem.
    pub fn from_json(json: &JsonValue) -> Result<Self, String> {
        let str_field = |key: &str| -> Result<String, String> {
            json.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("manifest is missing string field {key:?}"))
        };
        let name = str_field("name")?;
        let policy = str_field("policy")?;
        let seed = json
            .get("seed")
            .and_then(JsonValue::as_u64)
            .ok_or("manifest is missing integer field \"seed\"")?;
        let config = match json.get("config") {
            Some(JsonValue::Object(entries)) => entries
                .iter()
                .map(|(k, v)| {
                    v.as_str()
                        .map(|s| (k.clone(), s.to_owned()))
                        .ok_or_else(|| format!("config value {k:?} is not a string"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
            Some(_) => return Err("manifest field \"config\" is not an object".into()),
        };
        let artifacts = match json.get("artifacts") {
            Some(JsonValue::Array(items)) => items
                .iter()
                .map(|v| {
                    v.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| "artifact entry is not a string".to_owned())
                })
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
            Some(_) => return Err("manifest field \"artifacts\" is not an array".into()),
        };
        let results = match json.get("results") {
            Some(JsonValue::Object(entries)) => entries.clone(),
            None => Vec::new(),
            Some(_) => return Err("manifest field \"results\" is not an object".into()),
        };
        let children = match json.get("children") {
            Some(JsonValue::Array(items)) => items
                .iter()
                .map(Self::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
            Some(_) => return Err("manifest field \"children\" is not an array".into()),
        };
        Ok(Self {
            name,
            seed,
            policy,
            config,
            metrics: json.get("metrics").cloned().unwrap_or(JsonValue::Null),
            timings: json.get("timings").cloned().unwrap_or(JsonValue::Null),
            artifacts,
            results,
            children,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunManifest {
        let mut metrics = MetricsRegistry::new();
        metrics.inc("origin_runs_total");
        RunManifest::new("table1", 7, "Origin (ER-4)")
            .with_config("nodes", 5)
            .with_config("windows", 4000)
            .with_metrics(&metrics)
            .with_artifact("events_origin.jsonl")
            .with_result("accuracy", JsonValue::from(0.914))
    }

    #[test]
    fn round_trips_through_text() {
        let original = sample();
        let parsed = RunManifest::parse(&original.render_pretty()).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn json_shape_matches_docs() {
        let json = sample().to_json();
        assert_eq!(
            json.get("manifest_version").and_then(JsonValue::as_u64),
            Some(MANIFEST_VERSION)
        );
        assert_eq!(json.get("name").and_then(JsonValue::as_str), Some("table1"));
        assert_eq!(json.get("seed").and_then(JsonValue::as_u64), Some(7));
        assert_eq!(
            json.get("config")
                .and_then(|c| c.get("nodes"))
                .and_then(JsonValue::as_str),
            Some("5")
        );
        assert_eq!(
            json.get("results")
                .and_then(|r| r.get("accuracy"))
                .and_then(JsonValue::as_f64),
            Some(0.914)
        );
    }

    #[test]
    fn children_merge_and_round_trip() {
        let child =
            RunManifest::new("sweep_cell_0", 3, "RR12 Origin").with_result("accuracy", 0.9.into());
        let merged = sample()
            .with_child(child.clone())
            .with_child(RunManifest::new("sweep_cell_1", 4, "BL-2"));
        let parsed = RunManifest::parse(&merged.render_pretty()).unwrap();
        assert_eq!(parsed, merged);
        assert_eq!(parsed.children.len(), 2);
        assert_eq!(parsed.children[0], child);
        // Single-run manifests keep their original JSON shape.
        assert!(sample().to_json().get("children").is_none());
    }

    #[test]
    fn parse_rejects_missing_fields() {
        assert!(RunManifest::parse("{}").is_err());
        assert!(RunManifest::parse("not json").is_err());
        assert!(RunManifest::parse(r#"{"name":"x","policy":"p"}"#).is_err());
    }
}
