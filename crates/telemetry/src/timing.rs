//! Lightweight wall-clock timing scopes for pipeline stages.
//!
//! Timings are observability output only — they land in a
//! [`crate::RunManifest`] as a `timings` section (via
//! [`StageTimings::to_json`]) and never feed back into the simulation,
//! so instrumented runs stay byte-identical to plain ones.

use crate::json::JsonValue;
use std::time::{Duration, Instant};

/// Named wall-clock durations collected in recording order.
///
/// Repeated stage names accumulate into one entry, so a stage inside a
/// loop reports its total.
#[derive(Debug, Clone, Default)]
pub struct StageTimings {
    stages: Vec<(String, Duration)>,
}

impl StageTimings {
    /// An empty set of timings.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f`, recording its wall-clock duration under `name`.
    // Telemetry is the one subsystem allowed to read the wall clock:
    // timings are observability output, never simulation input.
    #[allow(clippy::disallowed_methods)]
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let result = f();
        self.record(name, start.elapsed());
        result
    }

    /// Adds `elapsed` to stage `name` (creating it at the end).
    pub fn record(&mut self, name: &str, elapsed: Duration) {
        if let Some((_, total)) = self.stages.iter_mut().find(|(n, _)| n == name) {
            *total += elapsed;
        } else {
            self.stages.push((name.to_owned(), elapsed));
        }
    }

    /// Stage `name`'s accumulated duration.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Duration> {
        self.stages.iter().find(|(n, _)| n == name).map(|(_, d)| *d)
    }

    /// All stages in recording order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Duration)> {
        self.stages.iter().map(|(n, d)| (n.as_str(), *d))
    }

    /// Sum of every stage.
    #[must_use]
    pub fn total(&self) -> Duration {
        self.stages.iter().map(|(_, d)| *d).sum()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Renders the timings as a JSON object of stage → milliseconds.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(
            self.stages
                .iter()
                .map(|(n, d)| (format!("{n}_ms"), JsonValue::from(d.as_secs_f64() * 1000.0)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_returns_the_closure_result() {
        let mut t = StageTimings::new();
        let v = t.time("stage", || 41 + 1);
        assert_eq!(v, 42);
        assert!(t.get("stage").is_some());
        assert_eq!(t.iter().count(), 1);
    }

    #[test]
    fn repeated_names_accumulate() {
        let mut t = StageTimings::new();
        t.record("sim", Duration::from_millis(3));
        t.record("report", Duration::from_millis(1));
        t.record("sim", Duration::from_millis(2));
        assert_eq!(t.get("sim"), Some(Duration::from_millis(5)));
        assert_eq!(t.total(), Duration::from_millis(6));
        let order: Vec<&str> = t.iter().map(|(n, _)| n).collect();
        assert_eq!(order, ["sim", "report"]);
    }

    #[test]
    fn json_uses_millisecond_keys() {
        let mut t = StageTimings::new();
        t.record("sim", Duration::from_millis(250));
        let json = t.to_json();
        assert_eq!(json.get("sim_ms").and_then(JsonValue::as_f64), Some(250.0));
    }
}
