//! The observer trait and the built-in observers.
//!
//! Observation is statically dispatched: instrumented entry points take a
//! generic `O: SimObserver` and the default paths pass [`NoopObserver`],
//! whose `on_event` body is empty — the optimizer deletes every emission
//! site, so the uninstrumented simulator pays nothing
//! (`crates/bench/benches/telemetry.rs` pins this).

use crate::event::{EventKind, SimEvent};
use crate::metrics::MetricsRegistry;
use std::collections::BTreeMap;

/// A consumer of [`SimEvent`]s.
///
/// Implementations must be pure consumers: they may record, count or
/// serialize events, but must not feed anything back into the simulation.
/// That discipline is what makes instrumented runs byte-identical to
/// unobserved ones.
pub trait SimObserver {
    /// Called once per event, in emission order.
    fn on_event(&mut self, event: &SimEvent);

    /// Whether the simulator should emit [`SimEvent::Ledger`] flows.
    ///
    /// The energy ledger multiplies the event volume several-fold, so it
    /// is opt-in: the simulator hoists this flag once per run and skips
    /// every ledger emission site when it is `false`. Defaults to `false`;
    /// audit sinks (and [`WithLedger`]) override it. The flag must be
    /// constant for the lifetime of a run.
    #[must_use]
    fn wants_ledger(&self) -> bool {
        false
    }
}

/// Forward through mutable references so call sites can lend an observer
/// to a helper without moving it.
impl<O: SimObserver + ?Sized> SimObserver for &mut O {
    fn on_event(&mut self, event: &SimEvent) {
        (**self).on_event(event);
    }

    fn wants_ledger(&self) -> bool {
        (**self).wants_ledger()
    }
}

/// `None` observes nothing; `Some` forwards. Lets a statically-typed
/// observer stack (e.g. a [`Tee`] tree) include optional sinks — an
/// absent [`crate::LedgerAuditor`] arm keeps `wants_ledger` off.
impl<O: SimObserver> SimObserver for Option<O> {
    fn on_event(&mut self, event: &SimEvent) {
        if let Some(observer) = self {
            observer.on_event(event);
        }
    }

    fn wants_ledger(&self) -> bool {
        self.as_ref().is_some_and(SimObserver::wants_ledger)
    }
}

/// The do-nothing observer behind every uninstrumented entry point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl SimObserver for NoopObserver {
    #[inline(always)]
    fn on_event(&mut self, _event: &SimEvent) {}
}

/// Buffers every event in order; the workhorse for tests.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecordingObserver {
    events: Vec<SimEvent>,
}

impl RecordingObserver {
    /// An empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// All recorded events, in emission order.
    #[must_use]
    pub fn events(&self) -> &[SimEvent] {
        &self.events
    }

    /// How many events of `kind` were recorded.
    #[must_use]
    pub fn count(&self, kind: EventKind) -> usize {
        self.events.iter().filter(|e| e.kind() == kind).count()
    }

    /// Consumes the recorder, yielding the event buffer.
    #[must_use]
    pub fn into_events(self) -> Vec<SimEvent> {
        self.events
    }
}

impl SimObserver for RecordingObserver {
    fn on_event(&mut self, event: &SimEvent) {
        self.events.push(*event);
    }
}

/// The in-memory aggregator: folds the event stream into a
/// [`MetricsRegistry`] without retaining the events themselves.
///
/// Derived metrics (all prefixed `origin_`):
///
/// * `origin_events_total{event}` — one counter per [`EventKind`];
/// * `origin_node_harvested_microjoules_total` / counterpart gauges
///   `origin_node_stored_microjoules{node}` — energy intake and the last
///   observed store level per node;
/// * `origin_stored_headroom` histogram — per-attempt stored-energy
///   headroom (stored ÷ full attempt cost) at schedule time;
/// * `origin_slot_attempters` histogram — scheduled attempters per
///   window, no-op slots landing in the ≤0 bucket;
/// * `origin_confidence` histogram — per-completion classifier
///   confidence;
/// * `origin_radio_bytes_total{outcome}` — delivered vs dropped payload
///   bytes;
/// * `origin_ledger_microjoules_total{flow}` /
///   `origin_ledger_drawn_microjoules_total{op}` /
///   `origin_ledger_slots_total` — energy-ledger flow totals (µJ, f64
///   counters) and audited slot count, present only when the run was
///   ledger-enabled (see [`SimObserver::wants_ledger`]).
#[derive(Debug, Clone, Default)]
pub struct MetricsObserver {
    metrics: MetricsRegistry,
    by_kind: BTreeMap<EventKind, u64>,
}

/// Bucket bounds for stored-energy headroom (1.0 = exactly affordable).
const HEADROOM_BOUNDS: &[f64] = &[0.5, 1.0, 2.0, 4.0, 8.0, 16.0];
/// Bucket bounds for scheduled attempters per window.
const ATTEMPTER_BOUNDS: &[f64] = &[0.0, 1.0, 2.0, 4.0, 8.0];
/// Bucket bounds for softmax-variance confidence.
const CONFIDENCE_BOUNDS: &[f64] = &[0.02, 0.05, 0.1, 0.15, 0.2, 0.25];

impl MetricsObserver {
    /// An empty aggregator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The aggregated metrics so far.
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// How many events of `kind` were seen.
    #[must_use]
    pub fn count(&self, kind: EventKind) -> u64 {
        self.by_kind.get(&kind).copied().unwrap_or(0)
    }

    /// Total events seen across all kinds.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.by_kind.values().sum()
    }

    /// Consumes the observer, yielding the registry.
    #[must_use]
    pub fn into_metrics(self) -> MetricsRegistry {
        self.metrics
    }
}

impl SimObserver for MetricsObserver {
    fn on_event(&mut self, event: &SimEvent) {
        let kind = event.kind();
        *self.by_kind.entry(kind).or_insert(0) += 1;
        self.metrics
            .inc(&format!("origin_events_total{{event=\"{}\"}}", kind.name()));
        match *event {
            SimEvent::HarvestSlice {
                node,
                harvested_uj,
                stored_uj,
                ..
            } => {
                self.metrics.add(
                    "origin_node_harvested_microjoules_total",
                    harvested_uj.max(0.0) as u64,
                );
                self.metrics.set_gauge(
                    &format!(
                        "origin_node_stored_microjoules{{node=\"{}\"}}",
                        node.as_u32()
                    ),
                    stored_uj,
                );
            }
            SimEvent::SlotScheduled { attempters, .. } => {
                self.metrics.observe(
                    "origin_slot_attempters",
                    ATTEMPTER_BOUNDS,
                    f64::from(attempters),
                );
            }
            SimEvent::InferenceAttempt { headroom, .. } => {
                self.metrics
                    .observe("origin_stored_headroom", HEADROOM_BOUNDS, headroom);
            }
            SimEvent::InferenceCompleted { confidence, .. } => {
                self.metrics
                    .observe("origin_confidence", CONFIDENCE_BOUNDS, confidence);
            }
            SimEvent::MessageTx { bytes, .. } => {
                self.metrics
                    .add("origin_radio_bytes_total{outcome=\"sent\"}", bytes as u64);
            }
            SimEvent::MessageDrop { bytes, .. } => {
                self.metrics.add(
                    "origin_radio_bytes_total{outcome=\"dropped\"}",
                    bytes as u64,
                );
            }
            SimEvent::Ledger { entry, .. } => match entry {
                crate::LedgerEntry::Harvested { uj }
                | crate::LedgerEntry::ChargeLoss { uj }
                | crate::LedgerEntry::Clipped { uj }
                | crate::LedgerEntry::Leaked { uj } => {
                    self.metrics.fadd(
                        &format!(
                            "origin_ledger_microjoules_total{{flow=\"{}\"}}",
                            entry.flow()
                        ),
                        uj,
                    );
                }
                crate::LedgerEntry::Drawn { op, uj } => {
                    self.metrics.fadd(
                        &format!(
                            "origin_ledger_drawn_microjoules_total{{op=\"{}\"}}",
                            op.name()
                        ),
                        uj,
                    );
                }
                crate::LedgerEntry::SlotClose { .. } => {
                    self.metrics.inc("origin_ledger_slots_total");
                }
                crate::LedgerEntry::Opening { .. } => {}
            },
            _ => {}
        }
    }
}

/// Fans every event out to two observers (nest for more).
#[derive(Debug, Clone, Default)]
pub struct Tee<A, B>(
    /// First receiver.
    pub A,
    /// Second receiver.
    pub B,
);

impl<A: SimObserver, B: SimObserver> SimObserver for Tee<A, B> {
    fn on_event(&mut self, event: &SimEvent) {
        self.0.on_event(event);
        self.1.on_event(event);
    }

    fn wants_ledger(&self) -> bool {
        self.0.wants_ledger() || self.1.wants_ledger()
    }
}

/// Turns on ledger emission for any inner observer.
///
/// The wrapper forwards every event unchanged but answers `true` to
/// [`SimObserver::wants_ledger`], so `WithLedger(RecordingObserver::new())`
/// captures the full flow stream and `WithLedger(NoopObserver)` is the
/// ledger-enabled no-op arm of the overhead benchmark.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WithLedger<O>(
    /// The observer receiving the (now ledger-bearing) stream.
    pub O,
);

impl<O: SimObserver> SimObserver for WithLedger<O> {
    #[inline(always)]
    fn on_event(&mut self, event: &SimEvent) {
        self.0.on_event(event);
    }

    fn wants_ledger(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use origin_types::NodeId;

    fn attempt(window: u64) -> SimEvent {
        SimEvent::InferenceAttempt {
            window,
            node: NodeId::new(0),
            headroom: 1.25,
        }
    }

    #[test]
    fn recorder_keeps_order_and_counts() {
        let mut rec = RecordingObserver::new();
        rec.on_event(&attempt(0));
        rec.on_event(&SimEvent::NvpCheckpoint {
            window: 0,
            node: NodeId::new(1),
        });
        rec.on_event(&attempt(1));
        assert_eq!(rec.events().len(), 3);
        assert_eq!(rec.count(EventKind::InferenceAttempt), 2);
        assert_eq!(rec.count(EventKind::NvpCheckpoint), 1);
        assert_eq!(rec.count(EventKind::MessageDrop), 0);
    }

    #[test]
    fn metrics_observer_aggregates() {
        let mut obs = MetricsObserver::new();
        obs.on_event(&attempt(0));
        obs.on_event(&SimEvent::MessageTx {
            from: crate::Party::Node(NodeId::new(0)),
            to: crate::Party::Host,
            bytes: 6,
            at_us: 10,
        });
        obs.on_event(&SimEvent::MessageDrop {
            from: crate::Party::Node(NodeId::new(1)),
            to: crate::Party::Host,
            bytes: 6,
            at_us: 20,
        });
        assert_eq!(obs.total(), 3);
        assert_eq!(obs.count(EventKind::InferenceAttempt), 1);
        let m = obs.metrics();
        assert_eq!(
            m.counter("origin_events_total{event=\"inference_attempt\"}"),
            1
        );
        assert_eq!(m.counter("origin_radio_bytes_total{outcome=\"sent\"}"), 6);
        assert_eq!(
            m.counter("origin_radio_bytes_total{outcome=\"dropped\"}"),
            6
        );
        let h = m.histogram("origin_stored_headroom").unwrap();
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn tee_feeds_both() {
        let mut tee = Tee(RecordingObserver::new(), MetricsObserver::new());
        tee.on_event(&attempt(0));
        assert_eq!(tee.0.events().len(), 1);
        assert_eq!(tee.1.total(), 1);
    }

    #[test]
    fn wants_ledger_defaults_off_and_propagates() {
        assert!(!NoopObserver.wants_ledger());
        assert!(!RecordingObserver::new().wants_ledger());
        assert!(WithLedger(NoopObserver).wants_ledger());
        assert!(Tee(NoopObserver, WithLedger(NoopObserver)).wants_ledger());
        assert!(!Tee(NoopObserver, MetricsObserver::new()).wants_ledger());
        let mut wrapped = WithLedger(NoopObserver);
        let lent: &mut WithLedger<NoopObserver> = &mut wrapped;
        assert!(lent.wants_ledger());
    }

    #[test]
    fn optional_observer_forwards_only_when_present() {
        let mut absent: Option<RecordingObserver> = None;
        absent.on_event(&attempt(0));
        assert!(absent.is_none());
        assert!(!absent.wants_ledger());
        assert!(!Some(RecordingObserver::new()).wants_ledger());
        assert!(Some(WithLedger(NoopObserver)).wants_ledger());
        let mut present = Some(RecordingObserver::new());
        present.on_event(&attempt(1));
        assert_eq!(present.unwrap().events().len(), 1);
    }

    #[test]
    fn metrics_observer_folds_ledger_flows() {
        let mut obs = MetricsObserver::new();
        let node = NodeId::new(0);
        for entry in [
            crate::LedgerEntry::Harvested { uj: 1.5 },
            crate::LedgerEntry::Harvested { uj: 0.25 },
            crate::LedgerEntry::Drawn {
                op: crate::DrawOp::Infer,
                uj: 0.5,
            },
            crate::LedgerEntry::SlotClose { stored_uj: 3.0 },
        ] {
            obs.on_event(&SimEvent::Ledger {
                window: 0,
                node,
                entry,
            });
        }
        let m = obs.metrics();
        assert_eq!(
            m.fcounter("origin_ledger_microjoules_total{flow=\"harvested\"}"),
            1.75
        );
        assert_eq!(
            m.fcounter("origin_ledger_drawn_microjoules_total{op=\"infer\"}"),
            0.5
        );
        assert_eq!(m.counter("origin_ledger_slots_total"), 1);
    }

    #[test]
    fn mut_ref_forwards() {
        let mut rec = RecordingObserver::new();
        {
            let lent: &mut RecordingObserver = &mut rec;
            lent.on_event(&attempt(7));
        }
        assert_eq!(rec.events().len(), 1);
    }
}
