//! Progress-line formatting for long-running sweeps.
//!
//! The sweep engine streams `done/total` heartbeats to stderr while a
//! grid or population runs. The *formatting* lives here — a pure
//! function of the counters, so it is testable and shared by every
//! driver — while the wall-clock sampling and the reporter thread stay
//! in the caller (progress is cosmetic by contract: nothing here may
//! reach a report or manifest).

/// Formats `done/total` progress lines for one named long-running unit
/// of work (cells of a sweep, shards of a fleet run).
///
/// The meter holds no clock: callers sample elapsed wall time themselves
/// and pass it in, which keeps this type deterministic and testable.
///
/// # Examples
///
/// ```
/// use origin_telemetry::ProgressMeter;
///
/// let meter = ProgressMeter::new("sweep", "cells", 400);
/// assert_eq!(
///     meter.line(100, 10.0),
///     "sweep: 100/400 cells | 10.0 cells/s | ETA 30s"
/// );
/// assert_eq!(meter.final_line(400, 40.0), "sweep: 400/400 cells in 40.0s (10.0 cells/s)");
/// ```
#[derive(Debug, Clone)]
pub struct ProgressMeter {
    label: String,
    unit: String,
    total: u64,
}

impl ProgressMeter {
    /// A meter for `total` units of `unit`, prefixed with `label`.
    #[must_use]
    pub fn new(label: &str, unit: &str, total: u64) -> Self {
        Self {
            label: label.to_owned(),
            unit: unit.to_owned(),
            total,
        }
    }

    /// The total this meter counts toward.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The heartbeat line for `done` units after `elapsed_secs`:
    /// `"label: done/total unit | rate unit/s | ETA Ns"`. Rate and ETA
    /// are omitted while the rate is still zero.
    #[must_use]
    pub fn line(&self, done: u64, elapsed_secs: f64) -> String {
        let rate = if elapsed_secs > 0.0 {
            done as f64 / elapsed_secs
        } else {
            0.0
        };
        if rate > 0.0 {
            let eta = self.total.saturating_sub(done) as f64 / rate;
            format!(
                "{}: {done}/{} {} | {rate:.1} {}/s | ETA {eta:.0}s",
                self.label, self.total, self.unit, self.unit
            )
        } else {
            format!("{}: {done}/{} {}", self.label, self.total, self.unit)
        }
    }

    /// The closing line once work stops:
    /// `"label: done/total unit in Ss (rate unit/s)"`.
    #[must_use]
    pub fn final_line(&self, done: u64, elapsed_secs: f64) -> String {
        let rate = if elapsed_secs > 0.0 {
            done as f64 / elapsed_secs
        } else {
            0.0
        };
        format!(
            "{}: {done}/{} {} in {elapsed_secs:.1}s ({rate:.1} {}/s)",
            self.label, self.total, self.unit, self.unit
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_cover_all_phases() {
        let m = ProgressMeter::new("fleet", "shards", 10);
        assert_eq!(m.total(), 10);
        // No rate yet: plain counter.
        assert_eq!(m.line(0, 0.0), "fleet: 0/10 shards");
        // Steady state: rate + ETA.
        assert_eq!(
            m.line(5, 10.0),
            "fleet: 5/10 shards | 0.5 shards/s | ETA 10s"
        );
        // ETA never goes negative past the total.
        assert_eq!(
            m.line(12, 6.0),
            "fleet: 12/10 shards | 2.0 shards/s | ETA 0s"
        );
        assert_eq!(
            m.final_line(10, 20.0),
            "fleet: 10/10 shards in 20.0s (0.5 shards/s)"
        );
    }
}
