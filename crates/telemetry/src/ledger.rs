//! The energy-ledger audit sink.
//!
//! [`LedgerAuditor`] consumes the [`SimEvent::Ledger`] flow stream and
//! checks, per node and per slot, that the books balance:
//!
//! ```text
//! stored(close) = stored(prev close) + harvested − charge_loss − clipped
//!               − Σ drawn − leaked
//! ```
//!
//! Every flow is a per-slot difference of the simulator's own running
//! totals, so the residual of a balanced slot is a few ulps of those
//! totals — far below the default tolerance of 1e-9 µJ. A residual above
//! tolerance means a flow was double-counted or dropped, which is exactly
//! the bug class this sink exists to catch.

use crate::event::{LedgerEntry, SimEvent};
use crate::observer::SimObserver;
use std::collections::BTreeMap;

/// Default conservation tolerance, in microjoules.
pub const DEFAULT_EPSILON_UJ: f64 = 1e-9;

/// Per-node audit state: the anchor and the accumulating slot flows.
#[derive(Debug, Clone, Copy, Default)]
struct NodeLedger {
    /// Stored energy at the last anchor (`Opening` or `SlotClose`), µJ.
    anchor_uj: f64,
    /// Whether an anchor has been seen yet.
    anchored: bool,
    harvested_uj: f64,
    charge_loss_uj: f64,
    clipped_uj: f64,
    leaked_uj: f64,
    drawn_uj: f64,
}

/// One conservation violation (a slot whose books did not balance).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LedgerViolation {
    /// Window index of the unbalanced slot.
    pub window: u64,
    /// Node whose slot failed the audit.
    pub node: u32,
    /// `stored(close) − expected` in µJ (signed).
    pub residual_uj: f64,
}

/// End-of-run audit summary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LedgerAuditReport {
    /// Slots audited (one per node per window with a `SlotClose`).
    pub slots_audited: u64,
    /// Largest absolute residual seen, µJ.
    pub max_residual_uj: f64,
    /// Slots whose absolute residual exceeded the tolerance.
    pub violations: Vec<LedgerViolation>,
    /// Total energy offered by the harvester front-ends, µJ.
    pub harvested_uj: f64,
    /// Total charge-efficiency loss, µJ.
    pub charge_loss_uj: f64,
    /// Total energy rejected at capacity, µJ.
    pub clipped_uj: f64,
    /// Total leakage, µJ.
    pub leaked_uj: f64,
    /// Total drawn across all operations, µJ.
    pub drawn_uj: f64,
}

impl LedgerAuditReport {
    /// Whether every audited slot balanced within tolerance.
    #[must_use]
    pub fn conserved(&self) -> bool {
        self.violations.is_empty()
    }
}

/// A [`SimObserver`] that audits ledger conservation as the run streams.
///
/// The auditor answers `true` to [`SimObserver::wants_ledger`], so passing
/// it (possibly inside a [`crate::Tee`]) to an instrumented entry point is
/// all it takes to turn the ledger on. Non-ledger events are ignored.
#[derive(Debug, Clone)]
pub struct LedgerAuditor {
    epsilon_uj: f64,
    nodes: BTreeMap<u32, NodeLedger>,
    report: LedgerAuditReport,
}

impl Default for LedgerAuditor {
    fn default() -> Self {
        Self::new(DEFAULT_EPSILON_UJ)
    }
}

impl LedgerAuditor {
    /// An auditor with conservation tolerance `epsilon_uj` (µJ).
    #[must_use]
    pub fn new(epsilon_uj: f64) -> Self {
        Self {
            epsilon_uj,
            nodes: BTreeMap::new(),
            report: LedgerAuditReport::default(),
        }
    }

    /// The audit so far (usable mid-run or at the end).
    #[must_use]
    pub fn report(&self) -> &LedgerAuditReport {
        &self.report
    }

    /// Consumes the auditor, yielding the final report.
    #[must_use]
    pub fn into_report(self) -> LedgerAuditReport {
        self.report
    }

    fn close_slot(&mut self, window: u64, node: u32, stored_uj: f64) {
        let state = self.nodes.entry(node).or_default();
        if state.anchored {
            let expected = state.anchor_uj + state.harvested_uj
                - state.charge_loss_uj
                - state.clipped_uj
                - state.drawn_uj
                - state.leaked_uj;
            let residual = stored_uj - expected;
            self.report.slots_audited += 1;
            if residual.abs() > self.report.max_residual_uj.abs() {
                self.report.max_residual_uj = residual;
            }
            if residual.abs() > self.epsilon_uj {
                self.report.violations.push(LedgerViolation {
                    window,
                    node,
                    residual_uj: residual,
                });
            }
        }
        *state = NodeLedger {
            anchor_uj: stored_uj,
            anchored: true,
            ..NodeLedger::default()
        };
    }
}

impl SimObserver for LedgerAuditor {
    fn on_event(&mut self, event: &SimEvent) {
        let SimEvent::Ledger {
            window,
            node,
            entry,
        } = *event
        else {
            return;
        };
        let node = node.as_u32();
        match entry {
            LedgerEntry::Opening { stored_uj } => {
                let state = self.nodes.entry(node).or_default();
                *state = NodeLedger {
                    anchor_uj: stored_uj,
                    anchored: true,
                    ..NodeLedger::default()
                };
            }
            LedgerEntry::Harvested { uj } => {
                self.nodes.entry(node).or_default().harvested_uj += uj;
                self.report.harvested_uj += uj;
            }
            LedgerEntry::ChargeLoss { uj } => {
                self.nodes.entry(node).or_default().charge_loss_uj += uj;
                self.report.charge_loss_uj += uj;
            }
            LedgerEntry::Clipped { uj } => {
                self.nodes.entry(node).or_default().clipped_uj += uj;
                self.report.clipped_uj += uj;
            }
            LedgerEntry::Leaked { uj } => {
                self.nodes.entry(node).or_default().leaked_uj += uj;
                self.report.leaked_uj += uj;
            }
            LedgerEntry::Drawn { uj, .. } => {
                self.nodes.entry(node).or_default().drawn_uj += uj;
                self.report.drawn_uj += uj;
            }
            LedgerEntry::SlotClose { stored_uj } => {
                self.close_slot(window, node, stored_uj);
            }
        }
    }

    fn wants_ledger(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DrawOp;
    use origin_types::NodeId;

    fn emit(auditor: &mut LedgerAuditor, window: u64, entry: LedgerEntry) {
        auditor.on_event(&SimEvent::Ledger {
            window,
            node: NodeId::new(0),
            entry,
        });
    }

    #[test]
    fn balanced_slots_pass() {
        let mut a = LedgerAuditor::default();
        emit(&mut a, 0, LedgerEntry::Opening { stored_uj: 10.0 });
        emit(&mut a, 0, LedgerEntry::Harvested { uj: 4.0 });
        emit(&mut a, 0, LedgerEntry::ChargeLoss { uj: 1.0 });
        emit(&mut a, 0, LedgerEntry::Clipped { uj: 0.5 });
        emit(
            &mut a,
            0,
            LedgerEntry::Drawn {
                op: DrawOp::Duty,
                uj: 2.0,
            },
        );
        emit(&mut a, 0, LedgerEntry::Leaked { uj: 0.25 });
        emit(&mut a, 0, LedgerEntry::SlotClose { stored_uj: 10.25 });
        let report = a.report();
        assert_eq!(report.slots_audited, 1);
        assert!(report.conserved(), "residual {}", report.max_residual_uj);
        assert_eq!(report.harvested_uj, 4.0);
        assert_eq!(report.drawn_uj, 2.0);
    }

    #[test]
    fn dropped_flow_is_a_violation() {
        let mut a = LedgerAuditor::default();
        emit(&mut a, 0, LedgerEntry::Opening { stored_uj: 10.0 });
        emit(&mut a, 0, LedgerEntry::Harvested { uj: 4.0 });
        // ... the books claim 4 µJ came in, but the store only moved 1 µJ.
        emit(&mut a, 0, LedgerEntry::SlotClose { stored_uj: 11.0 });
        let report = a.report();
        assert_eq!(report.slots_audited, 1);
        assert!(!report.conserved());
        assert_eq!(report.violations.len(), 1);
        assert!((report.violations[0].residual_uj + 3.0).abs() < 1e-12);
    }

    #[test]
    fn audit_restarts_from_each_close() {
        let mut a = LedgerAuditor::default();
        emit(&mut a, 0, LedgerEntry::Opening { stored_uj: 5.0 });
        emit(&mut a, 0, LedgerEntry::Harvested { uj: 1.0 });
        emit(&mut a, 0, LedgerEntry::SlotClose { stored_uj: 6.0 });
        emit(&mut a, 1, LedgerEntry::Harvested { uj: 2.0 });
        emit(&mut a, 1, LedgerEntry::SlotClose { stored_uj: 8.0 });
        assert_eq!(a.report().slots_audited, 2);
        assert!(a.report().conserved());
    }

    #[test]
    fn slots_before_an_anchor_are_not_audited() {
        let mut a = LedgerAuditor::default();
        emit(&mut a, 3, LedgerEntry::Harvested { uj: 1.0 });
        emit(&mut a, 3, LedgerEntry::SlotClose { stored_uj: 42.0 });
        // No Opening: the first close only anchors.
        assert_eq!(a.report().slots_audited, 0);
        emit(&mut a, 4, LedgerEntry::SlotClose { stored_uj: 42.0 });
        assert_eq!(a.report().slots_audited, 1);
        assert!(a.report().conserved());
    }
}
