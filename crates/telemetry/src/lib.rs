//! # origin-telemetry — observability for the Origin simulator
//!
//! The simulator steps the whole stack (harvest → scheduling → inference →
//! radio → host vote) but a `SimReport` only surfaces end-of-run
//! aggregates. This crate records what the system actually *did*:
//!
//! * [`SimEvent`] — a structured event stream covering window starts,
//!   harvest slices, slot scheduling (including no-op slots), inference
//!   attempts/completions/brownouts, NVP checkpoints, radio traffic,
//!   recall, ensemble votes and confidence updates;
//! * [`SimObserver`] — the statically-dispatched observer trait the
//!   simulator emits into. [`NoopObserver`] monomorphizes to nothing, so
//!   the uninstrumented path keeps its speed;
//! * [`LedgerEntry`] / [`LedgerAuditor`] — a typed per-slot energy
//!   ledger (opening balance, harvested/lost/clipped/leaked flows, every
//!   draw by operation, closing balance) with a replay auditor that
//!   proves conservation to [`DEFAULT_EPSILON_UJ`] per node per window.
//!   Emission is pay-for-use: [`SimObserver::wants_ledger`] defaults to
//!   `false` and [`WithLedger`] opts a sink in;
//! * [`SpanObserver`] — hierarchical trace spans keyed to *logical* sim
//!   ticks (never wall clocks), serialized to JSONL and folded into
//!   self-time tables by [`SpanSummary`];
//! * [`MetricsRegistry`] — dependency-free counters, float counters,
//!   gauges and fixed-bucket histograms, with a hand-rolled Prometheus
//!   text exposition writer ([`write_prometheus`]);
//! * [`StageTimings`] — lightweight wall-clock timing scopes for the
//!   pipeline stages (training, simulation, reporting);
//! * [`ProgressMeter`] — pure `done/total` heartbeat-line formatting for
//!   long sweeps (the wall clock and reporter thread stay with the
//!   caller, so progress can never perturb results);
//! * [`RunManifest`] — a machine-readable JSON record of one experiment
//!   run (config, seed, policy, metrics, timings, artifacts) so accuracy
//!   and energy can be tracked across changes;
//! * [`JsonValue`] — the minimal JSON builder/parser behind the JSONL
//!   event sink ([`JsonlObserver`]) and the manifest, matching the
//!   workspace's no-serde idiom (see `origin-trace`'s CSV I/O).
//!
//! The crate deliberately depends only on `origin-types`: every other
//! crate in the workspace can emit into it without cycles.
//!
//! # The zero-perturbation guarantee
//!
//! Observers are pure consumers: nothing they do feeds back into the
//! simulation (no RNG draws, no state mutation). A run instrumented with
//! any observer produces a byte-identical report to an unobserved run —
//! `crates/core/tests/telemetry.rs` asserts this.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod event;
mod json;
mod jsonl;
mod ledger;
mod manifest;
mod metrics;
mod observer;
mod progress;
mod prometheus;
mod span;
mod timing;

pub use event::{DrawOp, EventKind, LedgerEntry, Party, SimEvent};
pub use json::{JsonError, JsonValue};
pub use jsonl::JsonlObserver;
pub use ledger::{LedgerAuditReport, LedgerAuditor, LedgerViolation, DEFAULT_EPSILON_UJ};
pub use manifest::RunManifest;
pub use metrics::{Histogram, MetricsRegistry};
pub use observer::{
    MetricsObserver, NoopObserver, RecordingObserver, SimObserver, Tee, WithLedger,
};
pub use progress::ProgressMeter;
pub use prometheus::write_prometheus;
pub use span::{SpanKind, SpanObserver, SpanRecord, SpanSummary, SpanSummaryRow};
pub use timing::StageTimings;
