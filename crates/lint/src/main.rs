#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! CLI for the workspace determinism & hot-path static-analysis pass.
//!
//! ```text
//! origin-lint [--json] [--root DIR] [--allowlist FILE] [--list-rules] [--api-snapshot]
//! ```
//!
//! `--api-snapshot` regenerates `lint-api.txt` at the root (the D9
//! baseline) instead of linting.
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use origin_lint::diagnostics::{by_rule_counts, render_json_report};
use origin_lint::{api_snapshot, rules, run};

fn main() -> ExitCode {
    let mut json = false;
    let mut snapshot = false;
    let mut root = PathBuf::from(".");
    let mut allow: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--api-snapshot" => snapshot = true,
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a directory"),
            },
            "--allowlist" => match args.next() {
                Some(v) => allow = Some(PathBuf::from(v)),
                None => return usage("--allowlist needs a file"),
            },
            "--list-rules" => {
                print!(
                    "D1  no ambient nondeterminism in deterministic crates ({})\n\
                     D2  no HashMap/HashSet in deterministic crates\n\
                     D3  no unwrap/expect/panic!/todo! in typed-error crates ({})\n\
                     D4  no allocation inside declared hot-path kernels\n\
                     D5  crate roots forbid(unsafe_code) + deny(missing_docs)\n\
                     D6  transitive hot-path purity: everything reachable from a\n\
                     \x20   [hot-paths] root is allocation- and panic-free\n\
                     D7  no order-hiding float reductions (sum/product/fold,\n\
                     \x20   mul_add, partial_cmp sorts) in deterministic crates\n\
                     D8  no call path from a typed-error crate's public API to a\n\
                     \x20   panic site in a deterministic crate\n\
                     D9  public API matches the lint-api.txt snapshot\n",
                    rules::DETERMINISTIC_CRATES.join(", "),
                    rules::TYPED_ERROR_CRATES.join(", "),
                );
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "origin-lint [--json] [--root DIR] [--allowlist FILE] \
                     [--list-rules] [--api-snapshot]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    if snapshot {
        return match api_snapshot(&root) {
            Ok(content) => {
                let path = root.join("lint-api.txt");
                match std::fs::write(&path, content) {
                    Ok(()) => {
                        println!("origin-lint: wrote {}", path.display());
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("origin-lint: error: writing {}: {e}", path.display());
                        ExitCode::from(2)
                    }
                }
            }
            Err(e) => {
                eprintln!("origin-lint: error: {e}");
                ExitCode::from(2)
            }
        };
    }

    let allow = allow.unwrap_or_else(|| root.join("lint-allow.toml"));
    match run(&root, &allow) {
        Ok(report) => {
            if json {
                println!(
                    "{}",
                    render_json_report(&report.findings, report.files_scanned, report.allowed)
                );
            } else {
                for f in &report.findings {
                    print!("{}", f.render_human());
                }
                let by_rule: Vec<String> = by_rule_counts(&report.findings)
                    .iter()
                    .map(|(rule, n)| format!("{rule}:{n}"))
                    .collect();
                println!(
                    "origin-lint: {} file(s), {} finding(s){}, {} allowlisted",
                    report.files_scanned,
                    report.findings.len(),
                    if by_rule.is_empty() {
                        String::new()
                    } else {
                        format!(" [{}]", by_rule.join(" "))
                    },
                    report.allowed
                );
            }
            if report.findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("origin-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("origin-lint: {msg}");
    eprintln!(
        "usage: origin-lint [--json] [--root DIR] [--allowlist FILE] \
         [--list-rules] [--api-snapshot]"
    );
    ExitCode::from(2)
}
