//! The rule set: token-local rules D1–D5 and D7 over one file's token
//! stream, plus the call-graph rules D6/D8 over the whole workspace
//! (D9, the API snapshot, lives in [`crate::api`]).
//!
//! | id | scope | invariant |
//! |----|-------|-----------|
//! | D1 | deterministic crates | no ambient nondeterminism (wall clocks, OS entropy, env vars) |
//! | D2 | deterministic crates | no `HashMap`/`HashSet` (iteration order is nondeterministic) |
//! | D3 | typed-error crates | no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in non-test lib code |
//! | D4 | declared hot paths | no allocation calls inside the zero-alloc kernel functions |
//! | D5 | crate roots | `#![forbid(unsafe_code)]` + `#![deny(missing_docs)]` present |
//! | D6 | functions *reachable* from `[hot-paths]` roots | no allocation, and no panic outside the D3-audited crates — the transitive closure of D4 |
//! | D7 | deterministic crates | no reassociable float folds: float `.sum()`/`.product()`, `mul_add` (FMA contracts rounding), `sort_unstable` on floats |
//! | D8 | public API of typed-error crates | no call path to a panic site in a non-typed-error crate |
//! | D9 | whole workspace | public surface matches the committed `lint-api.txt` snapshot |
//!
//! Scoping is by crate (derived from the file path); test code — items
//! under `#[cfg(test)]` or `#[test]` — is excluded for every rule.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{CallGraph, Node};
use crate::diagnostics::Finding;
use crate::lexer::{TokKind, Token};
use crate::parse::FileAnalysis;

/// Crates whose simulation results must be reproducible by construction:
/// everything on the deterministic side of the telemetry boundary, plus
/// the linter itself (its reports must be byte-stable too).
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "types", "sensors", "energy", "net", "trace", "nn", "core", "lint",
];

/// Crates that export a typed error and therefore must not panic from
/// library code (rule D3). `lint` returns `Result<_, String>` everywhere
/// and holds itself to the same no-panic bar.
pub const TYPED_ERROR_CRATES: &[&str] = &["nn", "core", "trace", "types", "lint"];

/// Everything the analyzer needs to know about one file.
pub struct FileContext<'a> {
    /// Repo-relative path, forward slashes (e.g. `crates/nn/src/mlp.rs`).
    pub rel_path: &'a str,
    /// Short crate name (`nn`, `core`, … or `repro` for the root facade).
    pub crate_name: &'a str,
    /// Whether this file is a crate root (`lib.rs`) subject to D5.
    pub is_crate_root: bool,
    /// Function names in this file whose bodies rule D4 protects.
    pub hot_fns: &'a [String],
}

/// Runs every token-local rule on `src`, returning the findings.
/// Convenience wrapper over [`lint_file`] for one-shot use.
#[must_use]
pub fn lint_source(src: &str, ctx: &FileContext<'_>) -> Vec<Finding> {
    lint_file(&FileAnalysis::new(src), src, ctx)
}

/// Runs every token-local rule (D1–D5, D7) on an already-analyzed file.
/// The call-graph rules D6/D8 run separately in [`lint_transitive`].
#[must_use]
pub fn lint_file(fa: &FileAnalysis, src: &str, ctx: &FileContext<'_>) -> Vec<Finding> {
    let toks = &fa.toks;
    let test_mask = &fa.test_mask;
    let lines: Vec<&str> = src.lines().collect();
    let snippet = |line: u32| -> String {
        lines
            .get(line as usize - 1)
            .map_or(String::new(), |l| l.trim().to_string())
    };

    let mut findings = Vec::new();
    let deterministic = DETERMINISTIC_CRATES.contains(&ctx.crate_name);
    let typed_error = TYPED_ERROR_CRATES.contains(&ctx.crate_name);

    for i in 0..toks.len() {
        if test_mask[i] {
            continue;
        }
        if deterministic {
            if let Some(msg) = d1_match(toks, i) {
                findings.push(finding("D1", ctx, &toks[i], snippet(toks[i].line), msg));
            }
            if let Some(msg) = d2_match(toks, i) {
                findings.push(finding("D2", ctx, &toks[i], snippet(toks[i].line), msg));
            }
            if let Some(msg) = d7_match(toks, i) {
                findings.push(finding("D7", ctx, &toks[i], snippet(toks[i].line), msg));
            }
        }
        if typed_error {
            if let Some(msg) = d3_match(toks, i) {
                findings.push(finding("D3", ctx, &toks[i], snippet(toks[i].line), msg));
            }
        }
    }

    for fn_name in ctx.hot_fns {
        d4_check_fn(toks, test_mask, fn_name, ctx, &snippet, &mut findings);
    }

    if ctx.is_crate_root {
        d5_check_root(toks, ctx, &mut findings);
    }

    findings.sort_by_key(|f| (f.line, f.col, f.rule));
    findings
}

fn finding(
    rule: &'static str,
    ctx: &FileContext<'_>,
    tok: &Token,
    snippet: String,
    message: String,
) -> Finding {
    Finding {
        rule,
        file: ctx.rel_path.to_string(),
        line: tok.line,
        col: tok.col,
        snippet,
        message,
        chain: Vec::new(),
    }
}

/// Marks tokens inside `#[test]` / `#[cfg(test)]` items. The mask covers
/// the attribute itself through the end of the item it decorates (the
/// matching `}` of its body, or the terminating `;`).
#[must_use]
pub fn test_region_mask(toks: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            // Collect the attribute's identifier set up to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut has_test = false;
            let mut has_not = false;
            while j < toks.len() && depth > 0 {
                match &toks[j].kind {
                    TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(']') => depth -= 1,
                    TokKind::Ident => {
                        has_test |= toks[j].text == "test";
                        has_not |= toks[j].text == "not";
                    }
                    _ => {}
                }
                j += 1;
            }
            if has_test && !has_not {
                // Skip any further attributes, then the item to its end.
                let mut k = j;
                loop {
                    if k + 1 < toks.len() && toks[k].is_punct('#') && toks[k + 1].is_punct('[') {
                        let mut d = 1usize;
                        k += 2;
                        while k < toks.len() && d > 0 {
                            match toks[k].kind {
                                TokKind::Punct('[') => d += 1,
                                TokKind::Punct(']') => d -= 1,
                                _ => {}
                            }
                            k += 1;
                        }
                    } else {
                        break;
                    }
                }
                // The item ends at a `;` before any `{`, or at the matching
                // `}` of its first brace block. Either way `k` is left one
                // past the item's final token — masking further would
                // swallow the `#` of a directly following attribute (two
                // consecutive `#[cfg(test)]` mods, back-to-back `#[test]`
                // fns).
                while k < toks.len() && !toks[k].is_punct('{') && !toks[k].is_punct(';') {
                    k += 1;
                }
                if k < toks.len() && toks[k].is_punct('{') {
                    let mut d = 1usize;
                    k += 1;
                    while k < toks.len() && d > 0 {
                        match toks[k].kind {
                            TokKind::Punct('{') => d += 1,
                            TokKind::Punct('}') => d -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                } else if k < toks.len() {
                    k += 1; // include the terminating `;`
                }
                for m in mask.iter_mut().take(k.min(toks.len())).skip(i) {
                    *m = true;
                }
                i = k;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    mask
}

/// Matches an ident path like `std :: time` starting at `i`.
fn path_at(toks: &[Token], i: usize, segments: &[&str]) -> bool {
    let mut k = i;
    for (n, seg) in segments.iter().enumerate() {
        if !toks.get(k).is_some_and(|t| t.is_ident(seg)) {
            return false;
        }
        k += 1;
        if n + 1 < segments.len() {
            if !(toks.get(k).is_some_and(|t| t.is_punct(':'))
                && toks.get(k + 1).is_some_and(|t| t.is_punct(':')))
            {
                return false;
            }
            k += 2;
        }
    }
    true
}

/// D1 — ambient nondeterminism: wall clocks, OS entropy, env vars.
fn d1_match(toks: &[Token], i: usize) -> Option<String> {
    const BANNED_IDENTS: &[(&str, &str)] = &[
        (
            "Instant",
            "wall-clock `Instant` is nondeterministic; use `SimTime`",
        ),
        (
            "SystemTime",
            "wall-clock `SystemTime` is nondeterministic; use `SimTime`",
        ),
        (
            "thread_rng",
            "`thread_rng` seeds from the OS; use a seeded `StdRng`",
        ),
    ];
    const BANNED_PATHS: &[(&[&str], &str)] = &[
        (
            &["std", "time"],
            "`std::time` is banned here; simulated time only",
        ),
        (
            &["rand", "random"],
            "`rand::random` seeds from the OS; use a seeded `StdRng`",
        ),
        (
            &["std", "env"],
            "environment reads make runs machine-dependent",
        ),
        (
            &["env", "var"],
            "environment reads make runs machine-dependent",
        ),
        (
            &["env", "var_os"],
            "environment reads make runs machine-dependent",
        ),
        (
            &["env", "vars"],
            "environment reads make runs machine-dependent",
        ),
    ];
    if toks[i].kind != TokKind::Ident {
        return None;
    }
    for (path, msg) in BANNED_PATHS {
        if path_at(toks, i, path) {
            return Some(format!("{}: `{}`", msg, path.join("::")));
        }
    }
    for (ident, msg) in BANNED_IDENTS {
        if toks[i].is_ident(ident) {
            return Some((*msg).to_string());
        }
    }
    None
}

/// D2 — hash collections whose iteration order varies run to run.
fn d2_match(toks: &[Token], i: usize) -> Option<String> {
    const BANNED: &[&str] = &["HashMap", "HashSet", "RandomState"];
    if toks[i].kind == TokKind::Ident && BANNED.contains(&toks[i].text.as_str()) {
        return Some(format!(
            "`{}` iteration order is nondeterministic; use `BTreeMap`/`BTreeSet` or sorted access",
            toks[i].text
        ));
    }
    None
}

/// D3 — panicking calls in library code of crates with a typed error.
fn d3_match(toks: &[Token], i: usize) -> Option<String> {
    let t = &toks[i];
    if t.kind != TokKind::Ident {
        return None;
    }
    let prev_dot = i > 0 && toks[i - 1].is_punct('.');
    let next_paren = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
    let next_bang = toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
    if prev_dot && next_paren && (t.text == "unwrap" || t.text == "expect") {
        return Some(format!(
            "`.{}()` panics; propagate the crate's typed error instead",
            t.text
        ));
    }
    if next_bang && matches!(t.text.as_str(), "panic" | "todo" | "unimplemented") {
        return Some(format!(
            "`{}!` in library code; return the crate's typed error instead",
            t.text
        ));
    }
    None
}

/// D7 — reassociable / rounding-sensitive float reductions. The
/// scalar≡unrolled bitwise proof depends on every float reduction having
/// one explicit association order, so in the deterministic crates:
///
/// * float `.sum()` / `.product()` — `Iterator::sum` is *currently* a
///   sequential fold, but the order is an implementation detail, and the
///   same source line silently reassociates under `par_iter`-style
///   refactors. Use `origin_types::sum_ordered` (a named left fold).
/// * `.fold(...)` in float context — ordered, but the association lives
///   in an inline closure a refactor can change without review; hoist it
///   into a named helper or waive with the intended order documented.
/// * `mul_add` — fuses with a single rounding, so results differ from
///   `a * b + c` and from non-FMA targets.
/// * `.sort_unstable_by(...partial_cmp...)` — `partial_cmp` on floats
///   has no total order (NaN), so tie handling is unspecified; use
///   `total_cmp`.
fn d7_match(toks: &[Token], i: usize) -> Option<String> {
    let t = &toks[i];
    if t.kind != TokKind::Ident {
        return None;
    }
    if i > 0 && toks[i - 1].is_ident("fn") {
        return None; // a definition, not a call
    }
    let prev_dot = i > 0 && toks[i - 1].is_punct('.');
    let (is_call, generics) = call_shape(toks, i);
    if !is_call {
        return None;
    }
    match t.text.as_str() {
        "sum" | "product" if prev_dot && float_context(toks, i, &generics) => Some(format!(
            "float `.{}()` hides its reduction order; use `origin_types::sum_ordered` \
             (or an explicit named fold) so the association order is part of the code",
            t.text
        )),
        "fold" if prev_dot && float_context(toks, i, &generics) => Some(
            "float `fold` keeps its association order in an inline closure; hoist it \
             into a named ordered helper (see `origin_types::sum_ordered`) or waive \
             with the intended order documented"
                .to_string(),
        ),
        "mul_add" => Some(
            "`mul_add` fuses multiply-add with a single rounding, so results differ \
             bitwise from `a * b + c`; write the unfused expression"
                .to_string(),
        ),
        name if name.starts_with("sort_unstable") && prev_dot => {
            if comparator_uses_partial_cmp(toks, i) {
                Some(
                    "float sort via `partial_cmp` has no total order (NaN ties are \
                     unspecified); use `total_cmp` for a deterministic order"
                        .to_string(),
                )
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Is token `i` the name of a call — `name(`, possibly with a turbofish
/// `name::<T, …>(` — and which idents appear in the turbofish?
fn call_shape(toks: &[Token], i: usize) -> (bool, Vec<String>) {
    let mut k = i + 1;
    let mut generics = Vec::new();
    if toks.get(k).is_some_and(|t| t.is_punct(':'))
        && toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(k + 2).is_some_and(|t| t.is_punct('<'))
    {
        let mut depth = 1usize;
        k += 3;
        while k < toks.len() && depth > 0 {
            match &toks[k].kind {
                TokKind::Punct('<') => depth += 1,
                TokKind::Punct('>') => depth -= 1,
                TokKind::Ident => generics.push(toks[k].text.clone()),
                _ => {}
            }
            k += 1;
        }
    }
    (toks.get(k).is_some_and(|t| t.is_punct('(')), generics)
}

/// Float-typed context for a reduction at token `i`: an `f64`/`f32` in
/// the turbofish, or anywhere in the enclosing statement back to the
/// nearest `;`/`{`/`}` (catches `let x: f64 = xs.iter().sum();` and
/// `fn mean(xs: &[f64]) -> f64 { xs.iter().sum() }`-style one-liners).
/// Type-inferred reductions with no float token in the statement are a
/// documented gap — the fixture corpus and DESIGN.md §10 spell it out.
fn float_context(toks: &[Token], i: usize, generics: &[String]) -> bool {
    if generics.iter().any(|g| g == "f64" || g == "f32") {
        return true;
    }
    let mut k = i;
    let mut steps = 0usize;
    while k > 0 && steps < 96 {
        k -= 1;
        steps += 1;
        match &toks[k].kind {
            TokKind::Punct(';' | '{' | '}') => break,
            TokKind::Ident if toks[k].text == "f64" || toks[k].text == "f32" => return true,
            _ => {}
        }
    }
    false
}

/// Does the argument list of the sort call at token `i` mention
/// `partial_cmp`?
fn comparator_uses_partial_cmp(toks: &[Token], i: usize) -> bool {
    let mut k = i + 1;
    if !toks.get(k).is_some_and(|t| t.is_punct('(')) {
        return false;
    }
    let mut depth = 1usize;
    k += 1;
    while k < toks.len() && depth > 0 {
        match &toks[k].kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => depth -= 1,
            TokKind::Ident if toks[k].text == "partial_cmp" => return true,
            _ => {}
        }
        k += 1;
    }
    false
}

/// D4 — allocation calls inside a declared zero-alloc kernel body.
fn d4_check_fn(
    toks: &[Token],
    test_mask: &[bool],
    fn_name: &str,
    ctx: &FileContext<'_>,
    snippet: &dyn Fn(u32) -> String,
    findings: &mut Vec<Finding>,
) {
    let Some((start, end)) = fn_body_range(toks, fn_name) else {
        findings.push(Finding {
            rule: "D4",
            file: ctx.rel_path.to_string(),
            line: 1,
            col: 1,
            snippet: String::new(),
            message: format!(
                "hot-path function `{fn_name}` not found in this file; fix the \
                 `hot-paths` list in lint-allow.toml"
            ),
            chain: Vec::new(),
        });
        return;
    };
    for i in start..end {
        if test_mask[i] {
            continue;
        }
        if let Some(msg) = d4_alloc_match(toks, i) {
            findings.push(Finding {
                rule: "D4",
                file: ctx.rel_path.to_string(),
                line: toks[i].line,
                col: toks[i].col,
                snippet: snippet(toks[i].line),
                message: format!("{msg} inside zero-alloc kernel `{fn_name}`"),
                chain: Vec::new(),
            });
        }
    }
}

/// Allocation-call shapes banned inside hot kernels.
fn d4_alloc_match(toks: &[Token], i: usize) -> Option<String> {
    let t = &toks[i];
    if t.kind != TokKind::Ident {
        return None;
    }
    let prev_dot = i > 0 && toks[i - 1].is_punct('.');
    let next_paren = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
    let next_bang = toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
    if path_at(toks, i, &["Vec", "new"]) || path_at(toks, i, &["Vec", "with_capacity"]) {
        return Some("`Vec` construction allocates".to_string());
    }
    if path_at(toks, i, &["Box", "new"]) {
        return Some("`Box::new` allocates".to_string());
    }
    if path_at(toks, i, &["String", "from"]) {
        return Some("`String::from` allocates".to_string());
    }
    if t.is_ident("vec") && next_bang {
        return Some("`vec!` allocates".to_string());
    }
    if prev_dot
        && next_paren
        && matches!(
            t.text.as_str(),
            "to_vec" | "clone" | "to_owned" | "to_string" | "collect"
        )
    {
        return Some(format!("`.{}()` allocates", t.text));
    }
    None
}

/// Token range (exclusive of braces) of the body of `fn fn_name`.
fn fn_body_range(toks: &[Token], fn_name: &str) -> Option<(usize, usize)> {
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if toks[i].is_ident("fn") && toks[i + 1].is_ident(fn_name) {
            // Scan past the signature for the body's `{`. A `;` ends a
            // bodiless signature only at bracket depth 0 — array types
            // like `[S; N]` in parameters or the return type nest a `;`
            // inside `[...]` that must not read as a terminator.
            let mut k = i + 2;
            let mut nest = 0usize;
            while k < toks.len() {
                match toks[k].kind {
                    TokKind::Punct('(' | '[') => nest += 1,
                    TokKind::Punct(')' | ']') => nest = nest.saturating_sub(1),
                    TokKind::Punct('{' | ';') if nest == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            if k >= toks.len() || toks[k].is_punct(';') {
                return None; // trait method signature, no body here
            }
            let start = k + 1;
            let mut depth = 1usize;
            k += 1;
            while k < toks.len() && depth > 0 {
                match toks[k].kind {
                    TokKind::Punct('{') => depth += 1,
                    TokKind::Punct('}') => depth -= 1,
                    _ => {}
                }
                k += 1;
            }
            return Some((start, k.saturating_sub(1)));
        }
        i += 1;
    }
    None
}

/// D5 — crate roots must forbid unsafe code and deny missing docs.
fn d5_check_root(toks: &[Token], ctx: &FileContext<'_>, findings: &mut Vec<Finding>) {
    let mut unsafe_forbidden = false;
    let mut docs_denied = false;
    let mut i = 0usize;
    while i + 2 < toks.len() {
        if toks[i].is_punct('#') && toks[i + 1].is_punct('!') && toks[i + 2].is_punct('[') {
            let mut idents = Vec::new();
            let mut depth = 1usize;
            let mut j = i + 3;
            while j < toks.len() && depth > 0 {
                match &toks[j].kind {
                    TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(']') => depth -= 1,
                    TokKind::Ident => idents.push(toks[j].text.as_str().to_string()),
                    _ => {}
                }
                j += 1;
            }
            let strict = idents.first().is_some_and(|h| h == "forbid" || h == "deny");
            if strict {
                unsafe_forbidden |= idents.iter().any(|s| s == "unsafe_code");
                docs_denied |= idents.iter().any(|s| s == "missing_docs");
            }
            i = j;
            continue;
        }
        i += 1;
    }
    if !unsafe_forbidden {
        findings.push(Finding {
            rule: "D5",
            file: ctx.rel_path.to_string(),
            line: 1,
            col: 1,
            snippet: String::new(),
            message: "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
            chain: Vec::new(),
        });
    }
    if !docs_denied {
        findings.push(Finding {
            rule: "D5",
            file: ctx.rel_path.to_string(),
            line: 1,
            col: 1,
            snippet: String::new(),
            message: "crate root lacks `#![deny(missing_docs)]`".to_string(),
            chain: Vec::new(),
        });
    }
}

/// Runs the call-graph rules D6 and D8 over the whole workspace.
///
/// `analyses` and `sources` are parallel to the file list the graph was
/// built from; `hot_paths` is the `[hot-paths]` table of the allowlist.
#[must_use]
pub fn lint_transitive(
    graph: &CallGraph,
    analyses: &[FileAnalysis],
    sources: &[String],
    hot_paths: &BTreeMap<String, Vec<String>>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    d6_pass(graph, analyses, sources, hot_paths, &mut findings);
    d8_pass(graph, analyses, sources, &mut findings);
    findings
}

/// Trimmed source line `line` of `src`.
fn line_snippet(src: &str, line: u32) -> String {
    src.lines()
        .nth(line as usize - 1)
        .map_or(String::new(), |l| l.trim().to_string())
}

/// D6 — transitive hot-path purity. Every function reachable from a
/// `[hot-paths]` root must be allocation-free (the roots themselves are
/// already scanned by D4, so only callees are re-checked) and, outside
/// the D3-audited typed-error crates, panic-free. Traversal stays inside
/// the deterministic crates plus the roots' own crates — a hot kernel
/// calling out into an observer/telemetry sink is the no-op-observer
/// boundary, which D4 already pins at the call site.
fn d6_pass(
    graph: &CallGraph,
    analyses: &[FileAnalysis],
    sources: &[String],
    hot_paths: &BTreeMap<String, Vec<String>>,
    findings: &mut Vec<Finding>,
) {
    let mut roots: Vec<usize> = Vec::new();
    for (file, fns) in hot_paths {
        for name in fns {
            roots.extend(graph.find(file, name));
        }
    }
    roots.sort_unstable();
    roots.dedup();
    let root_set: BTreeSet<usize> = roots.iter().copied().collect();
    let root_crates: BTreeSet<&str> = roots
        .iter()
        .map(|&r| graph.nodes[r].crate_name.as_str())
        .collect();
    let allowed = |n: &Node| {
        DETERMINISTIC_CRATES.contains(&n.crate_name.as_str())
            || root_crates.contains(n.crate_name.as_str())
    };
    let parents = graph.reach(&roots, &allowed);

    for &id in parents.keys() {
        let node = &graph.nodes[id];
        let is_root = root_set.contains(&id);
        let Some((start, end)) = node.body else {
            continue;
        };
        let fa = &analyses[node.file_idx];
        let in_typed = TYPED_ERROR_CRATES.contains(&node.crate_name.as_str());
        for i in start..end {
            if fa.test_mask[i] {
                continue;
            }
            let alloc = if is_root {
                None
            } else {
                d4_alloc_match(&fa.toks, i)
            };
            let panic = if in_typed {
                None
            } else {
                d3_match(&fa.toks, i)
            };
            for msg in [alloc, panic].into_iter().flatten() {
                let chain = graph.chain(&parents, id);
                findings.push(Finding {
                    rule: "D6",
                    file: node.file.clone(),
                    line: fa.toks[i].line,
                    col: fa.toks[i].col,
                    snippet: line_snippet(&sources[node.file_idx], fa.toks[i].line),
                    message: format!(
                        "{msg} — in `{}`, reachable from hot kernel `{}`",
                        node.label(),
                        chain.first().cloned().unwrap_or_default()
                    ),
                    chain,
                });
            }
        }
    }
}

/// D8 — panic-reachability: D3 pushed through the call graph. Roots are
/// the unrestricted-`pub` functions of the typed-error crates; any panic
/// site reachable from them in a deterministic crate *outside* the
/// typed-error set (whose own bodies D3 already audits line-by-line) is
/// a leak of a panic past a typed-error API.
fn d8_pass(
    graph: &CallGraph,
    analyses: &[FileAnalysis],
    sources: &[String],
    findings: &mut Vec<Finding>,
) {
    let roots: Vec<usize> = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.is_pub && TYPED_ERROR_CRATES.contains(&n.crate_name.as_str()))
        .map(|(i, _)| i)
        .collect();
    let allowed = |n: &Node| DETERMINISTIC_CRATES.contains(&n.crate_name.as_str());
    let parents = graph.reach(&roots, &allowed);

    for &id in parents.keys() {
        let node = &graph.nodes[id];
        if TYPED_ERROR_CRATES.contains(&node.crate_name.as_str()) {
            continue;
        }
        let Some((start, end)) = node.body else {
            continue;
        };
        let fa = &analyses[node.file_idx];
        for i in start..end {
            if fa.test_mask[i] {
                continue;
            }
            if let Some(msg) = d3_match(&fa.toks, i) {
                let chain = graph.chain(&parents, id);
                findings.push(Finding {
                    rule: "D8",
                    file: node.file.clone(),
                    line: fa.toks[i].line,
                    col: fa.toks[i].col,
                    snippet: line_snippet(&sources[node.file_idx], fa.toks[i].line),
                    message: format!(
                        "{msg} — in `{}`, reachable from public API `{}` of a \
                         typed-error crate",
                        node.label(),
                        chain.first().cloned().unwrap_or_default()
                    ),
                    chain,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(crate_name: &'a str, hot: &'a [String]) -> FileContext<'a> {
        FileContext {
            rel_path: "crates/x/src/lib.rs",
            crate_name,
            is_crate_root: false,
            hot_fns: hot,
        }
    }

    #[test]
    fn d1_flags_instant_in_deterministic_crate_only() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(lint_source(src, &ctx("core", &[])).len(), 1);
        assert_eq!(lint_source(src, &ctx("telemetry", &[])).len(), 0);
    }

    #[test]
    fn d3_skips_cfg_test_modules() {
        let src = r#"
            pub fn lib_code() -> u32 { 1 }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { Some(1).unwrap(); }
            }
        "#;
        assert!(lint_source(src, &ctx("nn", &[])).is_empty());
    }

    #[test]
    fn d3_flags_unwrap_in_lib_code_but_not_unwrap_or() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) + x.unwrap() }";
        let f = lint_source(src, &ctx("nn", &[]));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "D3");
    }

    #[test]
    fn d4_only_inspects_declared_bodies() {
        let src = r"
            fn cold() -> Vec<u32> { Vec::new() }
            fn hot(out: &mut [u32]) { let v = vec![1]; out[0] = v[0]; }
        ";
        let hot = vec!["hot".to_string()];
        let f = lint_source(src, &ctx("bench", &hot));
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("vec!"));
    }

    #[test]
    fn d4_finds_fns_with_array_types_in_signature() {
        // The `;` inside `[S; B]` / `[&[u32]; 4]` is part of a type, not
        // a bodiless-signature terminator.
        let src = r"
            fn hot<const B: usize>(x: &[u32]) -> [&[u32]; B] {
                let v = x.to_vec();
                [&[]; B]
            }
        ";
        let hot = vec!["hot".to_string()];
        let f = lint_source(src, &ctx("bench", &hot));
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("to_vec"), "{:?}", f[0].message);
    }

    #[test]
    fn d4_reports_missing_hot_fn() {
        let hot = vec!["gone".to_string()];
        let f = lint_source("fn here() {}", &ctx("bench", &hot));
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("not found"));
    }

    #[test]
    fn d5_requires_both_root_attrs() {
        let mut c = ctx("nn", &[]);
        c.is_crate_root = true;
        let f = lint_source("#![forbid(unsafe_code)]\n//! docs\n", &c);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("missing_docs"));
        let ok = lint_source(
            "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n//! docs\n",
            &c,
        );
        assert!(ok.is_empty());
    }

    #[test]
    fn cfg_not_test_is_still_linted() {
        let src = "#[cfg(not(test))] pub fn f() { let t = Instant::now(); }";
        assert_eq!(lint_source(src, &ctx("core", &[])).len(), 1);
    }

    #[test]
    fn consecutive_test_items_are_all_masked() {
        // Regression: masking an item must stop at its closing `}` — one
        // token further swallows the `#` of the next attribute, leaving
        // every second `#[cfg(test)]` mod (or `#[test]` fn) unmasked.
        let src = r#"
            fn lib() -> u32 { 1 }
            #[cfg(test)]
            mod a {
                #[test]
                fn t1() { Some(1).unwrap(); }
                #[test]
                fn t2() { Some(2).unwrap(); }
            }
            #[cfg(test)]
            mod b {
                #[test]
                fn t3() { let s: f64 = [1.0f64].iter().sum(); let _ = s; }
            }
        "#;
        assert!(lint_source(src, &ctx("nn", &[])).is_empty());
    }

    #[test]
    fn d7_flags_float_sum_by_turbofish_and_context() {
        let turbofish = "fn f(xs: &[u64]) -> f64 { xs.iter().map(|x| g(x)).sum::<f64>() }";
        let f = lint_source(turbofish, &ctx("core", &[]));
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "D7");

        let back_scan = "fn mean(xs: &[f64]) -> f64 { let s: f64 = xs.iter().sum(); s }";
        assert_eq!(lint_source(back_scan, &ctx("core", &[])).len(), 1);

        let int_sum = "fn count(xs: &[u64]) -> u64 { xs.iter().sum() }";
        assert!(lint_source(int_sum, &ctx("core", &[])).is_empty());
    }

    #[test]
    fn d7_flags_mul_add_and_partial_cmp_sorts() {
        let fma = "fn f(a: f64, b: f64, c: f64) -> f64 { a.mul_add(b, c) }";
        let f = lint_source(fma, &ctx("nn", &[]));
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("mul_add"));
        // A trait *definition* of mul_add is not a call.
        let def = "trait S { fn mul_add(self, a: Self, b: Self) -> Self; }";
        assert!(lint_source(def, &ctx("nn", &[])).is_empty());

        let sort =
            "fn f(xs: &mut [f64]) { xs.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap()); }";
        let f = lint_source(sort, &ctx("energy", &[]));
        assert!(f.iter().any(|x| x.message.contains("total_cmp")), "{f:?}");
        let total = "fn f(xs: &mut [f64]) { xs.sort_unstable_by(f64::total_cmp); }";
        assert!(lint_source(total, &ctx("energy", &[])).is_empty());
    }

    #[test]
    fn d7_only_applies_to_deterministic_crates() {
        let src = "fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }";
        assert!(lint_source(src, &ctx("telemetry", &[])).is_empty());
    }

    fn graph_of(sources: &[(&str, &str, &str)]) -> (CallGraph, Vec<FileAnalysis>, Vec<String>) {
        let files: Vec<crate::workspace::SourceFile> = sources
            .iter()
            .map(|(rel, cr, _)| crate::workspace::SourceFile {
                abs: std::path::PathBuf::from(rel),
                rel: (*rel).to_string(),
                crate_name: (*cr).to_string(),
                is_crate_root: false,
            })
            .collect();
        let analyses: Vec<FileAnalysis> = sources
            .iter()
            .map(|(_, _, s)| FileAnalysis::new(s))
            .collect();
        let srcs: Vec<String> = sources.iter().map(|(_, _, s)| (*s).to_string()).collect();
        (
            CallGraph::build(&files, &analyses, &BTreeMap::new()),
            analyses,
            srcs,
        )
    }

    #[test]
    fn d6_flags_allocation_in_a_transitive_callee_with_chain() {
        let (g, fas, srcs) = graph_of(&[(
            "crates/nn/src/k.rs",
            "nn",
            "pub fn kernel(out: &mut [f64]) { helper(out); }\n\
             fn helper(out: &mut [f64]) { let v = out.to_vec(); out[0] = v[0]; }",
        )]);
        let mut hot = BTreeMap::new();
        hot.insert("crates/nn/src/k.rs".to_string(), vec!["kernel".to_string()]);
        let f = lint_transitive(&g, &fas, &srcs, &hot);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "D6");
        assert_eq!(
            f[0].chain,
            vec!["crates/nn/src/k.rs::kernel", "crates/nn/src/k.rs::helper"]
        );
        assert!(f[0].message.contains("reachable from hot kernel"));
    }

    #[test]
    fn d6_does_not_rescan_root_bodies_for_alloc() {
        // The root's own body is D4's job; D6 only checks callees.
        let (g, fas, srcs) = graph_of(&[(
            "crates/nn/src/k.rs",
            "nn",
            "pub fn kernel() { let v = vec![1]; drop(v); }",
        )]);
        let mut hot = BTreeMap::new();
        hot.insert("crates/nn/src/k.rs".to_string(), vec!["kernel".to_string()]);
        assert!(lint_transitive(&g, &fas, &srcs, &hot).is_empty());
    }

    #[test]
    fn d6_flags_panic_outside_typed_error_crates_only() {
        let (g, fas, srcs) = graph_of(&[
            (
                "crates/nn/src/k.rs",
                "nn",
                "pub fn kernel(e: f64) { energy_helper(e); }",
            ),
            (
                "crates/energy/src/h.rs",
                "energy",
                "pub fn energy_helper(e: f64) { assert_fine(e).unwrap(); }\n\
                 fn assert_fine(e: f64) -> Result<(), ()> { if e < 0.0 { Err(()) } else { Ok(()) } }",
            ),
        ]);
        let mut hot = BTreeMap::new();
        hot.insert("crates/nn/src/k.rs".to_string(), vec!["kernel".to_string()]);
        let f = lint_transitive(&g, &fas, &srcs, &hot);
        // The unwrap in `energy` (not a typed-error crate) is a D6; it is
        // also a D8 because `kernel` is pub in a typed-error crate.
        assert!(
            f.iter()
                .any(|x| x.rule == "D6" && x.file.contains("energy")),
            "{f:?}"
        );
    }

    #[test]
    fn d8_chains_from_public_api_to_panic_site() {
        let (g, fas, srcs) = graph_of(&[
            (
                "crates/core/src/sim.rs",
                "core",
                "pub fn step(e: f64) -> Result<(), ()> { drain(e); Ok(()) }",
            ),
            (
                "crates/energy/src/cap.rs",
                "energy",
                "pub fn drain(e: f64) { let _ = level(e).expect(\"non-negative\"); }\n\
                 fn level(e: f64) -> Option<f64> { (e >= 0.0).then_some(e) }",
            ),
        ]);
        let f = lint_transitive(&g, &fas, &srcs, &BTreeMap::new());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "D8");
        assert_eq!(
            f[0].chain,
            vec![
                "crates/core/src/sim.rs::step",
                "crates/energy/src/cap.rs::drain"
            ]
        );
        assert!(f[0].message.contains("public API"));
    }

    #[test]
    fn d8_does_not_reflag_typed_error_crate_bodies() {
        // A panic in `nn` itself is D3's finding, not D8's.
        let (g, fas, srcs) = graph_of(&[(
            "crates/nn/src/a.rs",
            "nn",
            "pub fn api() { inner(); } fn inner() { Some(1).unwrap(); }",
        )]);
        assert!(lint_transitive(&g, &fas, &srcs, &BTreeMap::new()).is_empty());
    }
}
