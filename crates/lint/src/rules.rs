//! The rule set: D1–D5, each a pattern over a file's token stream.
//!
//! | id | scope | invariant |
//! |----|-------|-----------|
//! | D1 | deterministic crates | no ambient nondeterminism (wall clocks, OS entropy, env vars) |
//! | D2 | deterministic crates | no `HashMap`/`HashSet` (iteration order is nondeterministic) |
//! | D3 | typed-error crates | no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in non-test lib code |
//! | D4 | declared hot paths | no allocation calls inside the zero-alloc kernel functions |
//! | D5 | crate roots | `#![forbid(unsafe_code)]` + `#![deny(missing_docs)]` present |
//!
//! Scoping is by crate (derived from the file path); test code — items
//! under `#[cfg(test)]` or `#[test]` — is excluded for every rule.

use crate::diagnostics::Finding;
use crate::lexer::{lex, TokKind, Token};

/// Crates whose simulation results must be reproducible by construction:
/// everything on the deterministic side of the telemetry boundary.
pub const DETERMINISTIC_CRATES: &[&str] =
    &["types", "sensors", "energy", "net", "trace", "nn", "core"];

/// Crates that export a typed error and therefore must not panic from
/// library code (rule D3).
pub const TYPED_ERROR_CRATES: &[&str] = &["nn", "core", "trace", "types"];

/// Everything the analyzer needs to know about one file.
pub struct FileContext<'a> {
    /// Repo-relative path, forward slashes (e.g. `crates/nn/src/mlp.rs`).
    pub rel_path: &'a str,
    /// Short crate name (`nn`, `core`, … or `repro` for the root facade).
    pub crate_name: &'a str,
    /// Whether this file is a crate root (`lib.rs`) subject to D5.
    pub is_crate_root: bool,
    /// Function names in this file whose bodies rule D4 protects.
    pub hot_fns: &'a [String],
}

/// Runs every applicable rule on `src`, returning the findings.
#[must_use]
pub fn lint_source(src: &str, ctx: &FileContext<'_>) -> Vec<Finding> {
    let toks = lex(src);
    let test_mask = test_region_mask(&toks);
    let lines: Vec<&str> = src.lines().collect();
    let snippet = |line: u32| -> String {
        lines
            .get(line as usize - 1)
            .map_or(String::new(), |l| l.trim().to_string())
    };

    let mut findings = Vec::new();
    let deterministic = DETERMINISTIC_CRATES.contains(&ctx.crate_name);
    let typed_error = TYPED_ERROR_CRATES.contains(&ctx.crate_name);

    for i in 0..toks.len() {
        if test_mask[i] {
            continue;
        }
        if deterministic {
            if let Some(msg) = d1_match(&toks, i) {
                findings.push(finding("D1", ctx, &toks[i], snippet(toks[i].line), msg));
            }
            if let Some(msg) = d2_match(&toks, i) {
                findings.push(finding("D2", ctx, &toks[i], snippet(toks[i].line), msg));
            }
        }
        if typed_error {
            if let Some(msg) = d3_match(&toks, i) {
                findings.push(finding("D3", ctx, &toks[i], snippet(toks[i].line), msg));
            }
        }
    }

    for fn_name in ctx.hot_fns {
        d4_check_fn(&toks, &test_mask, fn_name, ctx, &snippet, &mut findings);
    }

    if ctx.is_crate_root {
        d5_check_root(&toks, ctx, &mut findings);
    }

    findings.sort_by_key(|f| (f.line, f.col, f.rule));
    findings
}

fn finding(
    rule: &'static str,
    ctx: &FileContext<'_>,
    tok: &Token,
    snippet: String,
    message: String,
) -> Finding {
    Finding {
        rule,
        file: ctx.rel_path.to_string(),
        line: tok.line,
        col: tok.col,
        snippet,
        message,
    }
}

/// Marks tokens inside `#[test]` / `#[cfg(test)]` items. The mask covers
/// the attribute itself through the end of the item it decorates (the
/// matching `}` of its body, or the terminating `;`).
fn test_region_mask(toks: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            // Collect the attribute's identifier set up to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut has_test = false;
            let mut has_not = false;
            while j < toks.len() && depth > 0 {
                match &toks[j].kind {
                    TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(']') => depth -= 1,
                    TokKind::Ident => {
                        has_test |= toks[j].text == "test";
                        has_not |= toks[j].text == "not";
                    }
                    _ => {}
                }
                j += 1;
            }
            if has_test && !has_not {
                // Skip any further attributes, then the item to its end.
                let mut k = j;
                loop {
                    if k + 1 < toks.len() && toks[k].is_punct('#') && toks[k + 1].is_punct('[') {
                        let mut d = 1usize;
                        k += 2;
                        while k < toks.len() && d > 0 {
                            match toks[k].kind {
                                TokKind::Punct('[') => d += 1,
                                TokKind::Punct(']') => d -= 1,
                                _ => {}
                            }
                            k += 1;
                        }
                    } else {
                        break;
                    }
                }
                // The item ends at a `;` before any `{`, or at the matching
                // `}` of its first brace block.
                while k < toks.len() && !toks[k].is_punct('{') && !toks[k].is_punct(';') {
                    k += 1;
                }
                if k < toks.len() && toks[k].is_punct('{') {
                    let mut d = 1usize;
                    k += 1;
                    while k < toks.len() && d > 0 {
                        match toks[k].kind {
                            TokKind::Punct('{') => d += 1,
                            TokKind::Punct('}') => d -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                }
                for m in mask.iter_mut().take((k + 1).min(toks.len())).skip(i) {
                    *m = true;
                }
                i = k + 1;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    mask
}

/// Matches an ident path like `std :: time` starting at `i`.
fn path_at(toks: &[Token], i: usize, segments: &[&str]) -> bool {
    let mut k = i;
    for (n, seg) in segments.iter().enumerate() {
        if !toks.get(k).is_some_and(|t| t.is_ident(seg)) {
            return false;
        }
        k += 1;
        if n + 1 < segments.len() {
            if !(toks.get(k).is_some_and(|t| t.is_punct(':'))
                && toks.get(k + 1).is_some_and(|t| t.is_punct(':')))
            {
                return false;
            }
            k += 2;
        }
    }
    true
}

/// D1 — ambient nondeterminism: wall clocks, OS entropy, env vars.
fn d1_match(toks: &[Token], i: usize) -> Option<String> {
    const BANNED_IDENTS: &[(&str, &str)] = &[
        (
            "Instant",
            "wall-clock `Instant` is nondeterministic; use `SimTime`",
        ),
        (
            "SystemTime",
            "wall-clock `SystemTime` is nondeterministic; use `SimTime`",
        ),
        (
            "thread_rng",
            "`thread_rng` seeds from the OS; use a seeded `StdRng`",
        ),
    ];
    const BANNED_PATHS: &[(&[&str], &str)] = &[
        (
            &["std", "time"],
            "`std::time` is banned here; simulated time only",
        ),
        (
            &["rand", "random"],
            "`rand::random` seeds from the OS; use a seeded `StdRng`",
        ),
        (
            &["std", "env"],
            "environment reads make runs machine-dependent",
        ),
        (
            &["env", "var"],
            "environment reads make runs machine-dependent",
        ),
        (
            &["env", "var_os"],
            "environment reads make runs machine-dependent",
        ),
        (
            &["env", "vars"],
            "environment reads make runs machine-dependent",
        ),
    ];
    if toks[i].kind != TokKind::Ident {
        return None;
    }
    for (path, msg) in BANNED_PATHS {
        if path_at(toks, i, path) {
            return Some(format!("{}: `{}`", msg, path.join("::")));
        }
    }
    for (ident, msg) in BANNED_IDENTS {
        if toks[i].is_ident(ident) {
            return Some((*msg).to_string());
        }
    }
    None
}

/// D2 — hash collections whose iteration order varies run to run.
fn d2_match(toks: &[Token], i: usize) -> Option<String> {
    const BANNED: &[&str] = &["HashMap", "HashSet", "RandomState"];
    if toks[i].kind == TokKind::Ident && BANNED.contains(&toks[i].text.as_str()) {
        return Some(format!(
            "`{}` iteration order is nondeterministic; use `BTreeMap`/`BTreeSet` or sorted access",
            toks[i].text
        ));
    }
    None
}

/// D3 — panicking calls in library code of crates with a typed error.
fn d3_match(toks: &[Token], i: usize) -> Option<String> {
    let t = &toks[i];
    if t.kind != TokKind::Ident {
        return None;
    }
    let prev_dot = i > 0 && toks[i - 1].is_punct('.');
    let next_paren = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
    let next_bang = toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
    if prev_dot && next_paren && (t.text == "unwrap" || t.text == "expect") {
        return Some(format!(
            "`.{}()` panics; propagate the crate's typed error instead",
            t.text
        ));
    }
    if next_bang && matches!(t.text.as_str(), "panic" | "todo" | "unimplemented") {
        return Some(format!(
            "`{}!` in library code; return the crate's typed error instead",
            t.text
        ));
    }
    None
}

/// D4 — allocation calls inside a declared zero-alloc kernel body.
fn d4_check_fn(
    toks: &[Token],
    test_mask: &[bool],
    fn_name: &str,
    ctx: &FileContext<'_>,
    snippet: &dyn Fn(u32) -> String,
    findings: &mut Vec<Finding>,
) {
    let Some((start, end)) = fn_body_range(toks, fn_name) else {
        findings.push(Finding {
            rule: "D4",
            file: ctx.rel_path.to_string(),
            line: 1,
            col: 1,
            snippet: String::new(),
            message: format!(
                "hot-path function `{fn_name}` not found in this file; fix the \
                 `hot-paths` list in lint-allow.toml"
            ),
        });
        return;
    };
    for i in start..end {
        if test_mask[i] {
            continue;
        }
        if let Some(msg) = d4_alloc_match(toks, i) {
            findings.push(Finding {
                rule: "D4",
                file: ctx.rel_path.to_string(),
                line: toks[i].line,
                col: toks[i].col,
                snippet: snippet(toks[i].line),
                message: format!("{msg} inside zero-alloc kernel `{fn_name}`"),
            });
        }
    }
}

/// Allocation-call shapes banned inside hot kernels.
fn d4_alloc_match(toks: &[Token], i: usize) -> Option<String> {
    let t = &toks[i];
    if t.kind != TokKind::Ident {
        return None;
    }
    let prev_dot = i > 0 && toks[i - 1].is_punct('.');
    let next_paren = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
    let next_bang = toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
    if path_at(toks, i, &["Vec", "new"]) || path_at(toks, i, &["Vec", "with_capacity"]) {
        return Some("`Vec` construction allocates".to_string());
    }
    if path_at(toks, i, &["Box", "new"]) {
        return Some("`Box::new` allocates".to_string());
    }
    if path_at(toks, i, &["String", "from"]) {
        return Some("`String::from` allocates".to_string());
    }
    if t.is_ident("vec") && next_bang {
        return Some("`vec!` allocates".to_string());
    }
    if prev_dot
        && next_paren
        && matches!(
            t.text.as_str(),
            "to_vec" | "clone" | "to_owned" | "to_string" | "collect"
        )
    {
        return Some(format!("`.{}()` allocates", t.text));
    }
    None
}

/// Token range (exclusive of braces) of the body of `fn fn_name`.
fn fn_body_range(toks: &[Token], fn_name: &str) -> Option<(usize, usize)> {
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if toks[i].is_ident("fn") && toks[i + 1].is_ident(fn_name) {
            // Scan past the signature for the body's `{`. A `;` ends a
            // bodiless signature only at bracket depth 0 — array types
            // like `[S; N]` in parameters or the return type nest a `;`
            // inside `[...]` that must not read as a terminator.
            let mut k = i + 2;
            let mut nest = 0usize;
            while k < toks.len() {
                match toks[k].kind {
                    TokKind::Punct('(' | '[') => nest += 1,
                    TokKind::Punct(')' | ']') => nest = nest.saturating_sub(1),
                    TokKind::Punct('{' | ';') if nest == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            if k >= toks.len() || toks[k].is_punct(';') {
                return None; // trait method signature, no body here
            }
            let start = k + 1;
            let mut depth = 1usize;
            k += 1;
            while k < toks.len() && depth > 0 {
                match toks[k].kind {
                    TokKind::Punct('{') => depth += 1,
                    TokKind::Punct('}') => depth -= 1,
                    _ => {}
                }
                k += 1;
            }
            return Some((start, k.saturating_sub(1)));
        }
        i += 1;
    }
    None
}

/// D5 — crate roots must forbid unsafe code and deny missing docs.
fn d5_check_root(toks: &[Token], ctx: &FileContext<'_>, findings: &mut Vec<Finding>) {
    let mut unsafe_forbidden = false;
    let mut docs_denied = false;
    let mut i = 0usize;
    while i + 2 < toks.len() {
        if toks[i].is_punct('#') && toks[i + 1].is_punct('!') && toks[i + 2].is_punct('[') {
            let mut idents = Vec::new();
            let mut depth = 1usize;
            let mut j = i + 3;
            while j < toks.len() && depth > 0 {
                match &toks[j].kind {
                    TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(']') => depth -= 1,
                    TokKind::Ident => idents.push(toks[j].text.as_str().to_string()),
                    _ => {}
                }
                j += 1;
            }
            let strict = idents.first().is_some_and(|h| h == "forbid" || h == "deny");
            if strict {
                unsafe_forbidden |= idents.iter().any(|s| s == "unsafe_code");
                docs_denied |= idents.iter().any(|s| s == "missing_docs");
            }
            i = j;
            continue;
        }
        i += 1;
    }
    if !unsafe_forbidden {
        findings.push(Finding {
            rule: "D5",
            file: ctx.rel_path.to_string(),
            line: 1,
            col: 1,
            snippet: String::new(),
            message: "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
        });
    }
    if !docs_denied {
        findings.push(Finding {
            rule: "D5",
            file: ctx.rel_path.to_string(),
            line: 1,
            col: 1,
            snippet: String::new(),
            message: "crate root lacks `#![deny(missing_docs)]`".to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(crate_name: &'a str, hot: &'a [String]) -> FileContext<'a> {
        FileContext {
            rel_path: "crates/x/src/lib.rs",
            crate_name,
            is_crate_root: false,
            hot_fns: hot,
        }
    }

    #[test]
    fn d1_flags_instant_in_deterministic_crate_only() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(lint_source(src, &ctx("core", &[])).len(), 1);
        assert_eq!(lint_source(src, &ctx("telemetry", &[])).len(), 0);
    }

    #[test]
    fn d3_skips_cfg_test_modules() {
        let src = r#"
            pub fn lib_code() -> u32 { 1 }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { Some(1).unwrap(); }
            }
        "#;
        assert!(lint_source(src, &ctx("nn", &[])).is_empty());
    }

    #[test]
    fn d3_flags_unwrap_in_lib_code_but_not_unwrap_or() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) + x.unwrap() }";
        let f = lint_source(src, &ctx("nn", &[]));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "D3");
    }

    #[test]
    fn d4_only_inspects_declared_bodies() {
        let src = r"
            fn cold() -> Vec<u32> { Vec::new() }
            fn hot(out: &mut [u32]) { let v = vec![1]; out[0] = v[0]; }
        ";
        let hot = vec!["hot".to_string()];
        let f = lint_source(src, &ctx("bench", &hot));
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("vec!"));
    }

    #[test]
    fn d4_finds_fns_with_array_types_in_signature() {
        // The `;` inside `[S; B]` / `[&[u32]; 4]` is part of a type, not
        // a bodiless-signature terminator.
        let src = r"
            fn hot<const B: usize>(x: &[u32]) -> [&[u32]; B] {
                let v = x.to_vec();
                [&[]; B]
            }
        ";
        let hot = vec!["hot".to_string()];
        let f = lint_source(src, &ctx("bench", &hot));
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("to_vec"), "{:?}", f[0].message);
    }

    #[test]
    fn d4_reports_missing_hot_fn() {
        let hot = vec!["gone".to_string()];
        let f = lint_source("fn here() {}", &ctx("bench", &hot));
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("not found"));
    }

    #[test]
    fn d5_requires_both_root_attrs() {
        let mut c = ctx("nn", &[]);
        c.is_crate_root = true;
        let f = lint_source("#![forbid(unsafe_code)]\n//! docs\n", &c);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("missing_docs"));
        let ok = lint_source(
            "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n//! docs\n",
            &c,
        );
        assert!(ok.is_empty());
    }

    #[test]
    fn cfg_not_test_is_still_linted() {
        let src = "#[cfg(not(test))] pub fn f() { let t = Instant::now(); }";
        assert_eq!(lint_source(src, &ctx("core", &[])).len(), 1);
    }
}
