//! Workspace discovery: which files to lint and under which crate scope.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

/// A source file queued for analysis.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub abs: PathBuf,
    /// Repo-relative path with forward slashes.
    pub rel: String,
    /// Short crate name (`nn`, `core`, …; `repro` for the root facade).
    pub crate_name: String,
    /// Whether this file is a crate root (`lib.rs`).
    pub is_crate_root: bool,
}

/// Collects every library source file in the workspace, sorted by
/// relative path so reports (and the JSON output) are deterministic.
///
/// Scope: `crates/*/src/**/*.rs` plus the root facade `src/**/*.rs`.
/// Test targets (`tests/`, `benches/`, `examples/`) are runtime-only code
/// exercised by the test suite itself and are out of scope by design.
///
/// # Errors
///
/// Returns an I/O description when a directory cannot be read.
pub fn collect_sources(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
            .map_err(|e| format!("reading {}: {e}", crates_dir.display()))?
            .filter_map(|d| d.ok().map(|d| d.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let name = dir
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            let src = dir.join("src");
            if src.is_dir() {
                walk(&src, root, &name, &mut out)?;
            }
        }
    }
    let facade = root.join("src");
    if facade.is_dir() {
        walk(&facade, root, "repro", &mut out)?;
    }
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

/// The transitive intra-workspace dependency closure of every crate,
/// keyed and valued by short crate name, read from the `origin-*` keys
/// of each `crates/*/Cargo.toml` (and the root manifest, as `repro`).
///
/// Used by [`crate::callgraph`] to prune name-resolution edges a crate
/// could not actually take (a call in `nn` cannot land in `core` when
/// `nn` does not depend on `core`). Crates with *no* manifest — fixture
/// trees — get no entry, which the graph treats as "allow everything",
/// so the filter can only remove edges when the layout is known.
#[must_use]
pub fn crate_deps(root: &Path) -> BTreeMap<String, BTreeSet<String>> {
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut manifests: Vec<(String, PathBuf)> =
        vec![("repro".to_string(), root.join("Cargo.toml"))];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        let mut dirs: Vec<PathBuf> = entries
            .filter_map(|d| d.ok().map(|d| d.path()))
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            let name = dir
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            manifests.push((name, dir.join("Cargo.toml")));
        }
    }
    for (name, manifest) in manifests {
        let Ok(src) = fs::read_to_string(&manifest) else {
            continue;
        };
        let deps = direct.entry(name).or_default();
        for line in src.lines() {
            let key = line.split('=').next().unwrap_or("").trim();
            let key = key.split('.').next().unwrap_or("");
            if let Some(dep) = key
                .strip_prefix("origin-")
                .or_else(|| key.strip_prefix("origin_"))
            {
                deps.insert(dep.replace('-', "_"));
            }
        }
    }
    // Fixed-point transitive closure (the graph is tiny).
    loop {
        let mut grew = false;
        let snapshot = direct.clone();
        for deps in direct.values_mut() {
            let indirect: BTreeSet<String> = deps
                .iter()
                .filter_map(|d| snapshot.get(d))
                .flatten()
                .cloned()
                .collect();
            for d in indirect {
                grew |= deps.insert(d);
            }
        }
        if !grew {
            break;
        }
    }
    direct
}

fn walk(
    dir: &Path,
    root: &Path,
    crate_name: &str,
    out: &mut Vec<SourceFile>,
) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry
            .map_err(|e| format!("reading {}: {e}", dir.display()))?
            .path();
        if path.is_dir() {
            walk(&path, root, crate_name, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("{}: {e}", path.display()))?
                .to_string_lossy()
                .replace('\\', "/");
            let is_crate_root = rel.ends_with("src/lib.rs") && rel.matches('/').count() <= 3; // crates/<name>/src/lib.rs or src/lib.rs
            out.push(SourceFile {
                abs: path,
                rel,
                crate_name: crate_name.to_string(),
                is_crate_root,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_crate_in_the_real_workspace() {
        // CARGO_MANIFEST_DIR = crates/lint → repo root is two levels up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("repo root exists")
            .to_path_buf();
        let files = collect_sources(&root).expect("workspace readable");
        assert!(files
            .iter()
            .any(|f| f.rel == "crates/lint/src/lib.rs" && f.is_crate_root));
        assert!(files
            .iter()
            .any(|f| f.rel == "src/lib.rs" && f.crate_name == "repro"));
        // Deterministic ordering.
        let mut sorted = files.iter().map(|f| f.rel.clone()).collect::<Vec<_>>();
        sorted.sort();
        assert_eq!(
            sorted,
            files.iter().map(|f| f.rel.clone()).collect::<Vec<_>>()
        );
        // Test fixtures must not be in scope.
        assert!(!files.iter().any(|f| f.rel.contains("tests/fixtures")));
    }
}
