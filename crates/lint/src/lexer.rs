//! A minimal Rust token lexer with source positions.
//!
//! The analyzer does not need a full AST: every rule in this crate is a
//! pattern over the *token stream* (identifier paths, method-call shapes,
//! inner attributes), so a hand-rolled lexer that gets comments, string
//! literals, raw strings, char-vs-lifetime disambiguation and nested block
//! comments right is sufficient — and keeps the crate dependency-free for
//! offline builds.
//!
//! Comments and literal *contents* are deliberately dropped: a banned name
//! inside a doc comment or a string is not a finding.

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `unwrap`, `HashMap`, …).
    Ident,
    /// A single punctuation character (`.`, `:`, `!`, `{`, …).
    Punct(char),
    /// Any literal (string, raw string, char, byte, number). The text is
    /// not preserved — rules never look inside literals.
    Literal,
}

/// One lexed token with its position in the source file.
#[derive(Debug, Clone)]
pub struct Token {
    /// Kind of token.
    pub kind: TokKind,
    /// The identifier text; empty for punctuation and literals.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (byte offset within the line).
    pub col: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// Lexes `src` into a token stream, skipping whitespace, comments and
/// literal contents. The lexer is permissive: on malformed input it makes
/// forward progress rather than erroring, which is the right trade-off for
/// a lint that must never wedge on a file rustc itself will reject.
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    // Advances `n` bytes, updating the line/column counters.
    macro_rules! bump {
        ($n:expr) => {{
            let n = $n;
            for k in 0..n {
                if b[i + k] == b'\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
            }
            i += n;
        }};
    }

    while i < b.len() {
        let c = b[i];
        let (tl, tc) = (line, col);
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => bump!(1),
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                // Line comment (incl. doc comments) to end of line.
                let mut j = i;
                while j < b.len() && b[j] != b'\n' {
                    j += 1;
                }
                bump!(j - i);
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Block comment, nested.
                let mut depth = 0usize;
                let mut j = i;
                while j < b.len() {
                    if j + 1 < b.len() && b[j] == b'/' && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if j + 1 < b.len() && b[j] == b'*' && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        j += 1;
                    }
                }
                bump!(j - i);
            }
            b'"' => {
                let n = string_len(b, i);
                bump!(n);
                toks.push(Token {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line: tl,
                    col: tc,
                });
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let n = char_or_lifetime_len(b, i);
                let is_char = b.get(i + n - 1) == Some(&b'\'') && n > 1;
                bump!(n);
                if is_char {
                    toks.push(Token {
                        kind: TokKind::Literal,
                        text: String::new(),
                        line: tl,
                        col: tc,
                    });
                }
                // Lifetimes carry no rule signal; drop them.
            }
            b'r' | b'b' if raw_string_prefix_len(b, i) > 0 => {
                let n = raw_string_prefix_len(b, i);
                bump!(n);
                toks.push(Token {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line: tl,
                    col: tc,
                });
            }
            _ if c == b'_' || c.is_ascii_alphabetic() => {
                let mut j = i;
                while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                    j += 1;
                }
                // b"..." / b'...' byte literals reach here via the `b` ident
                // path only when `raw_string_prefix_len` said no, i.e. it is
                // a plain identifier.
                let text = src[i..j].to_string();
                bump!(j - i);
                toks.push(Token {
                    kind: TokKind::Ident,
                    text,
                    line: tl,
                    col: tc,
                });
            }
            _ if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < b.len() {
                    let d = b[j];
                    if d == b'_' || d.is_ascii_alphanumeric() {
                        j += 1;
                    } else if d == b'.' && b.get(j + 1).is_some_and(u8::is_ascii_digit) {
                        // `1.5` continues the number; `0..n` and `x.0.clone()`
                        // leave the dot for the punctuation path.
                        j += 2;
                    } else if (d == b'+' || d == b'-')
                        && matches!(b[j - 1], b'e' | b'E')
                        && b.get(j + 1).is_some_and(u8::is_ascii_digit)
                    {
                        // Exponent sign: `1e-3`.
                        j += 2;
                    } else {
                        break;
                    }
                }
                bump!(j - i);
                toks.push(Token {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line: tl,
                    col: tc,
                });
            }
            _ => {
                bump!(1);
                toks.push(Token {
                    kind: TokKind::Punct(c as char),
                    text: String::new(),
                    line: tl,
                    col: tc,
                });
            }
        }
    }
    toks
}

/// Byte length of the string literal starting at `b[i] == '"'`.
fn string_len(b: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return j + 1 - i,
            _ => j += 1,
        }
    }
    b.len() - i
}

/// Byte length of the char literal or lifetime starting at `b[i] == '\''`.
///
/// Returns the full literal length for `'x'`/`'\n'`, or the length of the
/// lifetime identifier (quote included) for `'a`.
fn char_or_lifetime_len(b: &[u8], i: usize) -> usize {
    // Escaped char literal: '\...'
    if b.get(i + 1) == Some(&b'\\') {
        let mut j = i + 2;
        while j < b.len() && b[j] != b'\'' {
            j += 1;
        }
        return (j + 1).min(b.len()) - i;
    }
    // 'x' (any single char incl. unicode) followed by closing quote.
    if let Some(rest) = b.get(i + 1..) {
        if let Some(s) = std::str::from_utf8(rest).ok().and_then(|s| {
            let mut it = s.char_indices();
            let (_, ch) = it.next()?;
            let (next, _) = it.next()?;
            (s.as_bytes().get(next) == Some(&b'\'')).then_some(ch.len_utf8() + 1)
        }) {
            // Not a lifetime when the very next char closes the quote —
            // except `''` which cannot occur in valid Rust.
            return 1 + s;
        }
    }
    // Lifetime: consume ident chars after the quote.
    let mut j = i + 1;
    while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
        j += 1;
    }
    j - i
}

/// Byte length of a raw/byte string literal at `i` (`r"…"`, `r#"…"#`,
/// `b"…"`, `br#"…"#`, `rb` is not valid Rust), or 0 when `b[i]` does not
/// start one.
fn raw_string_prefix_len(b: &[u8], i: usize) -> usize {
    let mut j = i;
    let mut raw = false;
    if b[j] == b'b' {
        j += 1;
    }
    if j < b.len() && b[j] == b'r' {
        raw = true;
        j += 1;
    }
    if raw {
        let mut hashes = 0usize;
        while j < b.len() && b[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        if j < b.len() && b[j] == b'"' {
            // Scan for `"` followed by `hashes` hashes.
            j += 1;
            while j < b.len() {
                if b[j] == b'"'
                    && b[j + 1..]
                        .iter()
                        .take(hashes)
                        .filter(|&&h| h == b'#')
                        .count()
                        == hashes
                {
                    return j + 1 + hashes - i;
                }
                j += 1;
            }
            return b.len() - i;
        }
        // `r#ident` raw identifier: report 0 so the ident path lexes it
        // (the `#` is consumed as punctuation, harmless for our rules).
        return 0;
    }
    if j < b.len() && (b[j] == b'"' || b[j] == b'\'') && j > i {
        // b"..." or b'...'
        if b[j] == b'"' {
            return j - i + string_len(b, j);
        }
        return j - i + char_or_lifetime_len(b, j);
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_are_invisible() {
        let src = r##"
            // Instant::now() in a comment
            /* HashMap /* nested */ still comment */
            let s = "Instant::now()";
            let r = r#"thread_rng"#;
            let c = 'H';
            fn real() { unwrap_it(); }
        "##;
        let ids = idents(src);
        assert!(!ids
            .iter()
            .any(|s| s == "Instant" || s == "HashMap" || s == "thread_rng"));
        assert!(ids.iter().any(|s| s == "unwrap_it"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'w>(x: &'w str) -> &'w str { x }");
        assert!(toks.iter().all(|t| t.kind != TokKind::Literal));
    }

    #[test]
    fn tuple_field_access_keeps_method_name() {
        let ids = idents("x.0.clone()");
        assert_eq!(ids, vec!["x", "clone"]);
    }

    #[test]
    fn ranges_do_not_merge_into_numbers() {
        let toks = lex("for i in 0..10 {}");
        let dots = toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn float_exponents_stay_one_literal() {
        let toks = lex("1.5e-3 + x");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Literal).count(),
            1
        );
    }

    #[test]
    fn raw_strings_with_hashes_swallow_fake_tokens_and_quotes() {
        // The body contains an embedded `"` plus text that looks like
        // rule triggers; none of it may leak out as tokens.
        let src = "let s = r#\"HashMap::new() \"quoted\" .unwrap()\"#; after();";
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "s", "after"]);
    }

    #[test]
    fn byte_and_raw_byte_strings_are_single_literals() {
        let toks = lex("let a = b\"bytes\"; let c = br#\"raw bytes \"inner\"\"#; done()");
        let lits = toks.iter().filter(|t| t.kind == TokKind::Literal).count();
        assert_eq!(lits, 2, "each byte/raw-byte string is one literal");
        assert!(idents("let a = b\"x\"; done()").iter().any(|s| s == "done"));
    }

    #[test]
    fn multi_line_raw_strings_keep_line_tracking() {
        // Positions after a raw string spanning three lines must stay
        // correct, or every later finding misreports its line.
        let src = "let s = r#\"line one\nline two\nline three\"#;\nmarker();";
        let toks = lex(src);
        let marker = toks
            .iter()
            .find(|t| t.is_ident("marker"))
            .expect("marker survives");
        assert_eq!((marker.line, marker.col), (4, 1));
    }

    #[test]
    fn nested_block_comments_close_at_matching_depth() {
        // Two levels of nesting plus a `*/`-looking string afterwards.
        let src = "/* a /* b /* c */ b */ a */ fn live() {}\n/* unterminated at eof";
        let ids = idents(src);
        assert_eq!(ids, vec!["fn", "live"]);
        // And line counters advance through multi-line block comments.
        let toks = lex("/* one\ntwo\nthree */ here");
        let here = toks.iter().find(|t| t.is_ident("here")).expect("survives");
        assert_eq!((here.line, here.col), (3, 10));
    }

    #[test]
    fn char_literals_do_not_eat_following_tokens() {
        // `'}'`, `'\''`, and a unicode char — each must close properly so
        // the trailing call is still visible.
        for src in [
            "let c = '}'; probe()",
            r"let c = '\''; probe()",
            "let c = 'λ'; probe()",
        ] {
            let ids = idents(src);
            assert!(ids.iter().any(|s| s == "probe"), "lost probe in {src}");
            let lits = lex(src)
                .into_iter()
                .filter(|t| t.kind == TokKind::Literal)
                .count();
            assert_eq!(lits, 1, "char literal miscounted in {src}");
        }
    }

    #[test]
    fn lifetimes_next_to_generics_stay_invisible() {
        // `<'a,` and `&'static` shapes: no literal tokens, idents intact.
        let toks = lex("impl<'a, T> Foo<'a, T> { fn f(&'a self) -> &'static str { \"\" } }");
        let lits = toks.iter().filter(|t| t.kind == TokKind::Literal).count();
        assert_eq!(lits, 1, "only the empty string literal remains");
        assert!(toks.iter().any(|t| t.is_ident("self")));
    }

    #[test]
    fn cfg_test_attribute_spans_survive_lexing_with_positions() {
        // The `#[cfg(test)]` attribute tokens keep exact line/col so the
        // rules layer can mask the region they introduce.
        let src = "fn a() {}\n#[cfg(test)]\nmod tests { fn b() {} }";
        let toks = lex(src);
        let hash = toks.iter().find(|t| t.is_punct('#')).expect("attr hash");
        assert_eq!((hash.line, hash.col), (2, 1));
        let cfg = toks.iter().find(|t| t.is_ident("cfg")).expect("cfg ident");
        assert_eq!((cfg.line, cfg.col), (2, 3));
        let test_id = toks
            .iter()
            .find(|t| t.is_ident("test"))
            .expect("test ident");
        assert_eq!((test_id.line, test_id.col), (2, 7));
    }
}
