//! The workspace call graph: one node per non-test `fn`, edges from
//! conservative name-based call resolution.
//!
//! The graph deliberately **over-approximates**: a call site resolves to
//! *every* workspace function it could plausibly name, and calls that
//! resolve to nothing (std/library methods) produce no edge. That is the
//! right polarity for the transitive rules — D6/D8 walk the graph to
//! prove the *absence* of allocation/panic on a path, so a spurious edge
//! can only produce a finding a human then audits (and waives), never
//! silently hide one behind an unresolved call.
//!
//! Resolution, by call shape (see [`crate::parse::CallShape`]):
//!
//! * `recv.name(...)` — every impl/trait method named `name`.
//! * `Qual::name(...)` — methods of `impl Qual`; failing that, functions
//!   in a module file `qual.rs`; failing that, free functions of the
//!   crate `origin_qual`/`qual`. `Self::name` resolves within the
//!   caller's own impl, and an unmatched qualifier (`f64`, `Vec`, …) is
//!   a std call with no edge.
//! * `name(...)` — free functions named `name`: same file first, then
//!   same crate, then workspace-wide (imported cross-crate calls).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::parse::{CallShape, FileAnalysis};
use crate::workspace::SourceFile;

/// One function in the graph.
#[derive(Debug, Clone)]
pub struct Node {
    /// Index of the defining file in the workspace file list.
    pub file_idx: usize,
    /// Repo-relative path of the defining file.
    pub file: String,
    /// Short crate name (`nn`, `core`, …).
    pub crate_name: String,
    /// Function name.
    pub name: String,
    /// Enclosing impl/trait type, `None` for free functions.
    pub qual: Option<String>,
    /// Unrestricted `pub`.
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Body token range in the defining file's token stream.
    pub body: Option<(usize, usize)>,
}

impl Node {
    /// `file.rs::name` — the label used in reported call chains.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}::{}", self.file, self.name)
    }
}

/// The whole-workspace call graph.
pub struct CallGraph {
    /// All non-test functions, in (file, source-order) order.
    pub nodes: Vec<Node>,
    /// Adjacency: `edges[n]` is sorted and deduplicated.
    pub edges: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph over `files`/`analyses` (parallel slices).
    ///
    /// `deps` is the transitive intra-workspace dependency map from
    /// [`crate::workspace::crate_deps`]: a cross-crate edge is kept only
    /// when the caller's crate (transitively) depends on the callee's.
    /// A caller crate with no entry keeps every edge, so an empty map —
    /// manifest-less fixture trees — disables the filter entirely. The
    /// one false-negative this admits is dynamic dispatch *into* a crate
    /// the caller does not depend on (an observer trait implemented
    /// upstream); those boundaries are exactly the non-deterministic
    /// sinks the transitive rules do not traverse anyway.
    #[must_use]
    pub fn build(
        files: &[SourceFile],
        analyses: &[FileAnalysis],
        deps: &BTreeMap<String, BTreeSet<String>>,
    ) -> Self {
        let mut nodes = Vec::new();
        for (file_idx, (file, fa)) in files.iter().zip(analyses).enumerate() {
            for f in &fa.items.fns {
                if f.in_test {
                    continue;
                }
                nodes.push(Node {
                    file_idx,
                    file: file.rel.clone(),
                    crate_name: file.crate_name.clone(),
                    name: f.name.clone(),
                    qual: f.qual.clone(),
                    is_pub: f.is_pub,
                    line: f.line,
                    body: f.body,
                });
            }
        }

        // Resolution indexes.
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_qual: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut free_by_file: BTreeMap<(usize, &str), Vec<usize>> = BTreeMap::new();
        let mut free_by_crate: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut free_all: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut stem_of_file: BTreeMap<usize, &str> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            let stem = file
                .rel
                .rsplit('/')
                .next()
                .and_then(|n| n.strip_suffix(".rs"))
                .unwrap_or("");
            stem_of_file.insert(fi, stem);
        }
        let mut fns_by_stem: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (id, n) in nodes.iter().enumerate() {
            if let Some(q) = &n.qual {
                methods.entry(&n.name).or_default().push(id);
                by_qual.entry((q, &n.name)).or_default().push(id);
            } else {
                free_by_file
                    .entry((n.file_idx, &n.name))
                    .or_default()
                    .push(id);
                free_by_crate
                    .entry((&n.crate_name, &n.name))
                    .or_default()
                    .push(id);
                free_all.entry(&n.name).or_default().push(id);
            }
            if let Some(stem) = stem_of_file.get(&n.file_idx) {
                fns_by_stem.entry((stem, &n.name)).or_default().push(id);
            }
        }

        // Edges: walk every node's body, skipping nested fn bodies
        // (they are nodes of their own).
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        for (id, n) in nodes.iter().enumerate() {
            let Some(body) = n.body else { continue };
            let fa = &analyses[n.file_idx];
            let nested: Vec<(usize, usize)> = fa
                .items
                .fns
                .iter()
                .filter_map(|f| f.body)
                .filter(|&(s, e)| body.0 < s && e <= body.1)
                .collect();
            let mut targets = BTreeSet::new();
            for call in crate::parse::calls_in(&fa.toks, body, &nested) {
                let resolved: &[usize] = match &call.shape {
                    CallShape::Method => methods.get(call.name.as_str()).map_or(&[], Vec::as_slice),
                    CallShape::Qualified(q) if q == "Self" => {
                        // Within the caller's own impl, falling back to
                        // any same-file definition of the name.
                        if let Some(cq) = &n.qual {
                            if let Some(v) = by_qual.get(&(cq.as_str(), call.name.as_str())) {
                                v.as_slice()
                            } else {
                                &[]
                            }
                        } else {
                            free_by_file
                                .get(&(n.file_idx, call.name.as_str()))
                                .map_or(&[], Vec::as_slice)
                        }
                    }
                    CallShape::Qualified(q) => {
                        if let Some(v) = by_qual.get(&(q.as_str(), call.name.as_str())) {
                            v.as_slice()
                        } else if let Some(v) = fns_by_stem.get(&(q.as_str(), call.name.as_str())) {
                            v.as_slice()
                        } else {
                            let crate_ref = q.strip_prefix("origin_").unwrap_or(q);
                            let crate_ref = if crate_ref == "crate" {
                                n.crate_name.as_str()
                            } else {
                                crate_ref
                            };
                            free_by_crate
                                .get(&(crate_ref, call.name.as_str()))
                                .map_or(&[], Vec::as_slice)
                        }
                    }
                    CallShape::Bare => {
                        if let Some(v) = free_by_file.get(&(n.file_idx, call.name.as_str())) {
                            v.as_slice()
                        } else if let Some(v) =
                            free_by_crate.get(&(n.crate_name.as_str(), call.name.as_str()))
                        {
                            v.as_slice()
                        } else {
                            free_all.get(call.name.as_str()).map_or(&[], Vec::as_slice)
                        }
                    }
                };
                for &t in resolved {
                    if t == id {
                        continue;
                    }
                    let callee_crate = &nodes[t].crate_name;
                    if *callee_crate != n.crate_name {
                        if let Some(reachable) = deps.get(&n.crate_name) {
                            if !reachable.contains(callee_crate) {
                                continue;
                            }
                        }
                    }
                    targets.insert(t);
                }
            }
            edges[id] = targets.into_iter().collect();
        }

        CallGraph { nodes, edges }
    }

    /// Every node matching `file`/`name` (a `[hot-paths]` entry may name
    /// several same-named functions, e.g. one per impl).
    #[must_use]
    pub fn find(&self, file: &str, name: &str) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.file == file && n.name == name)
            .map(|(i, _)| i)
            .collect()
    }

    /// Deterministic BFS from `roots`, expanding only through nodes for
    /// which `allowed` holds. Returns `node → parent` (`usize::MAX` for
    /// roots), which encodes a shortest call chain to every reachable
    /// node.
    #[must_use]
    pub fn reach(
        &self,
        roots: &[usize],
        allowed: &dyn Fn(&Node) -> bool,
    ) -> BTreeMap<usize, usize> {
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut sorted_roots: Vec<usize> = roots.to_vec();
        sorted_roots.sort_unstable();
        for &r in &sorted_roots {
            if parent.insert(r, usize::MAX).is_none() {
                queue.push_back(r);
            }
        }
        while let Some(u) = queue.pop_front() {
            for &v in &self.edges[u] {
                if !parent.contains_key(&v) && allowed(&self.nodes[v]) {
                    parent.insert(v, u);
                    queue.push_back(v);
                }
            }
        }
        parent
    }

    /// The call chain `root → … → node` as `file.rs::fn` labels, given
    /// the parent map from [`CallGraph::reach`].
    #[must_use]
    pub fn chain(&self, parents: &BTreeMap<usize, usize>, mut node: usize) -> Vec<String> {
        let mut chain = vec![self.nodes[node].label()];
        while let Some(&p) = parents.get(&node) {
            if p == usize::MAX {
                break;
            }
            chain.push(self.nodes[p].label());
            node = p;
        }
        chain.reverse();
        chain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, crate_name: &str) -> SourceFile {
        SourceFile {
            abs: std::path::PathBuf::from(rel),
            rel: rel.to_string(),
            crate_name: crate_name.to_string(),
            is_crate_root: false,
        }
    }

    fn graph(sources: &[(&str, &str, &str)]) -> CallGraph {
        let files: Vec<SourceFile> = sources.iter().map(|(r, c, _)| file(r, c)).collect();
        let analyses: Vec<FileAnalysis> = sources
            .iter()
            .map(|(_, _, s)| FileAnalysis::new(s))
            .collect();
        CallGraph::build(&files, &analyses, &BTreeMap::new())
    }

    #[test]
    fn dependency_filter_prunes_impossible_cross_crate_edges() {
        let files = vec![
            file("crates/nn/src/a.rs", "nn"),
            file("crates/core/src/b.rs", "core"),
        ];
        let analyses = vec![
            FileAnalysis::new("pub fn kernel() { helper(); }"),
            FileAnalysis::new("pub fn helper() {}"),
        ];
        // `nn` depends only on `types`; the name-resolved edge into
        // `core` cannot be a real call.
        let mut deps = BTreeMap::new();
        deps.insert("nn".to_string(), BTreeSet::from(["types".to_string()]));
        let g = CallGraph::build(&files, &analyses, &deps);
        let kernel = g.find("crates/nn/src/a.rs", "kernel")[0];
        assert!(g.edges[kernel].is_empty());
        // Without an entry for `nn`, the same edge is kept.
        let g = CallGraph::build(&files, &analyses, &BTreeMap::new());
        assert_eq!(g.edges[kernel].len(), 1);
    }

    #[test]
    fn bare_calls_prefer_same_file_then_same_crate() {
        let g = graph(&[
            (
                "crates/a/src/lib.rs",
                "a",
                "pub fn top() { helper(); } fn helper() { other(); }",
            ),
            ("crates/a/src/other.rs", "a", "pub fn other() {}"),
            ("crates/b/src/lib.rs", "b", "pub fn other() {}"),
        ]);
        let top = g.find("crates/a/src/lib.rs", "top")[0];
        let helper = g.find("crates/a/src/lib.rs", "helper")[0];
        let other_a = g.find("crates/a/src/other.rs", "other")[0];
        assert_eq!(g.edges[top], vec![helper]);
        // Same-crate `other` wins; crate `b` gets no edge.
        assert_eq!(g.edges[helper], vec![other_a]);
    }

    #[test]
    fn method_calls_resolve_across_crates_by_name() {
        let g = graph(&[
            (
                "crates/core/src/sim.rs",
                "core",
                "struct Sim; impl Sim { fn step(&self) { self.model.forward(); } }",
            ),
            (
                "crates/nn/src/mlp.rs",
                "nn",
                "pub struct Mlp; impl Mlp { pub fn forward(&self) {} }",
            ),
        ]);
        let step = g.find("crates/core/src/sim.rs", "step")[0];
        let fwd = g.find("crates/nn/src/mlp.rs", "forward")[0];
        assert_eq!(g.edges[step], vec![fwd]);
    }

    #[test]
    fn qualified_calls_use_impl_then_module_stem() {
        let g = graph(&[
            (
                "crates/nn/src/layer.rs",
                "nn",
                "fn f() { kernels::rows(1); Mlp::new(); f64::mul_add(); }",
            ),
            ("crates/nn/src/kernels.rs", "nn", "pub fn rows(n: usize) {}"),
            (
                "crates/nn/src/mlp.rs",
                "nn",
                "pub struct Mlp; impl Mlp { pub fn new() {} }",
            ),
        ]);
        let f = g.find("crates/nn/src/layer.rs", "f")[0];
        let rows = g.find("crates/nn/src/kernels.rs", "rows")[0];
        let new = g.find("crates/nn/src/mlp.rs", "new")[0];
        // `f64::mul_add` matches no impl/module/crate: std, no edge.
        assert_eq!(g.edges[f], vec![rows, new]);
    }

    #[test]
    fn reach_reports_shortest_chains_and_respects_the_filter() {
        let g = graph(&[
            (
                "crates/nn/src/a.rs",
                "nn",
                "pub fn root() { mid(); } fn mid() { leaf(); } fn leaf() {}",
            ),
            (
                "crates/bench/src/b.rs",
                "bench",
                "pub fn leaf() {}", // same name, other crate
            ),
        ]);
        let root = g.find("crates/nn/src/a.rs", "root")[0];
        let leaf = g.find("crates/nn/src/a.rs", "leaf")[0];
        let parents = g.reach(&[root], &|n| n.crate_name == "nn");
        assert!(parents.contains_key(&leaf));
        let chain = g.chain(&parents, leaf);
        assert_eq!(
            chain,
            vec![
                "crates/nn/src/a.rs::root",
                "crates/nn/src/a.rs::mid",
                "crates/nn/src/a.rs::leaf"
            ]
        );
        // The bench-crate `leaf` is filtered out.
        let bench_leaf = g.find("crates/bench/src/b.rs", "leaf")[0];
        assert!(!parents.contains_key(&bench_leaf));
    }

    #[test]
    fn test_fns_are_not_nodes() {
        let g = graph(&[(
            "crates/nn/src/a.rs",
            "nn",
            "#[cfg(test)] mod tests { fn helper() {} } pub fn real() {}",
        )]);
        assert_eq!(g.nodes.len(), 1);
        assert_eq!(g.nodes[0].name, "real");
    }
}
