//! Item extraction: function definitions, call sites and the public
//! surface of one file, recovered from the token stream.
//!
//! This is deliberately **not** a Rust parser. The call-graph rules
//! (D6/D8) and the API snapshot (D9) need three things a single token
//! scan can recover reliably: where each `fn` body starts and ends,
//! which `impl`/`trait` block (if any) a function lives in, and the
//! `(name, qualifier, shape)` of every call expression inside a body.
//! Everything else — types, generics, trait resolution — is handled by
//! the conservative name-based resolution in [`crate::callgraph`].

use crate::lexer::{lex, TokKind, Token};
use crate::rules::test_region_mask;

/// One `fn` definition found in a file.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name (`Mlp` for `impl<S> Mlp<S>`),
    /// or `None` for a free function.
    pub qual: Option<String>,
    /// `pub` with no restriction (`pub(crate)` and friends are *not*
    /// public API).
    pub is_pub: bool,
    /// Whether the definition sits under `#[cfg(test)]` / `#[test]`.
    pub in_test: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Token range of the body, exclusive of the outer braces; `None`
    /// for bodiless trait-method signatures.
    pub body: Option<(usize, usize)>,
}

/// How a call site is written, which determines how it resolves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallShape {
    /// `recv.name(...)` — resolves by name against impl methods.
    Method,
    /// `Qual::name(...)` — resolves against `impl Qual` methods, a
    /// module file `qual.rs`, or a crate `origin_qual`.
    Qualified(String),
    /// `name(...)` — resolves against free functions (same file, then
    /// same crate, then workspace-wide).
    Bare,
}

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name (`forward_into`, `push`, …).
    pub name: String,
    /// Syntactic shape of the call.
    pub shape: CallShape,
    /// 1-based line of the callee identifier.
    pub line: u32,
    /// 1-based column of the callee identifier.
    pub col: u32,
}

/// A public non-`fn` item (`pub struct` / `enum` / `trait` / `type` /
/// `const` / `static`), for the D9 surface snapshot.
#[derive(Debug, Clone)]
pub struct PubItem {
    /// Item keyword (`struct`, `enum`, …).
    pub kind: String,
    /// Item name.
    pub name: String,
    /// 1-based line of the item keyword.
    pub line: u32,
}

/// Everything extracted from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Function definitions, in source order (nested `fn`s included).
    pub fns: Vec<FnDef>,
    /// Public non-function items, in source order.
    pub pub_items: Vec<PubItem>,
}

/// Tokens plus the derived masks/items for one file, computed once and
/// shared by the per-file rules and the workspace passes.
pub struct FileAnalysis {
    /// The token stream.
    pub toks: Vec<Token>,
    /// Per-token `#[cfg(test)]` / `#[test]` mask.
    pub test_mask: Vec<bool>,
    /// Extracted items.
    pub items: ParsedFile,
}

impl FileAnalysis {
    /// Lexes and parses `src`.
    #[must_use]
    pub fn new(src: &str) -> Self {
        let toks = lex(src);
        let test_mask = test_region_mask(&toks);
        let items = parse_items(&toks, &test_mask);
        FileAnalysis {
            toks,
            test_mask,
            items,
        }
    }
}

/// Keywords that look like `ident (` call sites but are not calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "return", "loop", "fn", "in", "as", "move", "else", "let",
    "mut", "ref", "box", "await", "yield",
];

/// Extracts every `fn` definition and public item from a token stream.
#[must_use]
pub fn parse_items(toks: &[Token], test_mask: &[bool]) -> ParsedFile {
    let mut out = ParsedFile::default();
    // Stack of (brace_depth_at_open, qualifier) for impl/trait blocks.
    let mut quals: Vec<(usize, Option<String>)> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match &t.kind {
            TokKind::Punct('{') => {
                depth += 1;
                i += 1;
            }
            TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                if quals.last().is_some_and(|(d, _)| *d >= depth) {
                    quals.pop();
                }
                i += 1;
            }
            TokKind::Ident if t.text == "impl" || t.text == "trait" => {
                // This arm shadows the generic pub-item arm below, so a
                // `pub trait` registers its surface entry here.
                if t.text == "trait"
                    && is_pub_before(toks, i)
                    && !test_mask.get(i).copied().unwrap_or(false)
                {
                    if let Some(name_tok) = toks.get(i + 1) {
                        if name_tok.kind == TokKind::Ident {
                            out.pub_items.push(PubItem {
                                kind: t.text.clone(),
                                name: name_tok.text.clone(),
                                line: t.line,
                            });
                        }
                    }
                }
                let (qual, brace) = impl_qualifier(toks, i);
                match brace {
                    // `impl Type { … }`: register the qualifier for fns
                    // inside; the matching `}` pops it.
                    Some(b) => {
                        quals.push((depth, qual));
                        depth += 1;
                        i = b + 1;
                    }
                    // `impl Trait for Type;`-style or malformed: skip.
                    None => i += 1,
                }
            }
            TokKind::Ident if t.text == "fn" => {
                let Some(name_tok) = toks.get(i + 1) else {
                    break;
                };
                if name_tok.kind != TokKind::Ident {
                    i += 1;
                    continue;
                }
                let body = fn_body_range_at(toks, i);
                out.fns.push(FnDef {
                    name: name_tok.text.clone(),
                    qual: quals.last().and_then(|(_, q)| q.clone()),
                    is_pub: is_pub_before(toks, i),
                    in_test: test_mask.get(i).copied().unwrap_or(false),
                    line: t.line,
                    col: t.col,
                    body,
                });
                // Continue *inside* the signature/body so nested fns and
                // inner impl blocks are discovered too.
                i += 2;
            }
            TokKind::Ident
                if matches!(
                    t.text.as_str(),
                    "struct" | "enum" | "type" | "const" | "static"
                ) && is_pub_before(toks, i)
                    && !test_mask.get(i).copied().unwrap_or(false) =>
            {
                if let Some(name_tok) = toks.get(i + 1) {
                    if name_tok.kind == TokKind::Ident {
                        out.pub_items.push(PubItem {
                            kind: t.text.clone(),
                            name: name_tok.text.clone(),
                            line: t.line,
                        });
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    out
}

/// The qualifier of an `impl`/`trait` block starting at `toks[i]`, plus
/// the index of its opening `{`.
///
/// `impl<S: Scalar> Mlp<S>` → `Mlp`; `impl Display for SimReport` →
/// `SimReport`; `trait Scalar` → `Scalar`. The qualifier is the last
/// path segment of the (post-`for`) type, generics stripped.
fn impl_qualifier(toks: &[Token], i: usize) -> (Option<String>, Option<usize>) {
    let mut j = i + 1;
    let mut angle = 0usize;
    let mut last_ident: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut in_for = false;
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => angle = angle.saturating_sub(1),
            TokKind::Punct('{') if angle == 0 => {
                let qual = if in_for { after_for } else { last_ident };
                return (qual, Some(j));
            }
            TokKind::Punct(';') if angle == 0 => return (None, None),
            TokKind::Ident if angle == 0 => {
                let text = &toks[j].text;
                if text == "for" {
                    in_for = true;
                } else if text == "where" {
                    // Bounds follow; the type name is already captured.
                } else if in_for {
                    after_for = Some(text.clone());
                } else {
                    last_ident = Some(text.clone());
                }
            }
            _ => {}
        }
        j += 1;
    }
    (None, None)
}

/// Whether the item keyword at `toks[i]` is preceded by an unrestricted
/// `pub` (skipping `const` / `unsafe` / `async` / `extern "C"`).
fn is_pub_before(toks: &[Token], i: usize) -> bool {
    let mut k = i;
    while k > 0 {
        k -= 1;
        match &toks[k].kind {
            TokKind::Ident
                if matches!(
                    toks[k].text.as_str(),
                    "const" | "unsafe" | "async" | "extern"
                ) =>
            {
                continue;
            }
            TokKind::Literal => continue, // the "C" in `extern "C"`
            TokKind::Punct(')') => {
                // `pub(crate)` / `pub(super)`: restricted, not public.
                return false;
            }
            TokKind::Ident if toks[k].text == "pub" => return true,
            _ => return false,
        }
    }
    false
}

/// Token range (exclusive of braces) of the body of the `fn` keyword at
/// `toks[i]`, or `None` for a bodiless signature.
fn fn_body_range_at(toks: &[Token], i: usize) -> Option<(usize, usize)> {
    // Scan past the signature for the body's `{`. A `;` ends a bodiless
    // signature only at bracket depth 0 — array types like `[S; N]`
    // nest a `;` inside `[...]` that must not read as a terminator.
    let mut k = i + 2;
    let mut nest = 0usize;
    let mut angle = 0usize;
    while k < toks.len() {
        match toks[k].kind {
            TokKind::Punct('(' | '[') => nest += 1,
            TokKind::Punct(')' | ']') => nest = nest.saturating_sub(1),
            TokKind::Punct('<') if nest == 0 => angle += 1,
            TokKind::Punct('>') if nest == 0 => angle = angle.saturating_sub(1),
            TokKind::Punct('{') if nest == 0 && angle == 0 => break,
            TokKind::Punct(';') if nest == 0 && angle == 0 => return None,
            _ => {}
        }
        k += 1;
    }
    if k >= toks.len() {
        return None;
    }
    let start = k + 1;
    let mut depth = 1usize;
    k += 1;
    while k < toks.len() && depth > 0 {
        match toks[k].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => depth -= 1,
            _ => {}
        }
        k += 1;
    }
    Some((start, k.saturating_sub(1)))
}

/// Extracts the call sites inside the token range `body`, skipping any
/// sub-ranges in `skip` (nested `fn` bodies, which are separate graph
/// nodes of their own).
#[must_use]
pub fn calls_in(toks: &[Token], body: (usize, usize), skip: &[(usize, usize)]) -> Vec<CallSite> {
    let mut out = Vec::new();
    let mut i = body.0;
    while i < body.1.min(toks.len()) {
        if let Some(&(_, end)) = skip.iter().find(|(s, e)| *s <= i && i < *e) {
            i = end;
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident || NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            i += 1;
            continue;
        }
        // A nested definition's name (`fn inner(` inside this body) is
        // not a call of `inner`.
        if i > 0 && toks[i - 1].is_ident("fn") {
            i += 1;
            continue;
        }
        // An ident is a callee when followed by `(`, optionally through
        // a `::<…>` turbofish. `name!(…)` is a macro, not a call.
        let mut j = i + 1;
        if toks.get(j).is_some_and(|n| n.is_punct(':'))
            && toks.get(j + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(j + 2).is_some_and(|n| n.is_punct('<'))
        {
            let mut angle = 1usize;
            j += 3;
            while j < toks.len() && angle > 0 {
                match toks[j].kind {
                    TokKind::Punct('<') => angle += 1,
                    TokKind::Punct('>') => angle = angle.saturating_sub(1),
                    _ => {}
                }
                j += 1;
            }
        }
        if !toks.get(j).is_some_and(|n| n.is_punct('(')) {
            i += 1;
            continue;
        }
        let shape = if i > body.0 && toks[i - 1].is_punct('.') {
            CallShape::Method
        } else if i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') {
            // `Qual::name(` — the segment before the `::`; `<T as
            // Trait>::name(` has a `>` there and resolves like a method.
            match toks.get(i.wrapping_sub(3)) {
                Some(q) if q.kind == TokKind::Ident => CallShape::Qualified(q.text.clone()),
                Some(q) if q.is_punct('>') => CallShape::Method,
                _ => CallShape::Bare,
            }
        } else {
            CallShape::Bare
        };
        out.push(CallSite {
            name: t.text.clone(),
            shape,
            line: t.line,
            col: t.col,
        });
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        let toks = lex(src);
        let mask = test_region_mask(&toks);
        parse_items(&toks, &mask)
    }

    #[test]
    fn free_and_impl_fns_get_their_qualifiers() {
        let src = r"
            pub fn free() {}
            struct Mlp;
            impl Mlp {
                pub fn forward(&self) {}
                fn hidden(&self) {}
            }
            impl<S: Scalar> Workspace<S> {
                pub fn with_capacity(n: usize) -> Self { Self }
            }
            impl core::fmt::Display for Report {
                fn fmt(&self) {}
            }
        ";
        let p = parse(src);
        let by_name: Vec<(String, Option<String>, bool)> = p
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.qual.clone(), f.is_pub))
            .collect();
        assert_eq!(
            by_name,
            vec![
                ("free".into(), None, true),
                ("forward".into(), Some("Mlp".into()), true),
                ("hidden".into(), Some("Mlp".into()), false),
                ("with_capacity".into(), Some("Workspace".into()), true),
                ("fmt".into(), Some("Report".into()), false),
            ]
        );
    }

    #[test]
    fn restricted_pub_is_not_public() {
        let p = parse("pub(crate) fn a() {} pub const fn b() {} fn c() {}");
        assert_eq!(
            p.fns.iter().map(|f| f.is_pub).collect::<Vec<_>>(),
            vec![false, true, false]
        );
    }

    #[test]
    fn trait_blocks_qualify_and_bodiless_sigs_have_no_body() {
        let p = parse("pub trait Scalar { fn zero() -> Self; fn one() -> Self { Self::zero() } }");
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].qual.as_deref(), Some("Scalar"));
        assert!(p.fns[0].body.is_none());
        assert!(p.fns[1].body.is_some());
        assert_eq!(p.pub_items.len(), 1);
        assert_eq!(p.pub_items[0].kind, "trait");
    }

    #[test]
    fn test_fns_are_marked() {
        let src = r"
            pub fn lib() {}
            #[cfg(test)]
            mod tests {
                fn helper() {}
            }
        ";
        let p = parse(src);
        assert!(!p.fns[0].in_test);
        assert!(p.fns[1].in_test);
    }

    #[test]
    fn nested_fns_are_separate_defs() {
        let p = parse("fn outer() { fn inner() {} inner(); }");
        assert_eq!(p.fns.len(), 2);
        let outer = &p.fns[0];
        let inner = &p.fns[1];
        assert!(outer.body.expect("outer body").0 < inner.body.expect("inner body").0);
    }

    #[test]
    fn pub_items_capture_types() {
        let p = parse(
            "pub struct A; pub enum B {} struct Private; pub type C = A; pub const K: u32 = 1;",
        );
        let kinds: Vec<&str> = p.pub_items.iter().map(|i| i.kind.as_str()).collect();
        assert_eq!(kinds, vec!["struct", "enum", "type", "const"]);
    }

    #[test]
    fn call_shapes_are_classified() {
        let src = "fn f() { g(); x.m(); Mlp::new(); kernels::rows(0); v.sum::<f64>(); h!(); }";
        let toks = lex(src);
        let mask = test_region_mask(&toks);
        let p = parse_items(&toks, &mask);
        let body = p.fns[0].body.expect("body");
        let calls = calls_in(&toks, body, &[]);
        let got: Vec<(String, CallShape)> = calls
            .iter()
            .map(|c| (c.name.clone(), c.shape.clone()))
            .collect();
        assert_eq!(
            got,
            vec![
                ("g".into(), CallShape::Bare),
                ("m".into(), CallShape::Method),
                ("new".into(), CallShape::Qualified("Mlp".into())),
                ("rows".into(), CallShape::Qualified("kernels".into())),
                ("sum".into(), CallShape::Method),
            ]
        );
    }

    #[test]
    fn nested_fn_bodies_are_skipped_in_call_extraction() {
        let src = "fn outer() { fn inner() { alloc(); } inner(); }";
        let toks = lex(src);
        let mask = test_region_mask(&toks);
        let p = parse_items(&toks, &mask);
        let outer = p.fns[0].body.expect("outer");
        let inner = p.fns[1].body.expect("inner");
        let calls = calls_in(&toks, outer, &[inner]);
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].name, "inner");
    }
}
