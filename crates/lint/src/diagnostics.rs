//! Finding type and its human / JSON renderings.
//!
//! The `--json` document schema is pinned by DESIGN.md §10 and a golden
//! fixture test; every field added here must be reflected in both.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule id (`D1` … `D9`, or `ALLOW` for stale waivers).
    pub rule: &'static str,
    /// Repo-relative file path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// The trimmed source line the finding points at.
    pub snippet: String,
    /// Why this is a violation and what to do instead.
    pub message: String,
    /// For call-graph rules (D6/D8): the witness path, rendered as
    /// `file.rs::fn` labels from the root to the flagged function.
    /// Empty for token-local rules.
    pub chain: Vec<String>,
}

impl Finding {
    /// `rustc`-style human rendering.
    #[must_use]
    pub fn render_human(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "error[{}]: {}", self.rule, self.message);
        let _ = writeln!(s, "  --> {}:{}:{}", self.file, self.line, self.col);
        if !self.snippet.is_empty() {
            let _ = writeln!(s, "   |  {}", self.snippet);
        }
        if !self.chain.is_empty() {
            let _ = writeln!(s, "   = via {}", self.chain.join(" -> "));
        }
        s
    }

    /// One JSON object, fully escaped. `chain` is always present (empty
    /// array for token-local rules) so consumers need no key probing.
    #[must_use]
    pub fn render_json(&self) -> String {
        let chain: Vec<String> = self.chain.iter().map(|c| json_string(c)).collect();
        format!(
            "{{\"rule\":{},\"file\":{},\"line\":{},\"col\":{},\"snippet\":{},\"message\":{},\"chain\":[{}]}}",
            json_string(self.rule),
            json_string(&self.file),
            self.line,
            self.col,
            json_string(&self.snippet),
            json_string(&self.message),
            chain.join(",")
        )
    }
}

/// Per-rule finding counts, sorted by rule id (so `ALLOW` first, then
/// `D1` … `D9`). Rules with zero findings are omitted.
#[must_use]
pub fn by_rule_counts(findings: &[Finding]) -> BTreeMap<&'static str, usize> {
    let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    for f in findings {
        *counts.entry(f.rule).or_insert(0) += 1;
    }
    counts
}

/// Renders a full report as a single JSON document.
#[must_use]
pub fn render_json_report(findings: &[Finding], files_scanned: usize, allowed: usize) -> String {
    let body: Vec<String> = findings.iter().map(Finding::render_json).collect();
    let by_rule: Vec<String> = by_rule_counts(findings)
        .iter()
        .map(|(rule, n)| format!("{}:{n}", json_string(rule)))
        .collect();
    format!(
        "{{\"findings\":[{}],\"summary\":{{\"findings\":{},\"files_scanned\":{},\"allowlisted\":{},\"by_rule\":{{{}}}}}}}",
        body.join(","),
        findings.len(),
        files_scanned,
        allowed,
        by_rule.join(",")
    )
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Finding {
        Finding {
            rule: "D1",
            file: "crates/core/src/sim.rs".to_string(),
            line: 7,
            col: 3,
            snippet: "let t = Instant::now(); // \"why\"".to_string(),
            message: "wall-clock".to_string(),
            chain: Vec::new(),
        }
    }

    #[test]
    fn human_rendering_includes_location() {
        let h = sample().render_human();
        assert!(h.contains("error[D1]"));
        assert!(h.contains("crates/core/src/sim.rs:7:3"));
        assert!(!h.contains("via"), "no chain line for token-local rules");
    }

    #[test]
    fn json_escapes_quotes() {
        let j = sample().render_json();
        assert!(j.contains("\\\"why\\\""));
        assert!(j.contains("\"chain\":[]"));
        assert!(!j.contains("\n"));
    }

    #[test]
    fn chain_renders_in_both_formats() {
        let mut f = sample();
        f.rule = "D6";
        f.chain = vec!["a.rs::root".to_string(), "b.rs::leaf".to_string()];
        let h = f.render_human();
        assert!(h.contains("= via a.rs::root -> b.rs::leaf"));
        let j = f.render_json();
        assert!(j.contains("\"chain\":[\"a.rs::root\",\"b.rs::leaf\"]"));
    }

    #[test]
    fn report_counts_match() {
        let mut d6 = sample();
        d6.rule = "D6";
        let r = render_json_report(&[sample(), sample(), d6], 12, 3);
        assert!(r.contains("\"files_scanned\":12"));
        assert!(r.contains("\"allowlisted\":3"));
        assert!(r.contains("\"findings\":3"));
        assert!(r.contains("\"by_rule\":{\"D1\":2,\"D6\":1}"));
    }
}
