//! Finding type and its human / JSON renderings.

use std::fmt::Write as _;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule id (`D1` … `D5`).
    pub rule: &'static str,
    /// Repo-relative file path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// The trimmed source line the finding points at.
    pub snippet: String,
    /// Why this is a violation and what to do instead.
    pub message: String,
}

impl Finding {
    /// `rustc`-style human rendering.
    #[must_use]
    pub fn render_human(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "error[{}]: {}", self.rule, self.message);
        let _ = writeln!(s, "  --> {}:{}:{}", self.file, self.line, self.col);
        if !self.snippet.is_empty() {
            let _ = writeln!(s, "   |  {}", self.snippet);
        }
        s
    }

    /// One JSON object, fully escaped.
    #[must_use]
    pub fn render_json(&self) -> String {
        format!(
            "{{\"rule\":{},\"file\":{},\"line\":{},\"col\":{},\"snippet\":{},\"message\":{}}}",
            json_string(self.rule),
            json_string(&self.file),
            self.line,
            self.col,
            json_string(&self.snippet),
            json_string(&self.message)
        )
    }
}

/// Renders a full report as a single JSON document.
#[must_use]
pub fn render_json_report(findings: &[Finding], files_scanned: usize, allowed: usize) -> String {
    let body: Vec<String> = findings.iter().map(Finding::render_json).collect();
    format!(
        "{{\"findings\":[{}],\"summary\":{{\"findings\":{},\"files_scanned\":{},\"allowlisted\":{}}}}}",
        body.join(","),
        findings.len(),
        files_scanned,
        allowed
    )
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Finding {
        Finding {
            rule: "D1",
            file: "crates/core/src/sim.rs".to_string(),
            line: 7,
            col: 3,
            snippet: "let t = Instant::now(); // \"why\"".to_string(),
            message: "wall-clock".to_string(),
        }
    }

    #[test]
    fn human_rendering_includes_location() {
        let h = sample().render_human();
        assert!(h.contains("error[D1]"));
        assert!(h.contains("crates/core/src/sim.rs:7:3"));
    }

    #[test]
    fn json_escapes_quotes() {
        let j = sample().render_json();
        assert!(j.contains("\\\"why\\\""));
        assert!(!j.contains("\n"));
    }

    #[test]
    fn report_counts_match() {
        let r = render_json_report(&[sample()], 12, 3);
        assert!(r.contains("\"files_scanned\":12"));
        assert!(r.contains("\"allowlisted\":3"));
        assert!(r.contains("\"findings\":1"));
    }
}
