#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! # origin-lint — workspace determinism & hot-path static analysis
//!
//! The Origin reproduction promises properties no general-purpose linter
//! can check: paired policy comparisons on an identical simulated world,
//! bitwise-identical sweeps at any `--threads`, and zero-allocation
//! inference kernels. Each is a *structural* invariant of the source —
//! one `Instant::now()` or one `HashMap` iteration in a simulation crate
//! silently breaks reproducibility. This crate enforces those invariants
//! at lint time, before code lands.
//!
//! The pass has two layers. Token-local rules inspect one file at a
//! time; call-graph rules build a whole-workspace call graph (see
//! [`parse`] and [`callgraph`] — hand-rolled, dependency-free) and walk
//! it. Rules (see [`rules`] for the scoping tables):
//!
//! * **D1** — no ambient nondeterminism (wall clocks, OS entropy,
//!   environment reads) in the deterministic crates.
//! * **D2** — no `HashMap`/`HashSet` in the deterministic crates.
//! * **D3** — no `unwrap`/`expect`/`panic!`/`todo!` in non-test library
//!   code of crates that export a typed error.
//! * **D4** — no allocation calls inside the zero-alloc kernels declared
//!   in `lint-allow.toml` (`[hot-paths]`).
//! * **D5** — every crate root carries `#![forbid(unsafe_code)]` and
//!   `#![deny(missing_docs)]`.
//! * **D6** — *transitive* hot-path purity: every function reachable
//!   from a `[hot-paths]` root is allocation-free and panic-free (the
//!   closure of D4 over the call graph, with the witness call chain in
//!   every finding).
//! * **D7** — no order-hiding float reductions (`.sum()`/`.product()`/
//!   `fold` over floats, `mul_add`, `partial_cmp` sorts) in the
//!   deterministic crates.
//! * **D8** — panic-reachability: no call path from the public API of a
//!   typed-error crate to a panic site in any deterministic crate.
//! * **D9** — the public API surface matches the committed
//!   `lint-api.txt` snapshot (regenerate with `--api-snapshot`).
//!
//! Audited exceptions live in the committed `lint-allow.toml`; every
//! waiver must carry a written `reason`, and stale waivers (matching no
//! finding) are themselves errors so the file cannot rot.
//!
//! Run it as `cargo run -p origin-lint` (add `-- --json` for machine
//! output); `scripts/check.sh` runs it between clippy and rustdoc.

pub mod allowlist;
pub mod api;
pub mod callgraph;
pub mod diagnostics;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod workspace;

use std::fs;
use std::path::Path;

use allowlist::Allowlist;
use diagnostics::Finding;
use parse::FileAnalysis;
use rules::FileContext;

/// Outcome of a full workspace pass.
#[derive(Debug)]
pub struct Report {
    /// Violations that survived the allowlist, sorted by file/line.
    pub findings: Vec<Finding>,
    /// Number of files analyzed.
    pub files_scanned: usize,
    /// Number of findings waived by the allowlist.
    pub allowed: usize,
}

/// Every workspace source file, its raw text, and its parsed analysis,
/// index-aligned across the three vectors.
type AnalyzedWorkspace = (Vec<workspace::SourceFile>, Vec<String>, Vec<FileAnalysis>);

/// Reads and analyzes every workspace source file once.
fn analyze_workspace(root: &Path) -> Result<AnalyzedWorkspace, String> {
    let files = workspace::collect_sources(root)?;
    let mut sources = Vec::with_capacity(files.len());
    let mut analyses = Vec::with_capacity(files.len());
    for file in &files {
        let src = fs::read_to_string(&file.abs)
            .map_err(|e| format!("reading {}: {e}", file.abs.display()))?;
        analyses.push(FileAnalysis::new(&src));
        sources.push(src);
    }
    Ok((files, sources, analyses))
}

/// Lints the workspace rooted at `root` against the allowlist at
/// `allow_path`.
///
/// # Errors
///
/// Returns a description when the allowlist is malformed or a source
/// file cannot be read; rule findings are *not* errors — they are the
/// [`Report`].
pub fn run(root: &Path, allow_path: &Path) -> Result<Report, String> {
    let allow_src = fs::read_to_string(allow_path)
        .map_err(|e| format!("reading {}: {e}", allow_path.display()))?;
    let allow =
        Allowlist::parse(&allow_src).map_err(|e| format!("{}: {e}", allow_path.display()))?;
    let (files, sources, analyses) = analyze_workspace(root)?;

    // Token-local rules, one file at a time.
    let mut raw = Vec::new();
    for ((file, src), fa) in files.iter().zip(&sources).zip(&analyses) {
        let empty = Vec::new();
        let hot = allow.hot_paths.get(&file.rel).unwrap_or(&empty);
        let ctx = FileContext {
            rel_path: &file.rel,
            crate_name: &file.crate_name,
            is_crate_root: file.is_crate_root,
            hot_fns: hot,
        };
        raw.extend(rules::lint_file(fa, src, &ctx));
    }

    // Hot-path files that vanished entirely (rename/delete) would
    // otherwise silently skip D4; surface them like stale waivers.
    for file in allow.hot_paths.keys() {
        if !files.iter().any(|f| &f.rel == file) {
            raw.push(Finding {
                rule: "D4",
                file: file.clone(),
                line: 1,
                col: 1,
                snippet: String::new(),
                message: format!(
                    "hot-path file `{file}` is not in the workspace; fix the \
                     `hot-paths` list in lint-allow.toml"
                ),
                chain: Vec::new(),
            });
        }
    }

    // Call-graph rules over the whole workspace.
    let deps = workspace::crate_deps(root);
    let graph = callgraph::CallGraph::build(&files, &analyses, &deps);
    raw.extend(rules::lint_transitive(
        &graph,
        &analyses,
        &sources,
        &allow.hot_paths,
    ));

    // D9 — API snapshot, active once a `lint-api.txt` is committed at
    // the root (absence skips the rule so fixture trees opt in).
    if let Ok(snapshot) = fs::read_to_string(root.join("lint-api.txt")) {
        let surface = api::surface(&files, &analyses);
        raw.extend(api::d9_check(&surface, &snapshot));
    }

    let (findings, allowed) = apply_allowlist(raw, &allow);
    Ok(Report {
        findings,
        files_scanned: files.len(),
        allowed,
    })
}

/// Renders the D9 public-API snapshot (`lint-api.txt` content) for the
/// workspace at `root`.
///
/// # Errors
///
/// Returns a description when a source file cannot be read.
pub fn api_snapshot(root: &Path) -> Result<String, String> {
    let (files, _sources, analyses) = analyze_workspace(root)?;
    Ok(api::render_snapshot(&api::surface(&files, &analyses)))
}

/// Splits findings into surviving violations and waived ones, and turns
/// stale waivers into findings of their own.
fn apply_allowlist(raw: Vec<Finding>, allow: &Allowlist) -> (Vec<Finding>, usize) {
    let mut used = vec![false; allow.entries.len()];
    let mut kept = Vec::new();
    let mut waived = 0usize;
    for f in raw {
        let hit = allow.entries.iter().enumerate().find(|(_, e)| {
            e.rule == f.rule
                && e.path == f.file
                && (e.pattern.is_empty() || f.snippet.contains(&e.pattern))
        });
        if let Some((i, _)) = hit {
            used[i] = true;
            waived += 1;
        } else {
            kept.push(f);
        }
    }
    for (e, _) in allow.entries.iter().zip(&used).filter(|(_, &u)| !u) {
        kept.push(Finding {
            rule: "ALLOW",
            file: "lint-allow.toml".to_string(),
            line: 1,
            col: 1,
            snippet: format!(
                "rule = \"{}\", path = \"{}\", pattern = \"{}\"",
                e.rule, e.path, e.pattern
            ),
            message: "stale waiver: matches no current finding; delete it or fix the pattern"
                .to_string(),
            chain: Vec::new(),
        });
    }
    kept.sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    (kept, waived)
}

#[cfg(test)]
mod tests {
    use super::*;
    use allowlist::AllowEntry;

    fn f(rule: &'static str, file: &str, snippet: &str) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line: 1,
            col: 1,
            snippet: snippet.to_string(),
            message: String::new(),
            chain: Vec::new(),
        }
    }

    #[test]
    fn waivers_match_rule_path_and_pattern() {
        let allow = Allowlist {
            hot_paths: Default::default(),
            entries: vec![AllowEntry {
                rule: "D3".into(),
                path: "a.rs".into(),
                pattern: "finite".into(),
                reason: "r".into(),
            }],
        };
        let raw = vec![
            f("D3", "a.rs", "x.expect(\"finite\")"),
            f("D3", "a.rs", "x.unwrap()"),
            f("D1", "a.rs", "finite"),
        ];
        let (kept, waived) = apply_allowlist(raw, &allow);
        assert_eq!(waived, 1);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn stale_waivers_become_findings() {
        let allow = Allowlist {
            hot_paths: Default::default(),
            entries: vec![AllowEntry {
                rule: "D2".into(),
                path: "gone.rs".into(),
                pattern: String::new(),
                reason: "r".into(),
            }],
        };
        let (kept, waived) = apply_allowlist(vec![], &allow);
        assert_eq!(waived, 0);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].rule, "ALLOW");
    }
}
