#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! # origin-lint — workspace determinism & hot-path static analysis
//!
//! The Origin reproduction promises properties no general-purpose linter
//! can check: paired policy comparisons on an identical simulated world,
//! bitwise-identical sweeps at any `--threads`, and zero-allocation
//! inference kernels. Each is a *structural* invariant of the source —
//! one `Instant::now()` or one `HashMap` iteration in a simulation crate
//! silently breaks reproducibility. This crate enforces those invariants
//! at lint time, before code lands.
//!
//! Rules (see [`rules`] for the scoping tables):
//!
//! * **D1** — no ambient nondeterminism (wall clocks, OS entropy,
//!   environment reads) in the deterministic crates.
//! * **D2** — no `HashMap`/`HashSet` in the deterministic crates.
//! * **D3** — no `unwrap`/`expect`/`panic!`/`todo!` in non-test library
//!   code of crates that export a typed error.
//! * **D4** — no allocation calls inside the zero-alloc kernels declared
//!   in `lint-allow.toml` (`[hot-paths]`).
//! * **D5** — every crate root carries `#![forbid(unsafe_code)]` and
//!   `#![deny(missing_docs)]`.
//!
//! Audited exceptions live in the committed `lint-allow.toml`; every
//! waiver must carry a written `reason`, and stale waivers (matching no
//! finding) are themselves errors so the file cannot rot.
//!
//! Run it as `cargo run -p origin-lint` (add `-- --json` for machine
//! output); `scripts/check.sh` runs it between clippy and rustdoc.

pub mod allowlist;
pub mod diagnostics;
pub mod lexer;
pub mod rules;
pub mod workspace;

use std::fs;
use std::path::Path;

use allowlist::Allowlist;
use diagnostics::Finding;
use rules::FileContext;

/// Outcome of a full workspace pass.
#[derive(Debug)]
pub struct Report {
    /// Violations that survived the allowlist, sorted by file/line.
    pub findings: Vec<Finding>,
    /// Number of files analyzed.
    pub files_scanned: usize,
    /// Number of findings waived by the allowlist.
    pub allowed: usize,
}

/// Lints the workspace rooted at `root` against the allowlist at
/// `allow_path`.
///
/// # Errors
///
/// Returns a description when the allowlist is malformed or a source
/// file cannot be read; rule findings are *not* errors — they are the
/// [`Report`].
pub fn run(root: &Path, allow_path: &Path) -> Result<Report, String> {
    let allow_src = fs::read_to_string(allow_path)
        .map_err(|e| format!("reading {}: {e}", allow_path.display()))?;
    let allow =
        Allowlist::parse(&allow_src).map_err(|e| format!("{}: {e}", allow_path.display()))?;
    let files = workspace::collect_sources(root)?;

    let mut raw = Vec::new();
    for file in &files {
        let src = fs::read_to_string(&file.abs)
            .map_err(|e| format!("reading {}: {e}", file.abs.display()))?;
        let empty = Vec::new();
        let hot = allow.hot_paths.get(&file.rel).unwrap_or(&empty);
        let ctx = FileContext {
            rel_path: &file.rel,
            crate_name: &file.crate_name,
            is_crate_root: file.is_crate_root,
            hot_fns: hot,
        };
        raw.extend(rules::lint_source(&src, &ctx));
    }

    // Hot-path files that vanished entirely (rename/delete) would
    // otherwise silently skip D4; surface them like stale waivers.
    for file in allow.hot_paths.keys() {
        if !files.iter().any(|f| &f.rel == file) {
            raw.push(Finding {
                rule: "D4",
                file: file.clone(),
                line: 1,
                col: 1,
                snippet: String::new(),
                message: format!(
                    "hot-path file `{file}` is not in the workspace; fix the \
                     `hot-paths` list in lint-allow.toml"
                ),
            });
        }
    }

    let (findings, allowed) = apply_allowlist(raw, &allow);
    Ok(Report {
        findings,
        files_scanned: files.len(),
        allowed,
    })
}

/// Splits findings into surviving violations and waived ones, and turns
/// stale waivers into findings of their own.
fn apply_allowlist(raw: Vec<Finding>, allow: &Allowlist) -> (Vec<Finding>, usize) {
    let mut used = vec![false; allow.entries.len()];
    let mut kept = Vec::new();
    let mut waived = 0usize;
    for f in raw {
        let hit = allow.entries.iter().enumerate().find(|(_, e)| {
            e.rule == f.rule
                && e.path == f.file
                && (e.pattern.is_empty() || f.snippet.contains(&e.pattern))
        });
        if let Some((i, _)) = hit {
            used[i] = true;
            waived += 1;
        } else {
            kept.push(f);
        }
    }
    for (e, _) in allow.entries.iter().zip(&used).filter(|(_, &u)| !u) {
        kept.push(Finding {
            rule: "ALLOW",
            file: "lint-allow.toml".to_string(),
            line: 1,
            col: 1,
            snippet: format!(
                "rule = \"{}\", path = \"{}\", pattern = \"{}\"",
                e.rule, e.path, e.pattern
            ),
            message: "stale waiver: matches no current finding; delete it or fix the pattern"
                .to_string(),
        });
    }
    kept.sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    (kept, waived)
}

#[cfg(test)]
mod tests {
    use super::*;
    use allowlist::AllowEntry;

    fn f(rule: &'static str, file: &str, snippet: &str) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line: 1,
            col: 1,
            snippet: snippet.to_string(),
            message: String::new(),
        }
    }

    #[test]
    fn waivers_match_rule_path_and_pattern() {
        let allow = Allowlist {
            hot_paths: Default::default(),
            entries: vec![AllowEntry {
                rule: "D3".into(),
                path: "a.rs".into(),
                pattern: "finite".into(),
                reason: "r".into(),
            }],
        };
        let raw = vec![
            f("D3", "a.rs", "x.expect(\"finite\")"),
            f("D3", "a.rs", "x.unwrap()"),
            f("D1", "a.rs", "finite"),
        ];
        let (kept, waived) = apply_allowlist(raw, &allow);
        assert_eq!(waived, 1);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn stale_waivers_become_findings() {
        let allow = Allowlist {
            hot_paths: Default::default(),
            entries: vec![AllowEntry {
                rule: "D2".into(),
                path: "gone.rs".into(),
                pattern: String::new(),
                reason: "r".into(),
            }],
        };
        let (kept, waived) = apply_allowlist(vec![], &allow);
        assert_eq!(waived, 0);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].rule, "ALLOW");
    }
}
