//! The committed allowlist: audited exceptions to the rule set.
//!
//! `lint-allow.toml` at the repo root has two sections:
//!
//! ```toml
//! # Functions whose bodies rule D4 keeps allocation-free.
//! [hot-paths]
//! paths = [
//!     "crates/nn/src/mlp.rs::run_forward",
//! ]
//!
//! # One waiver per audited exception. `reason` is mandatory; `pattern`
//! # (a substring of the flagged source line) narrows the waiver so it
//! # cannot silently absorb new violations in the same file.
//! [[allow]]
//! rule = "D3"
//! path = "crates/nn/src/mlp.rs"
//! pattern = "probabilities are finite"
//! reason = "softmax output is finite by construction; comparator cannot see NaN"
//! ```
//!
//! The reader below parses exactly this TOML subset (tables,
//! array-of-tables, string keys, string arrays, comments) — the workspace
//! has no `toml` dependency and must build offline. Unknown syntax is an
//! error: a malformed allowlist must fail loudly, not silently waive.

use std::collections::BTreeMap;

/// One `[[allow]]` waiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id the waiver applies to (`D1` … `D5`).
    pub rule: String,
    /// Repo-relative file the waiver applies to.
    pub path: String,
    /// Optional substring of the flagged line; empty matches any line.
    pub pattern: String,
    /// Mandatory human justification.
    pub reason: String,
}

/// Parsed allowlist file.
#[derive(Debug, Default, Clone)]
pub struct Allowlist {
    /// `file.rs::fn_name` hot-path declarations for D4, grouped by file.
    pub hot_paths: BTreeMap<String, Vec<String>>,
    /// The waivers, in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses the `lint-allow.toml` subset described in the module docs.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line for anything outside
    /// the accepted subset, a waiver missing `rule`/`path`/`reason`, or a
    /// malformed `hot-paths` declaration.
    pub fn parse(src: &str) -> Result<Self, String> {
        enum Section {
            None,
            HotPaths,
            Allow(usize),
        }
        let mut out = Allowlist::default();
        let mut section = Section::None;
        let mut lines = src.lines().enumerate().peekable();
        while let Some((n, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if line == "[hot-paths]" {
                section = Section::HotPaths;
                continue;
            }
            if line == "[[allow]]" {
                out.entries.push(AllowEntry {
                    rule: String::new(),
                    path: String::new(),
                    pattern: String::new(),
                    reason: String::new(),
                });
                section = Section::Allow(out.entries.len() - 1);
                continue;
            }
            if line.starts_with('[') {
                return Err(format!("line {}: unknown section `{}`", n + 1, line));
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "line {}: expected `key = value`, got `{line}`",
                    n + 1
                ));
            };
            let key = key.trim();
            let mut value = value.trim().to_string();
            // Multiline string arrays: accumulate until the closing `]`.
            if value.starts_with('[') && !value.ends_with(']') {
                for (_, cont) in lines.by_ref() {
                    let cont = strip_comment(cont);
                    value.push_str(cont.trim());
                    if cont.trim_end().ends_with(']') {
                        break;
                    }
                }
            }
            match (&section, key) {
                (Section::HotPaths, "paths") => {
                    for item in
                        parse_string_array(&value).map_err(|e| format!("line {}: {e}", n + 1))?
                    {
                        let Some((file, fn_name)) = item.split_once("::") else {
                            return Err(format!(
                                "line {}: hot-path `{item}` must be `file.rs::fn_name`",
                                n + 1
                            ));
                        };
                        out.hot_paths
                            .entry(file.to_string())
                            .or_default()
                            .push(fn_name.to_string());
                    }
                }
                (Section::Allow(idx), _) => {
                    let entry = &mut out.entries[*idx];
                    let v = parse_string(&value).map_err(|e| format!("line {}: {e}", n + 1))?;
                    match key {
                        "rule" => entry.rule = v,
                        "path" => entry.path = v,
                        "pattern" => entry.pattern = v,
                        "reason" => entry.reason = v,
                        _ => return Err(format!("line {}: unknown waiver key `{key}`", n + 1)),
                    }
                }
                _ => {
                    return Err(format!(
                        "line {}: key `{key}` outside a known section",
                        n + 1
                    ))
                }
            }
        }
        for (i, e) in out.entries.iter().enumerate() {
            if e.rule.is_empty() || e.path.is_empty() {
                return Err(format!(
                    "waiver #{}: `rule` and `path` are mandatory",
                    i + 1
                ));
            }
            if e.reason.trim().is_empty() {
                return Err(format!(
                    "waiver #{} ({} in {}): every waiver must carry a written `reason`",
                    i + 1,
                    e.rule,
                    e.path
                ));
            }
        }
        Ok(out)
    }
}

/// Drops a `#`-to-end-of-line comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str => escaped = !escaped,
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => escaped = false,
        }
    }
    line
}

/// Parses `"a string"`.
fn parse_string(v: &str) -> Result<String, String> {
    let v = v.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1]
            .replace("\\\"", "\"")
            .replace("\\\\", "\\"))
    } else {
        Err(format!("expected a double-quoted string, got `{v}`"))
    }
}

/// Parses `["a", "b", ...]` (trailing comma tolerated).
fn parse_string_array(v: &str) -> Result<Vec<String>, String> {
    let v = v.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("expected a string array, got `{v}`"))?;
    inner
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(parse_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_hot_paths_and_waivers() {
        let src = r#"
            # comment
            [hot-paths]
            paths = [
                "crates/nn/src/mlp.rs::run_forward", # per-line comment
                "crates/nn/src/layer.rs::forward_into",
            ]

            [[allow]]
            rule = "D3"
            path = "crates/nn/src/prune.rs"
            pattern = "energies are finite"
            reason = "energy model emits finite values only"
        "#;
        let a = Allowlist::parse(src).expect("parses");
        assert_eq!(a.hot_paths["crates/nn/src/mlp.rs"], vec!["run_forward"]);
        assert_eq!(a.entries.len(), 1);
        assert_eq!(a.entries[0].rule, "D3");
    }

    #[test]
    fn reason_is_mandatory() {
        let src = "[[allow]]\nrule = \"D3\"\npath = \"x.rs\"\n";
        let err = Allowlist::parse(src).unwrap_err();
        assert!(err.contains("reason"), "{err}");
    }

    #[test]
    fn unknown_sections_fail_loudly() {
        assert!(Allowlist::parse("[surprise]\nx = \"y\"\n").is_err());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let src =
            "[[allow]]\nrule = \"D3\"\npath = \"x.rs\"\npattern = \"a # b\"\nreason = \"r\"\n";
        let a = Allowlist::parse(src).expect("parses");
        assert_eq!(a.entries[0].pattern, "a # b");
    }
}
