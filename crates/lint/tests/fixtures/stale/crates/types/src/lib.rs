#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Fixture: a perfectly clean crate root, so the only finding in this
//! workspace is the stale waiver in its `lint-allow.toml`.
//!
//! This file is test data for origin-lint — it is never compiled.

/// Identity, deterministically.
pub fn id(x: u64) -> u64 {
    x
}
