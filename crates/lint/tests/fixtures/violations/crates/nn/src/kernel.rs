//! Fixture: a declared zero-alloc kernel (`hot_loop` appears under
//! `[hot-paths]` in the fixture allowlist) with seeded allocations, plus
//! calls into `scratch.rs` whose allocations are *transitive* (D6)
//! findings, and a private hot root (`hot_tick`) whose callee in the
//! energy fixture crate panics — D6's panic arm, with no D8 overlap
//! because a private function is not a public-API root.
//!
//! This file is test data for origin-lint — it is never compiled.

use crate::scratch::fill_scratch;

/// The "kernel": every allocation in its body is a D4 violation, and the
/// allocations inside `fill_scratch` (one call away) are D6 violations.
pub fn hot_loop(xs: &[f64], out: &mut [f64]) {
    let mut scratch: Vec<f64> = Vec::new(); //~ ERROR D4
    scratch.extend(xs.iter().copied());
    let copy = xs.to_vec(); //~ ERROR D4
    let boxed = Box::new(copy.len()); //~ ERROR D4
    let extra = fill_scratch(out.len());
    for (o, x) in out.iter_mut().zip(&scratch) {
        *o = *x * *boxed as f64 + extra.len() as f64;
    }
}

/// Declared hot (see the fixture allowlist) but *private*: not a D8
/// root, so the panic inside `drain_cell` (energy fixture crate) is
/// D6's finding alone.
fn hot_tick(charge: f64) -> f64 {
    drain_cell(charge)
}

/// Not declared hot: the same allocations are fine here.
pub fn cold_path(xs: &[f64]) -> Vec<f64> {
    xs.to_vec()
}
