//! Fixture: a declared zero-alloc kernel (`hot_loop` appears under
//! `[hot-paths]` in the fixture allowlist) with seeded allocations.
//!
//! This file is test data for origin-lint — it is never compiled.

/// The "kernel": every allocation in its body is a D4 violation.
pub fn hot_loop(xs: &[f64], out: &mut [f64]) {
    let mut scratch: Vec<f64> = Vec::new(); //~ ERROR D4
    scratch.extend(xs.iter().copied());
    let copy = xs.to_vec(); //~ ERROR D4
    let boxed = Box::new(copy.len()); //~ ERROR D4
    for (o, x) in out.iter_mut().zip(&scratch) {
        *o = *x * *boxed as f64;
    }
}

/// Not declared hot: the same allocations are fine here.
pub fn cold_path(xs: &[f64]) -> Vec<f64> {
    xs.to_vec()
}
