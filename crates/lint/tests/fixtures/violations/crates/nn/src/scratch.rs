//! Fixture: transitive callees of the declared hot kernel `hot_loop`.
//!
//! None of these functions appear under `[hot-paths]`, so every
//! allocation here is a D6 (transitive) finding, not a D4 (direct) one —
//! and `grow_tail` sits two call-graph edges from the root, so its
//! finding must carry the full three-hop chain
//! `hot_loop -> fill_scratch -> grow_tail` in `--json` output.
//!
//! This file is test data for origin-lint — it is never compiled.

/// First hop from `hot_loop`: allocates, then descends one level more.
pub fn fill_scratch(n: usize) -> Vec<f64> {
    let page = spare_page();
    let mut buf: Vec<f64> = Vec::with_capacity(n); //~ ERROR D6
    grow_tail(&mut buf, n.max(page.len()));
    buf
}

/// Second hop: `hot_loop -> fill_scratch -> grow_tail`.
fn grow_tail(buf: &mut Vec<f64>, n: usize) {
    let tail = vec![0.0; n]; //~ ERROR D6
    buf.extend(tail);
}

/// Reachable and allocating, but *waived*: the fixture allowlist masks
/// this line with a narrow pattern, so it carries no marker — the
/// exact-set harness proves the waiver absorbs exactly this finding.
pub fn spare_page() -> Vec<u8> {
    Vec::with_capacity(4096)
}
