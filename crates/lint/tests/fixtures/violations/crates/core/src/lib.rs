#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Fixture: a deterministic, typed-error crate with seeded D1/D2/D3
//! violations. Each offending line carries a trailing UI-test-style
//! marker; the harness asserts the lint reports exactly those lines.
//!
//! This file is test data for origin-lint — it is never compiled.

use std::collections::HashMap; //~ ERROR D2

/// Reads the wall clock — ambient nondeterminism, banned here.
pub fn wall_clock_ns() -> u128 {
    let start = std::time::Instant::now(); //~ ERROR D1
    start.elapsed().as_nanos()
}

/// Seeds from OS entropy — banned here.
pub fn os_seeded() -> u64 {
    let mut rng = rand::thread_rng(); //~ ERROR D1
    rng.gen()
}

/// Reads the process environment — ambient input, banned here.
pub fn env_knob() -> Option<String> {
    std::env::var("ORIGIN_KNOB").ok() //~ ERROR D1
}

/// Builds a map whose iteration order varies per process.
pub fn histogram(xs: &[u32]) -> HashMap<u32, u32> { //~ ERROR D2
    let mut counts = HashMap::new(); //~ ERROR D2
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    counts
}

/// Panics instead of returning the crate's typed error.
pub fn first(xs: &[u32]) -> u32 {
    let head = xs.first().expect("non-empty input"); //~ ERROR D3
    if *head > 1_000 {
        panic!("implausible reading"); //~ ERROR D3
    }
    *head
}

/// Public API of a typed-error crate whose callee in the energy fixture
/// panics: the panic site (not this line) is the D8 finding.
pub fn report_frame(raw: f64) -> f64 {
    front_frame(raw)
}

/// Same shape, but the callee's panic is waived in the allowlist — the
/// exact-set harness proves the waiver absorbs exactly that finding.
pub fn emergency_vent(raw: f64) -> f64 {
    vent_heat(raw)
}

#[cfg(test)]
mod tests {
    // Test code is exempt from D3: no marker, and the harness's
    // exact-set comparison fails if the lint flags this line anyway.
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(super::first(&[1]), Some(&1).copied().unwrap());
    }
}
