//! Fixture: float fold-order hazards (rule D7). Each marked line hides
//! or forks a reduction/rounding order in a deterministic crate.
//!
//! This file is test data for origin-lint — it is never compiled.

/// Turbofish float sum: the reduction order is the library's, not ours.
pub fn total_uw(samples: &[f64]) -> f64 {
    samples.iter().copied().sum::<f64>() //~ ERROR D7
}

/// Context-typed float sum (no turbofish): caught by the statement scan.
pub fn mean_uw(samples: &[f64]) -> f64 {
    let total: f64 = samples.iter().copied().sum(); //~ ERROR D7
    total / samples.len() as f64
}

/// Float product behind the same order-hiding adapter.
pub fn attenuation(factors: &[f64]) -> f64 {
    factors.iter().copied().product::<f64>() //~ ERROR D7
}

/// Float fold: ordered today, but the association hides in a closure.
pub fn charge_integral(deltas: &[f64]) -> f64 {
    let joules: f64 = deltas.iter().fold(0.0, |acc, d| acc + d); //~ ERROR D7
    joules
}

/// FMA: one rounding instead of two, forking results by target CPU.
pub fn fused_step(v: f64, dv: f64, dt: f64) -> f64 {
    dv.mul_add(dt, v) //~ ERROR D7
}

/// Float sort with a non-total order: NaN tie handling is unspecified.
pub fn rank_cells(levels: &mut [f64]) {
    levels.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite")); //~ ERROR D7
}

/// A D7 violation that is *waived*: the fixture allowlist masks this
/// line via the unique `raw_uw` identifier, so it carries no marker.
pub fn debug_total(raw_uw: &[f64]) -> f64 {
    raw_uw.iter().copied().sum::<f64>()
}
