//! Fixture: a crate root missing both mandatory strictness attributes. //~ ERROR D5
//!
//! It also hosts the panic witnesses for the call-graph rules: energy is
//! *not* a typed-error crate, so panics here are never D3 — they only
//! surface when a call chain makes them someone else's problem (D6 from
//! a hot kernel, D8 from a typed-error crate's public API).
//!
//! This file is test data for origin-lint — it is never compiled.

/// Harmless content; the violation is what the root *lacks*.
pub fn joules(uj: f64) -> f64 {
    uj * 1e-6
}

/// Reached from the *private* hot kernel `hot_tick` in the nn fixture:
/// panicking here breaks transitive hot-path purity (D6's panic arm —
/// not D3, because energy is not typed-error, and not D8, because the
/// only caller is private).
pub fn drain_cell(charge: f64) -> f64 {
    let level = Some(charge).expect("charge present"); //~ ERROR D6
    level * 0.5
}

/// Reached from `report_frame`, a public function of the typed-error
/// core fixture crate: the panic leaks past a typed-error API — D8.
pub fn front_frame(raw: f64) -> f64 {
    let v = Some(raw).expect("frame present"); //~ ERROR D8
    v + 1.0
}

/// Reachable and panicking, but *waived*: the fixture allowlist masks
/// this line by its unique expect message, so it carries no marker.
pub fn vent_heat(raw: f64) -> f64 {
    let v = Some(raw).expect("vent is open");
    v * 0.9
}
