//! Fixture: a crate root missing both mandatory strictness attributes. //~ ERROR D5
//!
//! This file is test data for origin-lint — it is never compiled.

/// Harmless content; the violation is what the root *lacks*.
pub fn joules(uj: f64) -> f64 {
    uj * 1e-6
}
