#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Fixture: a clean crate whose only findings are D9 drift against the
//! committed `lint-api.txt` snapshot beside this tree — one addition
//! (`added_later`), one waived addition (`added_but_waived`), and one
//! removal (the snapshot's `retired_fn` line, which has no source line
//! to annotate, so the D9 test pins it explicitly).
//!
//! This file is test data for origin-lint — it is never compiled.

/// In the snapshot: no drift.
pub fn kept(x: u64) -> u64 {
    x
}

/// Not in the snapshot: surfaces as a D9 addition at this line.
pub fn added_later(x: u64) -> u64 {
    x + 1
}

/// Not in the snapshot either, but waived by the allowlist beside this
/// tree: masked-by-waiver D9 case.
pub fn added_but_waived(x: u64) -> u64 {
    x + 2
}
