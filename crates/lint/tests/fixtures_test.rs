//! Self-tests over the fixture corpus in `tests/fixtures/`.
//!
//! Every seeded violation in a fixture source file is annotated in place
//! with a trailing `//~ ERROR D<id>` marker (the rustc UI-test
//! convention). The harness collects the expected `(file, line, rule)`
//! triples from those markers, runs the real lint pipeline over the
//! fixture workspace, and asserts the two sets are *identical* — so a
//! rule that under-reports, over-reports, or fires in `#[cfg(test)]`
//! regions fails these tests, not just one that misses entirely.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

/// A deduplicated `(relative file, line, rule)` triple. One source line
/// can legitimately produce several findings of the same rule (e.g.
/// `std::time::Instant::now()` matches both the `std::time` path and the
/// `Instant` identifier), so both sides collapse through this key.
type Key = (String, usize, String);

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Scans every fixture source file for `//~ ERROR D<id>` markers.
fn expected_keys(root: &Path) -> BTreeSet<Key> {
    let mut keys = BTreeSet::new();
    for file in origin_lint::workspace::collect_sources(root).expect("fixture tree walks") {
        let src = fs::read_to_string(&file.abs).expect("fixture file reads");
        for (idx, text) in src.lines().enumerate() {
            if let Some(pos) = text.find("//~ ERROR ") {
                let rule = text[pos + "//~ ERROR ".len()..]
                    .split_whitespace()
                    .next()
                    .expect("marker names a rule");
                keys.insert((file.rel.clone(), idx + 1, rule.to_string()));
            }
        }
    }
    keys
}

/// Runs the lint over a fixture workspace and collapses the findings.
fn actual_keys(root: &Path) -> BTreeSet<Key> {
    let report = origin_lint::run(root, &root.join("lint-allow.toml")).expect("lint runs");
    report
        .findings
        .iter()
        .map(|f| (f.file.clone(), f.line as usize, f.rule.to_string()))
        .collect()
}

/// Asserts expected == actual for one rule, and that the fixture
/// actually seeds at least one violation of it.
fn assert_rule(rule: &str) {
    let root = fixture_root("violations");
    let want: BTreeSet<Key> = expected_keys(&root)
        .into_iter()
        .filter(|(_, _, r)| r == rule)
        .collect();
    let got: BTreeSet<Key> = actual_keys(&root)
        .into_iter()
        .filter(|(_, _, r)| r == rule)
        .collect();
    assert!(!want.is_empty(), "fixture seeds no {rule} violations");
    assert_eq!(want, got, "{rule}: annotated lines and findings differ");
}

#[test]
fn d1_ambient_nondeterminism_is_reported() {
    assert_rule("D1");
}

#[test]
fn d2_hash_collections_are_reported() {
    assert_rule("D2");
}

#[test]
fn d3_panics_in_library_code_are_reported() {
    assert_rule("D3");
}

#[test]
fn d4_allocations_in_hot_paths_are_reported() {
    assert_rule("D4");
}

#[test]
fn d5_missing_root_attrs_are_reported() {
    assert_rule("D5");
}

#[test]
fn findings_match_annotations_exactly() {
    // The global comparison: nothing beyond the annotated lines may
    // fire (this is what proves `#[cfg(test)]` masking and the
    // cold-path/hot-path split work).
    let root = fixture_root("violations");
    assert_eq!(expected_keys(&root), actual_keys(&root));
}

#[test]
fn stale_waivers_surface_as_findings() {
    let root = fixture_root("stale");
    let report = origin_lint::run(&root, &root.join("lint-allow.toml")).expect("lint runs");
    assert_eq!(report.allowed, 0, "nothing real to waive in this fixture");
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].rule, "ALLOW");
    assert!(report.findings[0].message.contains("stale waiver"));
}

#[test]
fn binary_exits_nonzero_on_violations() {
    let root = fixture_root("violations");
    let out = Command::new(env!("CARGO_BIN_EXE_origin-lint"))
        .args(["--root"])
        .arg(&root)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "violations must fail the gate");
}

#[test]
fn binary_json_mode_emits_machine_output() {
    let root = fixture_root("violations");
    let out = Command::new(env!("CARGO_BIN_EXE_origin-lint"))
        .args(["--json", "--root"])
        .arg(&root)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).expect("utf-8 report");
    assert!(stdout.trim_start().starts_with('{'), "not JSON: {stdout}");
    assert!(
        stdout.contains("\"rule\":\"D1\""),
        "missing D1 entry: {stdout}"
    );
}
