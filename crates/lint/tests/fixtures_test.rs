//! Self-tests over the fixture corpus in `tests/fixtures/`.
//!
//! Every seeded violation in a fixture source file is annotated in place
//! with a trailing `//~ ERROR D<id>` marker (the rustc UI-test
//! convention). The harness collects the expected `(file, line, rule)`
//! triples from those markers, runs the real lint pipeline over the
//! fixture workspace, and asserts the two sets are *identical* — so a
//! rule that under-reports, over-reports, or fires in `#[cfg(test)]`
//! regions fails these tests, not just one that misses entirely.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

/// A deduplicated `(relative file, line, rule)` triple. One source line
/// can legitimately produce several findings of the same rule (e.g.
/// `std::time::Instant::now()` matches both the `std::time` path and the
/// `Instant` identifier), so both sides collapse through this key.
type Key = (String, usize, String);

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Scans every fixture source file for `//~ ERROR D<id>` markers.
fn expected_keys(root: &Path) -> BTreeSet<Key> {
    let mut keys = BTreeSet::new();
    for file in origin_lint::workspace::collect_sources(root).expect("fixture tree walks") {
        let src = fs::read_to_string(&file.abs).expect("fixture file reads");
        for (idx, text) in src.lines().enumerate() {
            if let Some(pos) = text.find("//~ ERROR ") {
                let rule = text[pos + "//~ ERROR ".len()..]
                    .split_whitespace()
                    .next()
                    .expect("marker names a rule");
                keys.insert((file.rel.clone(), idx + 1, rule.to_string()));
            }
        }
    }
    keys
}

/// Runs the lint over a fixture workspace and collapses the findings.
fn actual_keys(root: &Path) -> BTreeSet<Key> {
    let report = origin_lint::run(root, &root.join("lint-allow.toml")).expect("lint runs");
    report
        .findings
        .iter()
        .map(|f| (f.file.clone(), f.line as usize, f.rule.to_string()))
        .collect()
}

/// Asserts expected == actual for one rule, and that the fixture
/// actually seeds at least one violation of it.
fn assert_rule(rule: &str) {
    let root = fixture_root("violations");
    let want: BTreeSet<Key> = expected_keys(&root)
        .into_iter()
        .filter(|(_, _, r)| r == rule)
        .collect();
    let got: BTreeSet<Key> = actual_keys(&root)
        .into_iter()
        .filter(|(_, _, r)| r == rule)
        .collect();
    assert!(!want.is_empty(), "fixture seeds no {rule} violations");
    assert_eq!(want, got, "{rule}: annotated lines and findings differ");
}

#[test]
fn d1_ambient_nondeterminism_is_reported() {
    assert_rule("D1");
}

#[test]
fn d2_hash_collections_are_reported() {
    assert_rule("D2");
}

#[test]
fn d3_panics_in_library_code_are_reported() {
    assert_rule("D3");
}

#[test]
fn d4_allocations_in_hot_paths_are_reported() {
    assert_rule("D4");
}

#[test]
fn d5_missing_root_attrs_are_reported() {
    assert_rule("D5");
}

#[test]
fn findings_match_annotations_exactly() {
    // The global comparison: nothing beyond the annotated lines may
    // fire (this is what proves `#[cfg(test)]` masking and the
    // cold-path/hot-path split work).
    let root = fixture_root("violations");
    assert_eq!(expected_keys(&root), actual_keys(&root));
}

#[test]
fn d6_transitive_hot_path_allocations_are_reported() {
    assert_rule("D6");
}

#[test]
fn d7_float_fold_order_hazards_are_reported() {
    assert_rule("D7");
}

#[test]
fn d8_reachable_panics_past_typed_error_apis_are_reported() {
    assert_rule("D8");
}

#[test]
fn fixture_waivers_absorb_exactly_the_three_masked_findings() {
    // One deliberately waived violation per call-graph-era rule
    // (D6/D7/D8) is seeded without a marker; the exact-set tests above
    // prove those lines do not surface, and this count proves the
    // waivers matched something (i.e. none of them is stale).
    let root = fixture_root("violations");
    let report = origin_lint::run(&root, &root.join("lint-allow.toml")).expect("lint runs");
    assert_eq!(
        report.allowed, 3,
        "expected exactly the D6/D7/D8 waivers to fire"
    );
    assert!(
        report.findings.iter().all(|f| f.rule != "ALLOW"),
        "no waiver may be stale in the violations fixture"
    );
}

#[test]
fn d6_findings_carry_the_full_call_chain() {
    let root = fixture_root("violations");
    let report = origin_lint::run(&root, &root.join("lint-allow.toml")).expect("lint runs");
    let deep = report
        .findings
        .iter()
        .find(|f| f.rule == "D6" && f.file.ends_with("scratch.rs") && f.snippet.contains("vec!"))
        .expect("the grow_tail allocation is a D6 finding");
    assert_eq!(
        deep.chain,
        vec![
            "crates/nn/src/kernel.rs::hot_loop".to_string(),
            "crates/nn/src/scratch.rs::fill_scratch".to_string(),
            "crates/nn/src/scratch.rs::grow_tail".to_string(),
        ],
        "three-hop chain must be reported root-first"
    );
    let panic_leak = report
        .findings
        .iter()
        .find(|f| f.rule == "D6" && f.snippet.contains("charge present"))
        .expect("the drain_cell panic is a D6 finding");
    assert_eq!(
        panic_leak.chain,
        vec![
            "crates/nn/src/kernel.rs::hot_tick".to_string(),
            "crates/energy/src/lib.rs::drain_cell".to_string(),
        ]
    );
}

#[test]
fn d9_api_drift_reports_additions_and_removals() {
    let root = fixture_root("api-drift");
    let report = origin_lint::run(&root, &root.join("lint-allow.toml")).expect("lint runs");
    assert_eq!(report.allowed, 1, "the waived addition must be absorbed");
    assert_eq!(
        report.findings.len(),
        2,
        "one addition + one removal: {:#?}",
        report.findings
    );
    let addition = report
        .findings
        .iter()
        .find(|f| f.file == "crates/types/src/lib.rs")
        .expect("addition anchors at the new pub item's source line");
    assert_eq!(addition.rule, "D9");
    assert!(
        addition.message.contains("added_later"),
        "{}",
        addition.message
    );
    let removal = report
        .findings
        .iter()
        .find(|f| f.file == "lint-api.txt")
        .expect("removal anchors in the snapshot file");
    assert_eq!(removal.rule, "D9");
    assert_eq!(
        removal.line, 6,
        "retired_fn sits on line 6 of the fixture snapshot"
    );
    assert!(
        removal.snippet.contains("retired_fn"),
        "{}",
        removal.snippet
    );
}

#[test]
fn stale_waivers_surface_as_findings() {
    let root = fixture_root("stale");
    let report = origin_lint::run(&root, &root.join("lint-allow.toml")).expect("lint runs");
    assert_eq!(report.allowed, 0, "nothing real to waive in this fixture");
    assert_eq!(
        report.findings.len(),
        5,
        "one stale waiver per rule generation (D3/D6/D7/D8/D9)"
    );
    for f in &report.findings {
        assert_eq!(f.rule, "ALLOW");
        assert!(f.message.contains("stale waiver"), "{}", f.message);
    }
}

#[test]
fn binary_exits_nonzero_on_violations() {
    let root = fixture_root("violations");
    let out = Command::new(env!("CARGO_BIN_EXE_origin-lint"))
        .args(["--root"])
        .arg(&root)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "violations must fail the gate");
}

#[test]
fn json_schema_is_pinned_for_a_transitive_finding() {
    // Golden test for the machine-readable schema documented in
    // DESIGN.md §10: every key, the key order, and the root-first chain
    // are part of the contract consumed by scripts/check.sh and CI.
    let root = fixture_root("violations");
    let report = origin_lint::run(&root, &root.join("lint-allow.toml")).expect("lint runs");
    let deep = report
        .findings
        .iter()
        .find(|f| f.rule == "D6" && f.snippet.contains("vec!"))
        .expect("the grow_tail allocation is a D6 finding");
    let golden = concat!(
        "{\"rule\":\"D6\",",
        "\"file\":\"crates/nn/src/scratch.rs\",",
        "\"line\":21,\"col\":16,",
        "\"snippet\":\"let tail = vec![0.0; n]; //~ ERROR D6\",",
        "\"message\":\"`vec!` allocates — in `crates/nn/src/scratch.rs::grow_tail`, ",
        "reachable from hot kernel `crates/nn/src/kernel.rs::hot_loop`\",",
        "\"chain\":[\"crates/nn/src/kernel.rs::hot_loop\",",
        "\"crates/nn/src/scratch.rs::fill_scratch\",",
        "\"crates/nn/src/scratch.rs::grow_tail\"]}"
    );
    assert_eq!(deep.render_json(), golden);

    // The binary embeds the same object in its report, and the summary
    // carries per-rule counts.
    let out = Command::new(env!("CARGO_BIN_EXE_origin-lint"))
        .args(["--json", "--root"])
        .arg(&root)
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 report");
    assert!(
        stdout.contains(golden),
        "golden object missing from {stdout}"
    );
    assert!(
        stdout.contains("\"by_rule\":{"),
        "summary lacks by_rule: {stdout}"
    );
    assert!(stdout.contains("\"D6\":"), "by_rule lacks D6: {stdout}");
}

#[test]
fn binary_json_mode_emits_machine_output() {
    let root = fixture_root("violations");
    let out = Command::new(env!("CARGO_BIN_EXE_origin-lint"))
        .args(["--json", "--root"])
        .arg(&root)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).expect("utf-8 report");
    assert!(stdout.trim_start().starts_with('{'), "not JSON: {stdout}");
    assert!(
        stdout.contains("\"rule\":\"D1\""),
        "missing D1 entry: {stdout}"
    );
}
