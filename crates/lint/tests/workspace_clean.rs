//! The real workspace must lint clean with the committed allowlist.
//!
//! This is the test CI leans on: any new `Instant::now()`, `HashMap`,
//! stray `unwrap()` in a typed-error crate, allocation in a declared
//! kernel, or missing crate-root attribute fails the suite — unless a
//! waiver with a written reason lands in `lint-allow.toml` in the same
//! change.

use std::path::Path;

#[test]
fn workspace_lints_clean_with_committed_allowlist() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report =
        origin_lint::run(&root, &root.join("lint-allow.toml")).expect("workspace lint runs");
    let rendered: Vec<String> = report
        .findings
        .iter()
        .map(|f| format!("{}:{} [{}] {}", f.file, f.line, f.rule, f.message))
        .collect();
    assert!(
        report.findings.is_empty(),
        "workspace has unwaived lint findings:\n{}",
        rendered.join("\n")
    );
    // Sanity: the walk actually covered the workspace and the committed
    // waivers are all live (stale ones would have failed above).
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
    assert!(report.allowed > 0, "allowlist unexpectedly unused");
}
