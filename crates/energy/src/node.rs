//! The per-node energy state machine stepped by the simulator.

use crate::capacitor::{Capacitor, ChargeFlows};
use crate::costs::{DutyState, EnergyCostTable};
use crate::harvester::Harvester;
use crate::nvp::{InferenceJob, Nvp};
use origin_trace::PowerSource;
use origin_types::{Energy, SimTime};

/// Result of driving an inference attempt for one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttemptOutcome {
    /// The inference finished this step; a classification is available.
    Completed,
    /// Energy ran out mid-inference but the NVP checkpointed the progress;
    /// the job will resume on the next attempt.
    Suspended,
    /// Energy ran out and the processor is volatile — all progress was
    /// lost (Fig. 1a's "always trying and failing" regime).
    FailedLostProgress,
    /// No energy at all could be invested this step (cold capacitor).
    NotStarted,
}

impl AttemptOutcome {
    /// Whether the attempt produced a usable classification.
    #[must_use]
    pub fn is_complete(self) -> bool {
        matches!(self, AttemptOutcome::Completed)
    }
}

/// Energy bookkeeping counters accumulated by an [`EnergyNode`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NodeCounters {
    /// Inference attempts that completed.
    pub completed: u64,
    /// Attempts suspended with progress preserved.
    pub suspended: u64,
    /// Attempts that lost progress (volatile processor).
    pub lost: u64,
    /// Steps where a duty cost could not be fully paid (brownout).
    pub brownouts: u64,
    /// Total energy captured into the capacitor (post-efficiency,
    /// pre-clipping losses excluded).
    pub harvested: Energy,
    /// Total energy drawn for duties, inference, radio, checkpoints.
    pub consumed: Energy,
    /// Total energy offered by the harvester front-end (pre-efficiency).
    pub offered: Energy,
    /// Total energy lost to imperfect charge efficiency.
    pub charge_loss: Energy,
    /// Total post-efficiency energy rejected at capacity.
    pub clipped: Energy,
    /// Total self-discharge leakage out of the capacitor.
    pub leaked: Energy,
}

impl NodeCounters {
    /// Mean power consumed over `span` — the "average power" figure the
    /// paper's abstract compares systems at.
    ///
    /// # Panics
    ///
    /// Panics when `span` is zero.
    #[must_use]
    pub fn mean_consumed_power(&self, span: origin_types::SimDuration) -> origin_types::Power {
        self.consumed.average_power(span)
    }
}

/// Energy-flow decomposition of the most recent [`EnergyNode::advance`]
/// call, in the terms the energy ledger audits: the harvest split
/// (offered = gain + charge loss + clipped), the duty draw and the slot
/// leakage.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AdvanceFlows {
    /// Energy offered by the harvester front-end (pre-efficiency).
    pub offered: Energy,
    /// Energy actually stored into the capacitor.
    pub stored_gain: Energy,
    /// Energy lost to imperfect charge efficiency.
    pub charge_loss: Energy,
    /// Post-efficiency energy rejected at capacity.
    pub clipped: Energy,
    /// Self-discharge over the advanced span.
    pub leaked: Energy,
    /// Energy drawn for the duty state (full cost, or the brownout
    /// remainder).
    pub duty_drawn: Energy,
}

/// One sensor node's complete energy model: harvester → capacitor → loads.
///
/// The node knows nothing about scheduling or classification — policies
/// decide *when* to attempt and the NN crate decides *what* an inference
/// costs; this type only enforces energy feasibility.
#[derive(Debug, Clone)]
pub struct EnergyNode<S> {
    harvester: Harvester<S>,
    capacitor: Capacitor,
    nvp: Nvp,
    costs: EnergyCostTable,
    job: Option<InferenceJob>,
    job_resumed: bool,
    counters: NodeCounters,
    last_advance: AdvanceFlows,
}

impl<S: PowerSource> EnergyNode<S> {
    /// Assembles a node from its energy components.
    #[must_use]
    pub fn new(
        harvester: Harvester<S>,
        capacitor: Capacitor,
        nvp: Nvp,
        costs: EnergyCostTable,
    ) -> Self {
        Self {
            harvester,
            capacitor,
            nvp,
            costs,
            job: None,
            job_resumed: false,
            counters: NodeCounters::default(),
            last_advance: AdvanceFlows::default(),
        }
    }

    /// Currently stored energy.
    #[must_use]
    pub fn stored(&self) -> Energy {
        self.capacitor.stored()
    }

    /// The node's cost table.
    #[must_use]
    pub fn costs(&self) -> &EnergyCostTable {
        &self.costs
    }

    /// The harvester front-end.
    #[must_use]
    pub fn harvester(&self) -> &Harvester<S> {
        &self.harvester
    }

    /// Accumulated counters.
    #[must_use]
    pub fn counters(&self) -> NodeCounters {
        self.counters
    }

    /// Energy-flow decomposition of the most recent
    /// [`EnergyNode::advance`] call (all zero before the first call).
    #[must_use]
    pub fn last_advance(&self) -> AdvanceFlows {
        self.last_advance
    }

    /// Whether a checkpointed partial inference is pending.
    #[must_use]
    pub fn has_pending_job(&self) -> bool {
        self.job.is_some()
    }

    /// Progress of the pending job in `[0, 1]`, or `None` when idle.
    #[must_use]
    pub fn pending_progress(&self) -> Option<f64> {
        self.job.as_ref().map(InferenceJob::progress)
    }

    /// Advances the node over `[from, to)`: harvests into the capacitor,
    /// pays the duty cost, applies leakage. Returns `true` when the duty
    /// cost was fully covered (a browned-out `Sense` produces no usable
    /// window).
    pub fn advance(&mut self, from: SimTime, to: SimTime, duty: DutyState) -> bool {
        let harvested = self.harvester.harvest_between(from, to);
        let ChargeFlows {
            offered,
            stored_gain,
            charge_loss,
            clipped,
        } = self.capacitor.charge_accounted(harvested);
        self.counters.harvested += stored_gain;
        let duty_cost = self.costs.duty_cost(duty);
        let paid = self.capacitor.try_draw(duty_cost);
        let duty_drawn = if paid {
            duty_cost
        } else {
            // Brownout: the duty consumes whatever is left.
            self.counters.brownouts += 1;
            self.capacitor.draw_up_to(duty_cost)
        };
        self.counters.consumed += duty_drawn;
        let leaked = if to > from {
            self.capacitor.leak_accounted(to - from)
        } else {
            Energy::ZERO
        };
        self.counters.offered += offered;
        self.counters.charge_loss += charge_loss;
        self.counters.clipped += clipped;
        self.counters.leaked += leaked;
        self.last_advance = AdvanceFlows {
            offered,
            stored_gain,
            charge_loss,
            clipped,
            leaked,
            duty_drawn,
        };
        paid
    }

    /// Drives an inference needing `cost` energy for one step.
    ///
    /// Starts a new job (or resumes a checkpointed one, paying the restore
    /// cost) and invests all affordable energy. On exhaustion the job is
    /// checkpointed (NVP) or discarded (volatile).
    ///
    /// # Panics
    ///
    /// Panics when `cost` is not positive, or when a pending job was
    /// created for a different `cost` (policies must abandon a stale job
    /// before switching models).
    pub fn attempt_inference(&mut self, cost: Energy) -> AttemptOutcome {
        let mut job = match self.job.take() {
            Some(job) => {
                assert!(
                    (job.required().as_microjoules() - cost.as_microjoules()).abs() < 1e-9,
                    "pending job requires {} but attempt supplies {}; abandon first",
                    job.required(),
                    cost
                );
                // Resuming a checkpoint costs restore energy.
                if !self.capacitor.try_draw(self.costs.restore) {
                    self.job = Some(job);
                    return AttemptOutcome::NotStarted;
                }
                self.counters.consumed += self.costs.restore;
                self.job_resumed = true;
                job
            }
            None => {
                self.job_resumed = false;
                InferenceJob::new(cost)
            }
        };

        let invested = self.capacitor.draw_up_to(job.remaining());
        self.counters.consumed += invested;
        if invested == Energy::ZERO && job.invested() == Energy::ZERO {
            // Could not even begin.
            return AttemptOutcome::NotStarted;
        }
        if job.invest(invested) {
            self.counters.completed += 1;
            return AttemptOutcome::Completed;
        }
        // Out of energy mid-inference: checkpoint or lose.
        // The checkpoint itself costs energy (best effort — losing the race
        // to a dying supply is exactly what adaptive checkpointing guards
        // against; we model the optimistic case).
        self.counters.consumed += self.capacitor.draw_up_to(self.costs.checkpoint);
        match self.nvp.suspend(job) {
            Some(job) => {
                self.job = Some(job);
                self.counters.suspended += 1;
                AttemptOutcome::Suspended
            }
            None => {
                self.counters.lost += 1;
                AttemptOutcome::FailedLostProgress
            }
        }
    }

    /// Discards any checkpointed job (the policy moved to a new window and
    /// the stale partial inference is no longer useful).
    pub fn abandon_job(&mut self) {
        self.job = None;
    }

    /// One whole-window inference attempt on *fresh* window data.
    ///
    /// Unlike [`EnergyNode::attempt_inference`], partial progress is
    /// useless here — the next window carries different sensor data — so
    /// the outcome is binary:
    ///
    /// * with an NVP, a failed attempt costs only the checkpoint overhead:
    ///   the processor rides through the brownout and the capacitor keeps
    ///   its charge (atomic semantics at window granularity);
    /// * with a volatile processor, a failed attempt wastes *all* stored
    ///   energy — the "always trying and failing" regime the paper's
    ///   motivation section describes.
    ///
    /// Returns whether the inference completed.
    ///
    /// # Panics
    ///
    /// Panics when `cost` is not positive.
    pub fn attempt_window(&mut self, cost: Energy) -> bool {
        assert!(cost > Energy::ZERO, "inference cost must be positive");
        if self.capacitor.try_draw(cost) {
            self.counters.completed += 1;
            self.counters.consumed += cost;
            return true;
        }
        if self.nvp.preserves_progress() {
            self.counters.consumed += self.capacitor.draw_up_to(self.costs.checkpoint);
            self.counters.suspended += 1;
        } else {
            let wasted = self.capacitor.stored();
            self.counters.consumed += self.capacitor.draw_up_to(wasted);
            self.counters.lost += 1;
        }
        false
    }

    /// Pays an ancillary cost (radio, etc.); returns whether it was
    /// affordable (atomic, like [`Capacitor::try_draw`]).
    pub fn pay(&mut self, cost: Energy) -> bool {
        let paid = self.capacitor.try_draw(cost);
        if paid {
            self.counters.consumed += cost;
        }
        paid
    }

    /// Whether `cost` is currently affordable on top of nothing else.
    #[must_use]
    pub fn can_afford(&self, cost: Energy) -> bool {
        self.capacitor.stored() >= cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use origin_trace::ConstantPower;
    use origin_types::Power;

    fn uj(v: f64) -> Energy {
        Energy::from_microjoules(v)
    }

    fn node(power_uw: f64, cap_uj: f64, nvp: Nvp) -> EnergyNode<ConstantPower> {
        EnergyNode::new(
            Harvester::new(ConstantPower::new(Power::from_microwatts(power_uw)), 1.0),
            Capacitor::new(uj(cap_uj)),
            nvp,
            EnergyCostTable::default(),
        )
    }

    #[test]
    fn advance_accumulates_and_pays_duty() {
        let mut n = node(100.0, 1000.0, Nvp::default());
        // 100uW over 500ms = 50uJ; sleep costs 0.8, leak 0.5uW*0.5s=0.25.
        let paid = n.advance(SimTime::ZERO, SimTime::from_millis(500), DutyState::Sleep);
        assert!(paid);
        let stored = n.stored().as_microjoules();
        assert!(
            (stored - (50.0 - 0.8 - 0.25)).abs() < 1e-9,
            "stored={stored}"
        );
    }

    #[test]
    fn advance_flows_balance_the_stored_delta() {
        let mut n = node(100.0, 30.0, Nvp::default());
        let before = n.stored();
        let paid = n.advance(SimTime::ZERO, SimTime::from_secs(1), DutyState::Sense);
        assert!(paid);
        let flows = n.last_advance();
        // 100 µJ offered; the 30 µJ capacitor clips most of it.
        assert!(flows.offered > flows.stored_gain);
        assert!(flows.clipped > Energy::ZERO);
        let expected = before + flows.stored_gain - flows.duty_drawn - flows.leaked;
        assert!(
            (n.stored().as_microjoules() - expected.as_microjoules()).abs() < 1e-12,
            "stored {} vs expected {expected}",
            n.stored()
        );
        let split = flows.stored_gain + flows.charge_loss + flows.clipped;
        assert!((split.as_microjoules() - flows.offered.as_microjoules()).abs() < 1e-12);
        let c = n.counters();
        assert_eq!(c.offered, flows.offered);
        assert_eq!(c.clipped, flows.clipped);
        assert_eq!(c.leaked, flows.leaked);
    }

    #[test]
    fn brownout_is_counted_and_drains() {
        let mut n = node(1.0, 1000.0, Nvp::default());
        let paid = n.advance(SimTime::ZERO, SimTime::from_millis(500), DutyState::Sense);
        assert!(!paid);
        assert_eq!(n.counters().brownouts, 1);
        assert_eq!(n.stored(), Energy::ZERO);
    }

    #[test]
    fn inference_completes_when_affordable() {
        let mut n = node(0.0, 1000.0, Nvp::default());
        n.capacitor.charge(uj(200.0));
        assert_eq!(n.attempt_inference(uj(90.0)), AttemptOutcome::Completed);
        assert!((n.stored().as_microjoules() - 110.0).abs() < 1e-9);
        assert_eq!(n.counters().completed, 1);
        assert!(!n.has_pending_job());
    }

    #[test]
    fn nvp_checkpoints_partial_progress() {
        let mut n = node(0.0, 1000.0, Nvp::non_volatile());
        n.capacitor.charge(uj(40.0));
        assert_eq!(n.attempt_inference(uj(90.0)), AttemptOutcome::Suspended);
        assert!(n.has_pending_job());
        let progress = n.pending_progress().unwrap();
        assert!((progress - 40.0 / 90.0).abs() < 1e-9);
        // Top up and resume: needs restore (1.0) + remaining (50).
        n.capacitor.charge(uj(60.0));
        assert_eq!(n.attempt_inference(uj(90.0)), AttemptOutcome::Completed);
        assert_eq!(n.counters().completed, 1);
        assert_eq!(n.counters().suspended, 1);
    }

    #[test]
    fn volatile_processor_loses_progress() {
        let mut n = node(0.0, 1000.0, Nvp::volatile());
        n.capacitor.charge(uj(40.0));
        assert_eq!(
            n.attempt_inference(uj(90.0)),
            AttemptOutcome::FailedLostProgress
        );
        assert!(!n.has_pending_job());
        assert_eq!(n.counters().lost, 1);
        // All 40uJ were wasted.
        assert_eq!(n.stored(), Energy::ZERO);
    }

    #[test]
    fn cold_capacitor_does_not_start() {
        let mut n = node(0.0, 1000.0, Nvp::default());
        assert_eq!(n.attempt_inference(uj(90.0)), AttemptOutcome::NotStarted);
        assert!(!n.has_pending_job());
        assert_eq!(n.counters().completed, 0);
    }

    #[test]
    fn resume_requires_restore_energy() {
        let mut n = node(0.0, 1000.0, Nvp::non_volatile());
        n.capacitor.charge(uj(40.0));
        assert_eq!(n.attempt_inference(uj(90.0)), AttemptOutcome::Suspended);
        // Nothing left: resume cannot even pay the restore cost.
        assert_eq!(n.attempt_inference(uj(90.0)), AttemptOutcome::NotStarted);
        assert!(n.has_pending_job(), "job must survive a failed resume");
    }

    #[test]
    fn abandon_discards_job() {
        let mut n = node(0.0, 1000.0, Nvp::non_volatile());
        n.capacitor.charge(uj(40.0));
        let _ = n.attempt_inference(uj(90.0));
        n.abandon_job();
        assert!(!n.has_pending_job());
    }

    #[test]
    #[should_panic(expected = "abandon first")]
    fn switching_cost_without_abandon_panics() {
        let mut n = node(0.0, 1000.0, Nvp::non_volatile());
        n.capacitor.charge(uj(40.0));
        let _ = n.attempt_inference(uj(90.0));
        n.capacitor.charge(uj(100.0));
        let _ = n.attempt_inference(uj(120.0));
    }

    #[test]
    fn attempt_window_is_atomic_under_nvp() {
        let mut n = node(0.0, 1000.0, Nvp::non_volatile());
        n.capacitor.charge(uj(50.0));
        assert!(!n.attempt_window(uj(90.0)));
        // Only the checkpoint overhead (1.5uJ) was lost.
        assert!((n.stored().as_microjoules() - 48.5).abs() < 1e-9);
        assert_eq!(n.counters().suspended, 1);
        n.capacitor.charge(uj(50.0));
        assert!(n.attempt_window(uj(90.0)));
        assert_eq!(n.counters().completed, 1);
    }

    #[test]
    fn attempt_window_wastes_everything_when_volatile() {
        let mut n = node(0.0, 1000.0, Nvp::volatile());
        n.capacitor.charge(uj(50.0));
        assert!(!n.attempt_window(uj(90.0)));
        assert_eq!(n.stored(), Energy::ZERO);
        assert_eq!(n.counters().lost, 1);
    }

    #[test]
    #[should_panic(expected = "cost must be positive")]
    fn attempt_window_rejects_zero_cost() {
        let mut n = node(0.0, 1000.0, Nvp::default());
        let _ = n.attempt_window(Energy::ZERO);
    }

    #[test]
    fn pay_and_can_afford() {
        let mut n = node(0.0, 1000.0, Nvp::default());
        n.capacitor.charge(uj(10.0));
        assert!(n.can_afford(uj(10.0)));
        assert!(!n.can_afford(uj(10.1)));
        assert!(n.pay(uj(4.0)));
        assert!(!n.pay(uj(7.0)));
        assert!((n.stored().as_microjoules() - 6.0).abs() < 1e-9);
    }
}
