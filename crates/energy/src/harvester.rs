//! Harvester front-end: RF power in, storable energy out.

use origin_trace::PowerSource;
use origin_types::{Energy, Power, SimTime};

/// An RF harvester front-end wrapping a [`PowerSource`].
///
/// Real rectennas have a conversion efficiency well below one and a
/// rectifier *floor*: incident power below a threshold produces no usable
/// output. Both effects shape how much of a bursty trace is actually
/// capturable — which is exactly why the paper's bursty office trace favors
/// wait-and-accumulate policies.
///
/// ```
/// use origin_energy::Harvester;
/// use origin_trace::ConstantPower;
/// use origin_types::{Power, SimTime};
///
/// let h = Harvester::new(ConstantPower::new(Power::from_microwatts(100.0)), 0.6)
///     .with_floor(Power::from_microwatts(10.0));
/// let e = h.harvest_between(SimTime::ZERO, SimTime::from_secs(1));
/// // (100 - 10) uW * 0.6 over 1 s = 54 uJ
/// assert!((e.as_microjoules() - 54.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Harvester<S> {
    source: S,
    efficiency: f64,
    floor: Power,
}

impl<S: PowerSource> Harvester<S> {
    /// A harvester over `source` with the given conversion efficiency and
    /// no rectifier floor.
    ///
    /// # Panics
    ///
    /// Panics when `efficiency` is outside `(0, 1]`.
    #[must_use]
    pub fn new(source: S, efficiency: f64) -> Self {
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "harvester efficiency must be in (0, 1], got {efficiency}"
        );
        Self {
            source,
            efficiency,
            floor: Power::ZERO,
        }
    }

    /// Sets the rectifier floor: incident power at or below this level
    /// yields nothing, and the floor is subtracted from power above it.
    /// Builder-style.
    #[must_use]
    pub fn with_floor(mut self, floor: Power) -> Self {
        self.floor = floor.clamp_non_negative();
        self
    }

    /// The wrapped power source.
    #[must_use]
    pub fn source(&self) -> &S {
        &self.source
    }

    /// Conversion efficiency.
    #[must_use]
    pub fn efficiency(&self) -> f64 {
        self.efficiency
    }

    /// Usable output power at instant `t`.
    #[must_use]
    pub fn output_power_at(&self, t: SimTime) -> Power {
        let incident = self.source.power_at(t);
        ((incident - self.floor).clamp_non_negative()) * self.efficiency
    }

    /// Storable energy captured over `[from, to)`.
    ///
    /// The floor is applied on the span's *average* incident power. Spans
    /// at or below the trace sampling interval make this exact; the
    /// simulator steps at the HAR window period (≥ the default trace
    /// interval), which keeps the approximation within a few percent and,
    /// more importantly, deterministic.
    #[must_use]
    pub fn harvest_between(&self, from: SimTime, to: SimTime) -> Energy {
        if to <= from {
            return Energy::ZERO;
        }
        let span = to - from;
        let incident = self.source.energy_between(from, to);
        let floored = (incident - self.floor.over(span)).clamp_non_negative();
        floored * self.efficiency
    }

    /// Long-run mean *usable* power, ignoring the floor (upper bound used
    /// only for reporting and pruning budgets).
    #[must_use]
    pub fn mean_output_power(&self) -> Power {
        (self.source.mean_power() - self.floor).clamp_non_negative() * self.efficiency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use origin_trace::{ConstantPower, PowerTrace, TraceSource};
    use origin_types::SimDuration;

    #[test]
    fn efficiency_scales_harvest() {
        let h = Harvester::new(ConstantPower::new(Power::from_microwatts(50.0)), 0.5);
        let e = h.harvest_between(SimTime::ZERO, SimTime::from_secs(2));
        assert!((e.as_microjoules() - 50.0).abs() < 1e-9);
        assert_eq!(h.efficiency(), 0.5);
    }

    #[test]
    fn floor_suppresses_weak_power() {
        let h = Harvester::new(ConstantPower::new(Power::from_microwatts(8.0)), 1.0)
            .with_floor(Power::from_microwatts(10.0));
        let e = h.harvest_between(SimTime::ZERO, SimTime::from_secs(10));
        assert_eq!(e, Energy::ZERO);
        assert_eq!(h.output_power_at(SimTime::ZERO), Power::ZERO);
    }

    #[test]
    fn floor_subtracts_above_threshold() {
        let h = Harvester::new(ConstantPower::new(Power::from_microwatts(110.0)), 1.0)
            .with_floor(Power::from_microwatts(10.0));
        let e = h.harvest_between(SimTime::ZERO, SimTime::from_secs(1));
        assert!((e.as_microjoules() - 100.0).abs() < 1e-9);
        assert!((h.mean_output_power().as_microwatts() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn inverted_span_is_zero() {
        let h = Harvester::new(ConstantPower::new(Power::from_microwatts(50.0)), 1.0);
        assert_eq!(
            h.harvest_between(SimTime::from_secs(1), SimTime::ZERO),
            Energy::ZERO
        );
    }

    #[test]
    fn works_over_trace_sources() {
        let trace =
            PowerTrace::from_microwatts(vec![0.0, 200.0], SimDuration::from_millis(100)).unwrap();
        let h = Harvester::new(TraceSource::looping(trace), 0.5);
        let e = h.harvest_between(SimTime::ZERO, SimTime::from_millis(200));
        assert!((e.as_microjoules() - 10.0).abs() < 1e-9);
        assert_eq!(h.source().trace().len(), 2);
    }

    #[test]
    #[should_panic(expected = "harvester efficiency")]
    fn bad_efficiency_panics() {
        let _ = Harvester::new(ConstantPower::new(Power::ZERO), 1.5);
    }
}
