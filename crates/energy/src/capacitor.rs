//! Bounded energy storage with leakage.

use origin_types::{Energy, Power, SimDuration};

/// A storage capacitor with bounded capacity, charge efficiency and
/// self-discharge leakage.
///
/// All energy flowing into the node lands here first; every operation draws
/// from here. Overcharging is silently clipped at `capacity` (the harvester
/// front-end shunts excess), and the charge can never go negative.
///
/// ```
/// use origin_energy::Capacitor;
/// use origin_types::{Energy, SimDuration};
///
/// let mut cap = Capacitor::new(Energy::from_microjoules(200.0));
/// cap.charge(Energy::from_microjoules(500.0)); // clips at capacity
/// assert_eq!(cap.stored(), Energy::from_microjoules(200.0));
/// assert!(cap.try_draw(Energy::from_microjoules(150.0)));
/// assert!(!cap.try_draw(Energy::from_microjoules(100.0))); // only 50 left
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Capacitor {
    capacity: Energy,
    stored: Energy,
    charge_efficiency: f64,
    leakage: Power,
}

/// Decomposition of one [`Capacitor::charge_accounted`] call into ledger
/// flows. The identity `offered = stored_gain + charge_loss + clipped`
/// holds to within a few ulps — it is exactly what the energy-ledger
/// audit (`origin-telemetry`) checks per slot.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChargeFlows {
    /// Non-negative energy offered to the capacitor (pre-efficiency).
    pub offered: Energy,
    /// Energy actually added to the store.
    pub stored_gain: Energy,
    /// Energy lost to imperfect charge efficiency.
    pub charge_loss: Energy,
    /// Post-efficiency energy rejected at capacity (front-end shunt).
    pub clipped: Energy,
}

impl Capacitor {
    /// A capacitor of the given capacity, starting empty, with ideal
    /// charging and a small default leakage (0.5 µW).
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is not positive.
    #[must_use]
    pub fn new(capacity: Energy) -> Self {
        assert!(
            capacity > Energy::ZERO,
            "capacitor capacity must be positive"
        );
        Self {
            capacity,
            stored: Energy::ZERO,
            charge_efficiency: 1.0,
            leakage: Power::from_microwatts(0.5),
        }
    }

    /// Sets the charge efficiency (fraction of incoming energy actually
    /// stored). Builder-style.
    ///
    /// # Panics
    ///
    /// Panics when `efficiency` is outside `(0, 1]`.
    #[must_use]
    pub fn with_charge_efficiency(mut self, efficiency: f64) -> Self {
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "charge efficiency must be in (0, 1], got {efficiency}"
        );
        self.charge_efficiency = efficiency;
        self
    }

    /// Sets the self-discharge leakage power. Builder-style.
    #[must_use]
    pub fn with_leakage(mut self, leakage: Power) -> Self {
        self.leakage = leakage.clamp_non_negative();
        self
    }

    /// Sets the initial charge (clipped to capacity). Builder-style.
    #[must_use]
    pub fn with_initial_charge(mut self, charge: Energy) -> Self {
        self.stored = charge.clamp_non_negative().min(self.capacity);
        self
    }

    /// Maximum storable energy.
    #[must_use]
    pub fn capacity(&self) -> Energy {
        self.capacity
    }

    /// Currently stored energy.
    #[must_use]
    pub fn stored(&self) -> Energy {
        self.stored
    }

    /// Fraction full, in `[0, 1]`.
    #[must_use]
    pub fn state_of_charge(&self) -> f64 {
        self.stored.as_microjoules() / self.capacity.as_microjoules()
    }

    /// Adds harvested energy (after charge efficiency), clipping at
    /// capacity. Returns the energy actually stored.
    pub fn charge(&mut self, incoming: Energy) -> Energy {
        self.charge_accounted(incoming).stored_gain
    }

    /// [`Capacitor::charge`] with a full flow decomposition for the energy
    /// ledger. The stored-energy arithmetic is the identical expression
    /// sequence, so instrumented and plain runs stay byte-for-byte equal.
    pub fn charge_accounted(&mut self, incoming: Energy) -> ChargeFlows {
        let offered = incoming.clamp_non_negative();
        let effective = offered * self.charge_efficiency;
        let before = self.stored;
        self.stored = (self.stored + effective).min(self.capacity);
        let stored_gain = self.stored - before;
        ChargeFlows {
            offered,
            stored_gain,
            charge_loss: offered - effective,
            clipped: effective - stored_gain,
        }
    }

    /// Draws `amount` if fully available; returns whether the draw
    /// happened. Partial draws never occur through this method — operations
    /// are atomic at the energy level.
    pub fn try_draw(&mut self, amount: Energy) -> bool {
        let amount = amount.clamp_non_negative();
        if self.stored >= amount {
            self.stored -= amount;
            true
        } else {
            false
        }
    }

    /// Draws up to `amount`, returning how much was actually drawn. Used by
    /// the NVP to invest whatever energy is available into partial
    /// inference progress.
    pub fn draw_up_to(&mut self, amount: Energy) -> Energy {
        let drawn = self.stored.min(amount.clamp_non_negative());
        self.stored -= drawn;
        drawn
    }

    /// Applies self-discharge over `span`.
    pub fn leak(&mut self, span: SimDuration) {
        let _ = self.leak_accounted(span);
    }

    /// [`Capacitor::leak`] returning the energy actually lost (leakage is
    /// floored at an empty store, so the loss can be below `leakage × span`).
    pub fn leak_accounted(&mut self, span: SimDuration) -> Energy {
        let before = self.stored;
        self.stored = (self.stored - self.leakage.over(span)).clamp_non_negative();
        before - self.stored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uj(v: f64) -> Energy {
        Energy::from_microjoules(v)
    }

    #[test]
    fn charge_clips_at_capacity() {
        let mut cap = Capacitor::new(uj(100.0));
        let stored = cap.charge(uj(60.0));
        assert_eq!(stored, uj(60.0));
        let stored = cap.charge(uj(60.0));
        assert_eq!(stored, uj(40.0));
        assert_eq!(cap.stored(), uj(100.0));
        assert!((cap.state_of_charge() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn charge_efficiency_discounts_input() {
        let mut cap = Capacitor::new(uj(100.0)).with_charge_efficiency(0.5);
        cap.charge(uj(40.0));
        assert_eq!(cap.stored(), uj(20.0));
    }

    #[test]
    fn try_draw_is_atomic() {
        let mut cap = Capacitor::new(uj(100.0)).with_initial_charge(uj(30.0));
        assert!(!cap.try_draw(uj(31.0)));
        assert_eq!(cap.stored(), uj(30.0));
        assert!(cap.try_draw(uj(30.0)));
        assert_eq!(cap.stored(), Energy::ZERO);
    }

    #[test]
    fn draw_up_to_takes_partial() {
        let mut cap = Capacitor::new(uj(100.0)).with_initial_charge(uj(25.0));
        assert_eq!(cap.draw_up_to(uj(40.0)), uj(25.0));
        assert_eq!(cap.stored(), Energy::ZERO);
        assert_eq!(cap.draw_up_to(uj(40.0)), Energy::ZERO);
    }

    #[test]
    fn leak_discharges_over_time() {
        let mut cap = Capacitor::new(uj(100.0))
            .with_initial_charge(uj(10.0))
            .with_leakage(Power::from_microwatts(2.0));
        cap.leak(SimDuration::from_secs(2));
        assert!((cap.stored().as_microjoules() - 6.0).abs() < 1e-9);
        cap.leak(SimDuration::from_secs(100));
        assert_eq!(cap.stored(), Energy::ZERO);
    }

    #[test]
    fn initial_charge_is_clipped() {
        let cap = Capacitor::new(uj(50.0)).with_initial_charge(uj(500.0));
        assert_eq!(cap.stored(), uj(50.0));
        assert_eq!(cap.capacity(), uj(50.0));
    }

    #[test]
    fn negative_charge_is_ignored() {
        let mut cap = Capacitor::new(uj(50.0)).with_initial_charge(uj(10.0));
        let stored = cap.charge(uj(5.0) - uj(9.0));
        assert_eq!(stored, Energy::ZERO);
        assert_eq!(cap.stored(), uj(10.0));
    }

    #[test]
    fn charge_accounted_decomposes_losses() {
        let mut cap = Capacitor::new(uj(100.0))
            .with_charge_efficiency(0.5)
            .with_initial_charge(uj(90.0));
        // 40 offered -> 20 effective, only 10 fits: 20 loss + 10 clipped.
        let flows = cap.charge_accounted(uj(40.0));
        assert_eq!(flows.offered, uj(40.0));
        assert_eq!(flows.stored_gain, uj(10.0));
        assert_eq!(flows.charge_loss, uj(20.0));
        assert_eq!(flows.clipped, uj(10.0));
        let total = flows.stored_gain + flows.charge_loss + flows.clipped;
        assert!((total.as_microjoules() - 40.0).abs() < 1e-12);
        assert_eq!(cap.stored(), uj(100.0));
    }

    #[test]
    fn leak_accounted_reports_floored_loss() {
        let mut cap = Capacitor::new(uj(100.0))
            .with_initial_charge(uj(3.0))
            .with_leakage(Power::from_microwatts(2.0));
        let lost = cap.leak_accounted(SimDuration::from_secs(1));
        assert!((lost.as_microjoules() - 2.0).abs() < 1e-12);
        // Only 1 µJ remains; a long span loses exactly that, not 2 µJ.
        let lost = cap.leak_accounted(SimDuration::from_secs(1));
        assert!((lost.as_microjoules() - 1.0).abs() < 1e-12);
        assert_eq!(cap.stored(), Energy::ZERO);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Capacitor::new(Energy::ZERO);
    }

    #[test]
    #[should_panic(expected = "charge efficiency")]
    fn bad_efficiency_panics() {
        let _ = Capacitor::new(uj(1.0)).with_charge_efficiency(0.0);
    }
}
