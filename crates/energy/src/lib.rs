//! Energy-harvesting node substrate for the Origin reproduction.
//!
//! The paper's sensor nodes follow the ReSiRCa platform \[6\]: an RF (WiFi)
//! harvester front-end charging a small storage capacitor, a non-volatile
//! processor (NVP) that preserves inference progress across power
//! emergencies, an IMU, and a low-power radio. This crate models exactly
//! the pieces of that stack the scheduling policies react to:
//!
//! * [`Capacitor`] — bounded energy storage with leakage and charge
//!   efficiency;
//! * [`Harvester`] — converts a [`PowerSource`](origin_trace::PowerSource)
//!   into stored energy with conversion efficiency and a rectifier floor;
//! * [`Nvp`] + [`InferenceJob`] — checkpointed partial inference progress
//!   ("sufficient forward progress in the face of frequent power
//!   emergencies", Section I);
//! * [`EnergyCostTable`] — per-operation energy costs (sense, sleep, idle
//!   listen, radio bytes, checkpoint/restore);
//! * [`EnergyNode`] — the per-node energy state machine the simulator
//!   steps.
//!
//! # Examples
//!
//! ```
//! use origin_energy::{Capacitor, EnergyCostTable, EnergyNode, Harvester, Nvp};
//! use origin_trace::ConstantPower;
//! use origin_types::{Energy, Power, SimDuration, SimTime};
//!
//! let mut node = EnergyNode::new(
//!     Harvester::new(ConstantPower::new(Power::from_microwatts(100.0)), 0.8),
//!     Capacitor::new(Energy::from_microjoules(400.0)),
//!     Nvp::default(),
//!     EnergyCostTable::default(),
//! );
//! node.advance(SimTime::ZERO, SimTime::from_millis(500), origin_energy::DutyState::Sleep);
//! assert!(node.stored().as_microjoules() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod capacitor;
mod costs;
mod harvester;
mod node;
mod nvp;

pub use capacitor::{Capacitor, ChargeFlows};
pub use costs::{DutyState, EnergyCostTable};
pub use harvester::Harvester;
pub use node::{AdvanceFlows, AttemptOutcome, EnergyNode, NodeCounters};
pub use nvp::{InferenceJob, Nvp};
