//! Per-operation energy cost table and duty states.

use origin_types::Energy;

/// What a node is doing over a simulation step, apart from inference.
///
/// Which duty a node runs is a *policy* decision: under round-robin
/// scheduling the inactive nodes sleep (and therefore accumulate harvest),
/// which is precisely the mechanism that lifts completion from Fig. 1a's 10%
/// to Fig. 1b's 28% and beyond.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DutyState {
    /// Deep sleep: retention only. Cheapest.
    Sleep,
    /// Radio listen (waiting for an external activation signal from the
    /// AAS hand-off, Section III-B).
    IdleListen,
    /// Sampling the IMU into the window buffer (prerequisite to inference).
    Sense,
}

/// Energy cost of each primitive operation, per HAR window step.
///
/// Values are µJ per 500 ms window at the defaults and are loosely derived
/// from published ULP component budgets (sub-µA sleep, ~10 µW IMU sampling,
/// nJ/bit short-range radios). Absolute values are not the point — the
/// *ratios* between harvest, overheads and inference cost are what position
/// the completion fractions, and the `calibration` tests in `origin-core`
/// pin those.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyCostTable {
    /// Deep-sleep retention cost per window.
    pub sleep_per_window: Energy,
    /// Radio-listen cost per window.
    pub idle_listen_per_window: Energy,
    /// IMU sampling cost per window.
    pub sense_per_window: Energy,
    /// Radio transmit cost per byte.
    pub tx_per_byte: Energy,
    /// Radio receive cost per byte.
    pub rx_per_byte: Energy,
    /// NVP checkpoint cost (suspending a partial inference).
    pub checkpoint: Energy,
    /// NVP restore cost (resuming a partial inference).
    pub restore: Energy,
}

impl Default for EnergyCostTable {
    fn default() -> Self {
        Self {
            sleep_per_window: Energy::from_microjoules(0.8),
            idle_listen_per_window: Energy::from_microjoules(4.0),
            sense_per_window: Energy::from_microjoules(12.0),
            tx_per_byte: Energy::from_microjoules(0.25),
            rx_per_byte: Energy::from_microjoules(0.2),
            checkpoint: Energy::from_microjoules(1.5),
            restore: Energy::from_microjoules(1.0),
        }
    }
}

impl EnergyCostTable {
    /// Cost of the given duty over one window.
    #[must_use]
    pub fn duty_cost(&self, duty: DutyState) -> Energy {
        match duty {
            DutyState::Sleep => self.sleep_per_window,
            DutyState::IdleListen => self.idle_listen_per_window,
            DutyState::Sense => self.sense_per_window,
        }
    }

    /// Cost of transmitting a message of `bytes` bytes.
    #[must_use]
    pub fn tx_cost(&self, bytes: usize) -> Energy {
        self.tx_per_byte * bytes as f64
    }

    /// Cost of receiving a message of `bytes` bytes.
    #[must_use]
    pub fn rx_cost(&self, bytes: usize) -> Energy {
        self.rx_per_byte * bytes as f64
    }

    /// Validates internal consistency (sleep cheapest, sense most
    /// expensive duty). Returns `self` for builder-style chaining.
    ///
    /// # Panics
    ///
    /// Panics when the ordering sleep ≤ idle ≤ sense is violated or any
    /// cost is negative.
    #[must_use]
    pub fn validated(self) -> Self {
        let all = [
            self.sleep_per_window,
            self.idle_listen_per_window,
            self.sense_per_window,
            self.tx_per_byte,
            self.rx_per_byte,
            self.checkpoint,
            self.restore,
        ];
        for e in all {
            assert!(e >= Energy::ZERO, "costs must be non-negative");
        }
        assert!(
            self.sleep_per_window <= self.idle_listen_per_window
                && self.idle_listen_per_window <= self.sense_per_window,
            "expected sleep <= idle-listen <= sense cost ordering"
        );
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_table_is_consistent() {
        let t = EnergyCostTable::default().validated();
        assert!(t.duty_cost(DutyState::Sleep) < t.duty_cost(DutyState::Sense));
        assert!(t.duty_cost(DutyState::IdleListen) > t.duty_cost(DutyState::Sleep));
    }

    #[test]
    fn radio_costs_scale_with_bytes() {
        let t = EnergyCostTable::default();
        assert_eq!(t.tx_cost(0), Energy::ZERO);
        let four = t.tx_cost(4).as_microjoules();
        let one = t.tx_cost(1).as_microjoules();
        assert!((four - 4.0 * one).abs() < 1e-12);
        assert!(t.rx_cost(10) < t.tx_cost(10), "rx is cheaper than tx");
    }

    #[test]
    #[should_panic(expected = "ordering")]
    fn validated_rejects_inverted_ordering() {
        let t = EnergyCostTable {
            sleep_per_window: Energy::from_microjoules(100.0),
            ..EnergyCostTable::default()
        };
        let _ = t.validated();
    }

    #[test]
    fn duty_costs_match_fields() {
        let t = EnergyCostTable::default();
        assert_eq!(t.duty_cost(DutyState::Sense), t.sense_per_window);
        assert_eq!(t.duty_cost(DutyState::Sleep), t.sleep_per_window);
        assert_eq!(t.duty_cost(DutyState::IdleListen), t.idle_listen_per_window);
    }
}
