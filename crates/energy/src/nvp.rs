//! Non-volatile processor model: checkpointed partial inference progress.

use origin_types::Energy;

/// A pending DNN inference with energy-denominated progress.
///
/// An inference requires `required` µJ of compute. The node invests
/// whatever energy it can afford each step; once `invested >= required`
/// the job completes. With an [`Nvp`], progress survives suspension (minus
/// checkpoint/restore overheads); without one, a suspension discards all
/// progress — the "always trying and failing" regime of Fig. 1a.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceJob {
    required: Energy,
    invested: Energy,
}

impl InferenceJob {
    /// A fresh job needing `required` energy.
    ///
    /// # Panics
    ///
    /// Panics when `required` is not positive.
    #[must_use]
    pub fn new(required: Energy) -> Self {
        assert!(
            required > Energy::ZERO,
            "inference energy requirement must be positive"
        );
        Self {
            required,
            invested: Energy::ZERO,
        }
    }

    /// Total energy the job needs.
    #[must_use]
    pub fn required(&self) -> Energy {
        self.required
    }

    /// Energy invested so far.
    #[must_use]
    pub fn invested(&self) -> Energy {
        self.invested
    }

    /// Energy still missing.
    #[must_use]
    pub fn remaining(&self) -> Energy {
        (self.required - self.invested).clamp_non_negative()
    }

    /// Progress fraction in `[0, 1]`.
    #[must_use]
    pub fn progress(&self) -> f64 {
        (self.invested.as_microjoules() / self.required.as_microjoules()).min(1.0)
    }

    /// Invests `amount` into the job; returns `true` when the job is now
    /// complete.
    pub fn invest(&mut self, amount: Energy) -> bool {
        self.invested += amount.clamp_non_negative();
        self.is_complete()
    }

    /// Whether the invested energy covers the requirement.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.invested >= self.required
    }
}

/// Non-volatile processor configuration.
///
/// `Nvp::default()` models the ReSiRCa-style NVP the paper assumes:
/// progress is preserved across power emergencies at a small
/// checkpoint/restore energy cost. [`Nvp::volatile`] models a conventional
/// volatile MCU for the ablation where suspension loses all progress.
#[derive(Debug, Clone, PartialEq)]
pub struct Nvp {
    preserves_progress: bool,
}

impl Default for Nvp {
    fn default() -> Self {
        Self {
            preserves_progress: true,
        }
    }
}

impl Nvp {
    /// A non-volatile processor (progress preserved across suspensions).
    #[must_use]
    pub fn non_volatile() -> Self {
        Self::default()
    }

    /// A volatile processor: suspending a job discards its progress.
    #[must_use]
    pub fn volatile() -> Self {
        Self {
            preserves_progress: false,
        }
    }

    /// Whether partial progress survives a suspension.
    #[must_use]
    pub fn preserves_progress(&self) -> bool {
        self.preserves_progress
    }

    /// Applies suspension semantics to a job: returns the job that will be
    /// resumed later, or `None` when progress is lost.
    #[must_use]
    pub fn suspend(&self, job: InferenceJob) -> Option<InferenceJob> {
        if self.preserves_progress {
            Some(job)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uj(v: f64) -> Energy {
        Energy::from_microjoules(v)
    }

    #[test]
    fn job_tracks_progress() {
        let mut job = InferenceJob::new(uj(100.0));
        assert_eq!(job.remaining(), uj(100.0));
        assert!(!job.invest(uj(40.0)));
        assert!((job.progress() - 0.4).abs() < 1e-12);
        assert_eq!(job.remaining(), uj(60.0));
        assert!(job.invest(uj(60.0)));
        assert!(job.is_complete());
        assert_eq!(job.remaining(), Energy::ZERO);
        assert!((job.progress() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn negative_investment_is_ignored() {
        let mut job = InferenceJob::new(uj(10.0));
        job.invest(uj(1.0) - uj(5.0));
        assert_eq!(job.invested(), Energy::ZERO);
    }

    #[test]
    fn nvp_preserves_and_volatile_discards() {
        let mut job = InferenceJob::new(uj(100.0));
        job.invest(uj(30.0));
        let preserved = Nvp::non_volatile().suspend(job.clone());
        assert_eq!(
            preserved.as_ref().map(InferenceJob::invested),
            Some(uj(30.0))
        );
        assert!(Nvp::volatile().suspend(job).is_none());
        assert!(Nvp::default().preserves_progress());
        assert!(!Nvp::volatile().preserves_progress());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_requirement_panics() {
        let _ = InferenceJob::new(Energy::ZERO);
    }
}
